"""Table A (Section IV-A) — the KHI simulation setup and its cost.

Checks the paper's setup constants (smallest volume 192×256×12 cells on 16
GPUs, cubic cells of 93.5 µm, beta = 0.2, 9 particles per cell, density
1e25 m^-3) and measures the per-step cost of the scaled-down KHI run, from
which the full-scale run time claim ("one thousand time steps completed in
a mere 6.5 minutes") is cross-checked with the FOM model.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import constants
from repro.perfmodel.fom import FOMScalingModel
from repro.pic.khi import KHIConfig, make_khi_simulation


def test_tableA_khi_setup_constants(benchmark):
    def build():
        return KHIConfig.paper()

    config = benchmark(build)
    benchmark.extra_info["grid"] = "x".join(str(n) for n in config.grid_shape)
    benchmark.extra_info["cell_size_um"] = config.cell_size * 1e6
    benchmark.extra_info["particles_per_cell"] = config.particles_per_cell
    benchmark.extra_info["beta"] = config.beta
    benchmark.extra_info["macro_electrons"] = config.n_macro_electrons

    assert config.grid_shape == (192, 256, 12)
    assert config.cell_size == pytest.approx(93.5e-6)
    assert config.particles_per_cell == 9
    assert config.beta == pytest.approx(0.2)
    assert constants.PAPER_SMALLEST_GPUS == 16
    assert config.n_macro_electrons == 192 * 256 * 12 * 9


def test_tableA_scaled_khi_step_cost(benchmark):
    """Per-step wall time of the scaled-down KHI run on this machine."""
    config = KHIConfig(grid_shape=(12, 24, 2), particles_per_cell=6, seed=2)
    simulation = make_khi_simulation(config)
    simulation.run(1)  # warm-up / initial transient

    benchmark(simulation.step)

    benchmark.extra_info["macro_particles"] = simulation.n_macro_particles
    benchmark.extra_info["cells"] = config.grid_config.n_cells
    benchmark.extra_info["omega_p_dt"] = round(config.omega_p_dt(), 3)
    assert config.omega_p_dt() < 2.0


def test_tableA_full_scale_runtime_claim(benchmark):
    """'One thousand time steps completed in a mere 6.5 minutes' on Frontier."""
    model = FOMScalingModel.frontier_calibrated()

    def estimate():
        particles_per_gpu = 2.7e13 / 36_864
        cells_per_gpu = 1.0e12 / 36_864
        return 1000 * model.time_per_step(particles_per_gpu, cells_per_gpu, 36_864)

    seconds = benchmark(estimate)
    benchmark.extra_info["estimated_minutes_for_1000_steps"] = round(seconds / 60, 1)
    # same order of magnitude as the paper's 6.5 minutes
    assert 2 * 60 < seconds < 20 * 60
