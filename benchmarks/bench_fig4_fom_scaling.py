"""Fig. 4 — PIConGPU FOM weak scaling from 24 to 36 864 GPUs.

Two parts:

* the *measured* part times real PIC steps of this repository's simulator
  and reports its (single-process) figure of merit,
* the *modelled* part regenerates the Frontier and Summit weak-scaling
  curves with the calibrated FOM model, checking the paper's headline
  numbers (65.3 vs 14.7 TeraUpdates/s) and the near-ideal weak scaling.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.perfmodel.fom import FOMScalingModel
from repro.pic.khi import KHIConfig, make_khi_simulation


def test_fig4_measured_local_fom(benchmark):
    """Measure the real (laptop-scale) simulator FOM for context."""
    config = KHIConfig(grid_shape=(12, 24, 2), particles_per_cell=4, seed=3)

    def run():
        simulation = make_khi_simulation(config)
        return simulation.run(3)

    fom = benchmark.pedantic(run, iterations=1, rounds=3)
    benchmark.extra_info["local_fom_updates_per_s"] = f"{fom.value:.3e}"
    benchmark.extra_info["local_particle_updates_per_s"] = \
        f"{fom.particle_updates_per_second:.3e}"
    assert fom.value > 0


def test_fig4_frontier_vs_summit_weak_scaling(benchmark):
    """Regenerate the Fig. 4 weak-scaling curves from the calibrated model."""
    frontier = FOMScalingModel.frontier_calibrated()
    summit = FOMScalingModel.summit_calibrated()

    def scan():
        counts = FOMScalingModel.paper_gpu_counts()
        return frontier.scan(counts), summit.scan([24, 96, 384, 1536, 6144, 27648])

    frontier_points, summit_points = benchmark(scan)

    series = {f"frontier_{p.n_gpus}_gpus_TUps": round(p.tera_updates_per_second, 2)
              for p in frontier_points}
    series.update({f"summit_{p.n_gpus}_gpus_TUps": round(p.tera_updates_per_second, 2)
                   for p in summit_points})
    benchmark.extra_info.update(series)

    # headline numbers of the paper
    assert frontier_points[-1].tera_updates_per_second == pytest.approx(65.3, rel=0.01)
    assert summit_points[-1].tera_updates_per_second == pytest.approx(14.7, rel=0.01)
    # weak scaling is close to ideal: per-GPU FOM varies by < 10 %
    per_gpu = np.array([p.fom_updates_per_second / p.n_gpus for p in frontier_points])
    assert per_gpu.min() > 0.9 * per_gpu.max()
    # Frontier beats Summit by roughly the paper's factor (~4.4x)
    ratio = frontier_points[-1].tera_updates_per_second \
        / summit_points[-1].tera_updates_per_second
    assert 3.5 < ratio < 5.5
