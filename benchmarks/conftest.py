"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
(see DESIGN.md §3 and EXPERIMENTS.md).  Reproduced values are attached to
``benchmark.extra_info`` so that ``pytest benchmarks/ --benchmark-only``
produces both timing and the regenerated rows/series.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MLConfig, StreamingConfig, WorkflowConfig
from repro.models.config import ModelConfig
from repro.pic.khi import KHIConfig


def tiny_workflow_config(n_rep: int = 2, seed: int = 11) -> WorkflowConfig:
    """A workflow config small enough to run inside a benchmark round."""
    model = ModelConfig(n_input_points=48, encoder_channels=(16, 32),
                        encoder_head_hidden=32, latent_dim=32,
                        decoder_grid=(2, 2, 2), decoder_channels=(8, 6),
                        spectrum_dim=16, inn_blocks=2, inn_hidden=(32,))
    return WorkflowConfig(
        khi=KHIConfig(grid_shape=(8, 16, 2), particles_per_cell=4, seed=seed),
        ml=MLConfig(model=model, n_rep=n_rep, base_learning_rate=1e-3),
        streaming=StreamingConfig(queue_limit=2),
        region_counts=(1, 4, 1),
        n_detector_directions=2,
        n_detector_frequencies=8,
        seed=seed,
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(987)
