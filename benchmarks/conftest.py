"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
(see DESIGN.md §3 and EXPERIMENTS.md).  Reproduced values are attached to
``benchmark.extra_info`` so that ``pytest benchmarks/ --benchmark-only``
produces both timing and the regenerated rows/series.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core import WorkflowConfig
from repro.workflow import get_preset


def tiny_workflow_config(n_rep: int = 2, seed: int = 11) -> WorkflowConfig:
    """The ``bench-tiny`` preset, re-seeded for the calling benchmark."""
    config = get_preset("bench-tiny")
    return replace(config,
                   khi=replace(config.khi, seed=seed),
                   ml=replace(config.ml, n_rep=n_rep),
                   seed=seed)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(987)
