"""Sharded campaign execution and result caching: speed and identity.

The sharded executor's pitch is the step from "pools on one box" toward
multi-node campaigns: partition the resolved runs across named shards,
delegate each shard to an inner executor, merge one outcome.  Three
properties are measured/asserted here:

* **identity** — a 4-shard hash-routed launch of the 8-run
  ``campaign-smoke`` sweep reproduces the serial executor's campaign
  exactly (same run ids, same deterministic report); only wall clock may
  differ,
* **shard overlap** — with latency-dominated runs (staged input, remote
  streams) the shards' waits overlap even with a serial inner executor:
  >2x over serial on any machine,
* **cache elision** — a second campaign against a warm result cache
  serves every run without executing a single workflow, turning the sweep
  into pure bookkeeping (orders of magnitude faster than recomputing).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_campaign_sharding.py --benchmark-only
"""

from __future__ import annotations

import itertools
import time

import pytest

from repro.campaign import (CampaignStore, ResultCache, aggregate,
                            get_campaign_preset, get_executor, run_campaign)

N_RUNS = 8
N_SHARDS = 4

_store_counter = itertools.count()


def _fresh_store(tmp_path, tag: str) -> CampaignStore:
    return CampaignStore(str(tmp_path / f"{tag}-{next(_store_counter)}.jsonl"))


@pytest.fixture(scope="module")
def serial_reference(tmp_path_factory):
    """One serial smoke sweep shared by the identity checks."""
    store = CampaignStore(
        str(tmp_path_factory.mktemp("sharding-ref") / "ref.jsonl"))
    outcome = run_campaign(get_campaign_preset("campaign-smoke"), store,
                           get_executor("serial"))
    assert outcome.completed == N_RUNS, [r.error for r in outcome.records]
    return store, aggregate(store.records(), campaign="campaign-smoke")


def test_sharded_smoke_matches_serial(benchmark, tmp_path, serial_reference):
    """`--executor sharded --shards 4` reproduces the serial campaign."""
    spec = get_campaign_preset("campaign-smoke-sharded")

    def sweep():
        store = _fresh_store(tmp_path, "sharded")
        executor = get_executor("sharded", shards=N_SHARDS)
        outcome = run_campaign(spec, store, executor)
        assert outcome.completed == N_RUNS, [r.error for r in outcome.records]
        return store, executor

    store, executor = benchmark.pedantic(sweep, iterations=1, rounds=3)
    report = aggregate(store.records(), campaign="campaign-smoke")
    reference_store, reference = serial_reference
    assert {r.run_id for r in store.records()} == \
        {r.run_id for r in reference_store.records()}
    assert report.deterministic_dict() == reference.deterministic_dict()
    benchmark.extra_info["shards"] = N_SHARDS
    benchmark.extra_info["shard_sizes"] = dict(sorted(
        executor.shard_sizes.items()))
    benchmark.extra_info["best_loss"] = round(
        report.best_run["final_total_loss"], 4)


def test_shards_overlap_latency_bound_runs(benchmark):
    """Hash-routed shards overlap latency-dominated runs even with a
    serial inner executor — the waits are paid per shard, not per run."""
    spec = get_campaign_preset("campaign-smoke")
    payloads = [run.payload() for run in spec.resolve()]
    LATENCY = 0.05

    def waiting_worker(payload):
        time.sleep(LATENCY)
        return {"final_total_loss": 1.0, "ok": True}

    def timed(executor_name, **kwargs):
        start = time.perf_counter()
        records = get_executor(executor_name, **kwargs).execute(
            payloads, waiting_worker)
        assert all(record.completed for record in records)
        return time.perf_counter() - start

    serial_wall = timed("serial")
    sharded_wall = benchmark.pedantic(
        lambda: timed("sharded", shards=N_SHARDS, inner="serial"),
        iterations=1, rounds=3)
    benchmark.extra_info["serial_wall_s"] = round(serial_wall, 3)
    benchmark.extra_info["sharded_wall_s"] = round(sharded_wall, 3)
    benchmark.extra_info["speedup"] = round(serial_wall / sharded_wall, 2)
    assert serial_wall >= N_RUNS * LATENCY
    assert sharded_wall < serial_wall / 2


def test_warm_cache_elides_every_run(benchmark, tmp_path, serial_reference):
    """A warm result cache turns the sweep into bookkeeping: zero workflow
    executions, and a wall-clock far below one real run's."""
    spec = get_campaign_preset("campaign-smoke")
    cache = ResultCache(str(tmp_path / "cache"))

    cold_start = time.perf_counter()
    cold = run_campaign(spec, _fresh_store(tmp_path, "cold"),
                        get_executor("sharded", shards=N_SHARDS), cache=cache)
    cold_wall = time.perf_counter() - cold_start
    assert cold.completed == N_RUNS and cold.cache_hits == 0

    def refusing_worker(payload):
        raise AssertionError("a cached run was executed")

    def warm_sweep():
        outcome = run_campaign(spec, _fresh_store(tmp_path, "warm"),
                               get_executor("sharded", shards=N_SHARDS),
                               worker=refusing_worker, cache=cache)
        assert outcome.cache_hits == N_RUNS and outcome.executed == 0
        return outcome

    warm_start = time.perf_counter()
    warm_outcome = warm_sweep()
    warm_wall = time.perf_counter() - warm_start
    benchmark.pedantic(warm_sweep, iterations=1, rounds=3)

    report = aggregate(warm_outcome.records, campaign="campaign-smoke")
    assert report.deterministic_dict() == serial_reference[1].deterministic_dict()
    benchmark.extra_info["cold_wall_s"] = round(cold_wall, 3)
    benchmark.extra_info["warm_wall_s"] = round(warm_wall, 4)
    benchmark.extra_info["speedup"] = round(cold_wall / warm_wall, 1)
    assert warm_wall < cold_wall / 5
