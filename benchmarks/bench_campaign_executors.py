"""Campaign executor comparison: serial vs thread-pool vs process-pool.

The campaign engine's pitch is throughput across many coupled runs: the
same declarative 8-run ``campaign-smoke`` sweep (2 learning rates × 4
ensemble seeds) is executed under every registered executor and must
produce the same campaign report — only the wall-clock distribution may
differ.

Two speedup properties are checked:

* **latency overlap** — with runs dominated by waiting (staged input,
  remote streams), the thread pool finishes the sweep several times faster
  than the serial executor even on a single core,
* **CPU parallelism** — with the real coupled runs, the process pool is
  measurably faster than serial when more than one core is available
  (asserted only then; a 1-core box can't parallelise CPU-bound work, and
  the tiny GIL-dominated smoke runs give the thread pool nothing to
  overlap).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_campaign_executors.py --benchmark-only
"""

from __future__ import annotations

import itertools
import os
import time

import pytest

from repro.campaign import (CampaignStore, aggregate, available_executors,
                            get_campaign_preset, get_executor, run_campaign)

N_RUNS = 8
MAX_WORKERS = 4

_store_counter = itertools.count()


def _n_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _run_sweep(executor: str, tmp_path) -> tuple:
    spec = get_campaign_preset("campaign-smoke")
    store = CampaignStore(
        str(tmp_path / f"{executor}-{next(_store_counter)}.jsonl"))
    start = time.perf_counter()
    outcome = run_campaign(spec, store,
                           get_executor(executor, max_workers=MAX_WORKERS))
    wall = time.perf_counter() - start
    assert outcome.completed == N_RUNS, [r.error for r in outcome.records]
    return outcome, store, wall


@pytest.fixture(scope="module")
def serial_reference(tmp_path_factory):
    """One serial sweep shared by every executor's determinism check."""
    store = CampaignStore(
        str(tmp_path_factory.mktemp("campaign-ref") / "ref.jsonl"))
    run_campaign(get_campaign_preset("campaign-smoke"), store,
                 get_executor("serial"))
    return store, aggregate(store.records(), campaign="campaign-smoke")


@pytest.mark.parametrize("executor", available_executors())
def test_campaign_executor_throughput(benchmark, executor, tmp_path,
                                      serial_reference):
    assert len(get_campaign_preset("campaign-smoke").resolve()) == N_RUNS

    result = benchmark.pedantic(lambda: _run_sweep(executor, tmp_path),
                                iterations=1, rounds=3)
    outcome, store, _ = result
    assert outcome.done

    report = aggregate(store.records(), campaign="campaign-smoke")
    benchmark.extra_info["executor"] = executor
    benchmark.extra_info["max_workers"] = MAX_WORKERS
    benchmark.extra_info["cores"] = _n_cores()
    benchmark.extra_info["runs"] = N_RUNS
    benchmark.extra_info["samples_per_s"] = round(
        report.timing["samples_per_s"], 1)
    benchmark.extra_info["best_loss"] = round(
        report.best_run["final_total_loss"], 4)

    # every executor yields the same campaign: identical run ids and, up to
    # last-ulp BLAS reassociation in forked workers, identical loss stats
    reference_store, reference = serial_reference
    assert {r.run_id for r in store.records()} == \
        {r.run_id for r in reference_store.records()}
    assert report.loss["mean"] == pytest.approx(reference.loss["mean"],
                                                rel=1e-9)
    assert report.loss["min"] == pytest.approx(reference.loss["min"], rel=1e-9)
    assert report.best_run["run_id"] == reference.best_run["run_id"]
    assert report.totals == reference.totals


def test_thread_pool_overlaps_latency_bound_runs(benchmark):
    """An 8-run sweep of latency-dominated runs (staged input, remote
    streams): the pool overlaps the waits, serial pays them in sequence —
    a >2x speedup that holds even on a single core."""
    spec = get_campaign_preset("campaign-smoke")
    payloads = [run.payload() for run in spec.resolve()]
    LATENCY = 0.05

    def waiting_worker(payload):
        time.sleep(LATENCY)  # the run is dominated by waiting, not compute
        return {"final_total_loss": 1.0, "ok": True}

    def timed(executor_name):
        start = time.perf_counter()
        records = get_executor(executor_name, max_workers=MAX_WORKERS).execute(
            payloads, waiting_worker)
        assert all(record.completed for record in records)
        return time.perf_counter() - start

    serial_wall = timed("serial")
    thread_wall = benchmark.pedantic(lambda: timed("thread"),
                                     iterations=1, rounds=3)
    benchmark.extra_info["serial_wall_s"] = round(serial_wall, 3)
    benchmark.extra_info["thread_wall_s"] = round(thread_wall, 3)
    benchmark.extra_info["speedup"] = round(serial_wall / thread_wall, 2)
    assert serial_wall >= N_RUNS * LATENCY
    assert thread_wall < serial_wall / 2


def test_process_pool_beats_serial_on_real_runs(tmp_path):
    """With the real CPU-bound coupled runs the process pool wins given real
    cores.  The thread pool is deliberately excluded: the smoke runs are
    tiny and GIL-dominated, so it has nothing to overlap here — its win is
    the latency-bound case above.  Best-of-3 walls keep the comparison
    robust to scheduler noise."""
    if _n_cores() < 2:
        pytest.skip("needs >1 core to parallelise CPU-bound coupled runs")
    serial_wall = min(_run_sweep("serial", tmp_path)[2] for _ in range(3))
    process_wall = min(_run_sweep("process", tmp_path)[2] for _ in range(3))
    assert process_wall < serial_wall