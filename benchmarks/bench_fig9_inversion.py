"""Fig. 9 — inversion quality: radiation spectra back to momentum distributions.

Runs the full coupled workflow (KHI simulation streaming into in-transit
training) for a number of steps, then evaluates the trained model per plasma
region exactly as the paper does: ground-truth vs predicted momentum
distributions for the bulk approaching / bulk receding / vortex regions,
plus the surrogate spectrum error and the latent regime-classifier accuracy.

Absolute reconstruction quality at this laptop scale is far below the
paper's (minutes of training instead of Frontier hours), so the assertions
target the *structure* of the result: all regions are evaluated, the bulk
regions' ground-truth peaks sit at ±gamma*beta, and the report is complete.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import tiny_workflow_config
from repro.workflow import WorkflowBuilder


def test_fig9_inversion_report(benchmark):
    config = tiny_workflow_config(n_rep=2, seed=17)

    def run_and_evaluate():
        session = WorkflowBuilder().config(config).driver("serial").build()
        session.run(6, keep_for_evaluation=2).raise_if_failed()
        return session.evaluate(n_posterior_samples=2)

    report = benchmark.pedantic(run_and_evaluate, iterations=1, rounds=1)

    for row in report.rows():
        prefix = f"region_{row['region']}"
        benchmark.extra_info[f"{prefix}_true_peak"] = row["true_peak"]
        benchmark.extra_info[f"{prefix}_predicted_peak"] = row["predicted_peak"]
        benchmark.extra_info[f"{prefix}_histogram_l1"] = row["histogram_l1"]
    summary = report.summary()
    benchmark.extra_info["surrogate_spectrum_mse"] = round(summary["surrogate_spectrum_mse"], 5)
    benchmark.extra_info["latent_classifier_accuracy"] = \
        round(summary["latent_classifier_accuracy"], 3)

    # structural expectations from the paper's Fig. 9
    assert report.n_evaluation_samples > 0
    regions = set(report.regions)
    assert "approaching" in regions and "receding" in regions
    gamma_beta = 0.2 / np.sqrt(1 - 0.04)
    assert report.regions["approaching"].true_peak == pytest.approx(gamma_beta, abs=0.08)
    assert report.regions["receding"].true_peak == pytest.approx(-gamma_beta, abs=0.08)
    # the report is complete and finite
    for evaluation in report.regions.values():
        assert np.isfinite(evaluation.predicted_peak)
        assert 0.0 <= evaluation.histogram_l1 <= 2.0
    assert 0.0 <= summary["latent_classifier_accuracy"] <= 1.0
