"""Table D / Section IV-C — experience-replay ablation (catastrophic forgetting).

The paper employs experience replay "to avoid catastrophic forgetting of
earlier simulation time steps while training on later ones".  This benchmark
constructs a two-phase synthetic stream whose statistics change halfway
through (early phase: approaching-like samples; late phase: receding-like
samples) and trains two otherwise identical models:

* with the paper's now+EP training buffer (replay on), and
* with a now-buffer only (replay off).

After the stream ends, both models are evaluated on held-out *early-phase*
samples; the replay-enabled model must forget less (lower loss on the early
phase), which is the property the paper's design relies on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.continual import InTransitTrainer, TrainingBuffer, TrainingSample
from repro.mlcore.optim import Adam
from repro.models import ArtificialScientistModel, ModelConfig


CFG = ModelConfig(n_input_points=32, encoder_channels=(16, 32), encoder_head_hidden=24,
                  latent_dim=24, decoder_grid=(2, 2, 2), decoder_channels=(8, 6),
                  spectrum_dim=8, inn_blocks=2, inn_hidden=(24,))


def make_phase_samples(rng, drift, n, step0):
    samples = []
    for i in range(n):
        cloud = rng.normal(scale=0.05, size=(CFG.n_input_points, CFG.point_dim))
        cloud[:, 3] += drift
        spectrum = np.clip(rng.random(CFG.spectrum_dim) * 0.2 + (0.5 + drift), 0, 1)
        samples.append(TrainingSample(point_cloud=cloud, spectrum=spectrum,
                                      step=step0 + i, region="synthetic"))
    return samples


def run_stream(use_replay: bool, rng_seed: int = 5, n_rep: int = 3):
    rng = np.random.default_rng(rng_seed)
    model = ArtificialScientistModel(CFG, rng=np.random.default_rng(0))
    optimizer = Adam(model.parameters(), lr=2e-3, weight_decay=0.0)
    buffer = TrainingBuffer(now_size=4, ep_size=16 if use_replay else 0,
                            n_now=4, n_ep=4 if use_replay else 0,
                            rng=np.random.default_rng(1))
    trainer = InTransitTrainer(model, optimizer, buffer, n_rep=n_rep)

    early = make_phase_samples(rng, drift=+0.2, n=10, step0=0)
    late = make_phase_samples(rng, drift=-0.2, n=10, step0=100)
    held_out_early = make_phase_samples(rng, drift=+0.2, n=6, step0=50)

    for step, sample in enumerate(early):
        trainer.train_on_stream_step([sample], step=step)
    loss_after_early = trainer.evaluate(held_out_early)["total"]
    for step, sample in enumerate(late, start=len(early)):
        trainer.train_on_stream_step([sample], step=step)
    loss_after_late = trainer.evaluate(held_out_early)["total"]
    return loss_after_early, loss_after_late


def test_tableD_replay_reduces_forgetting(benchmark):
    def ablation():
        with_replay = run_stream(use_replay=True)
        without_replay = run_stream(use_replay=False)
        return with_replay, without_replay

    (with_replay, without_replay) = benchmark.pedantic(ablation, iterations=1, rounds=1)

    forgetting_with = with_replay[1] - with_replay[0]
    forgetting_without = without_replay[1] - without_replay[0]
    benchmark.extra_info["early_phase_loss_increase_with_replay"] = round(forgetting_with, 4)
    benchmark.extra_info["early_phase_loss_increase_without_replay"] = \
        round(forgetting_without, 4)
    benchmark.extra_info["final_early_phase_loss_with_replay"] = round(with_replay[1], 4)
    benchmark.extra_info["final_early_phase_loss_without_replay"] = \
        round(without_replay[1], 4)

    # At laptop scale and a few seconds of training the models are far from
    # converged, so the *magnitude* of catastrophic forgetting is small; the
    # requirement is that replay never leaves the early-phase data worse off
    # than training without it (the retention property itself is covered by
    # the unit tests of the training buffer).
    assert with_replay[1] <= without_replay[1] * 1.05


def test_tableD_buffer_composition_matches_paper(benchmark):
    """The default buffer reproduces the paper's batch composition (4 + 4)."""
    def compose():
        buffer = TrainingBuffer(rng=np.random.default_rng(3))
        for step in range(40):
            buffer.add(TrainingSample(point_cloud=np.zeros((4, 6)),
                                      spectrum=np.zeros(4), step=step))
        return buffer, buffer.sample_batch()

    buffer, batch = benchmark(compose)
    benchmark.extra_info["now_buffer"] = buffer.now_count
    benchmark.extra_info["ep_buffer"] = buffer.ep_count
    benchmark.extra_info["batch_size"] = len(batch)
    assert buffer.now_count == 10
    assert buffer.ep_count == 20
    assert len(batch) == 8
    now_steps = set(buffer.now_steps())
    assert sum(1 for s in batch if s.step in now_steps) == 4
