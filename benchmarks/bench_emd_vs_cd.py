"""Table C (Section IV-C, footnote) — EMD vs Chamfer-distance cost.

The paper reports "about a 4x increase in batch run times when using EMD
compared to a simple implementation of CD" and could not use the CUDA-only
KeOps/geomloss EMD on Frontier's AMD GPUs at all.  This benchmark measures
the cost ratio of this repository's Sinkhorn-EMD against the Chamfer
distance on a point-cloud batch of the paper's decoder output size.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.mlcore.losses import chamfer_distance, sinkhorn_emd
from repro.mlcore.tensor import Tensor


BATCH, POINTS, DIM = 4, 256, 6


def _clouds(rng):
    a = Tensor(rng.normal(size=(BATCH, POINTS, DIM)))
    b = Tensor(rng.normal(size=(BATCH, POINTS, DIM)))
    return a, b


def test_tableC_chamfer_distance_cost(benchmark, rng):
    a, b = _clouds(rng)
    value = benchmark(lambda: chamfer_distance(a, b).item())
    benchmark.extra_info["chamfer_value"] = round(value, 4)
    assert value > 0


def test_tableC_emd_cost_and_ratio(benchmark, rng):
    a, b = _clouds(rng)

    value = benchmark(lambda: sinkhorn_emd(a, b, epsilon=0.05, n_iterations=30).item())
    benchmark.extra_info["emd_value"] = round(value, 4)

    # measure the ratio explicitly (both with the same number of repetitions)
    reps = 3
    start = time.perf_counter()
    for _ in range(reps):
        chamfer_distance(a, b).item()
    cd_time = (time.perf_counter() - start) / reps
    start = time.perf_counter()
    for _ in range(reps):
        sinkhorn_emd(a, b, epsilon=0.05, n_iterations=30).item()
    emd_time = (time.perf_counter() - start) / reps
    ratio = emd_time / cd_time
    benchmark.extra_info["emd_over_cd_cost_ratio"] = round(ratio, 2)

    # the paper's observation: EMD is substantially (≈4x) more expensive
    assert ratio > 2.0
    assert value >= 0
