"""Execution-driver comparison: serial vs threaded vs pipelined.

The paper's co-scheduled system overlaps simulation and training; the
workflow drivers reproduce the schedule choices at laptop scale.  This
benchmark runs the same tiny coupled workflow under every registered
driver and checks the redesign's core contract: identical streaming and
training accounting, one uniform report schema, only the wall-clock
distribution differs.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import tiny_workflow_config
from repro.workflow import WorkflowBuilder, available_drivers

N_STEPS = 5


@pytest.mark.parametrize("driver", available_drivers())
def test_driver_throughput(benchmark, driver):
    def run():
        session = (WorkflowBuilder()
                   .config(tiny_workflow_config(n_rep=1, seed=23))
                   .driver(driver)
                   .build())
        return session.run(N_STEPS)

    result = benchmark.pedantic(run, iterations=1, rounds=3)
    assert result.ok, (result.producer_exception, result.consumer_exceptions)
    report = result.report

    benchmark.extra_info["driver"] = driver
    benchmark.extra_info["iterations_streamed"] = report.iterations_streamed
    benchmark.extra_info["max_queue_depth"] = result.max_queue_depth
    benchmark.extra_info["streamed_megabytes"] = round(report.streamed_megabytes, 2)

    # identical accounting regardless of the execution strategy
    assert report.n_steps == N_STEPS
    assert report.iterations_streamed == N_STEPS
    assert report.training_iterations == N_STEPS  # n_rep=1
    assert set(report.summary()) == {
        "steps", "iterations_streamed", "samples_streamed",
        "training_iterations", "streamed_megabytes", "wall_time_s",
        "simulation_time_s", "training_time_s", "final_total_loss"}
