"""Fig. 6 + Section IV-B table — full-scale streaming throughput.

* the *measured* part streams real KHI particle data through the in-memory
  SST engine into the no-op consumer (the same synthetic benchmark the paper
  runs, at laptop scale),
* the *modelled* part regenerates the libfabric/MPI weak-scaling study from
  4096 to 9126 nodes at 5.86 GB/node/step and checks the paper's reported
  ranges (per-node GB/s, parallel TB/s, 1.2–3.2 s step times, the failing
  all-at-once strategy, and the comparison against Orion's 10 TB/s).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.perfmodel.streaming import (PAPER_BYTES_PER_NODE, PAPER_NODE_COUNTS,
                                       StreamingScalingStudy)
from repro.pic.khi import KHIConfig, make_khi_simulation
from repro.streaming import (NoOpConsumer, SSTBroker, SSTReaderEngine, SSTWriterEngine,
                             measure_stream_throughput)


def test_fig6_measured_inmemory_stream(benchmark):
    """Real producer -> no-op consumer streaming throughput on this machine."""
    config = KHIConfig(grid_shape=(16, 32, 2), particles_per_cell=4, seed=5)
    simulation = make_khi_simulation(config)
    electrons = simulation.get_species("electrons")
    simulation.run(1)
    payload = electrons.phase_space()
    weights = electrons.weights
    bytes_per_step = payload.nbytes + weights.nbytes

    def stream_five_steps():
        broker = SSTBroker("bench", queue_limit=2)
        writer = SSTWriterEngine(broker)
        consumer = NoOpConsumer(reader=SSTReaderEngine(broker))
        for _ in range(5):
            writer.begin_step()
            writer.put("particles/phase_space", payload)
            writer.put("particles/weighting", weights)
            writer.end_step()
            consumer.run(max_steps=1)
        writer.close()
        return consumer

    consumer = benchmark(stream_five_steps)
    result = measure_stream_throughput(consumer.step_times, n_nodes=1,
                                       bytes_per_node=bytes_per_step)
    benchmark.extra_info["payload_mb_per_step"] = round(bytes_per_step / 1e6, 2)
    benchmark.extra_info["inmemory_gb_per_s"] = round(result.median_throughput / 1e9, 2)
    assert result.median_throughput > 0


def test_fig6_frontier_scale_model(benchmark):
    """Regenerate the Fig. 6 study and check it against the paper's ranges."""
    study = StreamingScalingStudy()

    points = benchmark(study.run)
    by_key = {(p.data_plane, p.enqueue_strategy, p.n_nodes): p for p in points}

    rows = study.rows(points)
    for row in rows:
        key = f"{row['data_plane']}/{row['strategy']}/{row['nodes']}"
        benchmark.extra_info[key] = (f"{row['parallel_tb_per_s']} TB/s"
                                     if row["parallel_tb_per_s"] is not None else "n/a")

    gb = 1e9
    # Section IV-B per-node ranges
    lf_4096_fast = by_key[("libfabric", "all_at_once", 4096)].result
    assert 3.5 <= np.median(lf_4096_fast.per_node_throughput) / gb <= 4.7
    lf_full = by_key[("libfabric", "batched", 9126)].result
    assert 1.9 <= np.median(lf_full.per_node_throughput) / gb <= 2.6
    mpi_4096 = by_key[("mpi", "batched", 4096)].result
    assert 2.6 <= np.median(mpi_4096.per_node_throughput) / gb <= 3.7
    mpi_full = by_key[("mpi", "batched", 9126)].result
    assert 2.4 <= np.median(mpi_full.per_node_throughput) / gb <= 3.3

    # Fig. 6 aggregate behaviour
    assert 20.0 <= mpi_full.terabytes_per_second() <= 30.0
    assert mpi_full.terabytes_per_second() > lf_full.terabytes_per_second()
    assert not by_key[("libfabric", "all_at_once", 9126)].supported
    assert mpi_full.terabytes_per_second() > study.filesystem_throughput() / 1e12

    # regular measurements range between 1.2 s and 3.2 s
    for plane in ("mpi", "libfabric"):
        for nodes in PAPER_NODE_COUNTS:
            result = by_key[(plane, "batched", nodes)].result
            assert np.all(np.asarray(result.step_times) > 1.0)
            assert np.all(np.asarray(result.step_times) < 3.6)

    benchmark.extra_info["bytes_per_node"] = f"{PAPER_BYTES_PER_NODE / 1e9:.2f} GB"
