"""Warm worker pool vs fresh-pool-per-chunk: the campaign launch path.

The service launches campaigns in small chunks (cooperative cancel lands
on chunk boundaries), so an executor's *per-``execute()``* start-up cost
is paid once per chunk.  The stock ``process`` executor builds a fresh
``ProcessPoolExecutor`` every call — spawn + numpy/repro import per
chunk — while the ``workers`` executor leases a process-wide pool of
long-lived workers that stays warm across calls.  This benchmark drives
the same service-style chunked launch through both and checks:

* **throughput** — the warm pool beats the fresh-pool executor on a
  chunked launch (the recurring spawn+import cost is exactly what it
  removes),
* **determinism** — the workers backend reproduces the serial executor's
  deterministic campaign report, crash-requeue and straggler machinery
  notwithstanding.

The standalone harness with the equivalence *gate* (non-zero exit) and
the persisted ``BENCH_campaign_throughput.json`` trajectory is
``python -m repro.cli bench-campaign`` (:mod:`repro.campaign.hotpath`);
this file is the pytest-benchmark view of the same comparison.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_campaign_workers.py --benchmark-only
"""

from __future__ import annotations

import itertools
import time

import pytest

from repro.campaign import (CampaignStore, WorkerPool, WorkerPoolExecutor,
                            aggregate, execute_run, get_campaign_preset,
                            get_executor, run_campaign)
from repro.campaign.hotpath import service_chunk_size

N_RUNS = 8
MAX_WORKERS = 2
START_METHOD = "fork"  # fast start-up; the shipped default is "spawn"

_store_counter = itertools.count()


@pytest.fixture(scope="module")
def warm_pool():
    """One private pool shared by every round, warmed before timing."""
    pool = WorkerPool(MAX_WORKERS, start_method=START_METHOD)
    pool.start()
    pool.wait_ready(timeout=60)
    yield pool
    pool.shutdown()


def _chunked_launch(executor, tmp_path):
    """A service-style launch: the spec's runs executed chunk by chunk."""
    spec = get_campaign_preset("campaign-smoke")
    store = CampaignStore(
        str(tmp_path / f"chunked-{next(_store_counter)}.jsonl"))
    chunk = service_chunk_size(executor.name, MAX_WORKERS)
    runs = spec.resolve()
    start = time.perf_counter()
    for lo in range(0, len(runs), chunk):
        run_campaign(spec, store, executor, runs=runs[lo:lo + chunk])
    wall = time.perf_counter() - start
    records = store.records()
    assert len(records) == N_RUNS
    assert all(record.completed for record in records), \
        [record.error for record in records]
    return store, wall


def test_warm_pool_chunked_throughput(benchmark, warm_pool, tmp_path):
    executor = WorkerPoolExecutor(max_workers=MAX_WORKERS, pool=warm_pool)
    store, _ = benchmark.pedantic(
        lambda: _chunked_launch(executor, tmp_path),
        iterations=1, rounds=3)

    benchmark.extra_info["executor"] = "workers"
    benchmark.extra_info["chunk_size"] = service_chunk_size(
        "workers", MAX_WORKERS)
    benchmark.extra_info["pool_respawns"] = warm_pool.stats()["respawns"]

    # the pool must have survived the whole benchmark without a respawn
    assert warm_pool.stats()["respawns"] == 0

    # determinism: same report as a serial sweep of the same spec
    reference_store = CampaignStore(
        str(tmp_path / f"serial-ref-{next(_store_counter)}.jsonl"))
    run_campaign(get_campaign_preset("campaign-smoke"), reference_store,
                 get_executor("serial"))
    assert aggregate(store.records()).deterministic_dict() == \
        aggregate(reference_store.records()).deterministic_dict()


def test_warm_pool_beats_fresh_pool_per_chunk(warm_pool, tmp_path):
    """Best-of-3 chunked walls: the warm pool's margin is the per-chunk
    spawn+import the process executor re-pays (robust even on one core,
    where neither backend gets real parallelism)."""
    workers_exec = WorkerPoolExecutor(max_workers=MAX_WORKERS,
                                      pool=warm_pool)
    process_exec = get_executor("process", max_workers=MAX_WORKERS)
    _chunked_launch(workers_exec, tmp_path)  # warmup, pipes already hot
    workers_wall = min(_chunked_launch(workers_exec, tmp_path)[1]
                       for _ in range(3))
    process_wall = min(_chunked_launch(process_exec, tmp_path)[1]
                       for _ in range(3))
    assert workers_wall < process_wall


def test_direct_execute_reuses_the_same_workers(warm_pool):
    """Two bare ``execute()`` calls land on the same worker pids — the
    whole point of the backend."""
    payloads = [run.payload()
                for run in get_campaign_preset("campaign-smoke").resolve()[:2]]
    executor = WorkerPoolExecutor(max_workers=MAX_WORKERS, pool=warm_pool)
    before = set(warm_pool.worker_pids())
    for _ in range(2):
        records = executor.execute(payloads, execute_run)
        assert all(record.completed for record in records)
    assert set(warm_pool.worker_pids()) == before
