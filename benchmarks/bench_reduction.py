"""Fig. 3(b) ablation — in-stream data reduction close to the producer.

Measures the cost of the producer-side reduction pipeline (particle
subsampling + precision cast) on a realistic per-step payload and reports
the bandwidth saving, i.e. by how much the per-node streaming requirement of
Fig. 6 would drop if the consumer tolerates the reduced data.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.perfmodel.streaming import PAPER_BYTES_PER_NODE
from repro.streaming.reduction import (ParticleSubsampleReducer, PrecisionReducer,
                                       ReductionPipeline)


def test_fig3b_reduction_pipeline(benchmark, rng):
    n_particles = 200_000
    variables = {
        "particles/electrons/position/x": rng.random(n_particles),
        "particles/electrons/position/y": rng.random(n_particles),
        "particles/electrons/position/z": rng.random(n_particles),
        "particles/electrons/momentum/x": rng.normal(size=n_particles),
        "particles/electrons/momentum/y": rng.normal(size=n_particles),
        "particles/electrons/momentum/z": rng.normal(size=n_particles),
        "particles/electrons/weighting": rng.uniform(1, 2, size=n_particles),
    }
    pipeline = ReductionPipeline([
        ParticleSubsampleReducer(0.25, rng=np.random.default_rng(0)),
        PrecisionReducer(np.float32),
    ])

    benchmark(lambda: pipeline.reduce_step(variables))

    factor = pipeline.reports[-1].factor
    benchmark.extra_info["reduction_factor"] = round(factor, 2)
    benchmark.extra_info["payload_mb"] = round(
        sum(v.nbytes for v in variables.values()) / 1e6, 1)
    benchmark.extra_info["fig6_bytes_per_node_after_reduction_gb"] = round(
        PAPER_BYTES_PER_NODE / factor / 1e9, 2)
    # subsample 4x * precision 2x => ~8x less bandwidth demand
    assert factor == pytest.approx(8.0, rel=0.05)
