"""Hot-path benchmark — fused bincount kernels vs the reference PIC step.

Times one full PIC step (gather → Boris push → Esirkepov deposit → field
solve) on the bench-tiny KHI problem with both kernel paths and asserts that
they stay numerically equivalent.  The standalone driver
``python -m repro.pic.hotpath`` measures the same thing and appends the
result to ``BENCH_pic_hotpath.json``; this pytest-benchmark variant slots
the comparison into ``pytest benchmarks/ --benchmark-only`` next to the
other ablations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.pic.hotpath import (BENCH_TINY_GRID, EQUIVALENCE_RTOL,
                               _bench_config, check_equivalence)
from repro.pic.khi import make_khi_simulation

KERNELS = ("reference", "fused")


@pytest.mark.parametrize("kernel", KERNELS)
def test_pic_step_cost(benchmark, kernel):
    simulation = make_khi_simulation(_bench_config(kernel))
    for _ in range(3):  # warmup: settle allocations and plan caches
        simulation.step()

    benchmark(simulation.step)

    benchmark.extra_info["kernel"] = kernel
    benchmark.extra_info["grid"] = "x".join(str(n) for n in BENCH_TINY_GRID)
    benchmark.extra_info["macro_particles"] = simulation.n_macro_particles


def test_fused_matches_reference():
    """The fused path must reproduce the reference fields and orbits."""
    error = check_equivalence(n_steps=10)
    assert np.isfinite(error)
    assert error < EQUIVALENCE_RTOL
