"""Fig. 2 / Fig. 7 — cost of the three model tasks and of one training pass.

Times the building blocks of the architecture at the benchmark (small)
configuration: the VAE compression/decompression path, the INN surrogate
(forward) and inversion (backward) passes, and one full training pass with
the five-term loss of Eq. (1).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mlcore.tensor import Tensor, no_grad
from repro.models import (ArtificialScientistModel, CombinedLoss, ModelConfig,
                          paper_config)


CFG = ModelConfig(n_input_points=128, encoder_channels=(16, 32, 64),
                  encoder_head_hidden=48, latent_dim=48,
                  decoder_grid=(2, 2, 2), decoder_channels=(16, 8, 6),
                  spectrum_dim=16, inn_blocks=4, inn_hidden=(48, 48))
BATCH = 8


def make_inputs(rng):
    clouds = Tensor(rng.normal(size=(BATCH, CFG.n_input_points, CFG.point_dim)))
    spectra = Tensor(rng.random((BATCH, CFG.spectrum_dim)))
    return clouds, spectra


def test_fig2b_vae_compression_pass(benchmark, rng):
    model = ArtificialScientistModel(CFG, rng=rng)
    clouds, _ = make_inputs(rng)

    def compress_decompress():
        with no_grad():
            return model.vae(clouds)[0]

    out = benchmark(compress_decompress)
    benchmark.extra_info["output_points"] = CFG.n_output_points
    assert out.shape == (BATCH, CFG.n_output_points, CFG.point_dim)


def test_fig2c_surrogate_forward_pass(benchmark, rng):
    model = ArtificialScientistModel(CFG, rng=rng)
    clouds, _ = make_inputs(rng)
    cloud_array = clouds.numpy()

    spectrum = benchmark(lambda: model.predict_radiation_from_particles(cloud_array))
    assert spectrum.shape == (BATCH, CFG.spectrum_dim)


def test_fig2a_inversion_backward_pass(benchmark, rng):
    model = ArtificialScientistModel(CFG, rng=rng)
    spectra = rng.random((BATCH, CFG.spectrum_dim))

    clouds = benchmark(lambda: model.predict_particles_from_radiation(spectra, n_samples=2))
    assert clouds.shape == (BATCH, 2, CFG.n_output_points, CFG.point_dim)


def test_fig7_full_training_pass(benchmark, rng):
    model = ArtificialScientistModel(CFG, rng=rng)
    loss = CombinedLoss()
    clouds, spectra = make_inputs(rng)

    def train_pass():
        model.zero_grad()
        total = loss(model(clouds, spectra), clouds, spectra)
        total.backward()
        return total.item()

    value = benchmark(train_pass)
    benchmark.extra_info["model_parameters"] = model.num_parameters()
    benchmark.extra_info["loss_terms"] = str({k: round(v, 3)
                                              for k, v in loss.last_terms.items()})
    assert value > 0


def test_fig7_paper_architecture_size(benchmark):
    """Instantiate the paper-sized architecture and report its parameter count."""
    def build():
        return ArtificialScientistModel(paper_config(), rng=np.random.default_rng(0))

    model = benchmark.pedantic(build, iterations=1, rounds=1)
    n_params = model.num_parameters()
    benchmark.extra_info["paper_model_parameters"] = n_params
    benchmark.extra_info["gradient_megabytes_fp64"] = round(n_params * 8 / 1e6, 1)
    # the paper states the model fits on a single GCD (64 GB): trivially true here
    assert n_params * 8 < 64e9
    assert n_params > 1e6
