"""Ablation — Esirkepov (charge-conserving) vs direct CIC current deposition.

PIConGPU uses the charge-conserving Esirkepov scheme; the direct CIC scatter
is cheaper but violates the continuity equation, which shows up as Gauss-law
errors over long runs.  This benchmark measures both costs and the
continuity residual of each scheme, at a small and a large particle count so
the per-particle scaling of the vectorised kernels is visible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import constants
from repro.pic.deposition import (deposit_charge_cic, deposit_current_cic,
                                  deposit_current_esirkepov)
from repro.pic.grid import GridConfig, YeeGrid


PARTICLE_COUNTS = (5000, 50000)


def setup_particles(rng, grid, n_particles):
    extent = np.asarray(grid.config.extent)
    dt = grid.config.courant_time_step()
    old = rng.uniform(0.1, 0.9, size=(n_particles, 3)) * extent
    velocities = rng.normal(scale=0.2, size=(n_particles, 3)) * constants.SPEED_OF_LIGHT
    new = old + velocities * dt
    weights = rng.uniform(0.5, 2.0, size=n_particles)
    return old, new, velocities, weights, dt


def continuity_residual(grid_config, old, new, weights, dt, scheme):
    grid = YeeGrid(grid_config)
    rho0, rho1 = YeeGrid(grid_config), YeeGrid(grid_config)
    charge = -constants.ELEMENTARY_CHARGE
    extent = np.asarray(grid_config.extent)
    deposit_charge_cic(rho0, old, charge, weights)
    deposit_charge_cic(rho1, np.mod(new, extent), charge, weights)
    if scheme == "esirkepov":
        deposit_current_esirkepov(grid, old, new, charge, weights, dt)
    else:
        velocities = (new - old) / dt
        deposit_current_cic(grid, np.mod(new, extent), velocities, charge, weights)
    residual = (rho1.rho - rho0.rho) / dt + grid.divergence_j()
    scale = np.max(np.abs((rho1.rho - rho0.rho) / dt)) + 1e-300
    return float(np.max(np.abs(residual)) / scale)


@pytest.mark.parametrize("n_particles", PARTICLE_COUNTS)
def test_deposition_esirkepov_cost(benchmark, rng, n_particles):
    grid_config = GridConfig(shape=(16, 16, 8), cell_size=(1e-5,) * 3)
    grid = YeeGrid(grid_config)
    old, new, velocities, weights, dt = setup_particles(rng, grid, n_particles)
    charge = -constants.ELEMENTARY_CHARGE

    benchmark(lambda: deposit_current_esirkepov(grid, old, new, charge, weights, dt))

    residual = continuity_residual(grid_config, old, new, weights, dt, "esirkepov")
    benchmark.extra_info["continuity_residual"] = f"{residual:.2e}"
    benchmark.extra_info["particles"] = n_particles
    assert residual < 1e-9


@pytest.mark.parametrize("n_particles", PARTICLE_COUNTS)
def test_deposition_cic_cost(benchmark, rng, n_particles):
    grid_config = GridConfig(shape=(16, 16, 8), cell_size=(1e-5,) * 3)
    grid = YeeGrid(grid_config)
    old, new, velocities, weights, dt = setup_particles(rng, grid, n_particles)
    charge = -constants.ELEMENTARY_CHARGE

    benchmark(lambda: deposit_current_cic(grid, new, velocities, charge, weights))

    residual = continuity_residual(grid_config, old, new, weights, dt, "cic")
    benchmark.extra_info["continuity_residual"] = f"{residual:.2e}"
    benchmark.extra_info["particles"] = n_particles
    # the direct scheme violates the continuity equation by orders of magnitude
    assert residual > 1e-6
