"""Fig. 3(c) — intra-node vs inter-node placement of producer and consumer.

The paper chooses the intra-node setup (4 GCDs for PIConGPU + 4 GCDs for the
MLapp on every node) so that the data exchange "mostly does not need to
leave the node".  This benchmark quantifies that choice: the per-node
exchange time of the paper's 5.86 GB/node/step payload under both placements
and the resource split each placement produces.
"""

from __future__ import annotations

import pytest

from repro.core.placement import PlacementMode, ResourcePlan
from repro.perfmodel.streaming import PAPER_BYTES_PER_NODE


def test_fig3c_placement_comparison(benchmark):
    def compare():
        intra = ResourcePlan(n_nodes=96, mode=PlacementMode.INTRA_NODE,
                             producer_gcds_per_node=4)
        inter = ResourcePlan(n_nodes=96, mode=PlacementMode.INTER_NODE,
                             consumer_node_fraction=0.5)
        return intra, inter

    intra, inter = benchmark(compare)

    intra_time = intra.exchange_time_per_step(PAPER_BYTES_PER_NODE)
    inter_time = inter.exchange_time_per_step(PAPER_BYTES_PER_NODE)
    benchmark.extra_info["intra_node_exchange_s"] = round(intra_time, 3)
    benchmark.extra_info["inter_node_exchange_s"] = round(inter_time, 3)
    benchmark.extra_info["intra_node_split"] = str(intra.describe())
    benchmark.extra_info["inter_node_split"] = str(inter.describe())

    # the intra-node placement moves data strictly faster per node
    assert intra_time < inter_time
    # and the paper's 4/4 GCD split leaves half the node to each application
    assert intra.total_producer_gcds == intra.total_consumer_gcds
    # inter-node placement dedicates whole nodes instead
    assert inter.producer_nodes + inter.consumer_nodes == 96
