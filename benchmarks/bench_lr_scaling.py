"""Table D / Section V-A1 — large-batch learning-rate scaling and block rates.

The scaling runs train with per-GCD batch 8, i.e. total batch sizes 256 to
3072 on 32 to 384 GCDs; learning rates follow the square-root rule from the
base rate l_base = 1e-6, and the VAE block trains at a rate higher by a
factor m_VAE than the INN block.  This benchmark regenerates that table and
demonstrates on a real (small) training problem that the square-root-scaled
rate trains at least as fast per epoch as the unscaled rate when the batch
grows.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mlcore.layers import Linear
from repro.mlcore.losses import mse_loss
from repro.mlcore.optim import (Adam, PAPER_BASE_LEARNING_RATE, make_block_param_groups,
                                sqrt_lr_scaling)
from repro.mlcore.tensor import Tensor
from repro.models import ArtificialScientistModel, ModelConfig


def test_tableD_sqrt_lr_scaling_table(benchmark):
    """The learning-rate table for the paper's GCD counts."""
    def build_table():
        rows = []
        for gcds in (32, 96, 192, 384):
            batch = 8 * gcds
            rows.append({
                "gcds": gcds,
                "global_batch": batch,
                "lr_inn": sqrt_lr_scaling(PAPER_BASE_LEARNING_RATE, batch, 8),
            })
        return rows

    rows = benchmark(build_table)
    for row in rows:
        benchmark.extra_info[f"batch_{row['global_batch']}_lr"] = f"{row['lr_inn']:.2e}"
    assert rows[0]["global_batch"] == 256 and rows[-1]["global_batch"] == 3072
    # sqrt rule: lr grows by sqrt(12) from 256 to 3072
    assert rows[-1]["lr_inn"] / rows[0]["lr_inn"] == pytest.approx(np.sqrt(12), rel=1e-6)


def test_tableD_block_learning_rates(benchmark):
    """Separate l_VAE / l_INN parameter groups (l_VAE = m_VAE * l_INN)."""
    config = ModelConfig(n_input_points=32, encoder_channels=(16, 32),
                         encoder_head_hidden=24, latent_dim=24,
                         decoder_grid=(2, 2, 2), decoder_channels=(8, 6),
                         spectrum_dim=8, inn_blocks=2, inn_hidden=(24,))
    model = ArtificialScientistModel(config, rng=np.random.default_rng(0))

    def build_groups():
        return make_block_param_groups(model.vae_parameters(), model.inn_parameters(),
                                       base_lr=PAPER_BASE_LEARNING_RATE, m_vae=10.0,
                                       batch_size=3072, base_batch_size=8)

    groups = benchmark(build_groups)
    benchmark.extra_info["lr_vae"] = f"{groups[0].lr:.2e}"
    benchmark.extra_info["lr_inn"] = f"{groups[1].lr:.2e}"
    assert groups[0].lr == pytest.approx(10.0 * groups[1].lr)
    assert groups[1].lr == pytest.approx(sqrt_lr_scaling(PAPER_BASE_LEARNING_RATE, 3072, 8))
    assert {g.name for g in groups} == {"vae", "inn"}


def test_tableD_sqrt_scaling_compensates_larger_batches(benchmark, rng):
    """Large batches with sqrt-scaled LR reach a comparable loss per epoch."""
    x = rng.normal(size=(512, 8))
    w_true = rng.normal(size=(8, 1))
    y = x @ w_true

    def train(batch_size, scale_lr):
        model = Linear(8, 1, bias=False, rng=np.random.default_rng(7))
        lr = 0.02 * np.sqrt(batch_size / 32) if scale_lr else 0.02
        opt = Adam(model.parameters(), lr=lr, weight_decay=0.0)
        order = np.random.default_rng(1).permutation(len(x))
        for epoch in range(3):
            for start in range(0, len(x), batch_size):
                idx = order[start:start + batch_size]
                opt.zero_grad()
                mse_loss(model(Tensor(x[idx])), Tensor(y[idx])).backward()
                opt.step()
        return mse_loss(model(Tensor(x)), Tensor(y)).item()

    def sweep():
        return {
            "small_batch": train(32, scale_lr=False),
            "large_batch_unscaled": train(256, scale_lr=False),
            "large_batch_sqrt_scaled": train(256, scale_lr=True),
        }

    losses = benchmark.pedantic(sweep, iterations=1, rounds=1)
    for key, value in losses.items():
        benchmark.extra_info[key] = f"{value:.4f}"
    # sqrt scaling recovers most of the small-batch progress that the
    # unscaled large-batch run loses
    assert losses["large_batch_sqrt_scaled"] <= losses["large_batch_unscaled"]
