"""Fig. 8 — weak scaling of the in-transit training from 8 to 96 nodes.

* the *measured* part times a real single-batch training iteration of the
  (small) model on this machine and verifies that simulated data-parallel
  replicas with gradient all-reduce stay in sync,
* the *modelled* part feeds the measured compute time into the DDP
  weak-scaling model and regenerates the efficiency curve, checking the
  paper's ~35 % efficiency at 96 nodes and that the all-reduce and the
  replicated MMD terms are the two dominant causes of the deficit.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import tiny_workflow_config
from repro.continual import TrainingBuffer, TrainingSample
from repro.continual.trainer import InTransitTrainer
from repro.mlcore.distributed import DistributedDataParallel, LocalCommunicator
from repro.mlcore.optim import Adam, make_block_param_groups
from repro.mlcore.tensor import Tensor
from repro.models import ArtificialScientistModel
from repro.models.losses import CombinedLoss
from repro.perfmodel.ddp import DDPWeakScalingModel


def _make_trainer(config, rng, n_rep=1):
    model = ArtificialScientistModel(config.ml.model, rng=rng)
    groups = make_block_param_groups(model.vae_parameters(), model.inn_parameters(),
                                     base_lr=1e-3, m_vae=1.0)
    trainer = InTransitTrainer(model, Adam(groups, lr=1e-3),
                               TrainingBuffer(rng=rng), n_rep=n_rep)
    return model, trainer


def _samples(config, rng, count=12):
    m = config.ml.model
    return [TrainingSample(point_cloud=rng.normal(size=(m.n_input_points, m.point_dim)),
                           spectrum=rng.random(m.spectrum_dim), step=i)
            for i in range(count)]


def test_fig8_measured_single_batch_time(benchmark, rng):
    """Time one real training iteration (the paper's 'single-batch time')."""
    config = tiny_workflow_config()
    model, trainer = _make_trainer(config, rng)
    trainer.buffer.add_many(_samples(config, rng))

    benchmark(lambda: trainer.train_iteration(step=0))

    gradient_bytes = sum(p.data.nbytes for p in model.parameters())
    benchmark.extra_info["gradient_bytes"] = gradient_bytes
    benchmark.extra_info["model_parameters"] = model.num_parameters()
    assert len(trainer.history) >= 1


def test_fig8_ddp_replicas_stay_in_sync(benchmark, rng):
    """Gradient-averaging across simulated ranks keeps the replicas identical."""
    config = tiny_workflow_config()
    world = 4
    replicas = [ArtificialScientistModel(config.ml.model, rng=np.random.default_rng(1))
                for _ in range(world)]
    comm = LocalCommunicator(world)
    ddp = DistributedDataParallel(replicas, comm)
    ddp.sync_parameters()
    loss = CombinedLoss()
    samples = _samples(config, rng, count=world * 2)
    m = config.ml.model

    def one_ddp_step():
        for rank, replica in enumerate(replicas):
            clouds = np.stack([samples[2 * rank + i].point_cloud for i in range(2)])
            spectra = np.stack([samples[2 * rank + i].spectrum for i in range(2)])
            replica.zero_grad()
            total = loss(replica(Tensor(clouds), Tensor(spectra)),
                         Tensor(clouds), Tensor(spectra))
            total.backward()
        ddp.sync_gradients()
        return comm.record.allreduce_bytes

    allreduce_bytes = benchmark.pedantic(one_ddp_step, iterations=1, rounds=2)
    benchmark.extra_info["allreduce_bytes_per_step"] = allreduce_bytes
    grads = [dict(r.named_parameters()) for r in replicas]
    names = list(grads[0])
    for name in names[:5]:
        np.testing.assert_allclose(grads[0][name].grad, grads[1][name].grad)


def test_fig8_weak_scaling_efficiency_curve(benchmark):
    """Regenerate the Fig. 8 efficiency curve from the calibrated model."""
    model = DDPWeakScalingModel.paper_calibrated()

    points = benchmark(lambda: model.scan((8, 24, 48, 96)))

    for point in points:
        benchmark.extra_info[f"nodes_{point.n_nodes}_efficiency_pct"] = \
            round(100 * point.efficiency, 1)
        benchmark.extra_info[f"nodes_{point.n_nodes}_global_batch"] = \
            point.global_batch_size

    efficiencies = [p.efficiency for p in points]
    # the paper's curve: 100 % at 8 nodes dropping to ~35 % at 96 nodes
    assert efficiencies[0] == pytest.approx(1.0)
    assert all(a > b for a, b in zip(efficiencies[:-1], efficiencies[1:]))
    assert efficiencies[-1] == pytest.approx(0.35, abs=0.05)
    # global batch sizes 256 -> 3072 (32 -> 384 GCDs at 8 per GCD)
    assert points[0].global_batch_size == 256
    assert points[-1].global_batch_size == 3072
    # both causes named in the paper contribute to the deficit
    attribution = model.deficit_attribution(96)
    benchmark.extra_info["deficit_from_allreduce_pct"] = round(100 * attribution["allreduce"], 1)
    benchmark.extra_info["deficit_from_mmd_pct"] = round(100 * attribution["mmd"], 1)
    assert attribution["allreduce"] > 0.1
    assert attribution["mmd"] > 0.3
