#!/usr/bin/env python
"""Streaming benchmarks: a real in-memory run and the Fig. 6 scaling study.

Part 1 runs the *real* producer → no-op consumer pipeline in memory (the
same synthetic benchmark the paper uses, at laptop scale) and reports its
throughput.

Part 2 regenerates the full-Frontier weak-scaling study of Fig. 6 from the
calibrated data-plane models: libfabric vs MPI data planes, batched vs
all-at-once read enqueueing, 4096 to 9126 nodes at 5.86 GB per node and
step, compared against the Orion filesystem and the node-local SSDs.

Run with::

    python examples/streaming_throughput.py
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.streaming import StreamingScalingStudy
from repro.pic.khi import KHIConfig, make_khi_simulation
from repro.streaming import (NoOpConsumer, SSTBroker, SSTReaderEngine, SSTWriterEngine,
                             measure_stream_throughput)


def real_inmemory_benchmark(n_steps: int = 5) -> None:
    """Stream real KHI particle data to a no-op consumer, in memory."""
    config = KHIConfig(grid_shape=(16, 32, 2), particles_per_cell=4, seed=5)
    simulation = make_khi_simulation(config)
    electrons = simulation.get_species("electrons")

    broker = SSTBroker("khi-particles", queue_limit=2)
    writer = SSTWriterEngine(broker)
    reader = SSTReaderEngine(broker)
    consumer = NoOpConsumer(reader=reader)

    bytes_per_step = electrons.phase_space().nbytes + electrons.weights.nbytes
    for _ in range(n_steps):
        simulation.step()
        writer.begin_step()
        writer.put("particles/phase_space", electrons.phase_space())
        writer.put("particles/weighting", electrons.weights)
        writer.end_step()
        consumer.run(max_steps=1)
    writer.close()

    result = measure_stream_throughput(consumer.step_times, n_nodes=1,
                                       bytes_per_node=bytes_per_step,
                                       data_plane="inmemory")
    print("--- part 1: real in-memory stream (this machine) -----------------")
    print(f"macro-particles          : {electrons.n_macro}")
    print(f"payload per step         : {bytes_per_step / 1e6:.2f} MB")
    print(f"median in-memory load    : {np.median(consumer.step_times) * 1e3:.2f} ms/step")
    print(f"median throughput        : {result.median_throughput / 1e9:.2f} GB/s")


def fig6_scaling_study() -> None:
    print("\n--- part 2: Fig. 6 full-Frontier study (calibrated model) --------")
    study = StreamingScalingStudy()
    header = (f"{'data plane':>16} {'strategy':>12} {'nodes':>6} "
              f"{'TB/s':>7} {'GB/s/node':>10} {'step [s]':>9}")
    print(header)
    for row in study.rows():
        tbs = row["parallel_tb_per_s"]
        per_node = row["per_node_gb_per_s"]
        step = row["step_time_s"]
        print(f"{row['data_plane']:>16} {row['strategy']:>12} {row['nodes']:>6} "
              f"{'—' if tbs is None else f'{tbs:7.1f}'} "
              f"{'—' if per_node is None else f'{per_node:10.2f}'} "
              f"{'—' if step is None else f'{step:9.2f}'}")
    print("\nKey observations reproduced from the paper: the MPI data plane "
          "delivers the best full-scale parallel throughput (20–30 TB/s), the "
          "libfabric all-at-once strategy is fastest at 4096 nodes but does not "
          "scale to the full system, and either plane beats the 10 TB/s Orion "
          "filesystem.")


def main() -> None:
    real_inmemory_benchmark()
    fig6_scaling_study()


if __name__ == "__main__":
    main()
