#!/usr/bin/env python
"""A sharded campaign with cross-campaign result caching.

Runs the same learning-rate sweep twice, the way a scaled-out study would:

1. a **sharded** launch — the resolved runs are hash-routed across 3 named
   shards, each delegated to its own serial inner executor, and every
   completed result lands in a content-addressed cache;
2. a second campaign (different name, different store, same resolved runs)
   against the warm cache — every run is served without executing anything,
   proving the cache is keyed by run content, not by campaign.

Both launches aggregate to the identical deterministic report.

Run with::

    python examples/sharded_cached_campaign.py [work-dir]
"""

from __future__ import annotations

import os
import sys

from repro.campaign import (CampaignSpec, CampaignStore, ResultCache,
                            aggregate, get_executor, run_campaign)


def sweep_spec(name: str) -> CampaignSpec:
    return CampaignSpec(
        name=name,
        base_preset="bench-tiny",
        parameters={"ml.base_learning_rate": [1e-3, 5e-4, 1e-4]},
        repetitions=2,        # 2 derived seeds per learning rate = 6 runs
        n_steps=3,
        seed=41,
        routing={"shards": 3, "route": "hash", "inner": "serial"},
    )


def main() -> None:
    work_dir = sys.argv[1] if len(sys.argv) > 1 else "."
    cache = ResultCache(os.path.join(work_dir, "campaign-cache"))

    spec = sweep_spec("lr-sweep-sharded")
    executor = get_executor("sharded", **spec.routing)
    store = CampaignStore(os.path.join(work_dir, f"{spec.name}.jsonl"))
    print(f"campaign {spec.name!r}: {len(spec.resolve())} runs across "
          f"{spec.routing['shards']} shards")
    outcome = run_campaign(spec, store, executor, cache=cache)
    print(f"  shard sizes : {executor.shard_sizes}")
    print(f"  executed {outcome.executed}, cache hits {outcome.cache_hits}, "
          f"failed {outcome.failed}\n")

    # a differently-named campaign over the same resolved runs: everything
    # is served from the cache, nothing executes
    rerun = sweep_spec("lr-sweep-replayed")
    rerun_store = CampaignStore(os.path.join(work_dir, f"{rerun.name}.jsonl"))
    print(f"campaign {rerun.name!r}: same runs, warm cache")
    replay = run_campaign(rerun, rerun_store, get_executor("serial"),
                          cache=cache)
    print(f"  executed {replay.executed}, cache hits {replay.cache_hits} "
          f"({100 * replay.cache_hits // max(1, len(replay.records))}%)\n")

    first = aggregate(store.records(), campaign="sweep")
    second = aggregate(rerun_store.records(), campaign="sweep")
    assert first.deterministic_dict() == second.deterministic_dict()
    print(second.format_text())


if __name__ == "__main__":
    main()
