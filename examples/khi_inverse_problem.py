#!/usr/bin/env python
"""The KHI inverse problem: train in transit, then invert radiation spectra.

This is the scientific scenario of the paper (Fig. 9): after training on the
streamed KHI data, the INN's backward pass maps observed radiation spectra
back to local particle momentum distributions.  The script

1. runs the coupled workflow for a number of steps,
2. evaluates the inversion per plasma region (bulk approaching / receding /
   vortex),
3. prints a Fig. 9-style comparison table (true vs predicted momentum peaks,
   histogram distance, two-population detection in the vortex region) and
   the latent-regime-classifier accuracy.

Run with::

    python examples/khi_inverse_problem.py [n_steps]
"""

from __future__ import annotations

import sys

from repro.core import MLConfig, StreamingConfig, WorkflowConfig
from repro.models.config import ModelConfig
from repro.pic.khi import KHIConfig
from repro.workflow import WorkflowBuilder


def build_config() -> WorkflowConfig:
    model = ModelConfig(n_input_points=96, encoder_channels=(16, 32, 64),
                        encoder_head_hidden=48, latent_dim=48,
                        decoder_grid=(2, 2, 2), decoder_channels=(16, 8, 6),
                        spectrum_dim=24, inn_blocks=3, inn_hidden=(48, 48))
    return WorkflowConfig(
        khi=KHIConfig(grid_shape=(12, 24, 2), particles_per_cell=6, seed=3),
        ml=MLConfig(model=model, n_rep=4, base_learning_rate=2e-3),
        streaming=StreamingConfig(queue_limit=2),
        region_counts=(1, 6, 1),
        n_detector_directions=3,
        n_detector_frequencies=8,
        seed=7,
    )


def main() -> None:
    n_steps = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    session = WorkflowBuilder().config(build_config()).driver("serial").build()
    print(f"running {n_steps} coupled steps (simulation + in-transit training) ...")
    report = session.run(n_steps, keep_for_evaluation=2).raise_if_failed().report
    print(f"streamed {report.samples_streamed} samples "
          f"({report.streamed_megabytes:.1f} MB), "
          f"{report.training_iterations} training iterations, "
          f"final loss {report.final_losses.get('total', float('nan')):.3f}")

    print("\nevaluating the inversion (radiation -> momentum distribution) ...")
    evaluation = session.evaluate(n_posterior_samples=4)

    header = (f"{'region':>12} {'n':>4} {'true peak':>10} {'pred peak':>10} "
              f"{'peak err':>9} {'hist L1':>8} {'2 pops (true/pred)':>20}")
    print("\n--- Fig. 9-style comparison ------------------------------------")
    print(header)
    for row in evaluation.rows():
        print(f"{row['region']:>12} {row['n_samples']:>4} {row['true_peak']:>10.3f} "
              f"{row['predicted_peak']:>10.3f} {row['peak_error']:>9.3f} "
              f"{row['histogram_l1']:>8.3f} "
              f"{str(row['two_populations_true']):>9}/{str(row['two_populations_predicted']):<9}")

    summary = evaluation.summary()
    print("\nsurrogate spectrum MSE      :", round(summary["surrogate_spectrum_mse"], 5))
    print("latent regime classifier acc:", round(summary["latent_classifier_accuracy"], 3))
    print("\nInterpretation: as in the paper, identifying the region of origin "
          "(approaching / receding / vortex) from the predicted momentum "
          "distribution is the primary success criterion; exact momenta of the "
          "vortex population are the hard part.")


if __name__ == "__main__":
    main()
