#!/usr/bin/env python
"""Quickstart: run the Artificial Scientist end to end at laptop scale.

Builds the coupled workflow of the paper — a Kelvin-Helmholtz PIC simulation
streaming per-sub-volume particle point clouds and radiation spectra through
an in-memory (SST-style) stream into the MLapp, which trains the VAE+INN in
transit with experience replay — and runs it for a handful of steps.

The assembly uses the composable :mod:`repro.workflow` API: a named preset
supplies the configuration, the builder wires the stream, and an execution
driver (serial here; try ``"threaded"`` or ``"pipelined"``) owns the run
schedule.  Lifecycle hooks observe the run without touching any component.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.workflow import WorkflowBuilder


def main() -> None:
    session = (
        WorkflowBuilder()
        .preset("laptop")
        .driver("serial")
        .on_step(lambda _session, index: print(f"  simulation step {index} done"))
        .on_iteration_consumed(
            lambda _session, consumer, index, n:
            print(f"  {consumer} trained on iteration {index} ({n} samples)"))
        .build()
    )

    print("running the coupled simulation + in-transit training ...")
    result = session.run(5)
    result.raise_if_failed()

    print("\n--- workflow report -------------------------------------------")
    for key, value in result.report.summary().items():
        print(f"{key:>24}: {value}")

    print("\n--- loss terms (mean over the last iterations) -----------------")
    for name, value in session.mlapp.loss_summary().items():
        print(f"{name:>24}: {value:.4f}")

    print("\nNo simulation data was written to disk: everything stayed in memory "
          "and was discarded after training, as in the paper's in-transit workflow.")


if __name__ == "__main__":
    main()
