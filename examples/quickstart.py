#!/usr/bin/env python
"""Quickstart: run the Artificial Scientist end to end at laptop scale.

Builds the coupled workflow of the paper — a Kelvin-Helmholtz PIC simulation
streaming per-sub-volume particle point clouds and radiation spectra through
an in-memory (SST-style) stream into the MLapp, which trains the VAE+INN in
transit with experience replay — and runs it for a handful of steps.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import ArtificialScientist, MLConfig, StreamingConfig, WorkflowConfig
from repro.models.config import ModelConfig
from repro.pic.khi import KHIConfig


def main() -> None:
    config = WorkflowConfig(
        khi=KHIConfig(grid_shape=(8, 16, 2), particles_per_cell=4, seed=1),
        ml=MLConfig(
            model=ModelConfig(n_input_points=64, encoder_channels=(16, 32),
                              encoder_head_hidden=32, latent_dim=32,
                              decoder_grid=(2, 2, 2), decoder_channels=(8, 6),
                              spectrum_dim=16, inn_blocks=2, inn_hidden=(32,)),
            n_rep=2, base_learning_rate=1e-3),
        streaming=StreamingConfig(queue_limit=2),
        region_counts=(1, 4, 1),
        n_detector_directions=2,
        n_detector_frequencies=8,
        seed=42,
    )

    scientist = ArtificialScientist(config)
    print("running the coupled simulation + in-transit training ...")
    report = scientist.run(n_steps=5)

    print("\n--- workflow report -------------------------------------------")
    for key, value in report.summary().items():
        print(f"{key:>24}: {value}")

    print("\n--- loss terms (mean over the last iterations) -----------------")
    for name, value in scientist.mlapp.loss_summary().items():
        print(f"{name:>24}: {value:.4f}")

    print("\nNo simulation data was written to disk: everything stayed in memory "
          "and was discarded after training, as in the paper's in-transit workflow.")


if __name__ == "__main__":
    main()
