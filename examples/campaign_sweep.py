#!/usr/bin/env python
"""A parameter-sweep campaign: many coupled runs from one declarative spec.

The Artificial Scientist pays off when the simulation + in-transit-learning
loop runs across many physics scenarios.  This example declares a small
learning-rate sweep with a 2-member seed ensemble per point, executes it
with the thread-pool executor, persists every run to an append-only JSONL
store — re-running the script skips completed runs — and prints the
aggregated campaign report with the best run.

Run with::

    python examples/campaign_sweep.py [store.jsonl]
"""

from __future__ import annotations

import sys

from repro.campaign import (CampaignSpec, CampaignStore, aggregate,
                            get_executor, run_campaign)


def main() -> None:
    store_path = sys.argv[1] if len(sys.argv) > 1 else "sweep.campaign.jsonl"
    spec = CampaignSpec(
        name="lr-sweep",
        base_preset="bench-tiny",
        parameters={"ml.base_learning_rate": [1e-3, 5e-4, 1e-4]},
        repetitions=2,        # 2 derived seeds per learning rate = 6 runs
        n_steps=3,
        seed=41,
    )
    store = CampaignStore(store_path)

    print(f"campaign {spec.name!r}: {len(spec.resolve())} runs "
          f"({len(store.completed_run_ids())} already in {store_path})")
    outcome = run_campaign(
        spec, store, get_executor("thread", max_workers=3),
        on_record=lambda r: print(f"  [{r.run_id}] {r.status} "
                                  f"in {r.elapsed_s:.2f} s"))
    print(f"skipped {outcome.skipped}, executed {outcome.executed}, "
          f"failed {outcome.failed}\n")
    print(aggregate(store.records(), campaign=spec.name).format_text())


if __name__ == "__main__":
    main()
