#!/usr/bin/env python
"""Far-field radiation and the Doppler signature of approaching/receding flows.

The paper highlights that the trained network "learned a fundamental aspect
of special relativity: the Doppler shift, to distinguish between plasma
streams approaching and receding from the detector".  This example shows the
physical origin of that signature directly with the radiation substrate:

* an oscillating charge drifting *towards* the detector radiates at an
  up-shifted frequency,
* the same charge drifting *away* radiates at a down-shifted frequency,
* a KHI snapshot's bulk regions therefore produce distinguishable spectra.

Run with::

    python examples/radiation_doppler.py
"""

from __future__ import annotations

import numpy as np

from repro import constants
from repro.core.transforms import RegionPartition, make_training_samples
from repro.pic.khi import KHIConfig, make_khi_simulation
from repro.radiation.detector import RadiationDetector, frequency_grid
from repro.radiation.lienard_wiechert import accumulate_amplitude
from repro.radiation.spectrum import spectrum_from_amplitude


def oscillator_spectrum(drift_beta: float, omega0: float, detector: RadiationDetector,
                        n_steps: int = 3000) -> np.ndarray:
    """Spectrum of a charge oscillating at omega0 while drifting along +x."""
    dt = 2 * np.pi / omega0 / 200.0
    amplitude = None
    for step in range(n_steps):
        t = step * dt
        beta_z = 0.05 * np.cos(omega0 * t)
        beta_dot_z = -0.05 * omega0 * np.sin(omega0 * t)
        position = np.array([[drift_beta * constants.SPEED_OF_LIGHT * t, 0.0, 0.0]])
        amplitude = accumulate_amplitude(
            amplitude, detector, position,
            np.array([[drift_beta, 0.0, beta_z]]),
            np.array([[0.0, 0.0, beta_dot_z]]),
            np.ones(1), time=t, dt=dt)
    return spectrum_from_amplitude(amplitude, constants.ELEMENTARY_CHARGE)


def single_particle_doppler() -> None:
    omega0 = 1.0e14
    detector = RadiationDetector(
        directions=np.array([[1.0, 0.0, 0.0]]),
        frequencies=frequency_grid(81, omega_max=3 * omega0, omega_min=omega0 / 3))
    print("--- single oscillating charge, detector along +x ------------------")
    print(f"{'drift beta':>12} {'peak / omega0':>14} {'expected':>10}")
    for drift in (+0.2, 0.0, -0.2):
        spectrum = oscillator_spectrum(drift, omega0, detector)
        peak = detector.frequencies[np.argmax(spectrum[0])] / omega0
        expected = 1.0 / (1.0 - drift)
        print(f"{drift:>12.2f} {peak:>14.3f} {expected:>10.3f}")


def khi_region_spectra() -> None:
    print("\n--- KHI sub-volumes: who radiates at higher frequencies? ----------")
    config = KHIConfig(grid_shape=(8, 16, 2), particles_per_cell=4, seed=11)
    simulation = make_khi_simulation(config)
    electrons = simulation.get_species("electrons")
    previous = electrons.momenta.copy()
    for _ in range(3):
        simulation.step()
    detector = RadiationDetector.for_khi(density=config.density, n_directions=1,
                                         n_frequencies=32)
    partition = RegionPartition(config.grid_config, (1, 4, 1))
    samples = make_training_samples(electrons, previous, detector, partition,
                                    n_points=128, step=simulation.step_index,
                                    time=simulation.time, dt=simulation.config.dt,
                                    rng=np.random.default_rng(0))
    print(f"{'region':>12} {'spectral centroid (bin index)':>32}")
    for sample in samples:
        weights = sample.spectrum + 1e-9
        centroid = float(np.sum(np.arange(weights.size) * weights) / weights.sum())
        print(f"{sample.region:>12} {centroid:>32.2f}")
    print("\nApproaching regions concentrate spectral weight at higher "
          "frequencies than receding ones — the signature the INN exploits "
          "for the inversion.")


def main() -> None:
    single_particle_doppler()
    khi_region_spectra()


if __name__ == "__main__":
    main()
