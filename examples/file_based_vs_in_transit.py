#!/usr/bin/env python
"""File-based workflow vs the in-transit workflow.

The paper's central argument is that the classical "write to the parallel
filesystem, analyse offline" workflow cannot keep up with the data rates of
a full-scale PIC simulation, while streaming the data in transit removes the
filesystem from the critical path entirely.  This example runs *both*
workflows on the same (small) simulation:

* file-based: every streamed step is written to disk (openPMD JSON backend),
  then read back and used for training,
* in-transit: the same data goes through the in-memory SST-style stream.

It reports the bytes written to disk, the wall time of both variants and the
projected per-node filesystem bandwidth a full-scale run would need.

Run with::

    python examples/file_based_vs_in_transit.py
"""

from __future__ import annotations

import os
import tempfile
import time

from repro.core import (MLConfig, RegionPartition, StreamingConfig,
                        StreamingProducerPlugin, WorkflowConfig)
from repro.core.mlapp import MLApp
from repro.workflow import WorkflowBuilder
from repro.models.config import ModelConfig
from repro.openpmd import Access, JSONBackend, Series
from repro.perfmodel.machines import FRONTIER
from repro.perfmodel.streaming import PAPER_BYTES_PER_NODE
from repro.pic.khi import KHIConfig, make_khi_simulation
from repro.radiation.detector import RadiationDetector


def workflow_config() -> WorkflowConfig:
    model = ModelConfig(n_input_points=48, encoder_channels=(16, 32),
                        encoder_head_hidden=32, latent_dim=32,
                        decoder_grid=(2, 2, 2), decoder_channels=(8, 6),
                        spectrum_dim=16, inn_blocks=2, inn_hidden=(32,))
    return WorkflowConfig(
        khi=KHIConfig(grid_shape=(8, 16, 2), particles_per_cell=4, seed=21),
        ml=MLConfig(model=model, n_rep=2, base_learning_rate=1e-3),
        streaming=StreamingConfig(queue_limit=2),
        region_counts=(1, 4, 1), n_detector_directions=2, n_detector_frequencies=8,
        seed=31)


def run_file_based(config: WorkflowConfig, n_steps: int, directory: str) -> dict:
    """Produce to disk first, then train from the files (offline workflow)."""
    start = time.perf_counter()
    backend = JSONBackend(directory)
    writer = Series("khi", Access.CREATE, backend)
    simulation = make_khi_simulation(config.khi)
    detector = RadiationDetector.for_khi(density=config.khi.density,
                                         n_directions=config.n_detector_directions,
                                         n_frequencies=config.n_detector_frequencies)
    partition = RegionPartition(config.khi.grid_config, config.region_counts)
    simulation.add_plugin(StreamingProducerPlugin(writer, detector, partition,
                                                  n_points=config.n_points_per_sample))
    simulation.run(n_steps)
    produce_time = time.perf_counter() - start

    bytes_on_disk = sum(os.path.getsize(os.path.join(directory, f))
                        for f in os.listdir(directory))

    start = time.perf_counter()
    mlapp = MLApp(Series("khi", Access.READ_LINEAR, JSONBackend(directory)), config.ml)
    mlapp.consume()
    train_time = time.perf_counter() - start
    return {"produce_s": produce_time, "train_s": train_time,
            "total_s": produce_time + train_time, "disk_bytes": bytes_on_disk,
            "training_iterations": len(mlapp.history)}


def run_in_transit(config: WorkflowConfig, n_steps: int) -> dict:
    session = WorkflowBuilder().config(config).driver("serial").build()
    report = session.run(n_steps).raise_if_failed().report
    return {"total_s": report.wall_time, "disk_bytes": 0,
            "training_iterations": report.training_iterations,
            "streamed_bytes": report.bytes_streamed}


def main() -> None:
    n_steps = 5
    config = workflow_config()

    with tempfile.TemporaryDirectory() as directory:
        file_based = run_file_based(workflow_config(), n_steps, directory)
    in_transit = run_in_transit(config, n_steps)

    print("--- file-based (classical) workflow -------------------------------")
    print(f"wall time             : {file_based['total_s']:.2f} s "
          f"(produce {file_based['produce_s']:.2f} + train {file_based['train_s']:.2f})")
    print(f"bytes written to disk : {file_based['disk_bytes'] / 1e6:.2f} MB")
    print(f"training iterations   : {file_based['training_iterations']}")

    print("\n--- in-transit workflow --------------------------------------------")
    print(f"wall time             : {in_transit['total_s']:.2f} s")
    print(f"bytes written to disk : {in_transit['disk_bytes']} B")
    print(f"bytes kept in memory  : {in_transit['streamed_bytes'] / 1e6:.2f} MB")
    print(f"training iterations   : {in_transit['training_iterations']}")

    print("\n--- why this matters at scale ---------------------------------------")
    per_node_share = FRONTIER.filesystem_bandwidth_per_node()
    write_time = PAPER_BYTES_PER_NODE / per_node_share
    print(f"Frontier per-node share of the 10 TB/s Orion filesystem: "
          f"{per_node_share / 1e9:.2f} GB/s")
    print(f"writing the paper's 5.86 GB/node/step through the filesystem would "
          f"take {write_time:.1f} s per step,")
    print("while the measured in-transit streaming moves it in 1.2-3.2 s and "
          "leaves the filesystem untouched.")


if __name__ == "__main__":
    main()
