#!/usr/bin/env python
"""Fan-out: two consumer applications attached to one simulation stream.

The paper's loose coupling means the producer never knows who reads the
stream — any number of consumer applications can attach to the
openPMD-over-SST stream independently.  This example demonstrates that with
the :mod:`repro.workflow` API:

* the **MLapp** trains the VAE+INN in transit (the primary consumer),
* a **histogram monitor** watches the same stream and accumulates momentum
  histograms and mean spectra — a live diagnostic that costs the producer
  nothing and shares no code with the trainer.

Both consumers get every step through their own bounded queue; the
pipelined driver overlaps the simulation with both of them while limiting
how far the simulation may run ahead of the slowest consumer.

Run with::

    python examples/multi_consumer_fanout.py [n_steps]
"""

from __future__ import annotations

import sys

from repro.workflow import WorkflowBuilder


def main() -> None:
    n_steps = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    session = (
        WorkflowBuilder()
        .preset("cli-small")
        .driver("pipelined", max_in_flight=3)
        .add_consumer("monitor", kind="histogram-monitor")
        .build()
    )

    print(f"running {n_steps} steps with consumers: "
          f"{', '.join(session.consumers)} ...")
    result = session.run(n_steps)
    result.raise_if_failed()

    print("\n--- workflow report (driver: pipelined) ------------------------")
    for key, value in result.report.summary().items():
        print(f"{key:>24}: {value}")
    print(f"{'max queue depth':>24}: {result.max_queue_depth}")
    print(f"{'queue depth timeline':>24}: {result.queue_depth_samples}")

    monitor = result.consumer_summaries["monitor"]
    print("\n--- histogram monitor (second consumer) ------------------------")
    print(f"iterations consumed     : {monitor['iterations_consumed']}")
    print(f"samples consumed        : {monitor['samples_consumed']}")
    print(f"momentum histogram      : {monitor['momentum_histogram']}")
    print(f"mean spectrum peak      : {monitor['mean_spectrum_peak']:.4f}")

    mlapp = result.consumer_summaries["mlapp"]
    print("\n--- MLapp (primary consumer) -----------------------------------")
    print(f"training iterations     : {mlapp['training_iterations']}")
    print(f"final total loss        : {mlapp['final_losses'].get('total'):.3f}")

    print("\nBoth consumers saw every streamed iteration without the producer "
          "or each other knowing: the stream is the only coupling.")


if __name__ == "__main__":
    main()
