"""Tests of the Frontier-scale performance models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.perfmodel import (DDPWeakScalingModel, FOMScalingModel, FRONTIER,
                             StreamingScalingStudy, SUMMIT)


class TestMachines:
    def test_frontier_structure(self):
        assert FRONTIER.gcds_per_node == 8
        assert FRONTIER.total_gpus == 9408 * 4
        assert FRONTIER.node_injection_bandwidth == pytest.approx(100e9)

    def test_filesystem_share_per_node_is_small(self):
        """The introduction's argument: per-node filesystem share is ~GB/s."""
        share = FRONTIER.filesystem_bandwidth_per_node()
        assert share < 2e9
        assert share < FRONTIER.nic_bandwidth / 10

    def test_summit_smaller_than_frontier(self):
        assert SUMMIT.total_gpus < FRONTIER.total_gpus


class TestFOMModel:
    def test_frontier_calibration_hits_paper_value(self):
        model = FOMScalingModel.frontier_calibrated()
        fom = model.fom(36_864)
        assert fom / 1e12 == pytest.approx(65.3, rel=0.01)

    def test_summit_calibration_hits_paper_value(self):
        model = FOMScalingModel.summit_calibrated()
        assert model.fom(27_648) / 1e12 == pytest.approx(14.7, rel=0.01)

    def test_frontier_beats_summit_by_the_paper_factor(self):
        frontier = FOMScalingModel.frontier_calibrated()
        summit = FOMScalingModel.summit_calibrated()
        ratio = frontier.fom(36_864) / summit.fom(27_648)
        assert ratio == pytest.approx(65.3 / 14.7, rel=0.02)

    def test_weak_scaling_nearly_linear(self):
        model = FOMScalingModel.frontier_calibrated()
        points = model.scan(model.paper_gpu_counts())
        foms = np.array([p.fom_updates_per_second for p in points])
        gpus = np.array([p.n_gpus for p in points])
        per_gpu = foms / gpus
        # weak scaling: per-GPU FOM degrades by less than 10% across the range
        assert per_gpu.min() > 0.9 * per_gpu.max()
        assert all(p.efficiency <= 1.0 for p in points)

    def test_scan_covers_paper_range(self):
        counts = FOMScalingModel.paper_gpu_counts()
        assert counts[0] == 24
        assert counts[-1] == 36_864

    def test_paper_runtime_claim_1000_steps_in_minutes(self):
        """Sanity check of '1000 time steps completed in 6.5 minutes'."""
        model = FOMScalingModel.frontier_calibrated()
        particles_per_gpu = 2.7e13 / 36_864
        cells_per_gpu = 1e12 / 36_864
        seconds = 1000 * model.time_per_step(particles_per_gpu, cells_per_gpu, 36_864)
        assert 2 * 60 < seconds < 20 * 60

    def test_invalid_gpu_count(self):
        with pytest.raises(ValueError):
            FOMScalingModel().efficiency(0)


class TestStreamingStudy:
    def test_full_study_reproduces_fig6_shape(self):
        study = StreamingScalingStudy()
        points = study.run()
        by_key = {(p.data_plane, p.enqueue_strategy, p.n_nodes): p for p in points}

        # MPI at full scale is the best supported parallel throughput (20-30 TB/s)
        mpi_full = by_key[("mpi", "batched", 9126)]
        assert 20.0 <= mpi_full.terabytes_per_second <= 30.0

        # libfabric batched at full scale reaches ~16-23 TB/s
        lf_full = by_key[("libfabric", "batched", 9126)]
        assert 15.0 <= lf_full.terabytes_per_second <= 24.0
        assert mpi_full.terabytes_per_second > lf_full.terabytes_per_second

        # the all-at-once strategy is fastest at 4096 nodes but fails at full scale
        lf_4096_fast = by_key[("libfabric", "all_at_once", 4096)]
        lf_4096_batched = by_key[("libfabric", "batched", 4096)]
        assert lf_4096_fast.terabytes_per_second > lf_4096_batched.terabytes_per_second
        assert not by_key[("libfabric", "all_at_once", 9126)].supported

        # streaming beats the Orion filesystem's 10 TB/s at full scale
        assert mpi_full.terabytes_per_second > study.filesystem_throughput() / 1e12

    def test_step_times_in_paper_range(self):
        """Regular measurements range between 1.2 s and 3.2 s (Section IV-B)."""
        study = StreamingScalingStudy()
        for point in study.run(planes=("mpi", "libfabric"), include_all_at_once=False):
            assert point.result is not None
            times = np.asarray(point.result.step_times)
            assert np.all(times > 1.0) and np.all(times < 3.6)

    def test_rows_include_filesystem_comparison(self):
        study = StreamingScalingStudy(node_counts=(4096,), n_steps=2)
        rows = study.rows()
        names = {row["data_plane"] for row in rows}
        assert {"mpi", "libfabric", "orion-filesystem", "node-local-ssd"} <= names

    def test_unsupported_case_reported(self):
        study = StreamingScalingStudy(node_counts=(9126,), n_steps=1)
        point = study.run_case("libfabric", 9126, "all_at_once")
        assert not point.supported
        assert point.terabytes_per_second is None


class TestDDPModel:
    def test_efficiency_at_96_nodes_matches_paper(self):
        model = DDPWeakScalingModel.paper_calibrated()
        efficiency = model.efficiency(96)
        assert efficiency == pytest.approx(0.35, abs=0.05)

    def test_efficiency_monotonically_decreasing(self):
        model = DDPWeakScalingModel.paper_calibrated()
        effs = [p.efficiency for p in model.scan((8, 24, 48, 96))]
        assert effs[0] == pytest.approx(1.0)
        assert all(a > b for a, b in zip(effs[:-1], effs[1:]))

    def test_global_batch_sizes_match_paper(self):
        """32 to 384 GCDs at batch 8 per GCD give total batches 256 to 3072."""
        model = DDPWeakScalingModel.paper_calibrated()
        points = model.scan((8, 96))
        assert points[0].n_gcds == 32 and points[0].global_batch_size == 256
        assert points[1].n_gcds == 384 and points[1].global_batch_size == 3072

    def test_deficit_attribution_includes_both_causes(self):
        model = DDPWeakScalingModel.paper_calibrated()
        attribution = model.deficit_attribution(96)
        assert attribution["allreduce"] > 0.1
        assert attribution["mmd"] > 0.3
        assert attribution["allreduce"] + attribution["mmd"] == pytest.approx(1.0, abs=0.01)

    def test_fractions_sum_to_one(self):
        model = DDPWeakScalingModel.paper_calibrated()
        for point in model.scan((8, 48, 96)):
            total = point.compute_fraction + point.allreduce_fraction + point.mmd_fraction
            assert total == pytest.approx(1.0, abs=1e-9)

    def test_from_measurement(self):
        model = DDPWeakScalingModel.from_measurement(compute_time=0.1,
                                                     gradient_bytes=1e6)
        assert model.compute_time == pytest.approx(0.1)
        assert model.step_time(8) > 0.1

    def test_invalid_nodes(self):
        with pytest.raises(ValueError):
            DDPWeakScalingModel().step_time(0)
