"""Tests of the openPMD-like object model and its backends."""

from __future__ import annotations

import numpy as np
import pytest

from repro.openpmd import (Access, Iteration, JSONBackend, MemoryBackend, Series,
                           StreamingBackend)
from repro.openpmd.backends import arrays_to_iteration, iteration_to_arrays
from repro.streaming import SSTBroker, SSTReaderEngine, SSTWriterEngine


def fill_iteration(iteration: Iteration, rng, n_particles=20, grid=(4, 4, 2)):
    iteration.set_time(1.0e-13 * iteration.index, 1.0e-13)
    mesh = iteration.get_mesh("E")
    mesh.set_grid(spacing=(1e-5, 1e-5, 1e-5))
    for comp in ("x", "y", "z"):
        mesh[comp].store(rng.random(grid), unit_si=1.0)
    electrons = iteration.get_particles("electrons")
    for comp in ("x", "y", "z"):
        electrons["position"][comp].store(rng.random(n_particles), unit_si=1.0)
        electrons["momentum"][comp].store(rng.random(n_particles), unit_si=1.0)
    electrons["weighting"].store_scalar(np.ones(n_particles))
    return iteration


class TestRecords:
    def test_component_store_load(self, rng):
        it = Iteration(0)
        comp = it.get_mesh("B")["x"]
        data = rng.random((3, 3, 3))
        comp.store(data, unit_si=2.0)
        np.testing.assert_allclose(comp.load(), data)
        np.testing.assert_allclose(comp.load_si(), 2.0 * data)
        assert comp.nbytes == data.nbytes
        assert not comp.empty

    def test_load_empty_raises(self):
        it = Iteration(0)
        with pytest.raises(RuntimeError):
            it.get_mesh("B")["x"].load()

    def test_scalar_record(self, rng):
        it = Iteration(0)
        record = it.get_particles("e")["weighting"]
        record.store_scalar(np.ones(5))
        np.testing.assert_allclose(record.load_scalar(), 1.0)

    def test_mesh_grid_metadata(self):
        it = Iteration(0)
        mesh = it.get_mesh("E").set_grid(spacing=(1.0, 2.0, 3.0),
                                         axis_labels=("x", "y", "z"))
        assert mesh.get_attribute("gridSpacing") == [1.0, 2.0, 3.0]
        assert mesh.axis_labels == ("x", "y", "z")

    def test_attributes(self):
        it = Iteration(0)
        it.set_attribute("author", "artificial scientist")
        assert it.get_attribute("author") == "artificial scientist"
        assert it.has_attribute("author")
        assert not it.has_attribute("missing")

    def test_nbytes_aggregation(self, rng):
        it = fill_iteration(Iteration(0), rng, n_particles=10, grid=(2, 2, 2))
        assert it.nbytes == 3 * 2 * 2 * 2 * 8 + (6 * 10 + 10) * 8


class TestSerialization:
    def test_roundtrip(self, rng):
        it = fill_iteration(Iteration(7), rng)
        arrays = iteration_to_arrays(it)
        assert "meshes/E/x" in arrays
        assert "particles/electrons/position/x" in arrays
        assert "particles/electrons/weighting" in arrays
        rebuilt = arrays_to_iteration(7, arrays, {"time": it.time, "dt": it.dt})
        np.testing.assert_allclose(rebuilt.get_mesh("E")["x"].load(),
                                   it.get_mesh("E")["x"].load())
        np.testing.assert_allclose(
            rebuilt.get_particles("electrons")["weighting"].load_scalar(), 1.0)
        assert rebuilt.time == pytest.approx(it.time)


class TestSeriesWithBackends:
    def test_memory_backend_roundtrip(self, rng):
        backend = MemoryBackend()
        writer = Series("khi", Access.CREATE, backend)
        for i in range(3):
            fill_iteration(writer.write_iteration(i), rng)
            writer.close_iteration(i)
        writer.close()

        reader = Series("khi", Access.READ_LINEAR, backend)
        indices = [it.index for it in reader.read_iterations()]
        assert indices == [0, 1, 2]

    def test_json_backend_roundtrip(self, rng, tmp_path):
        directory = str(tmp_path / "openpmd")
        writer = Series("khi", Access.CREATE, JSONBackend(directory))
        original = fill_iteration(writer.write_iteration(0), rng)
        expected = original.get_particles("electrons")["position"]["x"].load().copy()
        writer.close_iteration(0)

        reader = Series("khi", Access.READ_LINEAR, JSONBackend(directory))
        read = list(reader.read_iterations())
        assert len(read) == 1
        np.testing.assert_allclose(
            read[0].get_particles("electrons")["position"]["x"].load(), expected)

    def test_streaming_backend_roundtrip(self, rng):
        broker = SSTBroker("khi", queue_limit=8)
        writer_backend = StreamingBackend(writer=SSTWriterEngine(broker))
        writer = Series("khi", Access.CREATE, writer_backend)
        expected = []
        for i in range(4):
            it = fill_iteration(writer.write_iteration(i), rng)
            expected.append(it.get_mesh("E")["x"].load().copy())
            writer.close_iteration(i)
        writer.close()

        reader_backend = StreamingBackend(reader=SSTReaderEngine(broker))
        reader = Series("khi", Access.READ_LINEAR, reader_backend)
        count = 0
        for it in reader.read_iterations():
            np.testing.assert_allclose(it.get_mesh("E")["x"].load(), expected[count])
            assert it.index == count
            count += 1
        assert count == 4

    def test_streaming_iterations_consumed_once(self, rng):
        """Streamed data is dropped after being read (in-transit property)."""
        broker = SSTBroker("khi", queue_limit=8)
        writer = Series("khi", Access.CREATE, StreamingBackend(writer=SSTWriterEngine(broker)))
        fill_iteration(writer.write_iteration(0), rng)
        writer.close_iteration(0)
        writer.close()

        reader = Series("khi", Access.READ_LINEAR,
                        StreamingBackend(reader=SSTReaderEngine(broker)))
        assert len(list(reader.read_iterations())) == 1
        assert len(list(reader.read_iterations())) == 0

    def test_access_mode_enforced(self, rng):
        backend = MemoryBackend()
        writer = Series("khi", Access.CREATE, backend)
        with pytest.raises(RuntimeError):
            list(writer.read_iterations())
        reader = Series("khi", Access.READ_LINEAR, backend)
        with pytest.raises(RuntimeError):
            reader.write_iteration(0)

    def test_closing_unknown_iteration(self):
        series = Series("khi", Access.CREATE, MemoryBackend())
        with pytest.raises(KeyError):
            series.close_iteration(3)

    def test_double_close_raises(self, rng):
        series = Series("khi", Access.CREATE, MemoryBackend())
        fill_iteration(series.write_iteration(0), rng)
        series.close_iteration(0)
        with pytest.raises(RuntimeError):
            series.write_iteration(0)

    def test_streaming_backend_requires_one_engine(self):
        with pytest.raises(ValueError):
            StreamingBackend()
        broker = SSTBroker("x")
        with pytest.raises(ValueError):
            StreamingBackend(writer=SSTWriterEngine(broker),
                             reader=SSTReaderEngine(broker))
