"""Tests of the VAE + INN architecture."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mlcore.tensor import Tensor
from repro.models import (ArtificialScientistModel, CombinedLoss, GlowCouplingBlock,
                          InvertibleNetwork, LossWeights, ModelConfig,
                          PointCloudDecoder, PointNetEncoder,
                          VariationalAutoEncoder, paper_config, small_config)


CFG = small_config()


def random_cloud(rng, batch=2, config=CFG):
    return rng.normal(size=(batch, config.n_input_points, config.point_dim))


def random_spectrum(rng, batch=2, config=CFG):
    return rng.random((batch, config.spectrum_dim))


class TestModelConfig:
    def test_paper_config_matches_section_iv_c(self):
        cfg = paper_config()
        assert cfg.n_input_points == 30_000
        assert cfg.encoder_channels == (16, 32, 64, 128, 256, 608)
        assert cfg.latent_dim == 544
        assert cfg.decoder_grid == (4, 4, 4)
        assert cfg.decoder_channels == (16, 8, 6)
        assert cfg.n_output_points == 4096
        assert cfg.inn_blocks == 4
        assert cfg.inn_hidden == (272, 256, 544)

    def test_output_points_small_config(self):
        assert CFG.n_output_points == 2 * 2 * 2 * 4 ** 3

    def test_validation(self):
        with pytest.raises(ValueError):
            ModelConfig(latent_dim=33)
        with pytest.raises(ValueError):
            ModelConfig(spectrum_dim=64, latent_dim=32)
        with pytest.raises(ValueError):
            ModelConfig(decoder_channels=(16, 8, 5))

    def test_normal_dim(self):
        assert CFG.normal_dim == CFG.latent_dim - CFG.spectrum_dim


class TestEncoder:
    def test_output_shapes(self, rng):
        encoder = PointNetEncoder(CFG, rng=rng)
        mu, log_var = encoder(Tensor(random_cloud(rng)))
        assert mu.shape == (2, CFG.latent_dim)
        assert log_var.shape == (2, CFG.latent_dim)

    def test_permutation_invariance(self, rng):
        """The encoder must be invariant to transpositions of the particles."""
        encoder = PointNetEncoder(CFG, rng=rng)
        cloud = random_cloud(rng, batch=1)
        perm = rng.permutation(CFG.n_input_points)
        mu1, _ = encoder(Tensor(cloud))
        mu2, _ = encoder(Tensor(cloud[:, perm]))
        np.testing.assert_allclose(mu1.numpy(), mu2.numpy(), atol=1e-12)

    def test_rejects_wrong_feature_dim(self, rng):
        encoder = PointNetEncoder(CFG, rng=rng)
        with pytest.raises(ValueError):
            encoder(Tensor(rng.normal(size=(2, 16, 5))))

    def test_log_var_clipped(self, rng):
        encoder = PointNetEncoder(CFG, rng=rng)
        _, log_var = encoder(Tensor(random_cloud(rng) * 100))
        assert np.all(log_var.numpy() <= 10.0) and np.all(log_var.numpy() >= -10.0)


class TestDecoder:
    def test_output_shape(self, rng):
        decoder = PointCloudDecoder(CFG, rng=rng)
        out = decoder(Tensor(rng.normal(size=(3, CFG.latent_dim))))
        assert out.shape == (3, CFG.n_output_points, CFG.point_dim)

    def test_rejects_wrong_latent(self, rng):
        decoder = PointCloudDecoder(CFG, rng=rng)
        with pytest.raises(ValueError):
            decoder(Tensor(rng.normal(size=(3, CFG.latent_dim + 1))))


class TestVAE:
    def test_forward_shapes(self, rng):
        vae = VariationalAutoEncoder(CFG, rng=rng)
        recon, mu, log_var, z = vae(Tensor(random_cloud(rng)))
        assert recon.shape == (2, CFG.n_output_points, CFG.point_dim)
        assert z.shape == (2, CFG.latent_dim)

    def test_eval_mode_is_deterministic(self, rng):
        vae = VariationalAutoEncoder(CFG, rng=rng)
        vae.eval()
        cloud = Tensor(random_cloud(rng, batch=1))
        _, _, _, z1 = vae(cloud)
        _, _, _, z2 = vae(cloud)
        np.testing.assert_allclose(z1.numpy(), z2.numpy())

    def test_train_mode_samples(self, rng):
        vae = VariationalAutoEncoder(CFG, rng=rng)
        vae.train()
        cloud = Tensor(random_cloud(rng, batch=1))
        _, _, _, z1 = vae(cloud)
        _, _, _, z2 = vae(cloud)
        assert not np.allclose(z1.numpy(), z2.numpy())


class TestINN:
    def test_coupling_block_invertible(self, rng):
        block = GlowCouplingBlock(dim=16, hidden=(24,), rng=rng)
        x = Tensor(rng.normal(size=(5, 16)))
        y = block(x)
        x_back = block.inverse(y)
        np.testing.assert_allclose(x_back.numpy(), x.numpy(), atol=1e-9)

    def test_coupling_block_changes_input(self, rng):
        block = GlowCouplingBlock(dim=16, hidden=(24,), rng=rng)
        x = rng.normal(size=(5, 16))
        assert not np.allclose(block(Tensor(x)).numpy(), x)

    def test_coupling_block_validation(self):
        with pytest.raises(ValueError):
            GlowCouplingBlock(dim=15)

    def test_full_network_invertible(self, rng):
        inn = InvertibleNetwork(CFG, rng=rng)
        z = Tensor(rng.normal(size=(4, CFG.latent_dim)))
        y = inn(z)
        z_back = inn.inverse(y)
        np.testing.assert_allclose(z_back.numpy(), z.numpy(), rtol=1e-5, atol=1e-5)

    def test_information_volume_constant(self, rng):
        inn = InvertibleNetwork(CFG, rng=rng)
        z = Tensor(rng.normal(size=(4, CFG.latent_dim)))
        assert inn(z).shape == z.shape

    def test_split_and_assemble(self, rng):
        inn = InvertibleNetwork(CFG, rng=rng)
        y = Tensor(rng.normal(size=(3, CFG.latent_dim)))
        spectrum, normal = inn.split_output(y)
        assert spectrum.shape == (3, CFG.spectrum_dim)
        assert normal.shape == (3, CFG.normal_dim)
        reassembled = inn.assemble_condition(spectrum, normal)
        np.testing.assert_allclose(reassembled.numpy(), y.numpy())

    def test_assemble_validation(self, rng):
        inn = InvertibleNetwork(CFG, rng=rng)
        with pytest.raises(ValueError):
            inn.assemble_condition(Tensor(rng.normal(size=(3, CFG.spectrum_dim + 1))),
                                   Tensor(rng.normal(size=(3, CFG.normal_dim))))

    def test_log_det_finite(self, rng):
        block = GlowCouplingBlock(dim=8, hidden=(16,), rng=rng)
        ld = block.log_det_jacobian(Tensor(rng.normal(size=(3, 8))))
        assert np.all(np.isfinite(ld.numpy()))


class TestFullModel:
    def test_forward_produces_all_outputs(self, rng):
        model = ArtificialScientistModel(CFG, rng=rng)
        output = model(Tensor(random_cloud(rng)), Tensor(random_spectrum(rng)))
        assert output.reconstruction.shape == (2, CFG.n_output_points, CFG.point_dim)
        assert output.spectrum_prediction.shape == (2, CFG.spectrum_dim)
        assert output.normal_prediction.shape == (2, CFG.normal_dim)
        assert output.latent_backward.shape == (2, CFG.latent_dim)

    def test_spectrum_shape_validated(self, rng):
        model = ArtificialScientistModel(CFG, rng=rng)
        with pytest.raises(ValueError):
            model(Tensor(random_cloud(rng)), Tensor(rng.random((2, CFG.spectrum_dim + 2))))

    def test_parameter_groups_disjoint_and_complete(self, rng):
        model = ArtificialScientistModel(CFG, rng=rng)
        vae_ids = {id(p) for p in model.vae_parameters()}
        inn_ids = {id(p) for p in model.inn_parameters()}
        all_ids = {id(p) for p in model.parameters()}
        assert vae_ids.isdisjoint(inn_ids)
        assert vae_ids | inn_ids == all_ids

    def test_predict_particles_from_radiation(self, rng):
        model = ArtificialScientistModel(CFG, rng=rng)
        spectrum = rng.random(CFG.spectrum_dim)
        clouds = model.predict_particles_from_radiation(spectrum, n_samples=3)
        assert clouds.shape == (1, 3, CFG.n_output_points, CFG.point_dim)
        # the ill-posed problem: different normal draws give different posteriors
        assert not np.allclose(clouds[0, 0], clouds[0, 1])

    def test_predict_radiation_from_particles(self, rng):
        model = ArtificialScientistModel(CFG, rng=rng)
        spectrum = model.predict_radiation_from_particles(random_cloud(rng, batch=1)[0])
        assert spectrum.shape == (1, CFG.spectrum_dim)

    def test_encode_to_latent(self, rng):
        model = ArtificialScientistModel(CFG, rng=rng)
        z = model.encode_to_latent(random_cloud(rng, batch=3))
        assert z.shape == (3, CFG.latent_dim)

    def test_gradients_reach_both_blocks(self, rng):
        model = ArtificialScientistModel(CFG, rng=rng)
        loss = CombinedLoss()
        clouds, spectra = Tensor(random_cloud(rng)), Tensor(random_spectrum(rng))
        total = loss(model(clouds, spectra), clouds, spectra)
        total.backward()
        assert any(p.grad is not None and np.any(p.grad != 0)
                   for p in model.vae_parameters())
        assert any(p.grad is not None and np.any(p.grad != 0)
                   for p in model.inn_parameters())


class TestCombinedLoss:
    def test_weights_default_to_equation_1(self):
        w = LossWeights()
        assert (w.chamfer, w.kl, w.mse, w.mmd_latent, w.mmd_normal) == \
            (1.0, 0.001, 0.3, 40.0, 0.03)

    def test_terms_recorded(self, rng):
        model = ArtificialScientistModel(CFG, rng=rng)
        loss = CombinedLoss()
        clouds, spectra = Tensor(random_cloud(rng)), Tensor(random_spectrum(rng))
        total = loss(model(clouds, spectra), clouds, spectra)
        assert set(loss.last_terms) == {"chamfer", "kl", "mse", "mmd_latent",
                                        "mmd_normal", "total"}
        assert loss.last_terms["total"] == pytest.approx(total.item())

    def test_total_is_weighted_sum(self, rng):
        model = ArtificialScientistModel(CFG, rng=rng)
        loss = CombinedLoss()
        clouds, spectra = Tensor(random_cloud(rng)), Tensor(random_spectrum(rng))
        loss(model(clouds, spectra), clouds, spectra)
        t = loss.last_terms
        w = loss.weights
        expected = (w.chamfer * t["chamfer"] + w.kl * t["kl"] + w.mse * t["mse"]
                    + w.mmd_latent * t["mmd_latent"] + w.mmd_normal * t["mmd_normal"])
        assert t["total"] == pytest.approx(expected, rel=1e-9)
