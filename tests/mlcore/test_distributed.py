"""Tests of the simulated data-parallel training machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mlcore.distributed import (DistributedDataParallel, LocalCommunicator,
                                      RingAllReduceModel)
from repro.mlcore.layers import Linear, ReLU, Sequential
from repro.mlcore.losses import mse_loss
from repro.mlcore.optim import SGD
from repro.mlcore.tensor import Tensor


def make_replicas(n, rng):
    return [Sequential(Linear(4, 8, rng=np.random.default_rng(1)),
                       ReLU(),
                       Linear(8, 1, rng=np.random.default_rng(2)))
            for _ in range(n)]


class TestLocalCommunicator:
    def test_allreduce_mean(self):
        comm = LocalCommunicator(4)
        arrays = [np.full(3, float(r)) for r in range(4)]
        out = comm.allreduce_mean(arrays)
        for o in out:
            np.testing.assert_allclose(o, 1.5)
        assert comm.record.allreduce_calls == 1

    def test_allgather(self):
        comm = LocalCommunicator(3)
        out = comm.allgather([np.full((2, 2), r) for r in range(3)])
        assert out.shape == (6, 2)

    def test_broadcast(self):
        comm = LocalCommunicator(2)
        out = comm.broadcast(np.arange(5), root=0)
        assert len(out) == 2
        np.testing.assert_allclose(out[1], np.arange(5))

    def test_wrong_contribution_count(self):
        comm = LocalCommunicator(2)
        with pytest.raises(ValueError):
            comm.allreduce_mean([np.zeros(2)])

    def test_invalid_world_size(self):
        with pytest.raises(ValueError):
            LocalCommunicator(0)


class TestDDP:
    def test_sync_parameters(self, rng):
        replicas = [Sequential(Linear(3, 2, rng=np.random.default_rng(s))) for s in range(3)]
        ddp = DistributedDataParallel(replicas, LocalCommunicator(3))
        assert not ddp.parameters_in_sync()
        ddp.sync_parameters()
        assert ddp.parameters_in_sync()

    def test_gradient_averaging_equals_large_batch(self, rng):
        """DDP with gradient averaging must equal a single large-batch step."""
        world = 4
        per_rank = 8
        x = rng.normal(size=(world * per_rank, 4))
        y = rng.normal(size=(world * per_rank, 1))

        replicas = make_replicas(world, rng)
        ddp = DistributedDataParallel(replicas, LocalCommunicator(world))
        ddp.sync_parameters()

        # reference: single model, full batch
        reference = make_replicas(1, rng)[0]
        reference.load_state_dict(replicas[0].state_dict())
        ref_opt = SGD(reference.parameters(), lr=0.1)
        ref_opt.zero_grad()
        mse_loss(reference(Tensor(x)), Tensor(y)).backward()
        ref_opt.step()

        # DDP: shard the batch, average gradients, step each replica
        optimizers = [SGD(r.parameters(), lr=0.1) for r in replicas]
        for opt in optimizers:
            opt.zero_grad()
        for rank, replica in enumerate(replicas):
            sl = slice(rank * per_rank, (rank + 1) * per_rank)
            mse_loss(replica(Tensor(x[sl])), Tensor(y[sl])).backward()
        ddp.sync_gradients()
        for opt in optimizers:
            opt.step()

        assert ddp.parameters_in_sync()
        for name, value in reference.state_dict().items():
            np.testing.assert_allclose(replicas[0].state_dict()[name], value, atol=1e-10)

    def test_mismatched_world_size(self, rng):
        with pytest.raises(ValueError):
            DistributedDataParallel(make_replicas(2, rng), LocalCommunicator(3))

    def test_gradient_bytes_positive(self, rng):
        ddp = DistributedDataParallel(make_replicas(2, rng), LocalCommunicator(2))
        assert ddp.gradient_bytes() > 0


class TestRingAllReduceModel:
    def test_single_rank_is_free(self):
        model = RingAllReduceModel()
        assert model.time(1, 1e9) == 0.0

    def test_time_increases_with_message_size(self):
        model = RingAllReduceModel()
        assert model.time(16, 2e9) > model.time(16, 1e9)

    def test_time_saturates_with_ranks(self):
        """The 2(p-1)/p factor approaches 2, so doubling ranks far out barely
        changes the bandwidth term (latency term keeps growing)."""
        model = RingAllReduceModel(latency=0.0)
        t64 = model.time(64, 1e9)
        t128 = model.time(128, 1e9)
        assert t128 / t64 < 1.05

    def test_intra_node_faster(self):
        model = RingAllReduceModel()
        assert model.time(8, 1e9) < model.time(16, 1e9)

    def test_invalid_world_size(self):
        with pytest.raises(ValueError):
            RingAllReduceModel().time(0, 1.0)

    def test_allgather_time_monotone(self):
        model = RingAllReduceModel()
        assert model.allgather_time(32, 1e8) > model.allgather_time(16, 1e8)
        assert model.allgather_time(1, 1e8) == 0.0
