"""Tests of the functional interface helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mlcore import functional as F
from repro.mlcore.tensor import Tensor
from tests.conftest import numerical_gradient


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        out = F.softmax(Tensor(rng.normal(size=(4, 7)) * 10)).numpy()
        np.testing.assert_allclose(out.sum(axis=-1), 1.0)
        assert np.all(out > 0)

    def test_log_softmax_consistent(self, rng):
        x = Tensor(rng.normal(size=(3, 5)))
        np.testing.assert_allclose(F.log_softmax(x).numpy(),
                                   np.log(F.softmax(x).numpy()), atol=1e-12)

    def test_softmax_gradient(self, rng):
        x0 = rng.normal(size=(2, 4))
        t = Tensor(x0, requires_grad=True)
        (F.softmax(t)[:, 0]).sum().backward()
        want = numerical_gradient(
            lambda arr: float(F.softmax(Tensor(arr)).numpy()[:, 0].sum()), x0)
        np.testing.assert_allclose(t.grad, want, atol=1e-6)


class TestPairwiseDistances:
    def test_matches_direct_computation(self, rng):
        a = rng.normal(size=(1, 6, 3))
        b = rng.normal(size=(1, 4, 3))
        d2 = F.pairwise_squared_distances(Tensor(a), Tensor(b)).numpy()
        direct = ((a[:, :, None, :] - b[:, None, :, :]) ** 2).sum(-1)
        np.testing.assert_allclose(d2, direct, atol=1e-10)

    def test_non_negative(self, rng):
        a = rng.normal(size=(2, 5, 4))
        d2 = F.pairwise_squared_distances(Tensor(a), Tensor(a)).numpy()
        assert np.all(d2 >= 0)
        np.testing.assert_allclose(np.diagonal(d2, axis1=1, axis2=2), 0.0, atol=1e-9)


class TestMisc:
    def test_one_hot(self):
        out = F.one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_allclose(out, np.eye(3)[[0, 2, 1]])

    def test_linear_helper(self, rng):
        x = Tensor(rng.normal(size=(4, 3)))
        w = Tensor(rng.normal(size=(3, 2)))
        b = Tensor(rng.normal(size=(2,)))
        np.testing.assert_allclose(F.linear(x, w, b).numpy(),
                                   x.numpy() @ w.numpy() + b.numpy())

    def test_mse_helper(self, rng):
        a = rng.normal(size=(5,))
        b = rng.normal(size=(5,))
        assert F.mse(Tensor(a), b).item() == pytest.approx(np.mean((a - b) ** 2))

    def test_dropout_eval_identity(self, rng):
        x = Tensor(rng.normal(size=(10,)))
        np.testing.assert_allclose(F.dropout(x, 0.5, training=False).numpy(), x.numpy())

    def test_dropout_invalid_p(self, rng):
        with pytest.raises(ValueError):
            F.dropout(Tensor(rng.normal(size=(4,))), 1.2, training=True)

    def test_clamp(self, rng):
        x = Tensor(rng.normal(size=(20,)) * 5)
        out = F.clamp(x, -1.0, 1.0).numpy()
        assert out.min() >= -1.0 and out.max() <= 1.0

    @pytest.mark.parametrize("fn,ref", [
        (F.relu, lambda v: np.maximum(v, 0)),
        (F.tanh, np.tanh),
        (F.sigmoid, lambda v: 1 / (1 + np.exp(-v))),
        (F.exp, np.exp),
        (F.sqrt, np.sqrt),
    ])
    def test_elementwise_wrappers(self, fn, ref, rng):
        x = np.abs(rng.normal(size=(6,))) + 0.1
        np.testing.assert_allclose(fn(Tensor(x)).numpy(), ref(x), rtol=1e-12)
