"""Tests of optimisers and LR scaling rules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mlcore import optim
from repro.mlcore.layers import Linear
from repro.mlcore.losses import mse_loss
from repro.mlcore.module import Parameter
from repro.mlcore.optim import (Adam, ParamGroup, SGD, make_block_param_groups,
                                sqrt_lr_scaling)
from repro.mlcore.tensor import Tensor


def quadratic_problem(rng):
    """A tiny least-squares problem y = X w_true."""
    x = rng.normal(size=(64, 4))
    w_true = rng.normal(size=(4, 1))
    y = x @ w_true
    return x, y, w_true


class TestSGD:
    def test_descends_quadratic(self, rng):
        x, y, w_true = quadratic_problem(rng)
        layer = Linear(4, 1, bias=False, rng=rng)
        opt = SGD(layer.parameters(), lr=0.05)
        first = None
        for _ in range(200):
            opt.zero_grad()
            loss = mse_loss(layer(Tensor(x)), Tensor(y))
            if first is None:
                first = loss.item()
            loss.backward()
            opt.step()
        assert loss.item() < 1e-3 * first

    def test_momentum_accepted(self, rng):
        layer = Linear(2, 1, rng=rng)
        opt = SGD(layer.parameters(), lr=0.01, momentum=0.9)
        opt.zero_grad()
        mse_loss(layer(Tensor(rng.normal(size=(8, 2)))), Tensor(np.zeros((8, 1)))).backward()
        opt.step()
        assert opt.step_count == 1

    def test_invalid_momentum(self, rng):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(2))], lr=0.1, momentum=1.5)


class TestAdam:
    def test_paper_defaults(self):
        opt = Adam([Parameter(np.zeros(3))])
        assert opt.beta1 == pytest.approx(0.8)
        assert opt.beta2 == pytest.approx(0.9)
        assert opt.eps == pytest.approx(1e-6)
        assert opt.param_groups[0].weight_decay == pytest.approx(2e-5)

    def test_converges_on_regression(self, rng):
        x, y, w_true = quadratic_problem(rng)
        layer = Linear(4, 1, bias=False, rng=rng)
        opt = Adam(layer.parameters(), lr=0.05, weight_decay=0.0)
        for _ in range(400):
            opt.zero_grad()
            loss = mse_loss(layer(Tensor(x)), Tensor(y))
            loss.backward()
            opt.step()
        np.testing.assert_allclose(layer.weight.data, w_true, atol=0.05)

    def test_skips_params_without_grad(self):
        p = Parameter(np.ones(3))
        opt = Adam([p], lr=0.1)
        opt.step()
        np.testing.assert_allclose(p.data, np.ones(3))

    def test_weight_decay_shrinks_weights(self):
        p = Parameter(np.full(4, 10.0))
        opt = Adam([p], lr=0.1, weight_decay=1.0)
        p.grad = np.zeros(4)
        for _ in range(50):
            opt.step()
        assert np.all(np.abs(p.data) < 10.0)

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], betas=(1.2, 0.9))
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], eps=0.0)


class TestParamGroupsAndScaling:
    def test_sqrt_scaling(self):
        assert sqrt_lr_scaling(1e-6, 3072, 8) == pytest.approx(1e-6 * np.sqrt(384))
        assert sqrt_lr_scaling(1e-6, 8, 8) == pytest.approx(1e-6)

    def test_sqrt_scaling_invalid(self):
        with pytest.raises(ValueError):
            sqrt_lr_scaling(1e-6, 0, 8)

    def test_block_param_groups(self, rng):
        vae = Linear(4, 4, rng=rng)
        inn = Linear(4, 4, rng=rng)
        groups = make_block_param_groups(vae.parameters(), inn.parameters(),
                                         base_lr=1e-6, m_vae=10.0, batch_size=256)
        assert groups[0].name == "vae" and groups[1].name == "inn"
        assert groups[0].lr == pytest.approx(10.0 * groups[1].lr)
        assert groups[1].lr == pytest.approx(sqrt_lr_scaling(1e-6, 256, 8))

    def test_optimizer_with_groups(self, rng):
        vae = Linear(4, 4, rng=rng)
        inn = Linear(4, 4, rng=rng)
        groups = make_block_param_groups(vae.parameters(), inn.parameters())
        opt = Adam(groups, lr=1e-6)
        assert len(opt.param_groups) == 2
        opt.set_lr(1e-3, group_name="vae")
        assert opt.param_groups[0].lr == pytest.approx(1e-3)
        assert opt.param_groups[1].lr != pytest.approx(1e-3)

    def test_paper_constant_exposed(self):
        assert optim.PAPER_BASE_LEARNING_RATE == pytest.approx(1e-6)
