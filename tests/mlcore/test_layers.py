"""Tests of neural-network layers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mlcore.layers import (MLP, ConvTranspose3d, Dropout, Linear,
                                 MaxPoolPoints, ModuleList, PointwiseConv,
                                 ReLU, Sequential, Tanh)
from repro.mlcore.module import Module, Parameter
from repro.mlcore.tensor import Tensor


class TestLinear:
    def test_shapes(self, rng):
        layer = Linear(5, 3, rng=rng)
        out = layer(Tensor(rng.normal(size=(7, 5))))
        assert out.shape == (7, 3)

    def test_no_bias(self, rng):
        layer = Linear(4, 2, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gradients_flow_to_parameters(self, rng):
        layer = Linear(4, 2, rng=rng)
        out = layer(Tensor(rng.normal(size=(3, 4)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        assert layer.bias is not None and layer.bias.grad is not None

    def test_batched_input(self, rng):
        layer = Linear(4, 2, rng=rng)
        out = layer(Tensor(rng.normal(size=(2, 5, 4))))
        assert out.shape == (2, 5, 2)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 3)


class TestMLP:
    def test_stack_shapes(self, rng):
        mlp = MLP((6, 16, 8), rng=rng)
        out = mlp(Tensor(rng.normal(size=(4, 6))))
        assert out.shape == (4, 8)

    def test_too_few_dims(self):
        with pytest.raises(ValueError):
            MLP((4,))

    def test_final_activation(self, rng):
        mlp = MLP((3, 5), activation=Tanh, final_activation=True, rng=rng)
        out = mlp(Tensor(rng.normal(size=(2, 3)) * 10)).numpy()
        assert np.all(np.abs(out) <= 1.0)


class TestPointwiseConv:
    def test_acts_per_point(self, rng):
        conv = PointwiseConv(6, 16, rng=rng)
        cloud = rng.normal(size=(2, 10, 6))
        out = conv(Tensor(cloud))
        assert out.shape == (2, 10, 16)
        # permuting the points permutes the output identically (1x1 conv)
        perm = rng.permutation(10)
        out_perm = conv(Tensor(cloud[:, perm])).numpy()
        np.testing.assert_allclose(out_perm, out.numpy()[:, perm])

    def test_channel_mismatch(self, rng):
        conv = PointwiseConv(6, 16, rng=rng)
        with pytest.raises(ValueError):
            conv(Tensor(rng.normal(size=(2, 10, 5))))


class TestMaxPoolPoints:
    def test_permutation_invariance(self, rng):
        pool = MaxPoolPoints(axis=1)
        cloud = rng.normal(size=(3, 20, 8))
        base = pool(Tensor(cloud)).numpy()
        perm = rng.permutation(20)
        np.testing.assert_allclose(pool(Tensor(cloud[:, perm])).numpy(), base)

    def test_output_shape(self, rng):
        pool = MaxPoolPoints(axis=1)
        assert pool(Tensor(rng.normal(size=(3, 20, 8)))).shape == (3, 8)


class TestConvTranspose3d:
    def test_upsamples_by_kernel(self, rng):
        deconv = ConvTranspose3d(16, 8, kernel_size=2, rng=rng)
        x = Tensor(rng.normal(size=(2, 4, 4, 4, 16)))
        out = deconv(x)
        assert out.shape == (2, 8, 8, 8, 8)

    def test_chained_decoder_shape(self, rng):
        # the paper's decoder: (4,4,4,16) -> (8,8,8,8) -> (16,16,16,6)
        d1 = ConvTranspose3d(16, 8, rng=rng)
        d2 = ConvTranspose3d(8, 6, rng=rng)
        x = Tensor(rng.normal(size=(1, 4, 4, 4, 16)))
        out = d2(d1(x))
        assert out.shape == (1, 16, 16, 16, 6)
        assert out.shape[1] * out.shape[2] * out.shape[3] == 4096

    def test_gradients(self, rng):
        deconv = ConvTranspose3d(3, 2, rng=rng)
        x = Tensor(rng.normal(size=(1, 2, 2, 2, 3)), requires_grad=True)
        deconv(x).sum().backward()
        assert x.grad is not None and x.grad.shape == x.shape
        assert deconv.weight.grad is not None

    def test_block_structure(self, rng):
        """Each input voxel influences exactly its own 2x2x2 output block."""
        deconv = ConvTranspose3d(1, 1, kernel_size=2, bias=False, rng=rng)
        x = np.zeros((1, 2, 2, 2, 1))
        x[0, 1, 0, 1, 0] = 1.0
        out = deconv(Tensor(x)).numpy()[0, :, :, :, 0]
        nonzero = np.argwhere(out != 0.0)
        assert np.all(nonzero[:, 0] >= 2) and np.all(nonzero[:, 0] < 4)
        assert np.all(nonzero[:, 1] < 2)
        assert np.all(nonzero[:, 2] >= 2) and np.all(nonzero[:, 2] < 4)

    def test_rejects_wrong_rank(self, rng):
        deconv = ConvTranspose3d(3, 2, rng=rng)
        with pytest.raises(ValueError):
            deconv(Tensor(rng.normal(size=(2, 2, 2, 3))))


class TestContainersAndModule:
    def test_sequential_applies_in_order(self, rng):
        model = Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))
        out = model(Tensor(rng.normal(size=(3, 4))))
        assert out.shape == (3, 2)
        assert len(model) == 3

    def test_named_parameters_nested(self, rng):
        model = Sequential(Linear(4, 8, rng=rng), Linear(8, 2, rng=rng))
        names = [n for n, _ in model.named_parameters()]
        assert "0.weight" in names and "1.bias" in names

    def test_state_dict_roundtrip(self, rng):
        model = Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))
        other = Sequential(Linear(4, 8, rng=np.random.default_rng(9)), ReLU(),
                           Linear(8, 2, rng=np.random.default_rng(10)))
        other.load_state_dict(model.state_dict())
        x = Tensor(rng.normal(size=(3, 4)))
        np.testing.assert_allclose(other(x).numpy(), model(x).numpy())

    def test_state_dict_strict_mismatch(self, rng):
        model = Linear(4, 2, rng=rng)
        with pytest.raises(KeyError):
            model.load_state_dict({"weight": np.zeros((4, 2))}, strict=True)

    def test_state_dict_shape_mismatch(self, rng):
        model = Linear(4, 2, rng=rng)
        bad = model.state_dict()
        bad["weight"] = np.zeros((3, 2))
        with pytest.raises(ValueError):
            model.load_state_dict(bad)

    def test_module_list(self, rng):
        blocks = ModuleList([Linear(3, 3, rng=rng) for _ in range(4)])
        assert len(blocks) == 4
        assert len(blocks.parameters()) == 8

    def test_train_eval_propagates(self, rng):
        model = Sequential(Dropout(0.5), Linear(3, 3, rng=rng))
        model.eval()
        assert not model[0].training
        model.train()
        assert model[0].training

    def test_num_parameters(self, rng):
        layer = Linear(4, 3, rng=rng)
        assert layer.num_parameters() == 4 * 3 + 3

    def test_custom_module_registration(self, rng):
        class Custom(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.ones((2, 2)))
                self.inner = Linear(2, 2, rng=rng)

            def forward(self, x):
                return self.inner(x @ self.w)

        m = Custom()
        names = {n for n, _ in m.named_parameters()}
        assert names == {"w", "inner.weight", "inner.bias"}


class TestDropout:
    def test_identity_in_eval(self, rng):
        drop = Dropout(0.5, rng=rng)
        drop.eval()
        x = Tensor(rng.normal(size=(10, 10)))
        np.testing.assert_allclose(drop(x).numpy(), x.numpy())

    def test_scales_in_train(self, rng):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((2000,)))
        out = drop(x).numpy()
        kept = out[out != 0.0]
        # inverted dropout rescales kept activations by 1/(1-p)
        np.testing.assert_allclose(kept, 2.0)
        assert 0.3 < (out == 0).mean() < 0.7

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
