"""Tests of the loss functions of the paper's objective (Eq. (1))."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mlcore import losses
from repro.mlcore.tensor import Tensor
from tests.conftest import numerical_gradient


class TestMSE:
    def test_zero_for_identical(self, rng):
        x = rng.normal(size=(4, 5))
        assert losses.mse_loss(Tensor(x), Tensor(x.copy())).item() == pytest.approx(0.0)

    def test_matches_numpy(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(3, 4))
        want = float(np.mean((a - b) ** 2))
        assert losses.mse_loss(Tensor(a), Tensor(b)).item() == pytest.approx(want)

    def test_gradient(self, rng):
        a0 = rng.normal(size=(6,))
        b = rng.normal(size=(6,))
        t = Tensor(a0, requires_grad=True)
        losses.mse_loss(t, Tensor(b)).backward()
        want = numerical_gradient(
            lambda arr: losses.mse_loss(Tensor(arr), Tensor(b)).item(), a0)
        np.testing.assert_allclose(t.grad, want, atol=1e-6)


class TestChamfer:
    def test_zero_for_identical_clouds(self, rng):
        cloud = rng.normal(size=(2, 12, 3))
        assert losses.chamfer_distance(Tensor(cloud), Tensor(cloud.copy())).item() \
            == pytest.approx(0.0, abs=1e-10)

    def test_symmetric(self, rng):
        a = rng.normal(size=(1, 10, 3))
        b = rng.normal(size=(1, 14, 3))
        ab = losses.chamfer_distance(Tensor(a), Tensor(b)).item()
        ba = losses.chamfer_distance(Tensor(b), Tensor(a)).item()
        assert ab == pytest.approx(ba)

    def test_translation_increases_distance(self, rng):
        a = rng.normal(size=(1, 20, 3))
        near = losses.chamfer_distance(Tensor(a), Tensor(a + 0.01)).item()
        far = losses.chamfer_distance(Tensor(a), Tensor(a + 1.0)).item()
        assert far > near > 0.0

    def test_permutation_invariance(self, rng):
        a = rng.normal(size=(1, 16, 3))
        b = rng.normal(size=(1, 16, 3))
        perm = rng.permutation(16)
        d1 = losses.chamfer_distance(Tensor(a), Tensor(b)).item()
        d2 = losses.chamfer_distance(Tensor(a), Tensor(b[:, perm])).item()
        assert d1 == pytest.approx(d2)

    def test_gradient_pulls_points_together(self, rng):
        a0 = rng.normal(size=(1, 8, 3))
        b = a0 + 0.5
        t = Tensor(a0, requires_grad=True)
        losses.chamfer_distance(t, Tensor(b)).backward()
        # moving along -grad must decrease the loss
        step = a0 - 0.05 * t.grad
        before = losses.chamfer_distance(Tensor(a0), Tensor(b)).item()
        after = losses.chamfer_distance(Tensor(step), Tensor(b)).item()
        assert after < before

    def test_reductions(self, rng):
        a = rng.normal(size=(3, 5, 3))
        b = rng.normal(size=(3, 5, 3))
        per = losses.chamfer_distance(Tensor(a), Tensor(b), reduction="none").numpy()
        assert per.shape == (3,)
        assert losses.chamfer_distance(Tensor(a), Tensor(b), reduction="sum").item() \
            == pytest.approx(per.sum())

    def test_rejects_bad_shapes(self, rng):
        with pytest.raises(ValueError):
            losses.chamfer_distance(Tensor(rng.normal(size=(5, 3))),
                                    Tensor(rng.normal(size=(5, 3))))


class TestKL:
    def test_zero_for_standard_normal(self):
        mu = np.zeros((4, 8))
        log_var = np.zeros((4, 8))
        assert losses.kl_divergence_normal(Tensor(mu), Tensor(log_var)).item() \
            == pytest.approx(0.0)

    def test_positive_otherwise(self, rng):
        mu = rng.normal(size=(4, 8))
        log_var = rng.normal(size=(4, 8))
        assert losses.kl_divergence_normal(Tensor(mu), Tensor(log_var)).item() > 0.0

    def test_known_value(self):
        # KL(N(1, 1) || N(0,1)) = 0.5 per dimension
        mu = np.ones((1, 3))
        log_var = np.zeros((1, 3))
        assert losses.kl_divergence_normal(Tensor(mu), Tensor(log_var)).item() \
            == pytest.approx(1.5)

    def test_gradient(self, rng):
        mu0 = rng.normal(size=(2, 4))
        lv = rng.normal(size=(2, 4)) * 0.1
        t = Tensor(mu0, requires_grad=True)
        losses.kl_divergence_normal(t, Tensor(lv)).backward()
        want = numerical_gradient(
            lambda arr: losses.kl_divergence_normal(Tensor(arr), Tensor(lv)).item(), mu0)
        np.testing.assert_allclose(t.grad, want, atol=1e-6)


class TestMMD:
    def test_near_zero_for_same_distribution(self, rng):
        x = rng.normal(size=(256, 4))
        y = rng.normal(size=(256, 4))
        value = losses.mmd_imq(Tensor(x), Tensor(y)).item()
        assert abs(value) < 0.05

    def test_large_for_shifted_distribution(self, rng):
        x = rng.normal(size=(128, 4))
        y = rng.normal(size=(128, 4)) + 3.0
        far = losses.mmd_imq(Tensor(x), Tensor(y)).item()
        near = losses.mmd_imq(Tensor(x), Tensor(rng.normal(size=(128, 4)))).item()
        assert far > 5 * abs(near)
        assert far > 0.1

    def test_symmetry(self, rng):
        x = rng.normal(size=(32, 3))
        y = rng.normal(size=(32, 3)) + 1.0
        assert losses.mmd_imq(Tensor(x), Tensor(y)).item() == pytest.approx(
            losses.mmd_imq(Tensor(y), Tensor(x)).item())

    def test_gradient_moves_samples_towards_target(self, rng):
        x0 = rng.normal(size=(32, 2)) + 2.0
        target = rng.normal(size=(64, 2))
        t = Tensor(x0, requires_grad=True)
        losses.mmd_imq(t, Tensor(target)).backward()
        moved = x0 - 0.5 * t.grad
        before = losses.mmd_imq(Tensor(x0), Tensor(target)).item()
        after = losses.mmd_imq(Tensor(moved), Tensor(target)).item()
        assert after < before

    def test_rejects_bad_shapes(self, rng):
        with pytest.raises(ValueError):
            losses.mmd_imq(Tensor(rng.normal(size=(4, 3, 2))),
                           Tensor(rng.normal(size=(4, 3))))


class TestSinkhornEMD:
    def test_zero_for_identical(self, rng):
        a = rng.normal(size=(1, 10, 3))
        value = losses.sinkhorn_emd(Tensor(a), Tensor(a.copy()), epsilon=0.01).item()
        assert value == pytest.approx(0.0, abs=1e-2)

    def test_detects_shift_better_than_density(self, rng):
        a = rng.normal(size=(1, 24, 2))
        small = losses.sinkhorn_emd(Tensor(a), Tensor(a + 0.1)).item()
        large = losses.sinkhorn_emd(Tensor(a), Tensor(a + 1.0)).item()
        assert large > small

    def test_emd_sees_density_difference_cd_misses(self, rng):
        """The paper motivates EMD because CD is insensitive to point density."""
        # cloud A: uniform points; cloud B: same support but 90% of points
        # piled onto one location.  CD barely changes, EMD does.
        base = rng.uniform(-1, 1, size=(1, 40, 2))
        piled = base.copy()
        piled[0, : 36] = base[0, :1]
        cd_uniform = losses.chamfer_distance(Tensor(base), Tensor(base)).item()
        cd_piled = losses.chamfer_distance(Tensor(base), Tensor(piled)).item()
        emd_piled = losses.sinkhorn_emd(Tensor(base), Tensor(piled)).item()
        assert emd_piled > 10 * max(cd_piled - cd_uniform, 1e-6) or emd_piled > 0.1

    def test_invalid_args(self, rng):
        a = Tensor(rng.normal(size=(1, 5, 2)))
        with pytest.raises(ValueError):
            losses.sinkhorn_emd(a, a, epsilon=0.0)
        with pytest.raises(ValueError):
            losses.sinkhorn_emd(a, a, n_iterations=0)


class TestHypothesisLossProperties:
    @given(st.integers(2, 12), st.integers(2, 12), st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_chamfer_nonnegative(self, n, m, batch):
        rng = np.random.default_rng(n * 100 + m * 10 + batch)
        a = rng.normal(size=(batch, n, 3))
        b = rng.normal(size=(batch, m, 3))
        assert losses.chamfer_distance(Tensor(a), Tensor(b)).item() >= 0.0

    @given(st.integers(4, 64))
    @settings(max_examples=25, deadline=None)
    def test_mmd_nonnegative_up_to_noise(self, n):
        rng = np.random.default_rng(n)
        x = rng.normal(size=(n, 3))
        y = rng.normal(size=(n, 3))
        assert losses.mmd_imq(Tensor(x), Tensor(y)).item() > -0.1
