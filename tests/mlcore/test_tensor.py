"""Unit and property-based tests of the autograd tensor."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.mlcore.tensor import (Tensor, concatenate, no_grad, split, stack,
                                 tensor, where, zeros)
from tests.conftest import numerical_gradient


def analytic_grad(build, x0: np.ndarray) -> np.ndarray:
    """Gradient of the scalar ``build(Tensor)`` at ``x0`` via autograd."""
    t = Tensor(x0, requires_grad=True)
    out = build(t)
    out.backward()
    assert t.grad is not None
    return t.grad


def check_grad(build, x0: np.ndarray, atol: float = 1e-5) -> None:
    got = analytic_grad(build, x0)
    want = numerical_gradient(lambda arr: build(Tensor(arr)).item(), x0)
    np.testing.assert_allclose(got, want, atol=atol, rtol=1e-4)


class TestBasics:
    def test_data_promoted_to_float(self):
        t = Tensor([1, 2, 3])
        assert t.dtype.kind == "f"

    def test_item_on_scalar(self):
        assert tensor(3.5).item() == pytest.approx(3.5)

    def test_item_on_vector_raises(self):
        with pytest.raises(ValueError):
            tensor([1.0, 2.0]).item()

    def test_detach_breaks_graph(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = (x * 2).detach()
        assert not y.requires_grad

    def test_backward_requires_scalar(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_no_grad_disables_graph(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with no_grad():
            y = x * 3
        assert not y.requires_grad

    def test_grad_accumulates_across_backwards(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        (x.sum()).backward()
        (x.sum()).backward()
        np.testing.assert_allclose(x.grad, [2.0, 2.0])

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        x.sum().backward()
        x.zero_grad()
        assert x.grad is None


class TestArithmeticGradients:
    def test_add(self, rng):
        check_grad(lambda t: (t + 3.0).sum(), rng.normal(size=(3, 4)))

    def test_sub(self, rng):
        check_grad(lambda t: (5.0 - t).sum(), rng.normal(size=(4,)))

    def test_mul(self, rng):
        x0 = rng.normal(size=(3, 2))
        other = rng.normal(size=(3, 2))
        check_grad(lambda t: (t * Tensor(other) * 2.0).sum(), x0)

    def test_div(self, rng):
        x0 = rng.normal(size=(5,)) + 3.0
        check_grad(lambda t: (1.0 / t).sum(), x0)

    def test_pow(self, rng):
        x0 = np.abs(rng.normal(size=(4,))) + 0.5
        check_grad(lambda t: (t ** 3).sum(), x0)

    def test_neg(self, rng):
        check_grad(lambda t: (-t).sum(), rng.normal(size=(3,)))

    def test_matmul_2d(self, rng):
        b = rng.normal(size=(4, 3))
        check_grad(lambda t: (t @ Tensor(b)).sum(), rng.normal(size=(2, 4)))

    def test_matmul_batched(self, rng):
        b = rng.normal(size=(5, 4, 3))
        check_grad(lambda t: (t @ Tensor(b)).sum(), rng.normal(size=(5, 2, 4)))

    def test_matmul_right_grad(self, rng):
        a = rng.normal(size=(2, 4))
        check_grad(lambda t: (Tensor(a) @ t).sum(), rng.normal(size=(4, 3)))

    def test_matmul_vector_vector(self, rng):
        b = rng.normal(size=(4,))
        check_grad(lambda t: t @ Tensor(b), rng.normal(size=(4,)))

    def test_broadcast_add_bias(self, rng):
        x = rng.normal(size=(6, 3))
        check_grad(lambda t: ((Tensor(x) + t) ** 2).sum(), rng.normal(size=(3,)))

    def test_broadcast_mul_scalar_like(self, rng):
        x = rng.normal(size=(2, 5))
        check_grad(lambda t: (Tensor(x) * t).sum(), rng.normal(size=(1, 5)))


class TestElementwiseGradients:
    @pytest.mark.parametrize("name", ["exp", "tanh", "sigmoid", "relu",
                                      "softplus", "abs"])
    def test_unary(self, name, rng):
        x0 = rng.normal(size=(7,)) + 0.1  # avoid the relu/abs kink at exactly 0
        check_grad(lambda t: getattr(t, name)().sum(), x0)

    def test_log(self, rng):
        x0 = np.abs(rng.normal(size=(5,))) + 0.5
        check_grad(lambda t: t.log().sum(), x0)

    def test_sqrt(self, rng):
        x0 = np.abs(rng.normal(size=(5,))) + 0.5
        check_grad(lambda t: t.sqrt().sum(), x0)

    def test_leaky_relu(self, rng):
        x0 = rng.normal(size=(9,)) + 0.05
        check_grad(lambda t: t.leaky_relu(0.1).sum(), x0)

    def test_clip(self, rng):
        x0 = rng.normal(size=(8,)) * 3.0
        check_grad(lambda t: t.clip(-1.0, 1.0).sum(), x0)


class TestReductionsAndShapes:
    def test_sum_axis(self, rng):
        check_grad(lambda t: (t.sum(axis=0) ** 2).sum(), rng.normal(size=(3, 4)))

    def test_sum_keepdims(self, rng):
        check_grad(lambda t: (t.sum(axis=1, keepdims=True) * 2).sum(),
                   rng.normal(size=(3, 4)))

    def test_mean(self, rng):
        check_grad(lambda t: (t.mean(axis=1) ** 2).sum(), rng.normal(size=(2, 6)))

    def test_max(self, rng):
        # distinct values so the argmax is unambiguous for the numeric check
        x0 = rng.permutation(np.arange(12, dtype=np.float64)).reshape(3, 4)
        check_grad(lambda t: t.max(axis=1).sum(), x0)

    def test_min(self, rng):
        x0 = rng.permutation(np.arange(12, dtype=np.float64)).reshape(3, 4)
        check_grad(lambda t: t.min(axis=0).sum(), x0)

    def test_reshape(self, rng):
        check_grad(lambda t: (t.reshape(6, 2) ** 2).sum(), rng.normal(size=(3, 4)))

    def test_transpose(self, rng):
        w = rng.normal(size=(3, 4))
        check_grad(lambda t: (t.transpose(1, 0) * Tensor(w.T)).sum(),
                   rng.normal(size=(3, 4)))

    def test_getitem(self, rng):
        check_grad(lambda t: (t[1:, :2] ** 2).sum(), rng.normal(size=(4, 3)))

    def test_squeeze_expand(self, rng):
        check_grad(lambda t: (t.expand_dims(1).squeeze(1) ** 2).sum(),
                   rng.normal(size=(5,)))

    def test_concatenate(self, rng):
        b = rng.normal(size=(2, 3))
        check_grad(lambda t: (concatenate([t, Tensor(b)], axis=0) ** 2).sum(),
                   rng.normal(size=(2, 3)))

    def test_stack(self, rng):
        b = rng.normal(size=(4,))
        check_grad(lambda t: (stack([t, Tensor(b)], axis=0) ** 2).sum(),
                   rng.normal(size=(4,)))

    def test_split_roundtrip(self, rng):
        x0 = rng.normal(size=(2, 6))
        check_grad(lambda t: sum((p ** 2).sum() for p in split(t, 3, axis=1)), x0)

    def test_where(self, rng):
        cond = rng.random((5,)) > 0.5
        b = rng.normal(size=(5,))
        check_grad(lambda t: (where(cond, t, Tensor(b)) ** 2).sum(),
                   rng.normal(size=(5,)))

    def test_diamond_graph(self, rng):
        # y = x*x + x*x re-uses the same intermediate twice
        def build(t):
            s = t * t
            return (s + s).sum()
        check_grad(build, rng.normal(size=(4,)))


class TestHypothesisProperties:
    @given(hnp.arrays(np.float64, hnp.array_shapes(max_dims=3, max_side=5),
                      elements=st.floats(-10, 10)))
    @settings(max_examples=50, deadline=None)
    def test_sum_matches_numpy(self, data):
        assert Tensor(data).sum().item() == pytest.approx(float(data.sum()), abs=1e-9, rel=1e-9)

    @given(hnp.arrays(np.float64, st.tuples(st.integers(1, 5), st.integers(1, 5)),
                      elements=st.floats(-5, 5)))
    @settings(max_examples=50, deadline=None)
    def test_add_grad_is_ones(self, data):
        t = Tensor(data, requires_grad=True)
        (t + 1.0).sum().backward()
        np.testing.assert_allclose(t.grad, np.ones_like(data))

    @given(hnp.arrays(np.float64, st.tuples(st.integers(1, 4), st.integers(1, 4)),
                      elements=st.floats(-5, 5)),
           st.floats(0.1, 3.0))
    @settings(max_examples=50, deadline=None)
    def test_scalar_mul_grad(self, data, scale):
        t = Tensor(data, requires_grad=True)
        (t * scale).sum().backward()
        np.testing.assert_allclose(t.grad, np.full_like(data, scale))

    @given(hnp.arrays(np.float64, st.tuples(st.integers(1, 6)),
                      elements=st.floats(-3, 3)))
    @settings(max_examples=50, deadline=None)
    def test_tanh_bounded(self, data):
        out = Tensor(data).tanh().numpy()
        assert np.all(np.abs(out) <= 1.0)


class TestFactories:
    def test_zeros(self):
        z = zeros((2, 3))
        assert z.shape == (2, 3)
        assert np.all(z.numpy() == 0.0)

    def test_randn_seeded(self):
        a = np.random.default_rng(0)
        b = np.random.default_rng(0)
        from repro.mlcore.tensor import randn
        np.testing.assert_allclose(randn((3,), rng=a).numpy(), randn((3,), rng=b).numpy())
