"""Tests of learning-rate schedulers and gradient clipping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mlcore.layers import Linear
from repro.mlcore.losses import mse_loss
from repro.mlcore.optim import Adam, SGD
from repro.mlcore.schedulers import (CosineDecayScheduler, ExponentialDecayScheduler,
                                     WarmupScheduler, clip_gradient_norm,
                                     gradient_norm)
from repro.mlcore.module import Parameter
from repro.mlcore.tensor import Tensor


def make_optimizer(rng, lr=0.1):
    layer = Linear(4, 2, rng=rng)
    return layer, Adam(layer.parameters(), lr=lr, weight_decay=0.0)


class TestWarmup:
    def test_ramps_to_base_lr(self, rng):
        layer, opt = make_optimizer(rng, lr=0.1)
        scheduler = WarmupScheduler(opt, warmup_steps=10, start_factor=0.1)
        lrs = []
        for _ in range(12):
            scheduler.step()
            lrs.append(opt.param_groups[0].lr)
        assert lrs[0] < lrs[5] < lrs[9]
        assert lrs[-1] == pytest.approx(0.1)

    def test_invalid_args(self, rng):
        _, opt = make_optimizer(rng)
        with pytest.raises(ValueError):
            WarmupScheduler(opt, warmup_steps=0)
        with pytest.raises(ValueError):
            WarmupScheduler(opt, warmup_steps=5, start_factor=0.0)


class TestCosine:
    def test_decays_to_final_factor(self, rng):
        _, opt = make_optimizer(rng, lr=1.0)
        scheduler = CosineDecayScheduler(opt, total_steps=20, final_factor=0.1)
        for _ in range(20):
            scheduler.step()
        assert opt.param_groups[0].lr == pytest.approx(0.1, abs=1e-6)

    def test_monotone_after_warmup(self, rng):
        _, opt = make_optimizer(rng, lr=1.0)
        scheduler = CosineDecayScheduler(opt, total_steps=30, warmup_steps=5)
        lrs = []
        for _ in range(30):
            scheduler.step()
            lrs.append(opt.param_groups[0].lr)
        after_warmup = lrs[5:]
        assert all(a >= b - 1e-12 for a, b in zip(after_warmup[:-1], after_warmup[1:]))

    def test_invalid_args(self, rng):
        _, opt = make_optimizer(rng)
        with pytest.raises(ValueError):
            CosineDecayScheduler(opt, total_steps=0)
        with pytest.raises(ValueError):
            CosineDecayScheduler(opt, total_steps=10, warmup_steps=10)


class TestExponential:
    def test_decay_rate(self, rng):
        _, opt = make_optimizer(rng, lr=1.0)
        scheduler = ExponentialDecayScheduler(opt, gamma=0.5, every=2)
        for _ in range(4):
            scheduler.step()
        assert opt.param_groups[0].lr == pytest.approx(0.25)

    def test_invalid_args(self, rng):
        _, opt = make_optimizer(rng)
        with pytest.raises(ValueError):
            ExponentialDecayScheduler(opt, gamma=0.0)
        with pytest.raises(ValueError):
            ExponentialDecayScheduler(opt, gamma=0.5, every=0)


class TestSchedulerWithTraining:
    def test_warmup_then_train_converges(self, rng):
        x = rng.normal(size=(64, 4))
        w = rng.normal(size=(4, 1))
        y = x @ w
        layer = Linear(4, 1, bias=False, rng=rng)
        opt = SGD(layer.parameters(), lr=0.05)
        scheduler = WarmupScheduler(opt, warmup_steps=20)
        for _ in range(200):
            opt.zero_grad()
            loss = mse_loss(layer(Tensor(x)), Tensor(y))
            loss.backward()
            opt.step()
            scheduler.step()
        assert loss.item() < 1e-3


class TestGradientClipping:
    def test_clips_large_gradients(self):
        p = Parameter(np.zeros(10))
        p.grad = np.full(10, 10.0)
        norm_before = clip_gradient_norm([p], max_norm=1.0)
        assert norm_before == pytest.approx(np.sqrt(1000.0))
        assert gradient_norm([p]) == pytest.approx(1.0, rel=1e-9)

    def test_leaves_small_gradients(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 0.01)
        clip_gradient_norm([p], max_norm=1.0)
        np.testing.assert_allclose(p.grad, 0.01)

    def test_handles_missing_gradients(self):
        p = Parameter(np.zeros(4))
        assert clip_gradient_norm([p], max_norm=1.0) == 0.0
        assert gradient_norm([p]) == 0.0

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            clip_gradient_norm([], max_norm=0.0)
