"""Tests of WorkflowConfig serialisation and the preset registry."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import MLConfig, StreamingConfig, WorkflowConfig
from repro.workflow import (available_presets, get_preset, preset_rows,
                            register_preset)


class TestRoundTrip:
    @pytest.mark.parametrize("preset", available_presets())
    def test_to_dict_from_dict_is_identity(self, preset):
        config = get_preset(preset)
        assert WorkflowConfig.from_dict(config.to_dict()) == config

    @pytest.mark.parametrize("preset", available_presets())
    def test_file_round_trip(self, preset, tmp_path):
        config = get_preset(preset)
        path = str(tmp_path / f"{preset}.json")
        config.to_file(path)
        assert WorkflowConfig.from_file(path) == config

    def test_round_trip_preserves_tuple_types(self):
        config = WorkflowConfig.from_dict(get_preset("laptop").to_dict())
        assert isinstance(config.khi.grid_shape, tuple)
        assert isinstance(config.region_counts, tuple)
        assert isinstance(config.ml.model.encoder_channels, tuple)
        assert isinstance(config.ml.model.inn_hidden, tuple)

    def test_partial_dict_keeps_defaults(self):
        config = WorkflowConfig.from_dict({"seed": 7})
        assert config.seed == 7
        assert config.khi == WorkflowConfig().khi

    def test_nested_overrides_apply(self):
        config = WorkflowConfig.from_dict(
            {"ml": {"n_rep": 9, "model": {"n_input_points": 32}},
             "streaming": {"queue_limit": 5}})
        assert config.ml.n_rep == 9
        assert config.ml.model.n_input_points == 32
        assert config.streaming.queue_limit == 5


class TestValidation:
    def test_unknown_top_level_key_lists_valid(self):
        with pytest.raises(ValueError) as excinfo:
            WorkflowConfig.from_dict({"khii": {}})
        message = str(excinfo.value)
        assert "khii" in message and "valid keys" in message and "khi" in message

    def test_unknown_nested_key_lists_valid(self):
        with pytest.raises(ValueError, match="KHIConfig"):
            WorkflowConfig.from_dict({"khi": {"grid_shapes": [4, 4, 4]}})
        with pytest.raises(ValueError, match="ModelConfig"):
            WorkflowConfig.from_dict({"ml": {"model": {"latent": 4}}})

    def test_invalid_preset_name_lists_choices(self):
        with pytest.raises(ValueError) as excinfo:
            get_preset("exascale")
        message = str(excinfo.value)
        for name in available_presets():
            assert name in message

    def test_consistency_still_enforced_after_load(self):
        data = get_preset("laptop").to_dict()
        data["n_detector_frequencies"] = 3  # 2*3 != spectrum_dim 16
        with pytest.raises(ValueError, match="spectrum_dim"):
            WorkflowConfig.from_dict(data)


class TestPresetRegistry:
    def test_builtin_presets_present(self):
        assert {"laptop", "paper", "cli-small", "bench-tiny"} <= set(available_presets())

    def test_presets_are_fresh_instances(self):
        first, second = get_preset("laptop"), get_preset("laptop")
        assert first == second and first is not second
        assert first.ml is not second.ml

    def test_paper_preset_matches_section_iv(self):
        config = get_preset("paper")
        assert config.khi.grid_shape == (192, 256, 12)
        assert config.ml.model.n_input_points == 30_000
        assert config.ml.model.latent_dim == 544
        assert config.n_detector_directions * config.n_detector_frequencies == 128

    def test_register_preset_and_overwrite_guard(self):
        name = "test-only-preset"
        register_preset(name, lambda: WorkflowConfig(), overwrite=True)
        try:
            assert get_preset(name) == WorkflowConfig()
            with pytest.raises(ValueError, match="already registered"):
                register_preset(name, lambda: WorkflowConfig())
        finally:
            from repro.workflow import presets
            presets._PRESETS.pop(name, None)

    def test_preset_rows_digest(self):
        rows = {row["name"]: row for row in preset_rows()}
        assert rows["paper"]["grid"] == "192x256x12"
        assert rows["bench-tiny"]["n_input_points"] == 48


class TestReplaceComposition:
    def test_presets_compose_with_dataclasses_replace(self):
        config = get_preset("bench-tiny")
        tweaked = dataclasses.replace(
            config, ml=dataclasses.replace(config.ml, n_rep=7), seed=99)
        assert tweaked.ml.n_rep == 7 and tweaked.seed == 99
        assert get_preset("bench-tiny").ml.n_rep == 2  # registry unaffected
