"""Edge-case tests of the fan-out layer: consumers leaving mid-run,
back-pressure against a full bounded queue, and zero-consumer sessions."""

from __future__ import annotations

import threading

import pytest

from repro.streaming.broker import (QueueFullPolicy, SSTBroker,
                                    StreamClosedError)
from repro.streaming.step import Step
from repro.streaming.variable import Block, Variable
from repro.workflow import FanOutBroker, WorkflowBuilder
from tests.core.test_artificial_scientist import tiny_config


def make_step(index: int) -> Step:
    import numpy as np

    step = Step(index=index)
    variable = Variable("payload")
    variable.add_block(Block(rank=0, offset=0,
                             data=np.arange(4, dtype=np.float64)))
    step.put(variable)
    return step


class TestZeroConsumers:
    def test_fanout_broker_requires_a_downstream(self):
        with pytest.raises(ValueError, match="at least one downstream"):
            FanOutBroker("stream", [])

    def test_session_requires_a_consumer(self):
        with pytest.raises(ValueError, match="at least one consumer"):
            WorkflowBuilder().config(tiny_config()).replace_consumers([]).build()

    def test_put_with_every_queue_closed_raises(self):
        downstream = SSTBroker("s#only", queue_limit=2)
        fanout = FanOutBroker("s", [downstream])
        downstream.close()
        assert fanout.closed
        with pytest.raises(StreamClosedError, match="no live consumers"):
            fanout.put_step(make_step(0))
        # nothing was accounted for the failed put
        assert fanout.steps_written == 0


class TestConsumerUnregisteredMidRun:
    def test_surviving_consumers_keep_receiving(self):
        fast = SSTBroker("s#fast", queue_limit=8)
        doomed = SSTBroker("s#doomed", queue_limit=8)
        fanout = FanOutBroker("s", [fast, doomed])
        fanout.put_step(make_step(0))
        doomed.close()  # the consumer application goes away mid-run
        for index in (1, 2):
            fanout.put_step(make_step(index))
        assert fanout.steps_written == 3
        assert fast.queued_steps == 3
        assert doomed.queued_steps == 1  # only what arrived before it left
        assert not fanout.closed

    def test_session_survives_a_monitor_leaving_mid_run(self):
        session = (WorkflowBuilder().config(tiny_config(n_rep=1))
                   .driver("serial")
                   .add_consumer("monitor", kind="histogram-monitor")
                   .build())

        def unregister_monitor(sess, step_index):
            if step_index == 1:
                sess.brokers["monitor"].close()

        session.hooks.on_step.append(unregister_monitor)
        result = session.run(4)
        assert result.ok, (result.producer_exception,
                           result.consumer_exceptions)
        # the trainer saw every iteration even though the monitor left
        assert result.report.iterations_streamed == 4
        assert result.report.training_iterations == 4
        monitor = session.consumers["monitor"]
        assert monitor.iterations_consumed < 4

    def test_close_race_between_check_and_put_is_skipped(self):
        """A downstream closing between the ``closed`` check and the put is
        treated like any other departed consumer, not an error."""
        survivor = SSTBroker("s#a", queue_limit=4)
        racy = SSTBroker("s#b", queue_limit=4)
        original_put = racy.put_step

        def closing_put(step, timeout=None):
            racy.close()
            return original_put(step, timeout=timeout)

        racy.put_step = closing_put
        fanout = FanOutBroker("s", [survivor, racy])
        fanout.put_step(make_step(0))
        assert survivor.queued_steps == 1
        assert fanout.steps_written == 1


class TestSlowConsumerBackPressure:
    def test_full_bounded_queue_blocks_until_drained(self):
        fast = SSTBroker("s#fast", queue_limit=8)
        slow = SSTBroker("s#slow", queue_limit=1,
                         policy=QueueFullPolicy.BLOCK)
        fanout = FanOutBroker("s", [fast, slow])
        fanout.put_step(make_step(0))  # fills the slow queue

        # with nobody draining, the tee times out on the full queue
        with pytest.raises(TimeoutError):
            fanout.put_step(make_step(1), timeout=0.05)

        # a reader draining the slow queue releases the writer
        release = threading.Timer(0.05, slow.get_step)
        release.start()
        try:
            fanout.put_step(make_step(2), timeout=5.0)
        finally:
            release.join()
        assert slow.queued_steps == 1
        assert fast.queued_steps >= 2

    def test_queue_depth_reports_the_slowest_consumer(self):
        fast = SSTBroker("s#fast", queue_limit=8)
        slow = SSTBroker("s#slow", queue_limit=8)
        fanout = FanOutBroker("s", [fast, slow])
        for index in range(3):
            fanout.put_step(make_step(index))
        fast.get_step()
        fast.get_step()
        assert fanout.queued_steps == 3  # the slow queue dominates
        assert fanout.queue_limit == 8
