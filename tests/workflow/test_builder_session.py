"""Tests of the composable WorkflowBuilder / WorkflowSession API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workflow import (HistogramMonitorConsumer, WorkflowBuilder,
                            WorkflowSession, available_consumers,
                            get_consumer_factory, register_consumer)
from tests.core.test_artificial_scientist import tiny_config


def build_session(n_rep=1, driver="serial", **builder_calls):
    return WorkflowBuilder().config(tiny_config(n_rep=n_rep)).driver(driver).build()


class TestSessionBasics:
    def test_run_returns_uniform_result(self):
        result = build_session(n_rep=2).run(3)
        assert result.ok
        assert result.driver == "serial"
        report = result.report
        assert report.iterations_streamed == 3
        assert report.samples_streamed == 12
        assert report.training_iterations == 6
        assert "mlapp" in result.consumer_summaries
        assert result.consumer_summaries["mlapp"]["training_iterations"] == 6

    def test_session_matches_seed_accounting(self):
        """The session with default wiring reproduces the seed facade exactly."""
        from repro.core import ArtificialScientist

        facade_report = ArtificialScientist(tiny_config(n_rep=1)).run(3)
        session_report = build_session(n_rep=1).run(3).report
        assert session_report.iterations_streamed == facade_report.iterations_streamed
        assert session_report.samples_streamed == facade_report.samples_streamed
        assert session_report.training_iterations == facade_report.training_iterations
        np.testing.assert_allclose(session_report.loss_history_total,
                                   facade_report.loss_history_total)

    def test_run_twice_raises_session_already_consumed(self):
        session = build_session()
        session.run(2)
        with pytest.raises(RuntimeError, match="session already consumed"):
            session.run(1)

    def test_facade_run_twice_raises(self):
        from repro.core import ArtificialScientist

        scientist = ArtificialScientist(tiny_config())
        scientist.run(2)
        with pytest.raises(RuntimeError, match="session already consumed"):
            scientist.run(1)

    def test_invalid_steps(self):
        session = build_session()
        with pytest.raises(ValueError):
            session.run(0)
        # a failed validation does not consume the session
        assert not session.consumed
        assert session.run(1).ok

    def test_evaluate_after_run(self):
        session = build_session()
        session.run(3, keep_for_evaluation=2)
        report = session.evaluate(n_posterior_samples=2)
        assert report.n_evaluation_samples > 0

    def test_builder_preset_and_driver_names(self):
        session = (WorkflowBuilder().preset("bench-tiny")
                   .driver("threaded").build())
        assert session.driver.name == "threaded"
        assert session.config.ml.model.n_input_points == 48

    def test_builder_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="valid presets"):
            WorkflowBuilder().preset("gigantic")
        with pytest.raises(ValueError, match="valid drivers"):
            WorkflowBuilder().driver("quantum")
        with pytest.raises(ValueError, match="valid kinds"):
            WorkflowBuilder().add_consumer("x", kind="does-not-exist")


class TestFanOut:
    def test_two_consumers_see_every_iteration(self):
        session = (WorkflowBuilder().config(tiny_config(n_rep=1))
                   .driver("serial")
                   .add_consumer("monitor", kind="histogram-monitor")
                   .build())
        result = session.run(4)
        assert result.ok
        assert result.report.iterations_streamed == 4
        monitor = session.consumers["monitor"]
        assert isinstance(monitor, HistogramMonitorConsumer)
        assert monitor.iterations_consumed == 4
        assert monitor.samples_consumed == result.report.samples_streamed
        assert sum(monitor.momentum_counts) > 0
        # the trainer is unaffected by the second consumer
        assert result.report.training_iterations == 4

    def test_consumers_get_isolated_buffers(self):
        """A consumer mutating its loaded arrays must not affect the trainer."""
        class VandalConsumer(HistogramMonitorConsumer):
            def consume(self, max_iterations=None, on_iteration=None):
                consumed = 0
                for iteration in self.series.read_iterations():
                    records = iteration.get_particles("ml_samples")
                    clouds = records["point_clouds"].load_scalar()
                    np.asarray(clouds)[...] = 1e9  # corrupt in place
                    self.iterations_consumed += 1
                    consumed += 1
                    if max_iterations and consumed >= max_iterations:
                        break
                return consumed

        def run_losses(with_vandal):
            builder = WorkflowBuilder().config(tiny_config(n_rep=1)).driver("serial")
            if with_vandal:
                builder.add_consumer("vandal", factory=lambda name, series, s, rng:
                                     VandalConsumer(name, series))
            result = builder.build().run(3)
            assert result.ok
            return result.report.loss_history_total

        np.testing.assert_array_equal(run_losses(True), run_losses(False))

    def test_duplicate_consumer_names_rejected(self):
        builder = (WorkflowBuilder().config(tiny_config())
                   .add_consumer("mlapp", kind="histogram-monitor"))
        with pytest.raises(ValueError, match="duplicate consumer names"):
            builder.build()

    def test_custom_consumer_registration(self):
        seen = []

        class CountingConsumer(HistogramMonitorConsumer):
            def consume(self, max_iterations=None, on_iteration=None):
                consumed = super().consume(max_iterations, on_iteration)
                seen.append(consumed)
                return consumed

        register_consumer("counting", lambda name, series, session, rng:
                          CountingConsumer(name, series), overwrite=True)
        try:
            assert "counting" in available_consumers()
            session = (WorkflowBuilder().config(tiny_config())
                       .add_consumer("counter", kind="counting").build())
            assert session.run(2).ok
            assert sum(seen) == 2
            assert get_consumer_factory("counting") is not None
        finally:
            from repro.workflow import consumers
            consumers._CONSUMER_FACTORIES.pop("counting", None)


class TestHooks:
    def test_lifecycle_hooks_fire(self):
        events = {"steps": [], "iterations": [], "run_end": []}
        session = (
            WorkflowBuilder().config(tiny_config())
            .on_step(lambda s, i: events["steps"].append(i))
            .on_iteration_consumed(
                lambda s, name, index, n: events["iterations"].append((name, index, n)))
            .on_run_end(lambda s, result: events["run_end"].append(result))
            .build())
        result = session.run(3)
        assert events["steps"] == [0, 1, 2]
        assert len(events["iterations"]) == 3
        assert all(name == "mlapp" and n == 4 for name, _, n in events["iterations"])
        assert events["run_end"] == [result]

    def test_iteration_hook_fires_per_consumer(self):
        names = []
        session = (
            WorkflowBuilder().config(tiny_config())
            .add_consumer("monitor", kind="histogram-monitor")
            .on_iteration_consumed(lambda s, name, index, n: names.append(name))
            .build())
        assert session.run(2).ok
        assert names.count("mlapp") == 2
        assert names.count("monitor") == 2


class TestSessionAccessors:
    def test_seed_compatible_surface(self):
        session = build_session()
        assert session.broker is session.brokers["mlapp"]
        assert session.mlapp is session.consumers["mlapp"].mlapp
        assert session.model is session.mlapp.model
        assert session.reader_series is session.consumer_series["mlapp"]
        assert session.primary_name == WorkflowSession.PRIMARY_CONSUMER
