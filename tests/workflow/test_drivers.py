"""Tests of the execution-driver strategy layer (serial/threaded/pipelined)."""

from __future__ import annotations

import pytest

from repro.core import ArtificialScientist
from repro.core.threaded import ThreadedWorkflowRunner
from repro.workflow import (PipelinedDriver, WorkflowBuilder, available_drivers,
                            get_driver)
from tests.core.test_artificial_scientist import tiny_config


def run_with(driver, n_steps=3, n_rep=1, **kwargs):
    session = (WorkflowBuilder().config(tiny_config(n_rep=n_rep))
               .driver(driver, **kwargs).build())
    return session.run(n_steps)


class TestDriverParity:
    @pytest.mark.parametrize("driver", available_drivers())
    def test_every_driver_same_schema_and_accounting(self, driver):
        result = run_with(driver)
        assert result.ok, (result.producer_exception, result.consumer_exceptions)
        assert result.driver == driver
        report = result.report
        assert report.iterations_streamed == 3
        assert report.samples_streamed == 12
        assert report.training_iterations == 3
        assert report.bytes_streamed > 0
        assert report.final_losses["total"] > 0

    def test_all_drivers_identical_summary_keys(self):
        summaries = [set(run_with(d).report.summary()) for d in available_drivers()]
        assert all(keys == summaries[0] for keys in summaries)
        results = [run_with(d) for d in available_drivers()]
        assert all(set(r.summary()) == set(results[0].summary()) for r in results)

    def test_queue_depth_respects_limit(self):
        result = run_with("threaded", n_steps=4)
        session_limit = tiny_config().streaming.queue_limit
        assert 0 <= result.max_queue_depth <= session_limit

    def test_pipelined_bounds_in_flight(self):
        result = run_with("pipelined", n_steps=5, max_in_flight=2)
        assert result.ok
        assert result.report.iterations_streamed == 5
        assert result.queue_depth_samples  # the timeline is recorded
        assert max(result.queue_depth_samples) <= 2

    def test_pipelined_rejects_bad_in_flight(self):
        with pytest.raises(ValueError):
            PipelinedDriver(max_in_flight=0)

    def test_get_driver_error_lists_choices(self):
        with pytest.raises(ValueError) as excinfo:
            get_driver("warp")
        for name in available_drivers():
            assert name in str(excinfo.value)


class TestFailureSurfacing:
    def test_producer_failure_is_captured_not_raised(self):
        session = WorkflowBuilder().config(tiny_config()).driver("threaded").build()
        boom = RuntimeError("simulated producer crash")

        def exploding_step():
            raise boom
        session.simulation.step = exploding_step
        result = session.run(3)
        assert result.producer_exception is boom
        assert not result.consumer_exceptions

    def test_consumer_failure_is_captured_per_name(self):
        session = WorkflowBuilder().config(tiny_config()).driver("serial").build()
        boom = RuntimeError("simulated consumer crash")

        def exploding_consume(max_iterations=None, on_iteration=None):
            raise boom
        session.consumers["mlapp"].consume = exploding_consume
        result = session.run(2)
        assert result.consumer_exceptions == {"mlapp": boom}
        assert not result.ok
        # the secondary "no live consumers left" stream shutdown must not be
        # misreported as a producer failure (it would mask the root cause)
        assert result.producer_exception is None
        with pytest.raises(RuntimeError, match="simulated consumer crash"):
            result.raise_if_failed()

    def test_both_failures_surfaced_together(self):
        session = WorkflowBuilder().config(tiny_config()).driver("threaded").build()

        def exploding_step():
            raise RuntimeError("producer crash")

        def exploding_consume(max_iterations=None, on_iteration=None):
            raise RuntimeError("consumer crash")
        session.simulation.step = exploding_step
        session.consumers["mlapp"].consume = exploding_consume
        result = session.run(2)
        assert isinstance(result.producer_exception, RuntimeError)
        assert isinstance(result.consumer_exceptions.get("mlapp"), RuntimeError)
        with pytest.raises(RuntimeError):
            result.raise_if_failed()

    def test_surviving_consumer_keeps_stream_alive(self):
        """One consumer dying must not starve the other (fan-out resilience)."""
        session = (WorkflowBuilder().config(tiny_config())
                   .driver("threaded")
                   .add_consumer("monitor", kind="histogram-monitor")
                   .build())

        def exploding_consume(max_iterations=None, on_iteration=None):
            raise RuntimeError("monitor crash")
        session.consumers["monitor"].consume = exploding_consume
        result = session.run(3)
        assert "monitor" in result.consumer_exceptions
        assert result.producer_exception is None
        assert result.report.iterations_streamed == 3
        assert result.report.training_iterations == 3


class TestLegacyThreadedRunner:
    def test_seed_result_still_produced(self):
        runner = ThreadedWorkflowRunner(ArtificialScientist(tiny_config(n_rep=1)))
        result = runner.run(3)
        assert result.ok
        assert result.consumer_exception is None
        assert result.report.iterations_streamed == 3

    def test_runner_surfaces_both_exceptions(self):
        scientist = ArtificialScientist(tiny_config())
        producer_boom = RuntimeError("producer crash")
        consumer_boom = RuntimeError("consumer crash")

        def exploding_step():
            raise producer_boom

        def exploding_consume(max_iterations=None, keep_for_evaluation=0,
                              on_iteration=None):
            raise consumer_boom
        scientist.simulation.step = exploding_step
        scientist.mlapp.consume = exploding_consume
        result = ThreadedWorkflowRunner(scientist).run(2)
        assert result.producer_exception is producer_boom
        assert result.consumer_exception is consumer_boom
        assert not result.ok

    def test_runner_marks_session_consumed(self):
        scientist = ArtificialScientist(tiny_config(n_rep=1))
        runner = ThreadedWorkflowRunner(scientist)
        runner.run(2)
        with pytest.raises(RuntimeError, match="session already consumed"):
            scientist.run(1)
        with pytest.raises(RuntimeError, match="session already consumed"):
            runner.run(1)
