"""Tests of the persisted benchmark histories (``BENCH_<topic>.json``)."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.utils.benchjson import (SCHEMA_VERSION, append_run, bench_path,
                                   git_revision, latest_run, load_history,
                                   make_record)


class TestBenchPath:
    def test_builds_expected_filename(self, tmp_path):
        assert bench_path("pic_hotpath", str(tmp_path)) == \
            os.path.join(str(tmp_path), "BENCH_pic_hotpath.json")

    @pytest.mark.parametrize("topic", ["", "a/b", "a\\b", "a b"])
    def test_rejects_unsafe_topics(self, topic):
        with pytest.raises(ValueError):
            bench_path(topic)


class TestAppendRun:
    def test_creates_then_appends(self, tmp_path):
        directory = str(tmp_path)
        path = append_run("t", {"n": 1}, {"rate": 2.0}, directory)
        assert os.path.exists(path)
        append_run("t", {"n": 2}, {"rate": 3.0}, directory)
        history = load_history(path)
        assert history["schema_version"] == SCHEMA_VERSION
        assert history["topic"] == "t"
        assert [run["params"]["n"] for run in history["runs"]] == [1, 2]
        for run in history["runs"]:
            assert "timestamp" in run and "git_revision" in run

    def test_numpy_values_are_serialised(self, tmp_path):
        path = append_run("t", {"shape": np.array([4, 5])},
                          {"rate": np.float64(1.5)}, str(tmp_path))
        with open(path) as handle:
            data = json.load(handle)
        assert data["runs"][0]["params"]["shape"] == [4, 5]
        assert data["runs"][0]["metrics"]["rate"] == 1.5

    def test_refuses_topic_mismatch(self, tmp_path):
        directory = str(tmp_path)
        path = append_run("alpha", {}, {}, directory)
        os.rename(path, bench_path("beta", directory))
        with pytest.raises(ValueError, match="refusing"):
            append_run("beta", {}, {}, directory)

    def test_creates_missing_directory(self, tmp_path):
        directory = str(tmp_path / "bench-out")
        path = append_run("t", {}, {}, directory)
        assert os.path.exists(path)

    def test_no_tmp_file_left_behind(self, tmp_path):
        append_run("t", {}, {}, str(tmp_path))
        assert [name for name in os.listdir(tmp_path)
                if name.endswith(".tmp")] == []


class TestLoadHistory:
    def test_rejects_non_history_json(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ValueError, match="not a benchmark history"):
            load_history(str(path))

    def test_rejects_unknown_schema_version(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps({"schema_version": 99, "topic": "bad",
                                    "runs": []}))
        with pytest.raises(ValueError, match="schema version"):
            load_history(str(path))

    def test_rejects_non_list_runs(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps({"schema_version": SCHEMA_VERSION,
                                    "topic": "bad", "runs": {}}))
        with pytest.raises(ValueError, match="non-list"):
            load_history(str(path))


class TestLatestRun:
    def test_none_without_history(self, tmp_path):
        assert latest_run("nothing", str(tmp_path)) is None

    def test_returns_most_recent(self, tmp_path):
        directory = str(tmp_path)
        append_run("t", {"n": 1}, {}, directory)
        append_run("t", {"n": 2}, {}, directory)
        assert latest_run("t", directory)["params"]["n"] == 2


class TestGitRevision:
    def test_inside_repo_returns_short_hash(self):
        revision = git_revision(os.path.dirname(os.path.abspath(__file__)))
        assert revision is None or (1 <= len(revision) <= 40)

    def test_outside_repo_returns_none(self, tmp_path):
        assert git_revision(str(tmp_path)) is None

    def test_record_in_non_repo_directory(self, tmp_path):
        record = make_record({"a": 1}, {"b": 2}, str(tmp_path))
        assert record["git_revision"] is None
        assert record["params"] == {"a": 1}
