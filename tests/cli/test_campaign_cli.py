"""Smoke tests of the ``campaign run|status|report|submit|watch`` and
``serve`` CLI subcommands."""

from __future__ import annotations

import contextlib
import json
import threading

import pytest

from repro.campaign import CampaignSpec, get_campaign_preset
from repro.cli import main as cli_main


@pytest.fixture
def tiny_campaign(tmp_path):
    """A 2-run campaign spec file + store path inside tmp_path."""
    spec = get_campaign_preset("campaign-smoke")
    data = spec.to_dict()
    data.update(name="cli-tiny", repetitions=1)
    spec = CampaignSpec.from_dict(data)
    spec_path = str(tmp_path / "campaign.json")
    spec.to_file(spec_path)
    return spec_path, str(tmp_path / "store.jsonl")


class TestCampaignRun:
    def test_run_and_resume(self, capsys, tiny_campaign):
        spec_path, store = tiny_campaign
        assert cli_main(["campaign", "run", "--spec", spec_path,
                         "--store", store]) == 0
        out = capsys.readouterr().out
        assert "2 runs resolved" in out
        assert "completed: 2" in out
        # a re-launch skips everything
        assert cli_main(["campaign", "run", "--spec", spec_path,
                         "--store", store]) == 0
        out = capsys.readouterr().out
        assert "skipped: 2" in out and "executed: 0" in out

    def test_run_with_preset_and_json(self, capsys, tmp_path):
        store = str(tmp_path / "store.jsonl")
        assert cli_main(["campaign", "run", "--preset", "campaign-smoke",
                         "--store", store, "--max-runs", "2",
                         "--executor", "thread", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["campaign"] == "campaign-smoke"
        assert payload["executed"] == 2
        assert payload["deferred"] == 6
        assert payload["done"] is False

    def test_requires_spec_or_preset(self, capsys):
        assert cli_main(["campaign", "run"]) == 2
        assert "--spec FILE or --preset NAME" in capsys.readouterr().err
        assert cli_main(["campaign", "run", "--preset", "campaign-smoke",
                         "--spec", "x.json"]) == 2
        assert "not both" in capsys.readouterr().err

    def test_unknown_preset_and_executor_fail_cleanly(self, capsys):
        assert cli_main(["campaign", "run", "--preset", "warp"]) == 2
        assert "valid campaign presets" in capsys.readouterr().err
        assert cli_main(["campaign", "run", "--preset", "campaign-smoke",
                         "--executor", "quantum"]) == 2
        assert "valid executors" in capsys.readouterr().err

    def test_negative_max_runs_fails_cleanly(self, capsys):
        assert cli_main(["campaign", "run", "--preset", "campaign-smoke",
                         "--max-runs", "-1"]) == 2
        assert "max_runs must be >= 0" in capsys.readouterr().err


class TestShardedAndCachedRuns:
    def test_sharded_flags_imply_the_sharded_executor(self, capsys,
                                                      tiny_campaign):
        spec_path, store = tiny_campaign
        assert cli_main(["campaign", "run", "--spec", spec_path,
                         "--store", store, "--shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "executor 'sharded'" in out
        assert "shards: shard-0:" in out
        assert "completed: 2" in out

    def test_spec_routing_selects_sharding_by_default(self, capsys, tmp_path):
        store = str(tmp_path / "store.jsonl")
        assert cli_main(["campaign", "run", "--preset",
                         "campaign-smoke-sharded", "--store", store,
                         "--max-runs", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["executed"] == 2
        assert sorted(payload["shards"]) == ["shard-0", "shard-1", "shard-2",
                                             "shard-3"]

    def test_explicit_executor_still_wins_over_spec_routing(self, capsys,
                                                            tmp_path):
        store = str(tmp_path / "store.jsonl")
        assert cli_main(["campaign", "run", "--preset",
                         "campaign-smoke-sharded", "--store", store,
                         "--max-runs", "1", "--executor", "serial"]) == 0
        assert "executor 'serial'" in capsys.readouterr().out

    def test_sharding_flags_conflict_with_other_executors(self, capsys):
        assert cli_main(["campaign", "run", "--preset", "campaign-smoke",
                         "--executor", "thread", "--shards", "2"]) == 2
        assert "--executor sharded" in capsys.readouterr().err

    def test_invalid_sharding_options_fail_cleanly(self, capsys,
                                                   tiny_campaign):
        spec_path, store = tiny_campaign
        assert cli_main(["campaign", "run", "--spec", spec_path,
                         "--store", store, "--shards", "0"]) == 2
        assert "shards must be" in capsys.readouterr().err
        assert cli_main(["campaign", "run", "--spec", spec_path,
                         "--store", store, "--route", "teleport"]) == 2
        assert "valid routes" in capsys.readouterr().err

    def test_out_of_range_explicit_assignment_fails_cleanly(
            self, capsys, tmp_path, tiny_campaign):
        """A runtime routing failure (only detectable once the shard count
        meets the assignments) must exit 2 with a one-line error, not a
        traceback."""
        spec_path, store = tiny_campaign
        spec = CampaignSpec.from_file(spec_path)
        run_id = spec.resolve()[0].run_id
        bad = dict(spec.to_dict(),
                   routing={"shards": 2, "route": "explicit",
                            "assignments": {run_id: 5}})
        bad_path = str(tmp_path / "bad-routing.json")
        CampaignSpec.from_dict(bad).to_file(bad_path)
        assert cli_main(["campaign", "run", "--spec", bad_path,
                         "--store", store]) == 2
        assert "outside 0..1" in capsys.readouterr().err

    def test_cache_dir_serves_a_second_store_without_executing(
            self, capsys, tmp_path, tiny_campaign):
        spec_path, _ = tiny_campaign
        cache_dir = str(tmp_path / "cache")
        first = str(tmp_path / "first.jsonl")
        assert cli_main(["campaign", "run", "--spec", spec_path,
                         "--store", first, "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "cache: 0 hit(s) of 2 pending (0%)" in out

        second = str(tmp_path / "second.jsonl")
        assert cli_main(["campaign", "run", "--spec", spec_path,
                         "--store", second, "--cache-dir", cache_dir,
                         "--executor", "sharded", "--shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "cache: 2 hit(s) of 2 pending (100%)" in out
        assert "cache_hits: 2, executed: 0" in out
        assert "(cached)" in out

        # the report over the cache-served store counts the provenance
        assert cli_main(["campaign", "report", "--spec", spec_path,
                         "--store", second]) == 0
        assert "served from cache: 2 of 2" in capsys.readouterr().out

    def test_cache_stats_in_json_output(self, capsys, tmp_path,
                                        tiny_campaign):
        spec_path, _ = tiny_campaign
        cache_dir = str(tmp_path / "cache")
        assert cli_main(["campaign", "run", "--spec", spec_path,
                         "--store", str(tmp_path / "a.jsonl"),
                         "--cache-dir", cache_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache"] == {"hits": 0, "misses": 2, "dir": cache_dir}
        assert cli_main(["campaign", "run", "--spec", spec_path,
                         "--store", str(tmp_path / "b.jsonl"),
                         "--cache-dir", cache_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache_hits"] == 2 and payload["executed"] == 0
        assert payload["cache"] == {"hits": 2, "misses": 0, "dir": cache_dir}


class TestCampaignStatusAndReport:
    def test_status_before_and_after(self, capsys, tiny_campaign):
        spec_path, store = tiny_campaign
        assert cli_main(["campaign", "status", "--spec", spec_path,
                         "--store", store, "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status == {"campaign": "cli-tiny", "store": store,
                          "total_runs": 2, "completed": 0, "failed": 0,
                          "pending": 2, "cached": 0, "runs_per_sec": None,
                          "done": False}
        assert cli_main(["campaign", "run", "--spec", spec_path,
                         "--store", store]) == 0
        capsys.readouterr()
        assert cli_main(["campaign", "status", "--spec", spec_path,
                         "--store", store, "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["completed"] == 2 and status["done"] is True

    def test_report_text_and_json(self, capsys, tiny_campaign):
        spec_path, store = tiny_campaign
        assert cli_main(["campaign", "run", "--spec", spec_path,
                         "--store", store]) == 0
        capsys.readouterr()
        assert cli_main(["campaign", "report", "--spec", spec_path,
                         "--store", store]) == 0
        out = capsys.readouterr().out
        assert "best run" in out
        assert "ml.base_learning_rate" in out
        assert cli_main(["campaign", "report", "--spec", spec_path,
                         "--store", store, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_completed"] == 2
        assert payload["best_run"]["final_total_loss"] == \
            payload["loss"]["min"]

    def test_status_and_report_scope_to_the_spec(self, capsys, tmp_path,
                                                 tiny_campaign):
        """Records of another spec in a shared store must not skew counts."""
        spec_path, store = tiny_campaign
        assert cli_main(["campaign", "run", "--spec", spec_path,
                         "--store", store]) == 0
        capsys.readouterr()
        # a different campaign (different seed -> disjoint run ids) sharing
        # the store: the first spec still reports only its own runs
        other = CampaignSpec.from_file(spec_path)
        other_path = str(tmp_path / "other.json")
        CampaignSpec.from_dict({**other.to_dict(), "seed": 999}).to_file(other_path)
        assert cli_main(["campaign", "status", "--spec", other_path,
                         "--store", store, "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["completed"] == 0 and status["pending"] == 2
        assert cli_main(["campaign", "report", "--spec", other_path,
                         "--store", store]) == 2
        assert "no recorded runs" in capsys.readouterr().err
        assert cli_main(["campaign", "status", "--spec", spec_path,
                         "--store", store, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["completed"] == 2

    def test_report_without_records_errors(self, capsys, tiny_campaign):
        spec_path, store = tiny_campaign
        assert cli_main(["campaign", "report", "--spec", spec_path,
                         "--store", store]) == 2
        assert "no recorded runs" in capsys.readouterr().err


@contextlib.contextmanager
def live_service(tmp_path):
    """An in-thread campaign service (real worker) for submit/watch tests."""
    from repro.service.server import create_server

    server = create_server(store_dir=str(tmp_path / "svc"), keepalive_s=0.5)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    try:
        yield server.url
    finally:
        server.shutdown_service(timeout=10)
        thread.join(timeout=5)


class TestServiceCLI:
    def test_submit_then_watch(self, capsys, tmp_path, tiny_campaign):
        spec_path, _ = tiny_campaign
        with live_service(tmp_path) as url:
            assert cli_main(["campaign", "submit", "--spec", spec_path,
                             "--url", url, "--json"]) == 0
            document = json.loads(capsys.readouterr().out)
            assert document["created"] is True and document["started"] is True
            assert document["total_runs"] == 2
            assert cli_main(["campaign", "watch", document["campaign_id"],
                             "--url", url, "--json"]) == 0
            lines = [json.loads(line) for line in
                     capsys.readouterr().out.splitlines()]
            assert lines[-1]["event"] == "done"
            assert lines[-1]["data"]["state"] == "completed"
            run_events = [line for line in lines
                          if line["event"] in ("run", "snapshot")]
            assert len(run_events) == 2

    def test_watch_text_output_and_resubmit(self, capsys, tmp_path,
                                            tiny_campaign):
        spec_path, _ = tiny_campaign
        with live_service(tmp_path) as url:
            assert cli_main(["campaign", "submit", "--spec", spec_path,
                             "--url", url]) == 0
            out = capsys.readouterr().out
            assert "submitted as" in out and "campaign watch" in out
            campaign_id = [word for word in out.split()
                           if word.startswith("cli-tiny-")][0]
            assert cli_main(["campaign", "watch", campaign_id,
                             "--url", url]) == 0
            out = capsys.readouterr().out
            assert "done: " in out and "state: completed" in out
            # a second submit attaches to the finished campaign
            assert cli_main(["campaign", "submit", "--spec", spec_path,
                             "--url", url, "--json"]) == 0
            document = json.loads(capsys.readouterr().out)
            assert document["created"] is False
            assert document["started"] is False

    def test_watch_unknown_campaign_fails_cleanly(self, capsys, tmp_path):
        with live_service(tmp_path) as url:
            assert cli_main(["campaign", "watch", "nope", "--url", url]) == 2
            assert "HTTP 404" in capsys.readouterr().err

    def test_submit_unreachable_service_fails_cleanly(self, capsys,
                                                      tiny_campaign):
        spec_path, _ = tiny_campaign
        assert cli_main(["campaign", "submit", "--spec", spec_path,
                         "--url", "http://127.0.0.1:9"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_subprocess_banner_and_health(self, tmp_path):
        """``serve --port 0`` binds a free port, prints the banner and
        answers ``/v1/health`` until interrupted."""
        import signal
        import subprocess
        import sys as _sys

        from repro.service.client import ServiceClient

        process = subprocess.Popen(
            [_sys.executable, "-u", "-m", "repro.cli", "serve", "--port", "0",
             "--store-dir", str(tmp_path / "svc")],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        try:
            banner = process.stdout.readline()
            assert "campaign service listening on http://" in banner
            url = [word for word in banner.split()
                   if word.startswith("http://")][0]
            health = ServiceClient(url).wait_ready(timeout=10)
            assert health["status"] == "ok"
        finally:
            process.send_signal(signal.SIGINT)
            assert process.wait(timeout=15) == 0
