"""Smoke tests driving ``repro.cli.main(argv)`` for every subcommand.

The seed suite covered the original flags; these tests cover the full
surface after the ``repro.workflow`` redesign — in particular the new
``--preset`` / ``--driver`` / ``--config`` / ``--monitor`` run flags and
the ``presets`` listing command.
"""

from __future__ import annotations

import os

import pytest

from repro.cli import main as cli_main
from repro.workflow import available_drivers, available_presets

TINY = ["--grid", "6", "12", "2", "--particles-per-cell", "3", "--n-rep", "1"]


class TestRunCommand:
    @pytest.mark.parametrize("driver", available_drivers())
    def test_run_with_every_driver(self, capsys, driver):
        assert cli_main(["run", "--steps", "2", "--driver", driver] + TINY) == 0
        out = capsys.readouterr().out
        assert f"driver: {driver}" in out
        assert "iterations_streamed" in out
        if driver != "serial":
            assert "max stream queue depth" in out

    def test_run_with_preset_flag(self, capsys):
        assert cli_main(["run", "--steps", "1", "--preset", "bench-tiny",
                         "--n-rep", "1"]) == 0
        out = capsys.readouterr().out
        assert "iterations_streamed" in out

    def test_run_with_unknown_preset_prints_helpful_error(self, capsys):
        assert cli_main(["run", "--steps", "1", "--preset", "warp-drive"]) == 2
        err = capsys.readouterr().err
        assert "warp-drive" in err
        for name in available_presets():
            assert name in err

    def test_run_with_unknown_driver_prints_helpful_error(self, capsys):
        assert cli_main(["run", "--steps", "1", "--driver", "quantum"] + TINY) == 2
        err = capsys.readouterr().err
        for name in available_drivers():
            assert name in err

    def test_run_with_missing_config_file_prints_error(self, capsys):
        assert cli_main(["run", "--steps", "1",
                         "--config", "/does/not/exist.json"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_run_with_config_file(self, capsys, tmp_path):
        from repro.workflow import get_preset

        config = get_preset("bench-tiny")
        path = str(tmp_path / "workflow.json")
        config.to_file(path)
        assert cli_main(["run", "--steps", "1", "--config", path,
                         "--n-rep", "1"]) == 0
        assert "iterations_streamed" in capsys.readouterr().out

    def test_run_with_monitor_consumer(self, capsys):
        assert cli_main(["run", "--steps", "2", "--monitor"] + TINY) == 0
        out = capsys.readouterr().out
        assert "monitor consumer: 2 iterations" in out
        assert "momentum histogram" in out

    def test_run_threaded_alias_still_works(self, capsys):
        assert cli_main(["run", "--steps", "2", "--threaded"] + TINY) == 0
        out = capsys.readouterr().out
        assert "driver: threaded" in out
        assert "max stream queue depth" in out

    def test_run_json_output_is_machine_readable(self, capsys):
        import json

        assert cli_main(["run", "--steps", "2", "--json"] + TINY) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["driver"] == "serial"
        assert payload["steps"] == 2
        assert payload["iterations_streamed"] == 2
        assert payload["training_iterations"] == 2
        assert payload["producer_exception"] is None
        assert payload["consumer_exceptions"] == {}
        assert payload["consumer_summaries"]["mlapp"]["kind"] == "mlapp"

    def test_run_json_with_monitor_evaluate_and_checkpoint(self, capsys, tmp_path):
        import json

        checkpoint = str(tmp_path / "ckpt")
        assert cli_main(["run", "--steps", "3", "--json", "--monitor",
                         "--evaluate", "--checkpoint", checkpoint] + TINY) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["consumer_summaries"]["monitor"]["iterations_consumed"] == 3
        assert payload["evaluation"]
        assert {"region", "true_peak", "predicted_peak"} <= \
            set(payload["evaluation"][0])
        assert payload["checkpoint"]["directory"].startswith(checkpoint)

    def test_run_evaluate_and_checkpoint(self, capsys, tmp_path):
        checkpoint = str(tmp_path / "ckpt")
        assert cli_main(["run", "--steps", "3", "--evaluate",
                         "--checkpoint", checkpoint] + TINY) == 0
        out = capsys.readouterr().out
        assert "predicted peak" in out
        assert os.path.exists(os.path.join(checkpoint, "manifest.json"))


class TestPresetsCommand:
    def test_presets_lists_everything(self, capsys):
        assert cli_main(["presets"]) == 0
        out = capsys.readouterr().out
        for name in available_presets():
            assert name in out
        for name in available_drivers():
            assert name in out
        assert "192x256x12" in out  # the paper preset's grid


class TestStudyCommands:
    def test_fom_scan(self, capsys):
        assert cli_main(["fom-scan"]) == 0
        assert "Frontier" in capsys.readouterr().out

    def test_streaming_study(self, capsys):
        assert cli_main(["streaming-study"]) == 0
        assert "libfabric" in capsys.readouterr().out

    def test_streaming_study_custom_bytes(self, capsys):
        assert cli_main(["streaming-study", "--bytes-per-node", "1e9"]) == 0
        assert "mpi" in capsys.readouterr().out

    def test_ddp_scan(self, capsys):
        assert cli_main(["ddp-scan", "--nodes", "8", "16"]) == 0
        assert "deficit attribution" in capsys.readouterr().out

    def test_khi_info(self, capsys):
        assert cli_main(["khi-info"]) == 0
        assert "beta = 0.2" in capsys.readouterr().out

    def test_placement(self, capsys):
        assert cli_main(["placement", "--nodes", "4"]) == 0
        out = capsys.readouterr().out
        assert "intra_node" in out and "inter_node" in out

    def test_bench_hotpath_no_persist(self, capsys):
        assert cli_main(["bench-hotpath", "--steps", "2", "--warmup", "1",
                         "--repeats", "1", "--no-persist"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "fused == reference: OK" in out

    def test_bench_hotpath_writes_history(self, capsys, tmp_path):
        from repro.utils.benchjson import latest_run

        assert cli_main(["bench-hotpath", "--steps", "2", "--warmup", "1",
                         "--repeats", "1", "--output-dir", str(tmp_path)]) == 0
        record = latest_run("pic_hotpath", str(tmp_path))
        assert record is not None
        assert record["metrics"]["equivalent"] is True

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            cli_main(["transmogrify"])

    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            cli_main([])
