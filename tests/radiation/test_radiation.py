"""Tests of the far-field radiation diagnostics."""

from __future__ import annotations

import numpy as np
import pytest

from repro import constants
from repro.pic.khi import KHIConfig, make_khi_simulation
from repro.radiation.detector import RadiationDetector, direction_grid, frequency_grid
from repro.radiation.form_factor import (combine_coherent_incoherent,
                                         macro_particle_form_factor)
from repro.radiation.lienard_wiechert import accumulate_amplitude
from repro.radiation.plugin import RadiationPlugin
from repro.radiation.spectrum import (normalize_log_spectrum, spectrum_from_amplitude,
                                      total_radiated_energy)


def oscillating_charge_spectrum(omega0: float, drift_beta: float, detector: RadiationDetector,
                                n_steps: int = 4000, amplitude_beta: float = 0.05):
    """Accumulate the spectrum of a charge oscillating along z at ``omega0``
    while drifting along +x with ``drift_beta`` (towards direction (1,0,0))."""
    dt = 2 * np.pi / omega0 / 200.0
    total = None
    gamma_drift = 1.0 / np.sqrt(1.0 - drift_beta ** 2)
    for step in range(n_steps):
        t = step * dt
        beta_z = amplitude_beta * np.cos(omega0 * t)
        beta_dot_z = -amplitude_beta * omega0 * np.sin(omega0 * t)
        position = np.array([[drift_beta * constants.SPEED_OF_LIGHT * t, 0.0,
                              amplitude_beta * constants.SPEED_OF_LIGHT / omega0
                              * np.sin(omega0 * t)]])
        beta = np.array([[drift_beta, 0.0, beta_z]])
        beta_dot = np.array([[0.0, 0.0, beta_dot_z]])
        total = accumulate_amplitude(total, detector, position, beta, beta_dot,
                                     np.ones(1), time=t, dt=dt)
    return spectrum_from_amplitude(total, constants.ELEMENTARY_CHARGE)


class TestDetector:
    def test_direction_grid_unit_vectors(self):
        dirs = direction_grid(5, n_phi=4, axis=(0.0, 1.0, 0.0))
        assert dirs.shape == (20, 3)
        np.testing.assert_allclose(np.linalg.norm(dirs, axis=1), 1.0)

    def test_frequency_grid_log_and_linear(self):
        log = frequency_grid(10, omega_max=1e15, spacing="log")
        lin = frequency_grid(10, omega_max=1e15, spacing="linear")
        assert log[0] > 0 and log[-1] == pytest.approx(1e15)
        assert lin[0] == 0.0 and lin[-1] == pytest.approx(1e15)
        assert np.all(np.diff(log) > 0) and np.all(np.diff(lin) > 0)

    def test_detector_validation(self):
        with pytest.raises(ValueError):
            RadiationDetector(directions=np.array([[2.0, 0.0, 0.0]]),
                              frequencies=np.array([1.0]))
        with pytest.raises(ValueError):
            RadiationDetector(directions=np.array([[1.0, 0.0, 0.0]]),
                              frequencies=np.array([-1.0]))

    def test_for_khi_factory(self):
        det = RadiationDetector.for_khi(density=1e20, n_directions=4, n_frequencies=16)
        assert det.shape == (4, 16)
        in_plasma_units = det.frequencies_in_plasma_units(1e20)
        assert in_plasma_units[0] == pytest.approx(0.1, rel=1e-6)
        assert in_plasma_units[-1] == pytest.approx(100.0, rel=1e-6)


class TestLienardWiechert:
    def test_no_acceleration_no_radiation(self):
        det = RadiationDetector(directions=np.array([[1.0, 0.0, 0.0]]),
                                frequencies=np.array([1e14, 1e15]))
        total = accumulate_amplitude(None, det, np.zeros((3, 3)),
                                     np.full((3, 3), 0.1), np.zeros((3, 3)),
                                     np.ones(3), time=0.0, dt=1e-15)
        assert np.allclose(total, 0.0)

    def test_dipole_spectrum_peaks_at_oscillation_frequency(self):
        omega0 = 1.0e14
        det = RadiationDetector(
            directions=np.array([[1.0, 0.0, 0.0]]),
            frequencies=frequency_grid(41, omega_max=3 * omega0, omega_min=omega0 / 3,
                                       spacing="log"))
        spectrum = oscillating_charge_spectrum(omega0, drift_beta=0.0, detector=det)
        peak_omega = det.frequencies[np.argmax(spectrum[0])]
        assert peak_omega == pytest.approx(omega0, rel=0.1)

    def test_no_radiation_along_acceleration_axis(self):
        """Dipole radiation vanishes along the acceleration direction."""
        omega0 = 1.0e14
        det = RadiationDetector(
            directions=np.array([[0.0, 0.0, 1.0], [1.0, 0.0, 0.0]]),
            frequencies=np.array([omega0]))
        spectrum = oscillating_charge_spectrum(omega0, drift_beta=0.0, detector=det,
                                               n_steps=2000)
        along, perpendicular = spectrum[0, 0], spectrum[1, 0]
        assert along < 1e-3 * perpendicular

    def test_doppler_shift_towards_detector(self):
        """An emitter approaching the detector radiates at an up-shifted
        frequency — the effect the paper's network learns (Section V-B)."""
        omega0 = 1.0e14
        drift = 0.2
        doppler = 1.0 / (1.0 - drift)           # observed frequency shift
        det = RadiationDetector(
            directions=np.array([[1.0, 0.0, 0.0]]),
            frequencies=frequency_grid(61, omega_max=3 * omega0, omega_min=omega0 / 3,
                                       spacing="log"))
        approaching = oscillating_charge_spectrum(omega0, drift_beta=drift, detector=det)
        receding = oscillating_charge_spectrum(omega0, drift_beta=-drift, detector=det)
        omega_peak_approaching = det.frequencies[np.argmax(approaching[0])]
        omega_peak_receding = det.frequencies[np.argmax(receding[0])]
        assert omega_peak_approaching == pytest.approx(omega0 * doppler, rel=0.12)
        assert omega_peak_receding == pytest.approx(omega0 / (1.0 + drift), rel=0.12)
        assert omega_peak_approaching > omega_peak_receding

    def test_weights_scale_coherent_power_quadratically(self):
        omega0 = 1.0e14
        det = RadiationDetector(directions=np.array([[1.0, 0.0, 0.0]]),
                                frequencies=np.array([omega0]))
        def run(weight):
            total = None
            dt = 1e-16
            for step in range(200):
                t = step * dt
                beta = np.array([[0.0, 0.0, 0.05 * np.cos(omega0 * t)]])
                beta_dot = np.array([[0.0, 0.0, -0.05 * omega0 * np.sin(omega0 * t)]])
                total = accumulate_amplitude(total, det, np.zeros((1, 3)), beta, beta_dot,
                                             np.array([weight]), time=t, dt=dt)
            return spectrum_from_amplitude(total, constants.ELEMENTARY_CHARGE)[0, 0]
        assert run(10.0) == pytest.approx(100.0 * run(1.0), rel=1e-9)


class TestFormFactor:
    def test_limits(self):
        omega = np.array([0.0, 1e12, 1e18])
        f = macro_particle_form_factor(omega, macro_extent=1e-5)
        assert f[0] == pytest.approx(1.0)
        assert f[-1] < 1e-6
        assert np.all(np.diff(f) <= 0)

    def test_cic_shape(self):
        omega = np.linspace(0, 1e16, 50)
        f = macro_particle_form_factor(omega, macro_extent=1e-6, shape="cic")
        assert f[0] == pytest.approx(1.0)
        assert np.all((f >= 0) & (f <= 1))

    def test_combination_interpolates(self):
        coherent = np.full((2, 3), 100.0)
        incoherent = np.full((2, 3), 10.0)
        combined_low = combine_coherent_incoherent(coherent, incoherent, np.ones(3))
        combined_high = combine_coherent_incoherent(coherent, incoherent, np.zeros(3))
        np.testing.assert_allclose(combined_low, 100.0)
        np.testing.assert_allclose(combined_high, 10.0)

    def test_invalid_form_factor(self):
        with pytest.raises(ValueError):
            combine_coherent_incoherent(np.ones((1, 1)), np.ones((1, 1)),
                                        np.array([1.5]))


class TestSpectrumHelpers:
    def test_spectrum_shape_validation(self):
        with pytest.raises(ValueError):
            spectrum_from_amplitude(np.zeros((3, 4)), 1.0)

    def test_total_energy_positive(self, rng):
        det = RadiationDetector.for_khi(density=1e20, n_directions=3, n_frequencies=8)
        spectrum = rng.random(det.shape)
        assert total_radiated_energy(spectrum, det) > 0

    def test_normalize_log_spectrum_range(self, rng):
        spectrum = 10.0 ** rng.uniform(-20, 2, size=(4, 16))
        normalised = normalize_log_spectrum(spectrum)
        assert normalised.min() == pytest.approx(0.0)
        assert normalised.max() == pytest.approx(1.0)

    def test_normalize_constant_spectrum(self):
        out = normalize_log_spectrum(np.full((2, 2), 5.0))
        np.testing.assert_allclose(out, 0.0)


class TestRadiationPlugin:
    def test_plugin_accumulates_during_khi_run(self):
        cfg = KHIConfig(grid_shape=(8, 16, 2), particles_per_cell=2, seed=5)
        sim = make_khi_simulation(cfg)
        detector = RadiationDetector.for_khi(density=cfg.density, n_directions=3,
                                             n_frequencies=12)
        plugin = RadiationPlugin(detector, sample_fraction=0.5)
        sim.add_plugin(plugin)
        sim.run(5)
        spectrum = plugin.spectrum()
        assert spectrum.shape == detector.shape
        assert np.all(spectrum >= 0)
        assert spectrum.sum() > 0
        result = plugin.result(step=sim.step_index)
        assert result.amplitude.shape == detector.shape + (3,)

    def test_plugin_requires_run(self):
        detector = RadiationDetector.for_khi(density=1e20, n_directions=2, n_frequencies=4)
        plugin = RadiationPlugin(detector)
        with pytest.raises(RuntimeError):
            plugin.spectrum()

    def test_invalid_sample_fraction(self):
        detector = RadiationDetector.for_khi(density=1e20, n_directions=2, n_frequencies=4)
        with pytest.raises(ValueError):
            RadiationPlugin(detector, sample_fraction=0.0)
