"""Tests of field gather and charge/current deposition."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import constants
from repro.pic.deposition import (deposit_charge_cic, deposit_current_cic,
                                  deposit_current_esirkepov)
from repro.pic.grid import GridConfig, YeeGrid
from repro.pic.interpolation import gather_component, gather_fields


def make_grid(shape=(8, 8, 8), cell=1.0e-5):
    return YeeGrid(GridConfig(shape=shape, cell_size=(cell, cell, cell)))


class TestGather:
    def test_uniform_field_gathered_exactly(self, rng):
        grid = make_grid()
        grid.Ex.fill(3.0)
        grid.By.fill(-2.0)
        positions = rng.uniform(0, 8e-5, size=(50, 3))
        e, b = gather_fields(grid, positions)
        np.testing.assert_allclose(e[:, 0], 3.0)
        np.testing.assert_allclose(e[:, 1], 0.0)
        np.testing.assert_allclose(b[:, 1], -2.0)

    def test_linear_field_interpolated_exactly(self):
        """CIC interpolation reproduces fields linear in the coordinate."""
        grid = make_grid(shape=(16, 4, 4), cell=1.0)
        x_nodes = np.arange(16) + 0.5  # Ex stagger along x
        grid.Ex[...] = x_nodes[:, None, None]
        # away from the periodic seam the gather must be exact
        positions = np.array([[4.3, 1.7, 2.2], [7.9, 0.4, 3.6], [10.5, 2.0, 1.0]])
        values = gather_component(grid.Ex, positions, grid.config.cell_size,
                                  grid.stagger("Ex"))
        np.testing.assert_allclose(values, positions[:, 0], rtol=1e-12)

    def test_rejects_bad_positions(self):
        grid = make_grid()
        with pytest.raises(ValueError):
            gather_fields(grid, np.zeros((3, 2)))


class TestChargeDeposition:
    def test_total_charge_conserved(self, rng):
        grid = make_grid()
        positions = rng.uniform(0, 8e-5, size=(200, 3))
        weights = rng.uniform(0.5, 2.0, size=200)
        charge = -constants.ELEMENTARY_CHARGE
        deposit_charge_cic(grid, positions, charge, weights)
        total_deposited = np.sum(grid.rho) * grid.config.cell_volume
        assert total_deposited == pytest.approx(charge * weights.sum(), rel=1e-12)

    def test_particle_at_node_deposits_to_single_cell(self):
        grid = make_grid(cell=1.0)
        deposit_charge_cic(grid, np.array([[2.0, 3.0, 4.0]]), 1.0, np.ones(1))
        assert grid.rho[2, 3, 4] == pytest.approx(1.0)
        assert np.count_nonzero(grid.rho) == 1

    def test_accumulate_flag(self, rng):
        grid = make_grid()
        pos = rng.uniform(0, 8e-5, size=(10, 3))
        deposit_charge_cic(grid, pos, 1.0, np.ones(10))
        first = grid.rho.copy()
        deposit_charge_cic(grid, pos, 1.0, np.ones(10), accumulate=False)
        np.testing.assert_allclose(grid.rho, first)


class TestCurrentDeposition:
    def test_cic_total_current(self, rng):
        grid = make_grid()
        n = 100
        positions = rng.uniform(0, 8e-5, size=(n, 3))
        velocities = rng.normal(scale=1e6, size=(n, 3))
        weights = rng.uniform(0.5, 2.0, size=n)
        charge = constants.ELEMENTARY_CHARGE
        deposit_current_cic(grid, positions, velocities, charge, weights)
        box_volume = np.prod(grid.config.extent)
        total_jx = np.sum(grid.Jx) * grid.config.cell_volume
        expected = charge * np.sum(weights * velocities[:, 0])
        assert total_jx == pytest.approx(expected, rel=1e-12)

    def test_esirkepov_continuity_equation(self, rng):
        """The Esirkepov deposition satisfies d(rho)/dt + div J = 0 exactly."""
        grid = make_grid(shape=(10, 9, 8), cell=2.0e-5)
        n = 300
        dt = grid.config.courant_time_step()
        extent = np.asarray(grid.config.extent)
        old_positions = rng.uniform(0.05, 0.95, size=(n, 3)) * extent
        # displacement below one cell per step (CFL-consistent)
        displacement = rng.uniform(-0.9, 0.9, size=(n, 3)) * np.asarray(grid.config.cell_size)
        new_positions = old_positions + displacement
        weights = rng.uniform(0.5, 2.0, size=n)
        charge = -constants.ELEMENTARY_CHARGE

        rho_before = YeeGrid(grid.config)
        rho_after = YeeGrid(grid.config)
        deposit_charge_cic(rho_before, old_positions, charge, weights)
        deposit_charge_cic(rho_after, np.mod(new_positions, extent), charge, weights)

        deposit_current_esirkepov(grid, old_positions, new_positions, charge, weights, dt)

        drho_dt = (rho_after.rho - rho_before.rho) / dt
        residual = drho_dt + grid.divergence_j()
        scale = np.max(np.abs(drho_dt))
        assert np.max(np.abs(residual)) < 1e-9 * scale

    def test_esirkepov_matches_cic_total_current(self, rng):
        """Total deposited current agrees with q*w*v summed over particles."""
        grid = make_grid(shape=(12, 12, 6), cell=1.0e-5)
        n = 50
        dt = grid.config.courant_time_step()
        extent = np.asarray(grid.config.extent)
        old_positions = rng.uniform(0.1, 0.9, size=(n, 3)) * extent
        velocities = rng.normal(scale=0.3, size=(n, 3)) * constants.SPEED_OF_LIGHT
        new_positions = old_positions + velocities * dt
        weights = rng.uniform(0.5, 2.0, size=n)
        charge = constants.ELEMENTARY_CHARGE
        deposit_current_esirkepov(grid, old_positions, new_positions, charge, weights, dt)
        total = np.array([np.sum(grid.Jx), np.sum(grid.Jy), np.sum(grid.Jz)]) \
            * grid.config.cell_volume
        expected = charge * (weights[:, None] * velocities).sum(axis=0)
        np.testing.assert_allclose(total, expected, rtol=1e-9)

    def test_esirkepov_zero_for_static_particles(self, rng):
        grid = make_grid()
        pos = rng.uniform(0, 8e-5, size=(20, 3))
        deposit_current_esirkepov(grid, pos, pos.copy(), 1.0, np.ones(20), 1e-13)
        assert np.all(grid.Jx == 0.0) and np.all(grid.Jy == 0.0) and np.all(grid.Jz == 0.0)

    def test_esirkepov_rejects_large_displacement(self):
        grid = make_grid(cell=1.0e-6)
        old = np.array([[1.0e-6, 1.0e-6, 1.0e-6]])
        new = old + 2.0e-6
        with pytest.raises(ValueError):
            deposit_current_esirkepov(grid, old, new, 1.0, np.ones(1), 1e-13)

    def test_esirkepov_empty_input(self):
        grid = make_grid()
        deposit_current_esirkepov(grid, np.zeros((0, 3)), np.zeros((0, 3)), 1.0,
                                  np.zeros(0), 1e-13)
        assert np.all(grid.Jx == 0.0)


class TestContinuityProperty:
    @given(st.integers(1, 60), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_continuity_holds_for_random_configurations(self, n, seed):
        """Property: charge conservation holds for any particle count/config."""
        rng = np.random.default_rng(seed)
        grid = YeeGrid(GridConfig(shape=(6, 7, 5), cell_size=(1e-5, 1e-5, 1e-5)))
        dt = grid.config.courant_time_step()
        extent = np.asarray(grid.config.extent)
        old = rng.uniform(0, 1, size=(n, 3)) * extent
        delta = rng.uniform(-0.99, 0.99, size=(n, 3)) * 1e-5
        new = old + delta
        weights = rng.uniform(0.1, 3.0, size=n)
        rho0, rho1 = YeeGrid(grid.config), YeeGrid(grid.config)
        deposit_charge_cic(rho0, old, 1.0, weights)
        deposit_charge_cic(rho1, np.mod(new, extent), 1.0, weights)
        deposit_current_esirkepov(grid, old, new, 1.0, weights, dt)
        residual = (rho1.rho - rho0.rho) / dt + grid.divergence_j()
        scale = max(np.max(np.abs(rho1.rho - rho0.rho) / dt), 1e-30)
        assert np.max(np.abs(residual)) <= 1e-8 * scale
