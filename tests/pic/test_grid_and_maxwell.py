"""Tests of the Yee grid and the FDTD field solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro import constants
from repro.pic.grid import GridConfig, STAGGER, YeeGrid
from repro.pic.maxwell import YeeSolver


def make_grid(shape=(16, 8, 4), cell=1.0e-5):
    return YeeGrid(GridConfig(shape=shape, cell_size=(cell, cell, cell)))


class TestGridConfig:
    def test_basic_properties(self):
        cfg = GridConfig(shape=(4, 5, 6), cell_size=(1.0, 2.0, 3.0))
        assert cfg.n_cells == 120
        assert cfg.cell_volume == pytest.approx(6.0)
        assert cfg.extent == (4.0, 10.0, 18.0)

    def test_courant_limit(self):
        cfg = GridConfig(shape=(4, 4, 4), cell_size=(1e-5, 1e-5, 1e-5))
        dt = cfg.courant_time_step(safety=1.0)
        assert dt == pytest.approx(1e-5 / (constants.SPEED_OF_LIGHT * np.sqrt(3.0)))

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            GridConfig(shape=(0, 4, 4))

    def test_invalid_cell_size(self):
        with pytest.raises(ValueError):
            GridConfig(shape=(4, 4, 4), cell_size=(1.0, -1.0, 1.0))

    def test_paper_cell_size_default(self):
        cfg = GridConfig(shape=(4, 4, 4))
        assert cfg.cell_size[0] == pytest.approx(constants.PAPER_CELL_SIZE)


class TestYeeGrid:
    def test_fields_start_at_zero(self):
        grid = make_grid()
        assert grid.field_energy() == 0.0
        assert grid.Ex.shape == (16, 8, 4)

    def test_energy_of_uniform_field(self):
        grid = make_grid(shape=(4, 4, 4), cell=1.0)
        grid.Ex.fill(2.0)
        want = 0.5 * constants.EPSILON_0 * 4.0 * 64
        assert grid.electric_energy() == pytest.approx(want)
        grid.Bz.fill(3.0)
        want_b = 0.5 / constants.MU_0 * 9.0 * 64
        assert grid.magnetic_energy() == pytest.approx(want_b)

    def test_component_lookup(self):
        grid = make_grid()
        assert grid.component("Ey") is grid.Ey
        with pytest.raises(KeyError):
            grid.component("Qx")

    def test_stagger_table_complete(self):
        grid = make_grid()
        for name in ("Ex", "Ey", "Ez", "Bx", "By", "Bz", "Jx", "Jy", "Jz", "rho"):
            assert len(grid.stagger(name)) == 3
            assert all(s in (0.0, 0.5) for s in STAGGER[name])

    def test_clear_currents(self):
        grid = make_grid()
        grid.Jx.fill(1.0)
        grid.clear_currents()
        assert np.all(grid.Jx == 0.0)


class TestYeeSolver:
    def test_divergence_b_preserved(self, rng):
        """The Yee curl keeps div B = 0 to machine precision."""
        grid = make_grid(shape=(8, 8, 8))
        solver = YeeSolver(grid)
        # random (divergence-free: starts at zero) B and random E
        grid.Ex[...] = rng.normal(size=grid.shape)
        grid.Ey[...] = rng.normal(size=grid.shape)
        grid.Ez[...] = rng.normal(size=grid.shape)
        dt = grid.config.courant_time_step()
        for _ in range(20):
            solver.step(dt)
        assert np.max(np.abs(grid.divergence_b())) < 1e-6 * np.max(np.abs(grid.Bx) + 1e-300)

    def test_vacuum_energy_conserved(self):
        """A vacuum plane wave keeps its energy under the leapfrog update."""
        n = 32
        cell = 1.0e-5
        grid = make_grid(shape=(n, 4, 4), cell=cell)
        solver = YeeSolver(grid)
        length = n * cell
        k = 2 * np.pi / length
        x_e = (np.arange(n) + 0.0) * cell   # Ey at integer x
        x_b = (np.arange(n) + 0.5) * cell   # Bz at half x
        amplitude = 1.0
        grid.Ey[...] = (amplitude * np.sin(k * x_e))[:, None, None]
        grid.Bz[...] = (amplitude / constants.SPEED_OF_LIGHT * np.sin(k * x_b))[:, None, None]
        initial = grid.field_energy()
        dt = grid.config.courant_time_step()
        for _ in range(200):
            solver.step(dt)
        assert grid.field_energy() == pytest.approx(initial, rel=1e-3)

    def test_plane_wave_propagates_at_c(self):
        """The wave crest moves by ~c*dt per step along x."""
        n = 64
        cell = 1.0e-5
        grid = make_grid(shape=(n, 2, 2), cell=cell)
        solver = YeeSolver(grid)
        length = n * cell
        k = 2 * np.pi / length
        x_e = np.arange(n) * cell
        x_b = (np.arange(n) + 0.5) * cell
        grid.Ey[...] = np.sin(k * x_e)[:, None, None]
        grid.Bz[...] = (np.sin(k * x_b) / constants.SPEED_OF_LIGHT)[:, None, None]
        dt = grid.config.courant_time_step()
        steps = 40
        for _ in range(steps):
            solver.step(dt)
        # expected phase shift: the +x travelling wave sin(k(x - ct))
        expected = np.sin(k * (x_e - constants.SPEED_OF_LIGHT * dt * steps))
        got = grid.Ey[:, 0, 0]
        correlation = np.corrcoef(expected, got)[0, 1]
        assert correlation > 0.99

    def test_cfl_violation_raises(self):
        grid = make_grid()
        solver = YeeSolver(grid)
        with pytest.raises(ValueError):
            solver.step(10.0 * grid.config.courant_time_step())

    def test_current_drives_field(self):
        """A uniform current density produces a growing uniform E field."""
        grid = make_grid(shape=(4, 4, 4))
        solver = YeeSolver(grid)
        grid.Jz.fill(1.0)
        dt = grid.config.courant_time_step()
        solver.step(dt)
        expected = -dt / constants.EPSILON_0
        np.testing.assert_allclose(grid.Ez, expected, rtol=1e-12)

    def test_gauss_error_zero_for_consistent_fields(self):
        grid = make_grid(shape=(6, 6, 6))
        solver = YeeSolver(grid)
        assert solver.gauss_error() == pytest.approx(0.0)
