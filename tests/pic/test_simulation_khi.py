"""Integration tests of the full PIC loop and the KHI setup."""

from __future__ import annotations

import numpy as np
import pytest

from repro import constants
from repro.pic.diagnostics import (ChargeConservationMonitor, EnergyHistory,
                                   momentum_histogram)
from repro.pic.fom import FigureOfMerit, figure_of_merit
from repro.pic.grid import GridConfig
from repro.pic.khi import KHIConfig, growth_rate_estimate, make_khi_simulation
from repro.pic.particles import ParticleSpecies
from repro.pic.simulation import PICSimulation, Plugin, SimulationConfig
from repro.pic.domain import SlabDecomposition
from repro.pic.supercells import SupercellIndex


def tiny_khi(steps_grid=(8, 16, 2), ppc=4, seed=3):
    return KHIConfig(grid_shape=steps_grid, particles_per_cell=ppc, seed=seed)


class TestSimulationLoop:
    def test_single_particle_free_streaming(self):
        grid = GridConfig(shape=(8, 8, 8), cell_size=(1e-5,) * 3)
        electrons = ParticleSpecies.electrons(
            positions=np.array([[4e-5, 4e-5, 4e-5]]),
            momenta=np.array([[0.1, 0.0, 0.0]]),
            weights=np.array([1.0]))
        sim = PICSimulation(SimulationConfig(grid=grid), species=[electrons])
        x0 = electrons.positions[0, 0]
        v = electrons.velocities()[0, 0]
        sim.step()
        # single macro-particle with weight 1: self-fields are negligible
        assert electrons.positions[0, 0] == pytest.approx(x0 + v * sim.config.dt, rel=1e-6)

    def test_plugin_hooks_invoked(self):
        events = []

        class Probe(Plugin):
            def on_start(self, simulation):
                events.append("start")

            def on_step(self, simulation):
                events.append("step")

            def on_finish(self, simulation):
                events.append("finish")

        cfg = tiny_khi()
        sim = make_khi_simulation(cfg)
        sim.add_plugin(Probe())
        sim.run(3)
        assert events == ["start", "step", "step", "step", "finish"]

    def test_run_returns_fom(self):
        sim = make_khi_simulation(tiny_khi())
        fom = sim.run(2)
        assert isinstance(fom, FigureOfMerit)
        assert fom.value > 0
        assert fom.particle_updates_per_second > fom.cell_updates_per_second * 0

    def test_invalid_config(self):
        grid = GridConfig(shape=(4, 4, 4), cell_size=(1e-5,) * 3)
        with pytest.raises(ValueError):
            SimulationConfig(grid=grid, dt=1.0)
        with pytest.raises(ValueError):
            SimulationConfig(grid=grid, current_deposition="magic")

    def test_get_species(self):
        sim = make_khi_simulation(tiny_khi())
        assert sim.get_species("electrons").name == "electrons"
        with pytest.raises(KeyError):
            sim.get_species("positrons")


class TestKHISetup:
    def test_counterstreaming_initialisation(self):
        cfg = tiny_khi()
        sim = make_khi_simulation(cfg)
        electrons = sim.get_species("electrons")
        y = electrons.positions[:, cfg.shear_axis]
        extent_y = cfg.grid_config.extent[cfg.shear_axis]
        inner = (y > 0.25 * extent_y) & (y < 0.75 * extent_y)
        ux = electrons.momenta[:, cfg.flow_axis]
        assert np.mean(ux[inner]) > 0.1
        assert np.mean(ux[~inner]) < -0.1

    def test_charge_neutral_start(self):
        sim = make_khi_simulation(tiny_khi())
        total_charge = sum(s.total_charge() for s in sim.species)
        electron_charge = abs(sim.get_species("electrons").total_charge())
        assert abs(total_charge) < 1e-9 * electron_charge

    def test_particle_count_matches_ppc(self):
        cfg = tiny_khi(ppc=5)
        sim = make_khi_simulation(cfg)
        assert sim.get_species("electrons").n_macro == cfg.n_macro_electrons
        assert cfg.n_macro_electrons == np.prod(cfg.grid_shape) * 5

    def test_paper_preset(self):
        cfg = KHIConfig.paper()
        assert cfg.grid_shape == constants.PAPER_SMALLEST_GRID
        assert cfg.particles_per_cell == 9
        assert cfg.beta == pytest.approx(0.2)

    def test_unstable_config_warns(self):
        cfg = KHIConfig(grid_shape=(4, 8, 2), density=1e28)
        with pytest.warns(RuntimeWarning):
            make_khi_simulation(cfg)

    def test_growth_rate_estimate_positive(self):
        assert growth_rate_estimate(KHIConfig()) > 0

    def test_reproducible_with_seed(self):
        a = make_khi_simulation(tiny_khi(seed=7)).get_species("electrons")
        b = make_khi_simulation(tiny_khi(seed=7)).get_species("electrons")
        np.testing.assert_allclose(a.positions, b.positions)
        np.testing.assert_allclose(a.momenta, b.momenta)


class TestKHIPhysics:
    def test_energy_approximately_conserved(self):
        """Total (field + kinetic) energy drifts by less than a few per cent."""
        cfg = tiny_khi(steps_grid=(8, 16, 2), ppc=4)
        sim = make_khi_simulation(cfg)
        history = EnergyHistory()
        sim.add_plugin(history)
        sim.run(40)
        total = history.total()
        drift = abs(total[-1] - total[0]) / total[0]
        assert drift < 0.05

    def test_charge_conservation_during_run(self):
        cfg = tiny_khi(steps_grid=(6, 12, 2), ppc=3)
        sim = make_khi_simulation(cfg)
        monitor = ChargeConservationMonitor()
        sim.add_plugin(monitor)
        sim.run(5)
        assert monitor.max_residual() < 1e-8

    @pytest.mark.slow
    def test_magnetic_field_grows_from_shear_flow(self):
        """The counter-streaming shear flow drives magnetic field growth
        (the onset of the KHI / current filamentation), Fig. 1 physics."""
        cfg = KHIConfig(grid_shape=(12, 24, 2), particles_per_cell=6, seed=11)
        sim = make_khi_simulation(cfg)
        history = EnergyHistory(interval=10)
        sim.add_plugin(history)
        sim.run(250)
        magnetic = np.asarray(history.magnetic)
        early = magnetic[1] if magnetic[0] == 0.0 else magnetic[0]
        assert magnetic[-1] > 10.0 * early

    def test_momentum_histogram_shows_two_streams(self):
        sim = make_khi_simulation(tiny_khi())
        centres, hist = momentum_histogram(sim.get_species("electrons"), axis=0,
                                           bins=41, momentum_range=(-0.5, 0.5))
        gamma_beta = 0.2 / np.sqrt(1 - 0.04)
        peak_positive = centres[np.argmax(hist * (centres > 0))]
        peak_negative = centres[np.argmax(hist * (centres < 0))]
        assert peak_positive == pytest.approx(gamma_beta, abs=0.05)
        assert peak_negative == pytest.approx(-gamma_beta, abs=0.05)


class TestFOM:
    def test_weighted_sum(self):
        fom = figure_of_merit(n_particles=1000, n_cells=100, n_steps=10, wall_time=2.0)
        assert fom.particle_updates_per_second == pytest.approx(5000)
        assert fom.cell_updates_per_second == pytest.approx(500)
        assert fom.value == pytest.approx(0.9 * 5000 + 0.1 * 500)
        assert fom.tera_updates_per_second == pytest.approx(fom.value / 1e12)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            figure_of_merit(1, 1, 1, 0.0)
        with pytest.raises(ValueError):
            figure_of_merit(1, 1, 0, 1.0)


class TestSupercellsAndDomain:
    def test_supercell_occupancy_counts_all_particles(self, rng):
        cfg = GridConfig(shape=(16, 16, 8), cell_size=(1e-5,) * 3)
        index = SupercellIndex(cfg, supercell_shape=(8, 8, 4))
        positions = rng.uniform(0, 1, size=(500, 3)) * np.asarray(cfg.extent)
        occupancy = index.occupancy(positions)
        assert occupancy.shape == (2, 2, 2)
        assert occupancy.sum() == 500

    def test_group_by_supercell_partitions(self, rng):
        cfg = GridConfig(shape=(16, 16, 8), cell_size=(1e-5,) * 3)
        index = SupercellIndex(cfg, supercell_shape=(4, 4, 4))
        positions = rng.uniform(0, 1, size=(200, 3)) * np.asarray(cfg.extent)
        groups = index.group_by_supercell(positions)
        all_indices = np.sort(np.concatenate(list(groups.values())))
        np.testing.assert_array_equal(all_indices, np.arange(200))

    def test_sort_order_groups_particles(self, rng):
        cfg = GridConfig(shape=(8, 8, 8), cell_size=(1e-5,) * 3)
        index = SupercellIndex(cfg, supercell_shape=(4, 4, 4))
        positions = rng.uniform(0, 1, size=(100, 3)) * np.asarray(cfg.extent)
        order = index.sort_order(positions)
        flat_sorted = index.flat_indices(positions)[order]
        assert np.all(np.diff(flat_sorted) >= 0)

    def test_slab_decomposition_covers_grid(self):
        cfg = GridConfig(shape=(30, 8, 8), cell_size=(1e-5,) * 3)
        decomp = SlabDecomposition(cfg, n_ranks=4, axis=0)
        slabs = decomp.slabs()
        assert slabs[0].cell_start == 0
        assert slabs[-1].cell_stop == 30
        assert sum(s.n_cells_along_axis for s in slabs) == 30

    def test_rank_of_position(self, rng):
        cfg = GridConfig(shape=(32, 8, 8), cell_size=(1e-5,) * 3)
        decomp = SlabDecomposition(cfg, n_ranks=4, axis=0)
        positions = rng.uniform(0, 1, size=(300, 3)) * np.asarray(cfg.extent)
        ranks = decomp.rank_of_position(positions)
        assert ranks.min() >= 0 and ranks.max() <= 3
        # particles in the first quarter of the box belong to rank 0
        first_quarter = positions[:, 0] < cfg.extent[0] / 4
        assert np.all(ranks[first_quarter] == 0)

    def test_halo_bytes_positive(self):
        cfg = GridConfig(shape=(32, 8, 8), cell_size=(1e-5,) * 3)
        decomp = SlabDecomposition(cfg, n_ranks=4, axis=0)
        assert decomp.halo_bytes() == 8 * 8 * 6 * 8

    def test_invalid_decomposition(self):
        cfg = GridConfig(shape=(4, 8, 8), cell_size=(1e-5,) * 3)
        with pytest.raises(ValueError):
            SlabDecomposition(cfg, n_ranks=8, axis=0)
