"""Tests of the generic weak-scaling benchmark case (TWEAC-FOM analogue)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pic.benchcase import (ScalingBenchmarkConfig, make_benchmark_simulation,
                                 measured_weak_scaling)


class TestScalingBenchmarkConfig:
    def test_higher_ppc_than_khi(self):
        config = ScalingBenchmarkConfig()
        assert config.particles_per_cell > 9  # "higher particle-per-cell ratio"

    def test_weak_scaled_grid_grows_with_gpus(self):
        config = ScalingBenchmarkConfig(cells_per_gpu=(8, 8, 4))
        assert config.grid_config(1).shape == (8, 8, 4)
        assert config.grid_config(4).shape == (32, 8, 4)
        assert config.grid_config(4).n_cells == 4 * config.grid_config(1).n_cells

    def test_macro_particle_count(self):
        config = ScalingBenchmarkConfig(cells_per_gpu=(4, 4, 2), particles_per_cell=10)
        assert config.macro_particles_per_gpu == 320

    def test_invalid_gpu_count(self):
        with pytest.raises(ValueError):
            ScalingBenchmarkConfig().grid_config(0)


class TestBenchmarkSimulation:
    def test_builds_neutral_drifting_plasma(self):
        config = ScalingBenchmarkConfig(cells_per_gpu=(6, 6, 2), particles_per_cell=4)
        simulation = make_benchmark_simulation(config)
        electrons = simulation.get_species("electrons")
        ions = simulation.get_species("protons")
        assert electrons.n_macro == ions.n_macro == config.macro_particles_per_gpu
        total_charge = sum(s.total_charge() for s in simulation.species)
        assert abs(total_charge) < 1e-9 * abs(electrons.total_charge())
        assert np.mean(electrons.beta()[:, 0]) == pytest.approx(config.drift_beta, abs=0.01)

    def test_runs_and_conserves_energy(self):
        config = ScalingBenchmarkConfig(cells_per_gpu=(6, 6, 2), particles_per_cell=4)
        simulation = make_benchmark_simulation(config)
        before = simulation.total_energy()
        simulation.run(5)
        after = simulation.total_energy()
        assert after == pytest.approx(before, rel=0.05)

    def test_measured_weak_scaling_counts(self):
        config = ScalingBenchmarkConfig(cells_per_gpu=(4, 4, 2), particles_per_cell=4)
        results = measured_weak_scaling(config, gpu_counts=(1, 2), n_steps=1)
        assert [n for n, _ in results] == [1, 2]
        for n_gpus, fom in results:
            assert fom.value > 0
