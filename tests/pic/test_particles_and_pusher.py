"""Tests of the particle container and the relativistic Boris pusher."""

from __future__ import annotations

import numpy as np
import pytest

from repro import constants
from repro.pic.particles import ParticleSpecies
from repro.pic.pusher import advance_positions, boris_push


def single_electron(u=(0.0, 0.0, 0.0)):
    return ParticleSpecies.electrons(
        positions=np.zeros((1, 3)), momenta=np.array([u], dtype=float),
        weights=np.ones(1))


class TestParticleSpecies:
    def test_gamma_and_velocity(self):
        s = single_electron(u=(0.6, 0.0, 0.0))
        gamma = np.sqrt(1.0 + 0.36)
        assert s.gamma()[0] == pytest.approx(gamma)
        assert s.velocities()[0, 0] == pytest.approx(0.6 / gamma * constants.SPEED_OF_LIGHT)
        assert np.linalg.norm(s.beta()[0]) < 1.0

    def test_kinetic_energy_nonrelativistic_limit(self):
        u = 1e-3
        s = single_electron(u=(u, 0.0, 0.0))
        classical = 0.5 * constants.ELECTRON_MASS * (u * constants.SPEED_OF_LIGHT) ** 2
        assert s.kinetic_energy() == pytest.approx(classical, rel=1e-5)

    def test_total_charge(self):
        s = ParticleSpecies.electrons(np.zeros((5, 3)), np.zeros((5, 3)),
                                      np.full(5, 2.0))
        assert s.total_charge() == pytest.approx(-10 * constants.ELEMENTARY_CHARGE)

    def test_phase_space_shape(self, rng):
        s = ParticleSpecies.electrons(rng.random((7, 3)), rng.random((7, 3)),
                                      np.ones(7))
        assert s.phase_space().shape == (7, 6)

    def test_select_and_sample(self, rng):
        s = ParticleSpecies.electrons(rng.random((10, 3)), rng.random((10, 3)),
                                      np.ones(10))
        sub = s.select(np.arange(10) < 4)
        assert sub.n_macro == 4
        sampled = s.sample(20, rng)
        assert sampled.n_macro == 20  # with replacement

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ParticleSpecies.electrons(np.zeros((3, 2)), np.zeros((3, 3)), np.ones(3))
        with pytest.raises(ValueError):
            ParticleSpecies.electrons(np.zeros((3, 3)), np.zeros((3, 3)), np.ones(4))


class TestBorisPusher:
    def test_pure_magnetic_field_conserves_energy(self):
        """|u| is exactly conserved in a pure magnetic field."""
        s = single_electron(u=(0.5, 0.0, 0.0))
        b = np.array([[0.0, 0.0, 1.0e-3]])
        e = np.zeros((1, 3))
        u0 = np.linalg.norm(s.momenta[0])
        dt = 1e-12
        for _ in range(500):
            boris_push(s, e, b, dt)
        assert np.linalg.norm(s.momenta[0]) == pytest.approx(u0, rel=1e-12)

    def test_gyration_frequency(self):
        """The rotation angle per step matches the relativistic cyclotron frequency."""
        u0 = 0.3
        s = single_electron(u=(u0, 0.0, 0.0))
        bz = 5.0e-4
        gamma = np.sqrt(1 + u0 ** 2)
        omega_c = constants.ELEMENTARY_CHARGE * bz / (constants.ELECTRON_MASS * gamma)
        dt = 0.001 / omega_c
        steps = 200
        boris_e = np.zeros((1, 3))
        boris_b = np.array([[0.0, 0.0, bz]])
        for _ in range(steps):
            boris_push(s, boris_e, boris_b, dt)
        angle = np.arctan2(s.momenta[0, 1], s.momenta[0, 0])
        # electron (negative charge) rotates in +phi direction for +Bz
        expected = omega_c * dt * steps
        assert abs(abs(angle) - expected) < 1e-3

    def test_electric_acceleration_matches_analytic(self):
        """du/dt = qE/(mc) for a particle starting at rest."""
        s = single_electron()
        ez = 1.0e3
        e = np.array([[0.0, 0.0, ez]])
        b = np.zeros((1, 3))
        dt = 1e-12
        steps = 100
        for _ in range(steps):
            boris_push(s, e, b, dt)
        expected_u = (-constants.ELEMENTARY_CHARGE) * ez * dt * steps / (
            constants.ELECTRON_MASS * constants.SPEED_OF_LIGHT)
        assert s.momenta[0, 2] == pytest.approx(expected_u, rel=1e-9)

    def test_unpushed_species_not_moved(self):
        ions = ParticleSpecies.protons(np.zeros((2, 3)), np.zeros((2, 3)),
                                       np.ones(2), pushed=False)
        boris_push(ions, np.ones((2, 3)), np.ones((2, 3)), 1e-12)
        np.testing.assert_allclose(ions.momenta, 0.0)

    def test_invalid_dt(self):
        s = single_electron()
        with pytest.raises(ValueError):
            boris_push(s, np.zeros((1, 3)), np.zeros((1, 3)), 0.0)


class TestAdvancePositions:
    def test_free_streaming(self):
        s = single_electron(u=(0.2, 0.0, 0.0))
        dt = 1e-12
        v = s.velocities()[0, 0]
        advance_positions(s, dt)
        assert s.positions[0, 0] == pytest.approx(v * dt)

    def test_periodic_wrapping(self):
        s = single_electron(u=(1.0, 0.0, 0.0))
        s.positions[0] = [0.9e-6, 0.0, 0.0]
        extent = (1.0e-6, 1.0e-6, 1.0e-6)
        dt = 1e-14
        unwrapped = advance_positions(s, dt, box_extent=extent)
        assert unwrapped[0, 0] > 0.9e-6
        assert 0.0 <= s.positions[0, 0] < 1.0e-6

    def test_speed_never_exceeds_c(self, rng):
        momenta = rng.normal(scale=5.0, size=(100, 3))
        s = ParticleSpecies.electrons(np.zeros((100, 3)), momenta, np.ones(100))
        speeds = np.linalg.norm(s.velocities(), axis=1)
        assert np.all(speeds < constants.SPEED_OF_LIGHT)
