"""Fused bincount kernels vs the reference implementations.

Every fused kernel in :mod:`repro.pic.kernels` is tested against the
readable reference path it replaces, on randomized particle sets that
include periodic-boundary straddlers, so the ``kernel="fused"`` default of
the simulator is backed by an oracle rather than by inspection.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import constants
from repro.pic.deposition import (deposit_charge_cic, deposit_current_cic,
                                  deposit_current_esirkepov)
from repro.pic.grid import GridConfig, YeeGrid
from repro.pic.interpolation import gather_fields
from repro.pic.kernels import (CICPlanSet, boris_push_fused,
                               deposit_current_esirkepov_fused)
from repro.pic.particles import ParticleSpecies
from repro.pic.pusher import boris_push


def make_grid(shape=(9, 7, 6), cell=1.0e-5):
    return YeeGrid(GridConfig(shape=shape, cell_size=(cell, cell, cell)))


def random_particles(rng, grid, n, straddle=True):
    """Random particle set; with ``straddle``, some sit on the periodic seam."""
    extent = np.asarray(grid.config.extent)
    positions = rng.uniform(0.0, 1.0, size=(n, 3)) * extent
    if straddle and n >= 8:
        # pin a handful of particles to within half a cell of the box edges
        cell = np.asarray(grid.config.cell_size)
        positions[:4] = rng.uniform(0.0, 0.5, size=(4, 3)) * cell
        positions[4:8] = extent - rng.uniform(0.0, 0.5, size=(4, 3)) * cell
    weights = rng.uniform(0.5, 2.0, size=n)
    return positions, weights


class TestGatherEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_fused_matches_reference_on_random_fields(self, seed):
        rng = np.random.default_rng(seed)
        grid = make_grid()
        for name in ("Ex", "Ey", "Ez", "Bx", "By", "Bz"):
            grid.component(name)[...] = rng.normal(size=grid.config.shape)
        positions, _ = random_particles(rng, grid, 64)
        e_ref, b_ref = gather_fields(grid, positions, kernel="reference")
        e_fused, b_fused = gather_fields(grid, positions, kernel="fused")
        # the paths differ only in floating-point summation order
        np.testing.assert_allclose(e_fused, e_ref, rtol=1e-10, atol=1e-13)
        np.testing.assert_allclose(b_fused, b_ref, rtol=1e-10, atol=1e-13)

    def test_plan_cache_reuses_offsets(self):
        rng = np.random.default_rng(3)
        grid = make_grid()
        positions, _ = random_particles(rng, grid, 16)
        plans = CICPlanSet(positions, grid.config.cell_size, grid.config.shape)
        first = plans.plan((0.5, 0.0, 0.0))
        again = plans.plan((0.5, 0.0, 0.0))
        assert first is again  # stagger-group plans are computed once


class TestDepositionEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_charge_cic(self, seed):
        rng = np.random.default_rng(seed)
        ref, fused = make_grid(), make_grid()
        positions, weights = random_particles(rng, ref, 80)
        charge = -constants.ELEMENTARY_CHARGE
        deposit_charge_cic(ref, positions, charge, weights, kernel="reference")
        deposit_charge_cic(fused, positions, charge, weights, kernel="fused")
        np.testing.assert_allclose(fused.rho, ref.rho, rtol=1e-12, atol=1e-300)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_current_cic(self, seed):
        rng = np.random.default_rng(seed)
        ref, fused = make_grid(), make_grid()
        positions, weights = random_particles(rng, ref, 80)
        velocities = rng.normal(scale=1e6, size=(80, 3))
        charge = constants.ELEMENTARY_CHARGE
        deposit_current_cic(ref, positions, velocities, charge, weights,
                            kernel="reference")
        deposit_current_cic(fused, positions, velocities, charge, weights,
                            kernel="fused")
        for name in ("Jx", "Jy", "Jz"):
            a, b = fused.component(name), ref.component(name)
            scale = np.max(np.abs(b)) + 1e-300
            assert np.max(np.abs(a - b)) < 1e-12 * scale

    @given(st.integers(1, 120), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_esirkepov_property(self, n, seed):
        """Property: fused == reference for any count, incl. seam straddlers."""
        rng = np.random.default_rng(seed)
        ref, fused = make_grid(), make_grid()
        dt = ref.config.courant_time_step()
        old, weights = random_particles(rng, ref, n)
        displacement = rng.uniform(-0.9, 0.9, size=(n, 3)) \
            * np.asarray(ref.config.cell_size)
        new = old + displacement
        charge = -constants.ELEMENTARY_CHARGE
        deposit_current_esirkepov(ref, old, new, charge, weights, dt,
                                  kernel="reference")
        deposit_current_esirkepov(fused, old, new, charge, weights, dt,
                                  kernel="fused")
        for name in ("Jx", "Jy", "Jz"):
            a, b = fused.component(name), ref.component(name)
            scale = np.max(np.abs(b)) + 1e-300
            assert np.max(np.abs(a - b)) < 1e-12 * scale

    def test_esirkepov_chunked_matches_unchunked(self):
        rng = np.random.default_rng(7)
        grid_a, grid_b = make_grid(), make_grid()
        n = 500
        dt = grid_a.config.courant_time_step()
        old, weights = random_particles(rng, grid_a, n)
        new = old + rng.uniform(-0.9, 0.9, size=(n, 3)) \
            * np.asarray(grid_a.config.cell_size)
        deposit_current_esirkepov_fused(grid_a, old, new, 1.0, weights, dt,
                                        chunk_size=64)
        deposit_current_esirkepov_fused(grid_b, old, new, 1.0, weights, dt)
        for name in ("Jx", "Jy", "Jz"):
            a, b = grid_a.component(name), grid_b.component(name)
            scale = np.max(np.abs(b)) + 1e-300
            assert np.max(np.abs(a - b)) < 1e-13 * scale

    def test_esirkepov_fused_rejects_large_displacement(self):
        grid = make_grid(cell=1.0e-6)
        old = np.array([[1.0e-6, 1.0e-6, 1.0e-6]])
        with pytest.raises(ValueError):
            deposit_current_esirkepov_fused(grid, old, old + 2.0e-6, 1.0,
                                            np.ones(1), 1e-13)

    def test_continuity_at_machine_precision_under_fused(self):
        """Regression: the fused Esirkepov path conserves charge exactly."""
        rng = np.random.default_rng(11)
        grid = make_grid(shape=(10, 9, 8), cell=2.0e-5)
        n = 400
        dt = grid.config.courant_time_step()
        extent = np.asarray(grid.config.extent)
        old, weights = random_particles(rng, grid, n)
        new = old + rng.uniform(-0.9, 0.9, size=(n, 3)) \
            * np.asarray(grid.config.cell_size)
        rho0, rho1 = YeeGrid(grid.config), YeeGrid(grid.config)
        charge = -constants.ELEMENTARY_CHARGE
        deposit_charge_cic(rho0, old, charge, weights, kernel="fused")
        deposit_charge_cic(rho1, np.mod(new, extent), charge, weights,
                           kernel="fused")
        deposit_current_esirkepov(grid, old, new, charge, weights, dt,
                                  kernel="fused")
        residual = (rho1.rho - rho0.rho) / dt + grid.divergence_j()
        scale = np.max(np.abs((rho1.rho - rho0.rho) / dt))
        assert np.max(np.abs(residual)) < 1e-12 * scale


class TestBorisEquivalence:
    def test_fused_push_matches_reference(self):
        rng = np.random.default_rng(5)
        n = 64
        positions = rng.uniform(0, 1e-5, size=(n, 3))
        momenta = rng.normal(scale=0.1, size=(n, 3))  # gamma * beta

        def make_species():
            return ParticleSpecies(
                name="e", charge=-constants.ELEMENTARY_CHARGE,
                mass=constants.ELECTRON_MASS, positions=positions.copy(),
                momenta=momenta.copy(), weights=np.ones(n))

        ref = make_species()
        fused = make_species()
        e_fields = rng.normal(scale=1e3, size=(n, 3))
        b_fields = rng.normal(scale=1e-2, size=(n, 3))
        dt = 1e-12
        boris_push(ref, e_fields, b_fields, dt)
        boris_push_fused(fused, e_fields, b_fields, dt)
        np.testing.assert_allclose(fused.momenta, ref.momenta,
                                   rtol=1e-13, atol=1e-300)


class TestKernelValidation:
    def test_unknown_kernel_name_rejected(self):
        grid = make_grid()
        positions = np.zeros((1, 3))
        with pytest.raises(ValueError, match="kernel"):
            gather_fields(grid, positions, kernel="turbo")
        with pytest.raises(ValueError, match="kernel"):
            deposit_charge_cic(grid, positions, 1.0, np.ones(1), kernel="")

    def test_simulation_config_rejects_unknown_kernel(self):
        from repro.pic.simulation import SimulationConfig

        with pytest.raises(ValueError, match="kernel"):
            SimulationConfig(grid=GridConfig(shape=(4, 4, 4),
                                             cell_size=(1e-5,) * 3),
                             kernel="turbo")


class TestFullStepEquivalence:
    def test_khi_run_matches_between_kernels(self):
        from repro.pic.hotpath import EQUIVALENCE_RTOL, check_equivalence

        error = check_equivalence(n_steps=5)
        assert np.isfinite(error)
        assert error < EQUIVALENCE_RTOL
