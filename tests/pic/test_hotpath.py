"""Smoke tests of the hot-path benchmark harness (``repro.pic.hotpath``)."""

from __future__ import annotations

import pytest

from repro.pic.hotpath import (HotpathResult, format_result, main,
                               persist_result, run_hotpath_benchmark)
from repro.utils.benchjson import latest_run


def tiny_result():
    return run_hotpath_benchmark(n_steps=2, warmup=1, equivalence_steps=2,
                                 repeats=1)


class TestRunHotpathBenchmark:
    def test_measures_both_kernels_and_equivalence(self):
        result = tiny_result()
        assert set(result.steps_per_sec) == {"fused", "reference"}
        assert all(rate > 0 for rate in result.steps_per_sec.values())
        assert set(result.sections_ms) == {"fused", "reference"}
        assert "deposit" in result.sections_ms["fused"]
        assert result.n_macro_particles > 0
        assert result.equivalent
        assert result.speedup > 0

    @pytest.mark.parametrize("kwargs", [{"n_steps": 0}, {"warmup": -1},
                                        {"repeats": 0}])
    def test_rejects_bad_arguments(self, kwargs):
        with pytest.raises(ValueError):
            run_hotpath_benchmark(**kwargs)


class TestPersistAndFormat:
    def test_persist_appends_bench_record(self, tmp_path):
        result = tiny_result()
        path = persist_result(result, str(tmp_path))
        record = latest_run("pic_hotpath", str(tmp_path))
        assert path.endswith("BENCH_pic_hotpath.json")
        assert record["metrics"]["speedup"] == pytest.approx(result.speedup)
        assert record["params"]["n_macro_particles"] == result.n_macro_particles

    def test_format_mentions_both_kernels(self):
        result = HotpathResult(
            steps_per_sec={"fused": 200.0, "reference": 50.0},
            sections_ms={"fused": {"deposit": 2.0},
                         "reference": {"deposit": 16.0}},
            n_steps=4, n_macro_particles=2048, grid_shape=(8, 16, 2),
            equivalence_error=1e-13, equivalent=True)
        text = format_result(result)
        assert "fused" in text and "reference" in text
        assert "4.00x" in text
        assert "OK" in text


class TestMain:
    def test_main_no_persist(self, capsys):
        assert main(["--steps", "2", "--warmup", "1", "--repeats", "1",
                     "--no-persist"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "recorded" not in out

    def test_main_persists_history(self, capsys, tmp_path):
        assert main(["--steps", "2", "--warmup", "1", "--repeats", "1",
                     "--output-dir", str(tmp_path)]) == 0
        assert latest_run("pic_hotpath", str(tmp_path)) is not None
        assert "recorded" in capsys.readouterr().out

    @pytest.mark.parametrize("argv", [["--steps", "0"], ["--warmup", "-1"],
                                      ["--repeats", "0"]])
    def test_main_rejects_bad_flags(self, argv, capsys):
        assert main(argv + ["--no-persist"]) == 2
        assert "error" in capsys.readouterr().err
