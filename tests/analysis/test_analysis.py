"""Tests of the scientific-evaluation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (LatentRegimeClassifier, REGION_APPROACHING, REGION_NAMES,
                            REGION_RECEDING, REGION_VORTEX, evaluate_inversion,
                            histogram_distance, label_particles, majority_region,
                            momentum_histogram, peak_momentum,
                            region_momentum_histograms)
from repro.analysis.histograms import detects_two_populations, mean_momentum
from repro.analysis.regions import region_fractions
from repro.continual.buffer import TrainingSample
from repro.models import ArtificialScientistModel, small_config


class TestRegionLabels:
    def make_setup(self, rng, n=1000):
        extent = (1.0, 1.0, 1.0)
        positions = rng.uniform(0, 1, size=(n, 3))
        momenta = np.zeros((n, 3))
        inner = (positions[:, 1] > 0.25) & (positions[:, 1] < 0.75)
        momenta[:, 0] = np.where(inner, 0.2, -0.2)
        return positions, momenta, extent

    def test_bulk_labels_follow_flow_direction(self, rng):
        positions, momenta, extent = self.make_setup(rng)
        labels = label_particles(positions, momenta, extent, vortex_half_width=0.0)
        approaching = labels == REGION_APPROACHING
        np.testing.assert_array_equal(momenta[approaching, 0] > 0, True)
        receding = labels == REGION_RECEDING
        np.testing.assert_array_equal(momenta[receding, 0] < 0, True)

    def test_vortex_label_near_shear_surfaces(self, rng):
        positions, momenta, extent = self.make_setup(rng)
        labels = label_particles(positions, momenta, extent, vortex_half_width=0.05)
        vortex = labels == REGION_VORTEX
        y = positions[vortex, 1]
        near = (np.abs(y - 0.25) < 0.05) | (np.abs(y - 0.75) < 0.05)
        assert np.all(near)
        # all three regions are populated
        assert set(np.unique(labels)) == {0, 1, 2}

    def test_region_fractions_sum_to_one(self, rng):
        positions, momenta, extent = self.make_setup(rng)
        labels = label_particles(positions, momenta, extent)
        fractions = region_fractions(labels)
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert set(fractions) == set(REGION_NAMES.values())

    def test_majority_region(self):
        assert majority_region(np.array([0, 0, 1])) == REGION_APPROACHING
        assert majority_region(np.array([2, 2, 0])) == REGION_VORTEX
        # vortex wins ties
        assert majority_region(np.array([0, 2])) == REGION_VORTEX
        with pytest.raises(ValueError):
            majority_region(np.array([]))

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            label_particles(rng.random((5, 2)), rng.random((5, 2)), (1, 1, 1))


class TestHistograms:
    def test_peak_and_mean(self, rng):
        momenta = rng.normal(0.2, 0.01, size=(5000, 3))
        centres, counts = momentum_histogram(momenta, bins=100)
        assert peak_momentum(centres, counts) == pytest.approx(0.2, abs=0.02)
        assert mean_momentum(centres, counts) == pytest.approx(0.2, abs=0.02)

    def test_region_histograms_keys(self, rng):
        momenta = rng.normal(size=(100, 3)) * 0.1
        labels = rng.integers(0, 3, size=100)
        hists = region_momentum_histograms(momenta, labels)
        assert set(hists) <= set(REGION_NAMES.values())
        assert len(hists) == 3

    def test_histogram_distance_bounds(self, rng):
        a = np.histogram(rng.normal(0.2, 0.02, 1000), bins=50, range=(-1, 1))[0]
        b = np.histogram(rng.normal(-0.2, 0.02, 1000), bins=50, range=(-1, 1))[0]
        assert histogram_distance(a, a) == pytest.approx(0.0)
        assert histogram_distance(a, b) == pytest.approx(2.0, abs=0.1)

    def test_histogram_distance_validation(self):
        with pytest.raises(ValueError):
            histogram_distance(np.ones(4), np.ones(5))
        with pytest.raises(ValueError):
            histogram_distance(np.zeros(4), np.ones(4))

    def test_two_population_detection(self, rng):
        two = np.concatenate([rng.normal(0.2, 0.02, 1000), rng.normal(-0.2, 0.02, 1000)])
        one = rng.normal(0.2, 0.02, 2000)
        c2, h2 = momentum_histogram(two[:, None], bins=64)
        c1, h1 = momentum_histogram(one[:, None], bins=64)
        assert detects_two_populations(c2, h2)
        assert not detects_two_populations(c1, h1)

    def test_empty_histogram_raises(self):
        with pytest.raises(ValueError):
            peak_momentum(np.array([0.0, 1.0]), np.array([0.0, 0.0]))


class TestLatentClassifier:
    def test_separates_linearly_separable_clusters(self, rng):
        n = 200
        latents = np.concatenate([
            rng.normal(loc=(2.0, 0.0), scale=0.3, size=(n, 2)),
            rng.normal(loc=(-2.0, 0.0), scale=0.3, size=(n, 2)),
            rng.normal(loc=(0.0, 2.5), scale=0.3, size=(n, 2)),
        ])
        labels = np.repeat([0, 1, 2], n)
        classifier = LatentRegimeClassifier(rng=rng).fit(latents, labels)
        assert classifier.accuracy(latents, labels) > 0.95
        proba = classifier.predict_proba(latents[:5])
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_requires_fit(self, rng):
        with pytest.raises(RuntimeError):
            LatentRegimeClassifier().predict(rng.random((3, 4)))

    def test_label_validation(self, rng):
        with pytest.raises(ValueError):
            LatentRegimeClassifier(n_classes=2).fit(rng.random((10, 3)),
                                                    np.full(10, 5))

    def test_chance_level_on_random_labels(self, rng):
        latents = rng.normal(size=(300, 4))
        labels = rng.integers(0, 3, size=300)
        classifier = LatentRegimeClassifier(n_epochs=50, rng=rng).fit(latents, labels)
        assert classifier.accuracy(latents, labels) < 0.6


class TestInversionEvaluation:
    def make_samples(self, rng, config, n_per_region=3):
        samples = []
        for region, u in (("approaching", 0.2), ("receding", -0.2), ("vortex", 0.0)):
            for _ in range(n_per_region):
                cloud = rng.normal(size=(config.n_input_points, 6)) * 0.05
                cloud[:, 3] += u
                spectrum = rng.random(config.spectrum_dim)
                samples.append(TrainingSample(point_cloud=cloud, spectrum=spectrum,
                                              region=region))
        return samples

    def test_report_structure(self, rng):
        config = small_config()
        model = ArtificialScientistModel(config, rng=rng)
        samples = self.make_samples(rng, config)
        report = evaluate_inversion(model, samples, n_posterior_samples=2, rng=rng)
        assert set(report.regions) == {"approaching", "receding", "vortex"}
        rows = report.rows()
        assert len(rows) == 3
        assert {"region", "true_peak", "predicted_peak", "histogram_l1"} <= set(rows[0])
        summary = report.summary()
        assert summary["surrogate_spectrum_mse"] >= 0.0
        assert 0.0 <= summary["latent_classifier_accuracy"] <= 1.0
        assert report.n_evaluation_samples == 9

    def test_true_peaks_reflect_input_distributions(self, rng):
        config = small_config()
        model = ArtificialScientistModel(config, rng=rng)
        samples = self.make_samples(rng, config, n_per_region=4)
        report = evaluate_inversion(model, samples, n_posterior_samples=1, rng=rng)
        assert report.regions["approaching"].true_peak == pytest.approx(0.2, abs=0.05)
        assert report.regions["receding"].true_peak == pytest.approx(-0.2, abs=0.05)

    def test_requires_samples(self, rng):
        model = ArtificialScientistModel(small_config(), rng=rng)
        with pytest.raises(ValueError):
            evaluate_inversion(model, [])
