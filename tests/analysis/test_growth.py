"""Tests of the growth-rate measurement utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.growth import (fit_exponential_growth, growth_rate_from_energy_history,
                                   growth_rate_from_radiation_history,
                                   identify_linear_phase)
from repro.pic.diagnostics import EnergyHistory


class TestExponentialFit:
    def test_recovers_known_rate(self):
        gamma = 2.0e10
        times = np.linspace(0, 1e-9, 50)
        energies = 1e-6 * np.exp(2.0 * gamma * times)
        fit = fit_exponential_growth(times, energies)
        assert fit.rate == pytest.approx(gamma, rel=1e-6)
        assert fit.energy_rate == pytest.approx(2 * gamma, rel=1e-6)
        assert fit.r_squared > 0.999
        assert fit.e_folding_time == pytest.approx(1.0 / gamma, rel=1e-6)

    def test_window_selection(self):
        times = np.linspace(0, 1.0, 40)
        energies = np.exp(3.0 * times)
        fit = fit_exponential_growth(times, energies, window=(5, 25))
        assert fit.window == (5, 25)
        assert fit.energy_rate == pytest.approx(3.0, rel=1e-6)

    def test_noisy_signal_still_close(self, rng):
        gamma = 1.0e10
        times = np.linspace(0, 2e-9, 80)
        energies = 1e-8 * np.exp(2 * gamma * times) * rng.lognormal(0.0, 0.1, size=80)
        fit = fit_exponential_growth(times, energies)
        assert fit.rate == pytest.approx(gamma, rel=0.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_exponential_growth([0, 1], [1, 2])
        times = np.linspace(0, 1, 10)
        with pytest.raises(ValueError):
            fit_exponential_growth(times, np.ones(10), window=(0, 2))
        with pytest.raises(ValueError):
            fit_exponential_growth(times, np.zeros(10))


class TestFromHistories:
    def test_from_energy_history_plugin(self):
        history = EnergyHistory()
        dt = 1e-13
        gamma = 5e10
        for step in range(0, 60, 2):
            history.steps.append(step)
            history.magnetic.append(1e-9 * np.exp(2 * gamma * step * dt))
            history.electric.append(0.0)
            history.kinetic.append(1.0)
        fit = growth_rate_from_energy_history(history, dt=dt)
        assert fit.rate == pytest.approx(gamma, rel=1e-3)

    def test_from_radiation_history(self):
        times = np.linspace(0, 1e-10, 30)
        power = 1e-3 * np.exp(4e10 * times)
        fit = growth_rate_from_radiation_history(times, power)
        assert fit.energy_rate == pytest.approx(4e10, rel=1e-3)

    def test_energy_and_radiation_rates_agree(self):
        """The paper's point: the growth rate is measurable from radiation."""
        times = np.linspace(0, 1e-10, 40)
        gamma = 3e10
        field_energy = 1e-9 * np.exp(2 * gamma * times)
        radiated_power = 5e-4 * np.exp(2 * gamma * times)
        from_fields = fit_exponential_growth(times, field_energy)
        from_radiation = growth_rate_from_radiation_history(times, radiated_power)
        assert from_fields.rate == pytest.approx(from_radiation.rate, rel=1e-6)


class TestLinearPhaseDetection:
    def test_finds_growth_window(self):
        times = np.arange(100, dtype=float)
        energies = np.concatenate([
            np.full(20, 1.0),                        # noise floor
            np.exp(0.3 * np.arange(40)),             # growth
            np.full(40, np.exp(0.3 * 39)),           # saturation
        ])
        start, stop = identify_linear_phase(energies)
        assert 15 <= start <= 40
        assert stop <= 65
        fit = fit_exponential_growth(times, energies, window=(start, stop))
        assert fit.energy_rate == pytest.approx(0.3, rel=0.2)

    def test_too_short_series(self):
        with pytest.raises(ValueError):
            identify_linear_phase([1.0, 2.0])
