"""Tests of the in-process RunEventBus: fan-out, bounds, drops, atomicity."""

from __future__ import annotations

import threading

import pytest

from repro.service.bus import RunEventBus


class TestPublishSubscribe:
    def test_subscriber_receives_published_events_in_order(self):
        bus = RunEventBus()
        history, sub = bus.subscribe("c1")
        assert history == []
        for index in range(3):
            bus.publish("c1", "run", {"index": index})
        got = [sub.get(timeout=1) for _ in range(3)]
        assert [event.data["index"] for event in got] == [0, 1, 2]
        assert [event.seq for event in got] == [1, 2, 3]

    def test_topics_are_isolated(self):
        bus = RunEventBus()
        _, sub_a = bus.subscribe("a")
        _, sub_b = bus.subscribe("b")
        bus.publish("a", "run", {"topic": "a"})
        assert sub_a.get(timeout=1).data == {"topic": "a"}
        assert sub_b.get(timeout=0.05) is None

    def test_fan_out_reaches_every_subscriber(self):
        bus = RunEventBus()
        subs = [bus.subscribe("c")[1] for _ in range(3)]
        event = bus.publish("c", "run", {"n": 1})
        assert all(sub.get(timeout=1).seq == event.seq for sub in subs)

    def test_unsubscribe_stops_delivery_and_is_idempotent(self):
        bus = RunEventBus()
        _, sub = bus.subscribe("c")
        bus.unsubscribe(sub)
        bus.unsubscribe(sub)
        bus.publish("c", "run", {})
        assert sub.get(timeout=0.05) is None
        assert bus.subscriber_count("c") == 0

    def test_publish_never_blocks_without_subscribers(self):
        bus = RunEventBus(max_queue_size=1)
        for index in range(100):
            bus.publish("quiet", "run", {"index": index})
        assert len(bus.history("quiet")) == 100


class TestSlowSubscriberDropPolicy:
    def test_full_queue_drops_new_events_and_counts_them(self):
        bus = RunEventBus()
        _, slow = bus.subscribe("c", max_queue_size=2)
        for index in range(10):
            bus.publish("c", "run", {"index": index})
        # the first two made it; the other eight were dropped for this
        # subscriber only (history keeps everything)
        assert [slow.get(timeout=1).data["index"] for _ in range(2)] == [0, 1]
        assert slow.dropped == 8
        assert slow.take_dropped() == 8
        assert slow.take_dropped() == 0
        assert len(bus.history("c")) == 10

    def test_a_slow_subscriber_does_not_starve_its_peers(self):
        bus = RunEventBus()
        _, slow = bus.subscribe("c", max_queue_size=1)
        _, fast = bus.subscribe("c", max_queue_size=64)
        for index in range(20):
            bus.publish("c", "run", {"index": index})
        received = [fast.get(timeout=1).data["index"] for _ in range(20)]
        assert received == list(range(20))
        assert slow.dropped == 19

    def test_invalid_queue_sizes_are_rejected(self):
        with pytest.raises(ValueError):
            RunEventBus(max_queue_size=0)
        with pytest.raises(ValueError):
            RunEventBus().subscribe("c", max_queue_size=0)


class TestHistoryAndAtomicity:
    def test_seed_fills_history_without_fanning_out(self):
        bus = RunEventBus()
        _, sub = bus.subscribe("c")
        bus.seed("c", "run", {"replayed": True})
        assert sub.get(timeout=0.05) is None
        assert [event.data for event in bus.history("c")] == [{"replayed": True}]

    def test_subscribe_snapshot_plus_live_sees_every_event_exactly_once(self):
        """The exactly-once guarantee: under concurrent publishing, every
        event lands in either the subscribe-time snapshot or the queue —
        never both, never neither."""
        bus = RunEventBus()
        total = 300
        started = threading.Event()

        def publisher():
            started.set()
            for index in range(total):
                bus.publish("c", "run", {"index": index})

        thread = threading.Thread(target=publisher)
        thread.start()
        started.wait()
        history, sub = bus.subscribe("c", max_queue_size=total)
        thread.join()
        seen = [event.data["index"] for event in history]
        while True:
            event = sub.get(timeout=0.2)
            if event is None:
                break
            seen.append(event.data["index"])
        assert seen == list(range(total))
