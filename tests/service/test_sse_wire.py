"""SSE wire-format tests: encoder/parser round trips + the event stream.

``sse_event_stream`` is the exact generator the HTTP handler writes to the
socket, driven here directly (no server) against a real ``RunEventBus`` so
snapshot-replay, live-append, slow-consumer drops and mid-stream
disconnects are deterministic — every assertion goes through the shared
``parse_sse_events`` helper, i.e. through the real line protocol.
"""

from __future__ import annotations

from sse_helpers import events_of_kind, parse_sse_events, run_ids_of

from repro.service.bus import RunEventBus
from repro.service.server import sse_event_stream
from repro.service.sse import (SSEParser, format_comment, format_event,
                               parse_events)


class TestWireFormat:
    def test_format_and_parse_round_trip(self):
        raw = (format_event("run", {"run_id": "abc", "status": "completed"},
                            event_id=4)
               + format_comment()
               + format_event("done", {"state": "completed"}))
        events = parse_sse_events(raw)
        assert events == [
            {"event": "run", "id": 4,
             "data": {"run_id": "abc", "status": "completed"}},
            {"event": "done", "id": None, "data": {"state": "completed"}},
        ]

    def test_frames_end_with_a_blank_line(self):
        frame = format_event("run", {"a": 1})
        assert frame.endswith("\n\n")
        assert frame.startswith("event: run\n")

    def test_comments_are_ignored_by_the_parser(self):
        assert parse_sse_events(format_comment("keep-alive")) == []

    def test_incremental_parsing_across_chunk_boundaries(self):
        """A frame split at arbitrary byte boundaries parses identically —
        the client feeds whatever the socket hands it."""
        raw = format_event("run", {"run_id": "xyz"}, event_id=1) \
            + format_event("done", {"state": "completed"}, event_id=2)
        for split in range(1, len(raw)):
            parser = SSEParser()
            events = parser.feed(raw[:split]) + parser.feed(raw[split:])
            assert [event.event for event in events] == ["run", "done"]
            assert events[0].data == {"run_id": "xyz"}

    def test_multi_line_data_joins_per_spec(self):
        events = parse_events('event: run\ndata: {"a":\ndata: 1}\n\n')
        assert events[0].data == {"a": 1}


class _StubJob:
    """The minimal job surface ``sse_event_stream`` consumes."""

    def __init__(self, bus, campaign_id="stub-campaign", state="running"):
        self.bus = bus
        self.id = campaign_id
        self.state = state

    def is_terminal(self):
        return self.state in ("completed", "failed", "cancelled")

    def status(self, include_records=False):
        return {"campaign": "stub", "state": self.state, "done": True}


def _publish_run(bus, topic, run_id):
    bus.publish(topic, "run", {"run_id": run_id, "status": "completed"})


class TestEventStream:
    def test_snapshot_replay_then_done(self):
        """Records landed before connect arrive as ``snapshot`` frames; a
        history that already ends in ``done`` terminates the stream."""
        bus = RunEventBus()
        job = _StubJob(bus, state="completed")
        for run_id in ("r1", "r2"):
            bus.seed(job.id, "run", {"run_id": run_id, "status": "completed"})
        bus.seed(job.id, "done", {"state": "completed"})
        events = parse_sse_events("".join(sse_event_stream(job)))
        assert [event["event"] for event in events] == \
            ["snapshot", "snapshot", "done"]
        assert run_ids_of(events) == ["r1", "r2"]
        assert bus.subscriber_count(job.id) == 0

    def test_live_append_streams_run_frames_until_done(self):
        bus = RunEventBus()
        job = _StubJob(bus)
        stream = sse_event_stream(job, keepalive_s=0.05)
        collected = [next(stream)]       # keep-alive tick: now subscribed
        _publish_run(bus, job.id, "live-1")
        collected.append(next(stream))
        _publish_run(bus, job.id, "live-2")
        collected.append(next(stream))
        bus.publish(job.id, "done", {"state": "completed"})
        collected.extend(stream)         # runs to the terminal frame
        events = parse_sse_events("".join(collected))
        assert [event["event"] for event in events] == ["run", "run", "done"]
        assert run_ids_of(events) == ["live-1", "live-2"]
        assert bus.subscriber_count(job.id) == 0

    def test_snapshot_plus_live_mix(self):
        bus = RunEventBus()
        job = _StubJob(bus)
        bus.seed(job.id, "run", {"run_id": "old", "status": "completed"})
        stream = sse_event_stream(job, keepalive_s=5)
        first = next(stream)
        _publish_run(bus, job.id, "new")
        bus.publish(job.id, "done", {"state": "completed"})
        events = parse_sse_events(first + "".join(stream))
        assert [event["event"] for event in events] == \
            ["snapshot", "run", "done"]
        assert run_ids_of(events) == ["old", "new"]

    def test_slow_consumer_drop_is_reported_on_the_wire(self):
        """A subscriber whose bounded queue overflows gets an explicit
        ``dropped`` frame with the loss count — never silent gaps."""
        bus = RunEventBus()
        job = _StubJob(bus)
        _publish_run(bus, job.id, "r0")
        stream = sse_event_stream(job, keepalive_s=0.1, max_queue_size=2)
        first = next(stream)             # subscribes, replays r0 as snapshot
        # the subscriber is not pulling: 5 more records + done land on a
        # queue of 2, so r1/r2 are queued and r3/r4/r5/done are dropped
        for index in range(1, 6):
            _publish_run(bus, job.id, f"r{index}")
        bus.publish(job.id, "done", {"state": "completed"})
        job.state = "completed"          # the manager would have set this
        events = parse_sse_events(first + "".join(stream))
        dropped = events_of_kind(events, "dropped")
        assert len(dropped) == 1
        assert dropped[0]["data"]["dropped"] == 4
        # the stream still terminates: the keep-alive tick notices the
        # terminal job state and synthesises the lost done frame, so the
        # client knows to re-read the status document
        assert events[-1]["event"] == "done"
        assert run_ids_of(events) == ["r0", "r1", "r2"]

    def test_mid_stream_disconnect_detaches_the_subscription(self):
        """Closing the generator (what the handler does when the socket
        write fails) must release the bus subscription."""
        bus = RunEventBus()
        job = _StubJob(bus)
        stream = sse_event_stream(job, keepalive_s=0.05)
        next(stream)                     # keep-alive tick: now subscribed
        _publish_run(bus, job.id, "r1")
        assert parse_sse_events(next(stream))[0]["event"] == "run"
        assert bus.subscriber_count(job.id) == 1
        stream.close()                   # client went away mid-stream
        assert bus.subscriber_count(job.id) == 0

    def test_terminal_job_with_lost_done_event_still_ends_the_stream(self):
        """If the terminal event itself fell to the drop policy, the
        keep-alive tick synthesises ``done`` from the job state."""
        bus = RunEventBus()
        job = _StubJob(bus, state="completed")
        stream = sse_event_stream(job, keepalive_s=0.05, max_queue_size=1)
        events = parse_sse_events("".join(stream))
        assert events[-1]["event"] == "done"
        assert events[-1]["data"]["state"] == "completed"
        assert bus.subscriber_count(job.id) == 0
