"""Shared SSE test helpers (the harness idiom from SNIPPETS.md).

Every service test parses the wire format through :func:`parse_sse_events`
so the expected shape — ``[{"event": ..., "data": ..., "id": ...}, ...]``
— lives in exactly one place, mirroring the ``_parse_sse_events`` helpers
of the FastAPI streaming test harnesses the service contract is grounded
in.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.service.sse import parse_events


def parse_sse_events(raw: str) -> List[Dict[str, Any]]:
    """Parse SSE stream text into a list of ``{event, data, id}`` dicts."""
    return [{"event": event.event, "data": event.data, "id": event.id}
            for event in parse_events(raw)]


def events_of_kind(events: List[Dict[str, Any]], kind: str
                   ) -> List[Dict[str, Any]]:
    """The subset of parsed events with a given ``event:`` type."""
    return [event for event in events if event["event"] == kind]


def run_ids_of(events: List[Dict[str, Any]]) -> List[str]:
    """The run ids carried by ``run``/``snapshot`` events, in stream order."""
    return [event["data"]["run_id"] for event in events
            if event["event"] in ("run", "snapshot")]
