"""End-to-end tests of the campaign service over real HTTP.

A :class:`CampaignServiceServer` runs on a live socket in a background
thread with a fake (fast, deterministic) worker; every assertion goes
through :class:`repro.service.client.ServiceClient` — the same
urllib+SSE path the CLI, the CI smoke job and real users take.
"""

from __future__ import annotations

import contextlib
import itertools
import threading
import time

import pytest

from sse_helpers import run_ids_of

from repro.campaign import CampaignSpec, get_campaign_preset
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import create_server, parse_submission


def fake_worker(payload):
    """Deterministic stand-in for a coupled run (same idiom as campaign tests)."""
    lr = payload["config"]["ml"]["base_learning_rate"]
    return {"final_total_loss": 1000.0 * lr + payload["index"],
            "training_iterations": payload["n_steps"],
            "samples_streamed": 4 * payload["n_steps"],
            "wall_time_s": 0.0, "ok": True}


class GatedWorker:
    """A worker whose runs after the first block until ``gate`` is set.

    Gating is keyed on ``n_steps`` so one server can host a gated campaign
    and a free-running one at the same time.
    """

    def __init__(self, gated_n_steps=None):
        self.gate = threading.Event()
        self.first_done = threading.Event()
        self.gated_n_steps = gated_n_steps
        self._count = itertools.count()

    def __call__(self, payload):
        gated = (self.gated_n_steps is None
                 or payload["n_steps"] == self.gated_n_steps)
        if gated and next(self._count) > 0:
            assert self.gate.wait(timeout=30), "test gate never released"
        result = fake_worker(payload)
        if gated:
            self.first_done.set()
        return result


def small_spec(name="svc-test", repetitions=1, n_steps=2):
    """A tiny campaign (2 × repetitions runs) riding the smoke preset."""
    base = get_campaign_preset("campaign-smoke").to_dict()
    base.update(name=name, repetitions=repetitions, n_steps=n_steps)
    return CampaignSpec.from_dict(base)


@contextlib.contextmanager
def service(tmp_path, worker=fake_worker, subdir="svc", **kwargs):
    """A live service on a free port + a client pointed at it."""
    server = create_server(store_dir=str(tmp_path / subdir), worker=worker,
                           keepalive_s=0.2, **kwargs)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    try:
        yield ServiceClient(server.url, timeout=15), server
    finally:
        server.shutdown_service(timeout=10)
        thread.join(timeout=5)


def watch_in_thread(client, campaign_id):
    """Start collecting a campaign's SSE events on a background thread."""
    events = []
    def _watch():
        events.extend(client.watch(campaign_id))
    thread = threading.Thread(target=_watch, daemon=True)
    thread.start()
    return events, thread


def wait_for(predicate, timeout=15.0, message="condition"):
    """Poll a predicate until true (tests fail loudly instead of hanging)."""
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() >= deadline:
            pytest.fail(f"timed out waiting for {message}")
        time.sleep(0.02)


def sse_run_ids(events):
    """Run ids over parsed SSEEvent objects (snapshot + run frames)."""
    return run_ids_of([{"event": e.event, "data": e.data} for e in events])


class TestSubmitAndStream:
    def test_submit_streams_every_run_and_completes(self, tmp_path):
        spec = small_spec()
        expected = sorted(run.run_id for run in spec.resolve())
        with service(tmp_path) as (client, _):
            assert client.wait_ready()["status"] == "ok"
            submitted = client.submit(spec=spec.to_dict())
            assert submitted["created"] and submitted["started"]
            assert submitted["total_runs"] == len(expected)
            events = list(client.watch(submitted["campaign_id"]))
            assert sorted(sse_run_ids(events)) == expected
            assert events[-1].event == "done"
            assert events[-1].data["state"] == "completed"
            status = client.status(submitted["campaign_id"])
            assert status["completed"] == len(expected)
            assert status["done"] is True
            assert len(status["records"]) == len(expected)
            report = client.report(submitted["campaign_id"])
            assert report["n_runs"] == len(expected)
            listed = client.list_campaigns()
            assert [doc["campaign_id"] for doc in listed] == \
                [submitted["campaign_id"]]

    def test_submit_by_preset_name(self, tmp_path):
        with service(tmp_path) as (client, _):
            submitted = client.submit(preset="campaign-smoke")
            done = [e for e in client.watch(submitted["campaign_id"])
                    if e.event == "done"][0]
            assert done.data["state"] == "completed"
            assert done.data["completed"] == submitted["total_runs"]

    def test_resubmit_is_idempotent(self, tmp_path):
        spec = small_spec()
        with service(tmp_path) as (client, _):
            first = client.submit(spec=spec.to_dict())
            list(client.watch(first["campaign_id"]))
            again = client.submit(spec=spec.to_dict())
            assert again["campaign_id"] == first["campaign_id"]
            assert again["created"] is False
            assert again["started"] is False      # nothing left to run
            # the replayed stream still tells the whole story
            events = list(client.watch(first["campaign_id"]))
            assert sorted(sse_run_ids(events)) == \
                sorted(run.run_id for run in spec.resolve())
            assert events[-1].event == "done"

    def test_cache_replay_on_a_renamed_copy(self, tmp_path):
        """The CI smoke invariant: a renamed copy of a finished sweep with
        the same cache dir completes entirely from cache."""
        cache_dir = str(tmp_path / "cache")
        with service(tmp_path) as (client, _):
            spec = small_spec(name="cache-original")
            first = client.submit(spec=spec.to_dict(), cache_dir=cache_dir)
            done = list(client.watch(first["campaign_id"]))[-1]
            assert done.data["state"] == "completed"
            renamed = small_spec(name="cache-replay")
            second = client.submit(spec=renamed.to_dict(), cache_dir=cache_dir)
            assert second["campaign_id"] != first["campaign_id"]
            done = list(client.watch(second["campaign_id"]))[-1]
            assert done.data["state"] == "completed"
            assert done.data["cached"] == done.data["total_runs"]


class TestConcurrentSubscribers:
    def test_two_subscribers_each_see_every_run_exactly_once(self, tmp_path):
        """The acceptance criterion: subscriber A (connected at submit
        time) and subscriber B (connected mid-campaign) both receive every
        RunRecord exactly once across snapshot + live frames."""
        worker = GatedWorker()
        spec = small_spec(name="two-subs", repetitions=2)   # 4 runs
        expected = sorted(run.run_id for run in spec.resolve())
        with service(tmp_path, worker=worker) as (client, _):
            submitted = client.submit(spec=spec.to_dict())
            campaign_id = submitted["campaign_id"]
            events_a, thread_a = watch_in_thread(client, campaign_id)
            assert worker.first_done.wait(timeout=15)
            # B connects only once at least one record definitely exists,
            # so part of its stream is snapshot replay by construction
            wait_for(lambda: client.status(campaign_id)["completed"] >= 1,
                     message="first completed record")
            events_b, thread_b = watch_in_thread(client, campaign_id)
            worker.gate.set()
            thread_a.join(timeout=30)
            thread_b.join(timeout=30)
            assert not thread_a.is_alive() and not thread_b.is_alive()
            for events in (events_a, events_b):
                assert sorted(sse_run_ids(events)) == expected  # exactly once
                assert events[-1].event == "done"
                assert events[-1].data["state"] == "completed"
            assert any(e.event == "snapshot" for e in events_b)

    def test_campaign_submitted_while_another_runs_makes_progress(self, tmp_path):
        """The second acceptance criterion: a fresh submission is not
        starved by a running campaign."""
        worker = GatedWorker(gated_n_steps=3)
        blocked = small_spec(name="long-haul", n_steps=3)
        quick = small_spec(name="drive-by", n_steps=2)
        with service(tmp_path, worker=worker) as (client, _):
            first = client.submit(spec=blocked.to_dict())
            assert worker.first_done.wait(timeout=15)
            second = client.submit(spec=quick.to_dict())
            done = list(client.watch(second["campaign_id"]))[-1]
            assert done.data["state"] == "completed"
            assert client.status(first["campaign_id"])["state"] == "running"
            worker.gate.set()
            done = list(client.watch(first["campaign_id"]))[-1]
            assert done.data["state"] == "completed"


class TestCancelAndResume:
    def test_cancel_keeps_finished_runs_and_resubmit_resumes(self, tmp_path):
        worker = GatedWorker()
        spec = small_spec(name="cancel-me", repetitions=2)   # 4 runs
        with service(tmp_path, worker=worker) as (client, _):
            submitted = client.submit(spec=spec.to_dict())
            campaign_id = submitted["campaign_id"]
            assert worker.first_done.wait(timeout=15)
            cancelled = client.cancel(campaign_id)
            assert cancelled["state"] in ("cancelling", "cancelled")
            worker.gate.set()                 # let the in-flight run finish
            wait_for(lambda: client.status(campaign_id)["state"] == "cancelled",
                     message="cancelled state")
            status = client.status(campaign_id)
            assert 0 < status["completed"] < status["total_runs"]
            # resubmitting the same spec resumes exactly the pending part
            again = client.submit(spec=spec.to_dict())
            assert again["created"] is False and again["started"] is True
            done = list(client.watch(campaign_id))[-1]
            assert done.data["state"] == "completed"
            assert done.data["completed"] == done.data["total_runs"]

    def test_cancel_unknown_campaign_is_404(self, tmp_path):
        with service(tmp_path) as (client, _):
            with pytest.raises(ServiceError) as excinfo:
                client.cancel("no-such-campaign")
            assert excinfo.value.status == 404


class TestRestartResume:
    def test_a_new_server_on_the_same_store_resumes_the_campaign(self, tmp_path):
        """The restart story: stores + spec files on disk are the whole
        service state, so a fresh server attaches and finishes the job."""
        worker = GatedWorker()
        spec = small_spec(name="restartable", repetitions=2)
        with service(tmp_path, worker=worker) as (client, _):
            submitted = client.submit(spec=spec.to_dict())
            campaign_id = submitted["campaign_id"]
            assert worker.first_done.wait(timeout=15)
            client.cancel(campaign_id)
            worker.gate.set()
            wait_for(lambda: client.status(campaign_id)["state"] == "cancelled",
                     message="cancelled state")
        # same store_dir, brand-new server/manager (ungated worker now)
        with service(tmp_path, worker=fake_worker) as (client, _):
            status = client.status(campaign_id)
            assert status["state"] == "interrupted"
            assert 0 < status["completed"] < status["total_runs"]
            again = client.submit(spec=spec.to_dict())
            assert again["created"] is False and again["started"] is True
            events = list(client.watch(campaign_id))
            assert events[-1].data["state"] == "completed"
            # snapshot replay covers the pre-restart records too
            assert sorted(sse_run_ids(events)) == \
                sorted(run.run_id for run in spec.resolve())

    def test_a_completed_campaign_is_listed_after_restart(self, tmp_path):
        spec = small_spec(name="finished-then-restarted")
        with service(tmp_path) as (client, _):
            submitted = client.submit(spec=spec.to_dict())
            list(client.watch(submitted["campaign_id"]))
        with service(tmp_path) as (client, _):
            listed = client.list_campaigns()
            assert [doc["state"] for doc in listed] == ["completed"]
            again = client.submit(spec=spec.to_dict())
            assert again["created"] is False and again["started"] is False


class TestErrorPaths:
    def test_unknown_campaign_routes_are_404(self, tmp_path):
        with service(tmp_path) as (client, _):
            for call in (client.status, client.report):
                with pytest.raises(ServiceError) as excinfo:
                    call("nope")
                assert excinfo.value.status == 404
            with pytest.raises(ServiceError) as excinfo:
                list(client.events("nope"))
            assert excinfo.value.status == 404

    def test_bad_submissions_are_400(self, tmp_path):
        with service(tmp_path) as (client, _):
            cases = [
                {},                                          # neither
                {"preset": "campaign-smoke",
                 "spec": small_spec().to_dict()},            # both
                {"preset": "campaign-smoke", "bogus": 1},    # unknown key
                {"preset": "no-such-preset"},
                {"preset": "campaign-smoke", "executor": "no-such-executor"},
            ]
            for body in cases:
                with pytest.raises(ServiceError) as excinfo:
                    client._request("POST", "/v1/campaigns", body)
                assert excinfo.value.status == 400, body

    def test_unrouted_paths_are_404(self, tmp_path):
        with service(tmp_path) as (client, _):
            with pytest.raises(ServiceError) as excinfo:
                client._request("GET", "/v1/nope")
            assert excinfo.value.status == 404


class TestParseSubmission:
    def test_spec_and_options_split(self):
        spec, options = parse_submission(
            {"spec": small_spec().to_dict(), "max_workers": 2,
             "executor": "threaded"})
        assert spec.name == "svc-test"
        assert options == {"max_workers": 2, "executor": "threaded"}

    def test_preset_resolves(self):
        spec, options = parse_submission({"preset": "campaign-smoke"})
        assert spec.name == "campaign-smoke"
        assert options == {}

    @pytest.mark.parametrize("body", [
        [], "nope", {}, {"preset": "p", "spec": {}}, {"what": 1},
    ])
    def test_invalid_bodies_raise(self, body):
        with pytest.raises(ValueError):
            parse_submission(body)
