"""End-to-end tracing + metrics across the campaign layer.

Worker pools use ``start_method="fork"`` for the same reason the
``tests/campaign/test_workers.py`` suite does: the test module is not an
importable package, so spawn-started children could not unpickle the
worker functions below — and fork keeps the suite fast.  Cross-process
span propagation is identical either way: the context rides the payload,
the finished spans ride the pickled record.
"""

from __future__ import annotations

import os
import threading
from dataclasses import replace

import pytest

from repro.campaign import (CampaignSpec, CampaignStore, ResultCache,
                            WorkerPool, WorkerPoolExecutor,
                            get_campaign_preset, run_campaign)
from repro.campaign.scheduler import ThreadPoolCampaignExecutor
from repro.telemetry import REGISTRY, disabled, read_spans, trace_path_for


def smoke_spec(**kwargs) -> CampaignSpec:
    base = get_campaign_preset("campaign-smoke").to_dict()
    base.update(kwargs)
    return CampaignSpec.from_dict(base)


def fake_worker(payload):
    """Deterministic stand-in for a coupled run."""
    lr = payload["config"]["ml"]["base_learning_rate"]
    return {"final_total_loss": 1000.0 * lr + payload["index"],
            "training_iterations": payload["n_steps"],
            "samples_streamed": 4 * payload["n_steps"],
            "wall_time_s": 0.0, "ok": True}


def crash_once_worker(payload):
    """Kills its host worker the FIRST time each run executes (marker files)."""
    marker = os.path.join(payload["config"]["marker_dir"], payload["run_id"])
    try:
        handle = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return fake_worker(payload)
    os.close(handle)
    os._exit(17)


def stall_once_worker(payload):
    """Stalls the FIRST execution of the marked run (straggler bait)."""
    marker = os.path.join(payload["config"]["marker_dir"], payload["run_id"])
    if payload["config"].get("stall_id") == payload["run_id"]:
        try:
            handle = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            os.close(handle)
            import time
            time.sleep(3.0)
        except FileExistsError:
            pass
    return fake_worker(payload)


def runs_with_config(spec, **extra):
    """The spec's resolved runs with extra keys merged into their configs."""
    return [replace(run, config=dict(run.config, **extra))
            for run in spec.resolve()]


def spans_of(store):
    return read_spans(trace_path_for(store.path))


def by_name(spans, name):
    return [s for s in spans if s.name == name]


def assert_complete_trees(spans, records):
    """Every record has dispatch -> execute -> settle with matching run ids."""
    (root,) = by_name(spans, "campaign")
    assert root.parent_id is None
    assert all(s.trace_id == root.trace_id for s in spans)
    (resolve,) = by_name(spans, "resolve")
    assert resolve.parent_id == root.span_id
    dispatches = {s.attrs["run_id"]: s for s in by_name(spans, "dispatch")}
    executes = {s.attrs["run_id"]: s for s in by_name(spans, "execute")}
    settles = {s.attrs["run_id"]: s for s in by_name(spans, "settle")}
    for record in records:
        dispatch = dispatches[record.run_id]
        assert dispatch.parent_id == root.span_id
        assert executes[record.run_id].parent_id == dispatch.span_id
        assert settles[record.run_id].parent_id == dispatch.span_id
        assert settles[record.run_id].attrs["status"] == record.status
    assert all(s.end_s is not None for s in spans)


class TestSerialTracing:
    def test_launch_writes_one_complete_tree_per_run(self, tmp_path):
        spec = smoke_spec(name="trace-serial")
        store = CampaignStore(tmp_path / "t.campaign.jsonl")
        outcome = run_campaign(spec, store, worker=fake_worker)
        assert outcome.completed == outcome.total_runs == 8
        spans = spans_of(store)
        assert_complete_trees(spans, list(store.records()))
        assert len(by_name(spans, "settle")) == 8
        # the root carries the launch summary
        (root,) = by_name(spans, "campaign")
        assert root.attrs["completed"] == 8
        assert root.attrs["executor"] == "serial"

    def test_spans_never_leak_into_the_store(self, tmp_path):
        store = CampaignStore(tmp_path / "t.campaign.jsonl")
        run_campaign(smoke_spec(name="trace-clean"), store,
                     worker=fake_worker)
        for record in store.records():
            assert "_spans" not in record.__dict__
        # the store file itself contains no span rows either
        with open(store.path, encoding="utf-8") as handle:
            assert "trace_id" not in handle.read()

    def test_disabled_leaves_no_trace_and_counts_nothing(self, tmp_path):
        spec = smoke_spec(name="trace-disabled-unique")
        store = CampaignStore(tmp_path / "t.campaign.jsonl")
        with disabled():
            outcome = run_campaign(spec, store, worker=fake_worker)
        assert outcome.completed == 8
        assert not os.path.exists(trace_path_for(store.path))
        runs_total = REGISTRY.counter("repro_campaign_runs_total")
        assert runs_total.value(campaign=spec.name, status="completed",
                                cached="false") == 0

    def test_cache_hits_settle_directly_under_the_root(self, tmp_path):
        spec = smoke_spec(name="trace-cache")
        cache = ResultCache(tmp_path / "cache")
        first = CampaignStore(tmp_path / "a.campaign.jsonl")
        run_campaign(spec, first, worker=fake_worker, cache=cache)
        second = CampaignStore(tmp_path / "b.campaign.jsonl")
        outcome = run_campaign(spec, second, worker=fake_worker, cache=cache)
        assert outcome.cache_hits == 8 and outcome.executed == 0
        spans = spans_of(second)
        (root,) = by_name(spans, "campaign")
        settles = by_name(spans, "settle")
        assert len(settles) == 8
        assert all(s.parent_id == root.span_id for s in settles)
        assert all(s.attrs["cached"] for s in settles)
        assert by_name(spans, "dispatch") == []


class TestWorkerPoolTracing:
    def test_execute_spans_come_back_from_worker_processes(self, tmp_path):
        spec = smoke_spec(name="trace-pool")
        store = CampaignStore(tmp_path / "t.campaign.jsonl")
        pool = WorkerPool(2, start_method="fork", heartbeat_interval=0.05)
        try:
            executor = WorkerPoolExecutor(max_workers=2, pool=pool)
            outcome = run_campaign(spec, store, executor, worker=fake_worker)
        finally:
            pool.shutdown()
        assert outcome.completed == 8
        spans = spans_of(store)
        assert_complete_trees(spans, list(store.records()))
        parent_pid = os.getpid()
        executes = by_name(spans, "execute")
        assert len(executes) == 8
        assert all(s.attrs["pid"] != parent_pid for s in executes)

    def test_crash_requeue_settles_each_run_exactly_once(self, tmp_path):
        spec = smoke_spec(name="trace-crash")
        runs = runs_with_config(spec, marker_dir=str(tmp_path))
        store = CampaignStore(tmp_path / "t.campaign.jsonl")
        pool = WorkerPool(2, start_method="fork", heartbeat_interval=0.05,
                          liveness_timeout=5.0)
        try:
            executor = WorkerPoolExecutor(max_workers=2, pool=pool,
                                          batch_size=1)
            outcome = run_campaign(spec, store, executor,
                                   worker=crash_once_worker, runs=runs)
        finally:
            pool.shutdown()
        assert outcome.completed == 8
        spans = spans_of(store)
        settles = by_name(spans, "settle")
        assert sorted(s.attrs["run_id"] for s in settles) == \
            sorted(r.run_id for r in runs)
        assert_complete_trees(spans, list(store.records()))
        events = REGISTRY.counter("repro_worker_pool_events_total")
        assert events.value(event="requeued_runs") >= 8

    def test_straggler_redispatch_settles_each_run_exactly_once(self, tmp_path):
        spec = smoke_spec(name="trace-straggler")
        runs = runs_with_config(spec, marker_dir=str(tmp_path))
        stall_id = runs[0].run_id
        runs = [replace(run, config=dict(run.config, stall_id=stall_id))
                for run in runs]
        store = CampaignStore(tmp_path / "t.campaign.jsonl")
        pool = WorkerPool(2, start_method="fork", heartbeat_interval=0.05)
        try:
            executor = WorkerPoolExecutor(max_workers=2, pool=pool,
                                          batch_size=1, straggler_after=0.3)
            outcome = run_campaign(spec, store, executor,
                                   worker=stall_once_worker, runs=runs)
        finally:
            pool.shutdown()
        assert outcome.completed == 8
        settles = by_name(spans_of(store), "settle")
        assert sorted(s.attrs["run_id"] for s in settles) == \
            sorted(r.run_id for r in runs)


class TestMetricsUnderConcurrency:
    def test_two_thread_executor_launches_count_independently(self, tmp_path):
        specs = [smoke_spec(name=f"trace-conc-{index}") for index in (0, 1)]
        stores = [CampaignStore(tmp_path / f"{index}.campaign.jsonl")
                  for index in (0, 1)]
        errors = []

        def launch(spec, store):
            try:
                run_campaign(spec, store,
                             ThreadPoolCampaignExecutor(max_workers=4),
                             worker=fake_worker)
            except BaseException as exc:  # noqa: BLE001 - fail the test
                errors.append(exc)

        threads = [threading.Thread(target=launch, args=(spec, store))
                   for spec, store in zip(specs, stores)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        runs_total = REGISTRY.counter("repro_campaign_runs_total")
        for spec in specs:
            assert runs_total.value(campaign=spec.name, status="completed",
                                    cached="false") == 8
        seconds = REGISTRY.histogram("repro_campaign_run_seconds")
        for spec in specs:
            assert seconds.value(campaign=spec.name) == 8
        # each launch wrote its own complete trace despite sharing threads
        for spec, store in zip(specs, stores):
            spans = spans_of(store)
            assert_complete_trees(spans, list(store.records()))
