"""Unit tests of the metrics half of ``repro.telemetry``.

Every test uses a fresh private :class:`MetricsRegistry` — the
process-wide ``REGISTRY`` belongs to the instrumented production modules
and is exercised end to end by ``test_campaign_tracing.py``.
"""

from __future__ import annotations

import threading

import pytest

from repro.telemetry import MetricsRegistry, disabled, is_enabled, set_enabled
from repro.telemetry.metrics import DEFAULT_BUCKETS


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_accumulates_per_label_combination(self, registry):
        runs = registry.counter("runs_total", "runs")
        runs.inc(campaign="a", status="completed")
        runs.inc(2, campaign="a", status="completed")
        runs.inc(campaign="a", status="failed")
        assert runs.value(campaign="a", status="completed") == 3
        assert runs.value(campaign="a", status="failed") == 1
        assert runs.value(campaign="b", status="completed") == 0

    def test_unlabeled_series(self, registry):
        hits = registry.counter("hits_total")
        hits.inc()
        hits.inc(4)
        assert hits.value() == 5

    def test_negative_increment_rejected(self, registry):
        counter = registry.counter("c_total")
        with pytest.raises(ValueError, match="only be increased"):
            counter.inc(-1)

    def test_disabled_increments_are_dropped(self, registry):
        counter = registry.counter("c_total")
        with disabled():
            counter.inc(10)
        counter.inc(1)
        assert counter.value() == 1


class TestGauge:
    def test_set_and_inc(self, registry):
        gauge = registry.gauge("throughput")
        gauge.set(4.5, campaign="a")
        gauge.inc(-1.5, campaign="a")
        assert gauge.value(campaign="a") == 3.0
        gauge.set(0.25, campaign="a")
        assert gauge.value(campaign="a") == 0.25


class TestHistogram:
    def test_observations_land_in_cumulative_buckets(self, registry):
        hist = registry.histogram("seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.value() == 4          # observation count
        assert hist.sum() == pytest.approx(55.55)
        rendered = "\n".join(hist.render())
        assert 'seconds_bucket{le="0.1"} 1' in rendered
        assert 'seconds_bucket{le="1"} 2' in rendered
        assert 'seconds_bucket{le="10"} 3' in rendered
        assert 'seconds_bucket{le="+Inf"} 4' in rendered
        assert "seconds_count 4" in rendered

    def test_default_buckets_are_sorted_and_used(self, registry):
        hist = registry.histogram("h")
        assert hist.buckets == tuple(sorted(DEFAULT_BUCKETS))

    def test_empty_bucket_list_rejected(self, registry):
        with pytest.raises(ValueError, match="at least one bucket"):
            registry.histogram("h", buckets=())


class TestRegistry:
    def test_get_or_create_is_idempotent_per_name(self, registry):
        assert registry.counter("x_total") is registry.counter("x_total")

    def test_kind_conflict_raises(self, registry):
        registry.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x_total")

    def test_render_prometheus_format(self, registry):
        runs = registry.counter("runs_total", "Total runs")
        runs.inc(3, campaign="smoke", status="completed")
        gauge = registry.gauge("speed", "Runs per second")
        gauge.set(2.5)
        text = registry.render_prometheus()
        assert "# HELP runs_total Total runs" in text
        assert "# TYPE runs_total counter" in text
        # labels render alphabetically by label name
        assert 'runs_total{campaign="smoke",status="completed"} 3' in text
        assert "# TYPE speed gauge" in text
        assert "speed 2.5" in text
        assert text.endswith("\n")

    def test_label_values_are_escaped(self, registry):
        counter = registry.counter("c_total")
        counter.inc(name='we"ird\nvalue')
        rendered = registry.render_prometheus()
        assert r'name="we\"ird\nvalue"' in rendered

    def test_snapshot_is_jsonable(self, registry):
        registry.counter("c_total").inc(2, kind="run")
        assert registry.snapshot() == {"c_total": {"kind=run": 2.0}}

    def test_reset_drops_everything(self, registry):
        registry.counter("c_total").inc()
        registry.reset()
        assert registry.collect() == []


class TestEnabledSwitch:
    def test_set_enabled_returns_previous(self):
        previous = set_enabled(False)
        try:
            assert previous is True
            assert not is_enabled()
        finally:
            set_enabled(previous)
        assert is_enabled()

    def test_disabled_restores_on_exit(self):
        assert is_enabled()
        with disabled():
            assert not is_enabled()
        assert is_enabled()


class TestThreadSafety:
    def test_concurrent_increments_from_many_threads(self, registry):
        counter = registry.counter("c_total")
        hist = registry.histogram("h", buckets=(1.0,))
        n_threads, per_thread = 8, 500

        def hammer(index):
            for i in range(per_thread):
                counter.inc(worker=str(index % 2))
                hist.observe(0.5)

        threads = [threading.Thread(target=hammer, args=(i,))
                   for i in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = sum(counter.series().values())
        assert total == n_threads * per_thread
        assert hist.value() == n_threads * per_thread
