"""Surfacing tests: the trace CLI, logging setup, ``/v1/metrics`` and the
``telemetry`` blocks of status documents."""

from __future__ import annotations

import contextlib
import json
import logging
import threading
import time
import urllib.request

import pytest

from repro.campaign import (CampaignSpec, CampaignStore, get_campaign_preset,
                            run_campaign, status_document)
from repro.cli import main as cli_main
from repro.service.client import ServiceClient
from repro.service.server import create_server
from repro.utils.logging import get_logger, resolve_level, setup_logging


def fake_worker(payload):
    """Deterministic stand-in for a coupled run."""
    lr = payload["config"]["ml"]["base_learning_rate"]
    return {"final_total_loss": 1000.0 * lr + payload["index"],
            "training_iterations": payload["n_steps"],
            "samples_streamed": 4 * payload["n_steps"],
            "wall_time_s": 0.0, "ok": True}


def smoke_spec(**kwargs) -> CampaignSpec:
    base = get_campaign_preset("campaign-smoke").to_dict()
    base.update(kwargs)
    return CampaignSpec.from_dict(base)


@pytest.fixture
def traced_store(tmp_path):
    """A completed smoke campaign with its trace, via the real scheduler."""
    store = CampaignStore(tmp_path / "smoke.campaign.jsonl")
    run_campaign(smoke_spec(), store, worker=fake_worker)
    return store


@contextlib.contextmanager
def service(tmp_path):
    """A live campaign service on a free port (fake fast worker)."""
    server = create_server(store_dir=str(tmp_path / "svc"), worker=fake_worker)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown_service(timeout=10)
        thread.join(timeout=5)


class TestTraceCli:
    def test_renders_span_tree_from_store_path(self, traced_store, capsys):
        assert cli_main(["trace", traced_store.path]) == 0
        out = capsys.readouterr().out
        assert out.startswith("trace ")
        for name in ("campaign", "resolve", "dispatch", "execute", "settle"):
            assert name in out

    def test_json_mode_prints_one_span_per_line(self, traced_store, capsys):
        assert cli_main(["trace", traced_store.path, "--json"]) == 0
        rows = [json.loads(line)
                for line in capsys.readouterr().out.splitlines()]
        assert {"campaign", "resolve", "dispatch", "execute", "settle"} <= \
            {row["name"] for row in rows}
        assert len({row["trace_id"] for row in rows}) == 1

    def test_run_filter_and_store_dir_resolution(self, traced_store, capsys):
        run_id = next(iter(CampaignStore(traced_store.path)
                           .completed_run_ids()))
        store_dir = str(traced_store.path).rsplit("/", 1)[0]
        assert cli_main(["trace", "smoke", "--store-dir", store_dir,
                         "--run", run_id[:6]]) == 0
        assert run_id[:12] in capsys.readouterr().out

    def test_missing_trace_errors_with_the_paths_tried(self, tmp_path,
                                                       capsys):
        assert cli_main(["trace", "nope", "--store-dir",
                         str(tmp_path)]) == 2
        assert "no trace file found" in capsys.readouterr().err

    def test_campaign_status_json_carries_telemetry(self, traced_store,
                                                    capsys):
        assert cli_main(["campaign", "status", "--preset", "campaign-smoke",
                         "--store", traced_store.path, "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["telemetry"]["launches"] == 1
        assert status["telemetry"]["trace"].endswith(".trace.jsonl")


class TestLoggingSetup:
    def test_setup_is_idempotent_and_leveled(self):
        logger = setup_logging("debug")
        again = setup_logging("info")
        assert logger is again
        assert logger.level == logging.INFO
        marked = [h for h in logger.handlers
                  if getattr(h, "_repro_logging_handler", False)]
        assert len(marked) == 1
        setup_logging()   # back to the default for the rest of the suite
        assert logger.level == logging.WARNING

    def test_resolve_level_accepts_names_and_ints(self):
        assert resolve_level("WARNING") == logging.WARNING
        assert resolve_level("debug") == logging.DEBUG
        assert resolve_level(15) == 15
        assert resolve_level(None) == logging.WARNING
        with pytest.raises(ValueError, match="unknown log level"):
            resolve_level("loud")

    def test_get_logger_prefixes_into_the_repro_tree(self):
        assert get_logger("campaign.workers").name == "repro.campaign.workers"
        assert get_logger("repro.service").name == "repro.service"

    def test_cli_rejects_unknown_level(self, capsys):
        assert cli_main(["--log-level", "loud", "presets"]) == 2
        assert "unknown log level" in capsys.readouterr().err

    def test_cli_accepts_level_before_any_command(self, capsys):
        assert cli_main(["--log-level", "warning", "presets"]) == 0


class TestMetricsEndpoint:
    def test_scrape_during_and_after_a_campaign(self, tmp_path):
        spec = smoke_spec(name="svc-metrics")
        with service(tmp_path) as server:
            client = ServiceClient(server.url, timeout=15)
            assert client.wait_ready()["status"] == "ok"
            text = urllib.request.urlopen(f"{server.url}/v1/metrics",
                                          timeout=10).read().decode()
            assert "# TYPE repro_service_requests_total counter" in text
            submitted = client.submit(spec=spec.to_dict())
            campaign_id = submitted["campaign_id"]
            deadline = time.monotonic() + 15
            while client.status(campaign_id)["state"] == "running":
                assert time.monotonic() < deadline, "campaign never finished"
                time.sleep(0.05)
            response = urllib.request.urlopen(f"{server.url}/v1/metrics",
                                              timeout=10)
            assert response.headers["Content-Type"].startswith("text/plain")
            text = response.read().decode()
            assert ('repro_campaign_runs_total{cached="false",'
                    'campaign="svc-metrics",status="completed"} 8') in text
            document = client.status(campaign_id)
        bus = document["telemetry"]["bus"]
        assert bus["events"] >= 8          # one per run + the done frame
        assert bus["dropped"] == 0
        # the serial default executor keeps no pool deltas; the executor
        # block only appears for executors exposing ``last_stats``
        assert "executor" not in document["telemetry"] or \
            document["telemetry"]["executor"]


class TestStatusDocuments:
    def test_status_document_telemetry_block_is_optional(self):
        base = status_document("c", 0, [])
        assert "telemetry" not in base
        extended = status_document("c", 0, [], telemetry={"bus": {}})
        assert extended["telemetry"] == {"bus": {}}
