"""Unit tests of spans, trace export and the trace renderer."""

from __future__ import annotations

import json

import pytest

from repro.telemetry import (Span, SpanRecorder, TraceWriter, add_phase_spans,
                             context_of, current_span, disabled, new_id,
                             read_spans, recording, render_traces, span,
                             trace_path_for)


class TestSpanBasics:
    def test_nesting_builds_parent_links_and_one_trace(self):
        recorder = SpanRecorder()
        with recording(recorder):
            with span("outer") as outer:
                with span("inner") as inner:
                    assert current_span() is inner
                    assert inner.parent_id == outer.span_id
                    assert inner.trace_id == outer.trace_id
        names = [s.name for s in recorder.spans]
        assert names == ["inner", "outer"]          # emitted on close
        assert all(s.end_s is not None for s in recorder.spans)

    def test_no_sink_yields_none(self):
        with span("anything") as opened:
            assert opened is None
        assert current_span() is None

    def test_disabled_yields_none_even_with_sink(self):
        recorder = SpanRecorder()
        with recording(recorder), disabled():
            with span("x") as opened:
                assert opened is None
        assert recorder.spans == []

    def test_remote_ctx_overrides_local_parent(self):
        recorder = SpanRecorder()
        remote = Span(name="dispatch", trace_id=new_id())
        with recording(recorder):
            with span("execute", ctx=context_of(remote)) as execute:
                assert execute.trace_id == remote.trace_id
                assert execute.parent_id == remote.span_id

    def test_exception_marks_error_and_reraises(self):
        recorder = SpanRecorder()
        with recording(recorder):
            with pytest.raises(RuntimeError):
                with span("boom"):
                    raise RuntimeError("kaboom")
        (emitted,) = recorder.spans
        assert emitted.status == "error"
        assert emitted.attrs["exception"] == "RuntimeError"

    def test_to_dict_roundtrip(self):
        original = Span(name="x", trace_id=new_id(),
                        attrs={"run_id": "abc"}).finish()
        clone = Span.from_dict(json.loads(json.dumps(original.to_dict())))
        assert clone == original

    def test_finish_is_idempotent(self):
        opened = Span(name="x", trace_id=new_id())
        first_end = opened.finish(end_s=123.0).end_s
        assert opened.finish().end_s == first_end
        assert opened.duration_s is not None


class TestPhaseSpans:
    def test_phases_become_children_of_current_span(self):
        recorder = SpanRecorder()
        with recording(recorder):
            with span("execute") as execute:
                emitted = add_phase_spans({"pic": 1.5, "train": 2.0,
                                           "skipped": None})
        assert emitted == 2
        phases = {s.name: s for s in recorder.spans if s.name != "execute"}
        assert set(phases) == {"pic", "train"}
        for phase in phases.values():
            assert phase.parent_id == execute.span_id
        assert phases["pic"].duration_s == pytest.approx(1.5)

    def test_negative_durations_clamp_to_zero(self):
        recorder = SpanRecorder()
        with recording(recorder):
            with span("execute"):
                assert add_phase_spans({"pic": -0.5}) == 1
        phase = next(s for s in recorder.spans if s.name == "pic")
        assert phase.duration_s == 0.0

    def test_noop_without_parent_or_sink(self):
        assert add_phase_spans({"pic": 1.0}) == 0
        recorder = SpanRecorder()
        with recording(recorder):
            assert add_phase_spans({"pic": 1.0}) == 0   # no open span


class TestExport:
    def test_trace_path_for_variants(self):
        assert trace_path_for("x.campaign.jsonl") == "x.trace.jsonl"
        assert trace_path_for("dir/y.jsonl") == "dir/y.trace.jsonl"
        assert trace_path_for("plain") == "plain.trace.jsonl"

    def test_writer_roundtrip_and_lazy_creation(self, tmp_path):
        path = tmp_path / "deep" / "t.trace.jsonl"
        writer = TraceWriter(path)
        assert not path.parent.exists()       # nothing until the first emit
        first = Span(name="a", trace_id=new_id()).finish()
        with writer:
            writer.emit(first)
            writer.emit(Span(name="b", trace_id=first.trace_id,
                             parent_id=first.span_id).finish())
        spans = read_spans(path)
        assert [s.name for s in spans] == ["a", "b"]
        assert spans[0] == first

    def test_read_skips_corrupt_lines(self, tmp_path):
        path = tmp_path / "t.trace.jsonl"
        good = Span(name="ok", trace_id=new_id()).finish()
        path.write_text(json.dumps(good.to_dict()) + "\n"
                        + "{torn line\n\n" + '{"not": "a span"}\n')
        spans = read_spans(path)
        assert [s.name for s in spans] == ["ok"]


class TestRender:
    def _trace(self):
        root = Span(name="campaign", trace_id=new_id(),
                    attrs={"campaign": "smoke"}).finish()
        child = Span(name="dispatch", trace_id=root.trace_id,
                     parent_id=root.span_id,
                     attrs={"run_id": "abcdef0123456789"}).finish()
        grand = Span(name="execute", trace_id=root.trace_id,
                     parent_id=child.span_id, status="error",
                     attrs={"exception": "RuntimeError"}).finish()
        return [grand, child, root]            # emit order: leaves first

    def test_tree_shape_and_markers(self):
        rendered = render_traces(self._trace())
        lines = rendered.splitlines()
        assert lines[0].startswith("trace ")
        assert "campaign" in lines[1]
        assert "dispatch" in lines[2] and "run_id=abcdef012345" in lines[2]
        assert "execute" in lines[3] and "!" in lines[3]   # error marker
        assert lines[3].index("execute") > lines[2].index("dispatch")

    def test_run_id_prefix_filter(self):
        spans = self._trace()
        assert render_traces(spans, run_id="abcdef") != ""
        assert render_traces(spans, run_id="ffff") == ""
