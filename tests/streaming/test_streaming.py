"""Tests of the SST-like streaming substrate."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.streaming import (Block, EndOfStreamError, FileReaderEngine,
                             FileWriterEngine, InMemoryDataPlane, ModeledDataPlane,
                             NoOpConsumer, QueueFullPolicy, SSTBroker,
                             SSTReaderEngine, SSTWriterEngine, Step, StepStatus,
                             ThroughputResult, Variable, make_data_plane,
                             measure_stream_throughput)
from repro.streaming.broker import StreamClosedError
from repro.streaming.throughput import remove_outliers


class TestVariableAndStep:
    def test_gather_concatenates_rank_blocks(self, rng):
        v = Variable("particles/x")
        v.add_block(Block(rank=1, offset=(10,), data=np.arange(10, 20.0)))
        v.add_block(Block(rank=0, offset=(0,), data=np.arange(0, 10.0)))
        np.testing.assert_allclose(v.gather(), np.arange(20.0))
        assert v.ranks == (0, 1)
        assert v.nbytes == 20 * 8

    def test_gather_empty_raises(self):
        with pytest.raises(ValueError):
            Variable("empty").gather()

    def test_step_bookkeeping(self, rng):
        step = Step(index=3)
        v = Variable("a")
        v.add_block(Block(rank=0, offset=(0,), data=rng.random(5)))
        step.put(v)
        assert step.available_variables() == ("a",)
        assert step.nbytes == 40
        with pytest.raises(KeyError):
            step.get("b")


class TestBroker:
    def test_fifo_order(self):
        broker = SSTBroker("s", queue_limit=4)
        for i in range(3):
            broker.put_step(Step(index=i))
        assert broker.get_step().index == 0
        assert broker.get_step().index == 1
        assert broker.queued_steps == 1

    def test_end_of_stream(self):
        broker = SSTBroker("s")
        broker.put_step(Step(index=0))
        broker.close()
        assert broker.get_step() is not None
        assert broker.get_step() is None

    def test_put_after_close_raises(self):
        broker = SSTBroker("s")
        broker.close()
        with pytest.raises(StreamClosedError):
            broker.put_step(Step(index=0))

    def test_discard_oldest_policy(self):
        broker = SSTBroker("s", queue_limit=1, policy=QueueFullPolicy.DISCARD_OLDEST)
        broker.put_step(Step(index=0))
        broker.put_step(Step(index=1))
        assert broker.steps_discarded == 1
        assert broker.get_step().index == 1

    def test_raise_policy(self):
        broker = SSTBroker("s", queue_limit=1, policy=QueueFullPolicy.RAISE)
        broker.put_step(Step(index=0))
        with pytest.raises(RuntimeError):
            broker.put_step(Step(index=1))

    def test_block_policy_times_out(self):
        broker = SSTBroker("s", queue_limit=1, policy=QueueFullPolicy.BLOCK)
        broker.put_step(Step(index=0))
        with pytest.raises(TimeoutError):
            broker.put_step(Step(index=1), timeout=0.05)

    def test_blocking_producer_consumer_threads(self, rng):
        """Writer stalls on the bounded queue until the reader drains it."""
        broker = SSTBroker("s", queue_limit=2)
        n_steps = 10
        received = []

        def produce():
            writer = SSTWriterEngine(broker)
            for i in range(n_steps):
                writer.begin_step()
                writer.put("x", np.full(100, float(i)))
                writer.end_step()
            writer.close()

        def consume():
            reader = SSTReaderEngine(broker)
            while reader.begin_step() is StepStatus.OK:
                received.append(float(reader.get("x")[0]))
                reader.end_step()

        producer = threading.Thread(target=produce)
        consumer = threading.Thread(target=consume)
        producer.start()
        consumer.start()
        producer.join(timeout=10)
        consumer.join(timeout=10)
        assert received == [float(i) for i in range(n_steps)]

    def test_invalid_queue_limit(self):
        with pytest.raises(ValueError):
            SSTBroker("s", queue_limit=0)


class TestEngines:
    def test_roundtrip_multi_rank(self, rng):
        broker = SSTBroker("sim")
        writer = SSTWriterEngine(broker, n_ranks=2)
        reader = SSTReaderEngine(broker)

        data0, data1 = rng.random((5, 3)), rng.random((7, 3))
        writer.begin_step()
        writer.put("particles/position", data0, rank=0, offset=(0, 0))
        writer.put("particles/position", data1, rank=1, offset=(5, 0))
        writer.put_attributes({"time": 1.5})
        writer.end_step()
        writer.close()

        assert reader.begin_step() is StepStatus.OK
        assert reader.available_variables() == ("particles/position",)
        assert reader.attributes()["time"] == 1.5
        np.testing.assert_allclose(reader.get("particles/position", rank=1), data1)
        np.testing.assert_allclose(reader.get("particles/position"),
                                   np.concatenate([data0, data1], axis=0))
        reader.end_step()
        assert reader.begin_step() is StepStatus.END_OF_STREAM

    def test_put_requires_open_step(self):
        writer = SSTWriterEngine(SSTBroker("s"))
        with pytest.raises(RuntimeError):
            writer.put("x", np.zeros(3))

    def test_get_requires_open_step(self):
        reader = SSTReaderEngine(SSTBroker("s"))
        with pytest.raises(EndOfStreamError):
            reader.get("x")

    def test_invalid_rank(self):
        writer = SSTWriterEngine(SSTBroker("s"), n_ranks=2)
        writer.begin_step()
        with pytest.raises(ValueError):
            writer.put("x", np.zeros(3), rank=5)

    def test_file_engine_roundtrip(self, rng, tmp_path):
        directory = str(tmp_path / "bp")
        writer = FileWriterEngine(directory, n_ranks=2)
        payloads = []
        for i in range(3):
            writer.begin_step()
            data = rng.random((4, 2))
            payloads.append(data)
            writer.put("field", data, rank=0)
            writer.put_attributes({"step": i})
            writer.end_step()
        writer.close()

        reader = FileReaderEngine(directory)
        count = 0
        while reader.begin_step() is StepStatus.OK:
            np.testing.assert_allclose(reader.get("field"), payloads[count])
            assert reader.attributes()["step"] == count
            reader.end_step()
            count += 1
        assert count == 3


class TestDataPlanes:
    def test_inmemory_is_free(self):
        assert InMemoryDataPlane().transfer_time(10**9) == 0.0

    def test_modeled_time_increases_with_bytes(self):
        plane = make_data_plane("mpi")
        assert plane.transfer_time(2 * 10**9, n_nodes=100) > \
            plane.transfer_time(10**9, n_nodes=100) * 1.2

    def test_contention_reduces_bandwidth(self):
        plane = make_data_plane("mpi")
        assert plane.effective_bandwidth(9126) < plane.effective_bandwidth(4096)

    def test_libfabric_all_at_once_fails_at_full_scale(self):
        plane = make_data_plane("libfabric")
        assert plane.supports(4096, "all_at_once")
        assert not plane.supports(9126, "all_at_once")
        with pytest.raises(RuntimeError):
            plane.effective_bandwidth(9126, "all_at_once")

    def test_calibration_matches_paper_per_node_ranges(self):
        """Per-node throughputs fall in the ranges reported in Section IV-B."""
        libfabric = make_data_plane("libfabric")
        mpi = make_data_plane("mpi")
        gb = 1e9
        assert 3.5 <= libfabric.effective_bandwidth(4096, "all_at_once") / gb <= 4.7
        assert 1.9 <= libfabric.effective_bandwidth(9126, "batched") / gb <= 2.6
        assert 2.6 <= mpi.effective_bandwidth(4096) / gb <= 3.7
        assert 2.4 <= mpi.effective_bandwidth(9126) / gb <= 3.3

    def test_bandwidth_capped_at_nic_limit(self):
        plane = ModeledDataPlane(base_bandwidth=1e12, latency=0.0, jitter=0.0)
        assert plane.effective_bandwidth(1) == pytest.approx(25e9)

    def test_unknown_plane(self):
        with pytest.raises(ValueError):
            make_data_plane("infiniband-magic")


class TestNoOpConsumer:
    def test_drains_stream_and_counts_bytes(self, rng):
        broker = SSTBroker("sim", queue_limit=10)
        writer = SSTWriterEngine(broker)
        for i in range(4):
            writer.begin_step()
            writer.put("data", rng.random(1000))
            writer.end_step()
        writer.close()
        consumer = NoOpConsumer(reader=SSTReaderEngine(broker))
        consumed = consumer.run()
        assert consumed == 4
        assert consumer.total_bytes == 4 * 8000
        assert consumer.mean_step_time >= 0.0

    def test_max_steps_limit(self, rng):
        broker = SSTBroker("sim", queue_limit=10)
        writer = SSTWriterEngine(broker)
        for _ in range(5):
            writer.begin_step()
            writer.put("data", rng.random(10))
            writer.end_step()
        writer.close()
        consumer = NoOpConsumer(reader=SSTReaderEngine(broker))
        assert consumer.run(max_steps=2) == 2


class TestThroughput:
    def test_result_properties(self):
        result = measure_stream_throughput([2.0, 2.5, 4.0], n_nodes=100,
                                           bytes_per_node=5.86e9, data_plane="mpi")
        assert result.global_bytes == pytest.approx(586e9)
        assert result.median_throughput == pytest.approx(586e9 / 2.5)
        assert result.max_throughput == pytest.approx(586e9 / 2.0)
        assert result.per_node_throughput.shape == (3,)
        assert result.terabytes_per_second() == pytest.approx(586e9 / 2.5 / 1e12)

    def test_validation(self):
        with pytest.raises(ValueError):
            measure_stream_throughput([], 1, 1.0)
        with pytest.raises(ValueError):
            measure_stream_throughput([0.0], 1, 1.0)
        with pytest.raises(ValueError):
            measure_stream_throughput([1.0], 0, 1.0)

    def test_remove_outliers(self):
        values = [1.0] * 50 + [1000.0]
        cleaned = remove_outliers(values, n_sigma=4.0)
        assert 1000.0 not in cleaned
        assert len(cleaned) == 50

    def test_remove_outliers_keeps_constant_series(self):
        assert remove_outliers([2.0, 2.0, 2.0]) == [2.0, 2.0, 2.0]
