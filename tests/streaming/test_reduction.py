"""Tests of the in-stream data-reduction operators (Fig. 3b)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streaming.reduction import (IdentityReducer, ParticleSubsampleReducer,
                                       PrecisionReducer, ReductionPipeline,
                                       SpectrumBinningReducer)


class TestPrecisionReducer:
    def test_downcasts_float64(self, rng):
        reducer = PrecisionReducer(np.float32)
        data = rng.random((100, 3))
        reduced = reducer.reduce("particles/position", data)
        assert reduced.dtype == np.float32
        assert reducer.factor(data, reduced) == pytest.approx(2.0)

    def test_keeps_narrow_types(self, rng):
        reducer = PrecisionReducer(np.float32)
        data = rng.random((10,)).astype(np.float32)
        assert reducer.reduce("x", data).dtype == np.float32

    def test_values_preserved_within_precision(self, rng):
        reducer = PrecisionReducer(np.float32)
        data = rng.random((50,))
        np.testing.assert_allclose(reducer.reduce("x", data), data, rtol=1e-6)

    def test_rejects_non_float_target(self):
        with pytest.raises(ValueError):
            PrecisionReducer(np.int32)


class TestParticleSubsampleReducer:
    def test_keeps_requested_fraction(self, rng):
        reducer = ParticleSubsampleReducer(0.25, rng=rng)
        data = rng.random((400, 6))
        reduced = reducer.reduce("particles/phase_space", data)
        assert reduced.shape == (100, 6)

    def test_same_selection_for_all_records_of_a_step(self, rng):
        """Positions and momenta of one step must keep matching rows."""
        reducer = ParticleSubsampleReducer(0.5, rng=rng)
        base = rng.random((200, 3))
        a = reducer.reduce("particles/position", base)
        b = reducer.reduce("particles/momentum", base)
        np.testing.assert_allclose(a, b)

    def test_weights_rescaled_to_preserve_totals(self, rng):
        reducer = ParticleSubsampleReducer(0.5, rng=rng)
        weights = rng.uniform(1.0, 2.0, size=1000)
        reduced = reducer.reduce("particles/weighting", weights)
        assert reduced.sum() == pytest.approx(weights.sum(), rel=0.1)

    def test_ignores_non_particle_records(self, rng):
        reducer = ParticleSubsampleReducer(0.1, rng=rng)
        mesh = rng.random((32, 32))
        np.testing.assert_allclose(reducer.reduce("meshes/E/x", mesh), mesh)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            ParticleSubsampleReducer(0.0)

    def test_new_step_changes_selection(self, rng):
        reducer = ParticleSubsampleReducer(0.5, rng=np.random.default_rng(0))
        data = np.arange(100, dtype=np.float64)[:, None]
        first = reducer.reduce("particles/x", data)
        reducer.new_step()
        second = reducer.reduce("particles/x", data)
        assert first.shape == second.shape
        assert not np.array_equal(first, second)


class TestSpectrumBinningReducer:
    def test_rebins_by_factor(self, rng):
        reducer = SpectrumBinningReducer(4, spectrum_prefixes=("radiation/",))
        spectrum = rng.random((3, 64))
        reduced = reducer.reduce("radiation/spectrum", spectrum)
        assert reduced.shape == (3, 16)
        np.testing.assert_allclose(reduced[:, 0], spectrum[:, :4].mean(axis=1))

    def test_preserves_total_power(self, rng):
        reducer = SpectrumBinningReducer(4, spectrum_prefixes=("radiation/",))
        spectrum = rng.random(64)
        reduced = reducer.reduce("radiation/spectrum", spectrum)
        assert reduced.mean() == pytest.approx(spectrum.mean())

    def test_factor_one_is_identity(self, rng):
        reducer = SpectrumBinningReducer(1)
        data = rng.random(16)
        np.testing.assert_allclose(reducer.reduce("radiation/s", data), data)

    def test_other_records_untouched(self, rng):
        reducer = SpectrumBinningReducer(4)
        data = rng.random((8, 8))
        np.testing.assert_allclose(reducer.reduce("particles/x", data), data)

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            SpectrumBinningReducer(0)


class TestReductionPipeline:
    def test_combined_factor(self, rng):
        pipeline = ReductionPipeline([
            ParticleSubsampleReducer(0.5, rng=rng),
            PrecisionReducer(np.float32),
        ])
        variables = {"particles/phase_space": rng.random((1000, 6)),
                     "particles/weighting": rng.random(1000)}
        reduced = pipeline.reduce_step(variables)
        assert reduced["particles/phase_space"].shape[0] == 500
        assert reduced["particles/phase_space"].dtype == np.float32
        report = pipeline.reports[-1]
        assert report.factor == pytest.approx(4.0, rel=0.05)
        assert 0.7 < report.saved_fraction < 0.8
        assert pipeline.total_factor() == pytest.approx(report.factor)

    def test_identity_pipeline(self, rng):
        pipeline = ReductionPipeline([IdentityReducer()])
        variables = {"a": rng.random(10)}
        out = pipeline.reduce_step(variables)
        np.testing.assert_allclose(out["a"], variables["a"])
        assert pipeline.reports[-1].factor == pytest.approx(1.0)

    @given(st.floats(0.05, 1.0), st.integers(16, 256))
    @settings(max_examples=20, deadline=None)
    def test_subsample_factor_matches_fraction(self, fraction, n):
        rng = np.random.default_rng(int(fraction * 1000) + n)
        pipeline = ReductionPipeline([ParticleSubsampleReducer(fraction, rng=rng)])
        variables = {"particles/x": rng.random((n, 3))}
        pipeline.reduce_step(variables)
        expected = n / max(1, int(round(fraction * n)))
        assert pipeline.reports[-1].factor == pytest.approx(expected, rel=1e-6)
