"""End-to-end integration tests of the coupled Artificial-Scientist workflow."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ArtificialScientist, MLConfig, StreamingConfig, WorkflowConfig
from repro.core.mlapp import MLApp
from repro.models.config import ModelConfig
from repro.openpmd import Access, MemoryBackend, Series
from repro.pic.khi import KHIConfig


def tiny_config(n_rep=1, queue_limit=4):
    model = ModelConfig(n_input_points=24, encoder_channels=(12, 24),
                        encoder_head_hidden=16, latent_dim=16,
                        decoder_grid=(2, 2, 2), decoder_channels=(8, 6),
                        spectrum_dim=8, inn_blocks=2, inn_hidden=(16,))
    return WorkflowConfig(
        khi=KHIConfig(grid_shape=(6, 12, 2), particles_per_cell=3, seed=9),
        ml=MLConfig(model=model, n_rep=n_rep, base_learning_rate=1e-3),
        streaming=StreamingConfig(queue_limit=queue_limit),
        region_counts=(1, 4, 1),
        n_detector_directions=1,
        n_detector_frequencies=8,
        seed=123,
    )


class TestArtificialScientistWorkflow:
    def test_coupled_run_trains_in_transit(self):
        scientist = ArtificialScientist(tiny_config(n_rep=2))
        report = scientist.run(n_steps=3)
        # every simulation step produced one streamed iteration with 4 regions
        assert report.n_steps == 3
        assert report.iterations_streamed == 3
        assert report.samples_streamed == 12
        # n_rep iterations per streamed step
        assert report.training_iterations == 3 * 2
        assert report.bytes_streamed > 0
        assert report.final_losses["total"] > 0
        assert report.wall_time >= report.simulation_time

    def test_report_summary_keys(self):
        scientist = ArtificialScientist(tiny_config())
        report = scientist.run(n_steps=2)
        summary = report.summary()
        assert {"steps", "iterations_streamed", "training_iterations",
                "streamed_megabytes", "final_total_loss"} <= set(summary)
        assert summary["streamed_megabytes"] > 0

    def test_no_intermediate_files_written(self, tmp_path, monkeypatch):
        """The in-transit workflow writes nothing to disk."""
        monkeypatch.chdir(tmp_path)
        scientist = ArtificialScientist(tiny_config())
        scientist.run(n_steps=2)
        assert list(tmp_path.iterdir()) == []

    def test_evaluation_after_run(self):
        scientist = ArtificialScientist(tiny_config(n_rep=1))
        scientist.run(n_steps=3, keep_for_evaluation=2)
        report = scientist.evaluate(n_posterior_samples=2)
        assert report.n_evaluation_samples > 0
        assert len(report.regions) >= 1
        assert report.surrogate_spectrum_mse >= 0.0

    def test_evaluate_requires_samples(self):
        scientist = ArtificialScientist(tiny_config())
        with pytest.raises(RuntimeError):
            scientist.evaluate()

    def test_invalid_steps(self):
        scientist = ArtificialScientist(tiny_config())
        with pytest.raises(ValueError):
            scientist.run(0)

    @pytest.mark.slow
    def test_loss_improves_over_stream(self):
        """In-transit training reduces the loss over the streamed steps."""
        scientist = ArtificialScientist(tiny_config(n_rep=4))
        report = scientist.run(n_steps=10)
        losses = np.asarray(report.loss_history_total)
        first = losses[: 4].mean()
        last = losses[-4:].mean()
        assert last < first


class TestMLAppStandalone:
    def test_mlapp_requires_reader_series(self):
        series = Series("x", Access.CREATE, MemoryBackend())
        with pytest.raises(ValueError):
            MLApp(series, MLConfig())

    def test_mlapp_consumes_memory_backend(self, rng):
        """The MLapp can also train from stored (file-like) series — the
        classical offline workflow retained for comparison."""
        from repro.core import RegionPartition, StreamingProducerPlugin
        from repro.pic.khi import make_khi_simulation
        from repro.radiation.detector import RadiationDetector

        cfg = tiny_config()
        backend = MemoryBackend()
        writer = Series("khi", Access.CREATE, backend)
        sim = make_khi_simulation(cfg.khi)
        detector = RadiationDetector.for_khi(density=cfg.khi.density,
                                             n_directions=1, n_frequencies=8)
        partition = RegionPartition(cfg.khi.grid_config, cfg.region_counts)
        sim.add_plugin(StreamingProducerPlugin(writer, detector, partition,
                                               n_points=cfg.ml.model.n_input_points))
        sim.run(2)

        mlapp = MLApp(Series("khi", Access.READ_LINEAR, backend), cfg.ml, rng=rng)
        consumed = mlapp.consume()
        assert consumed == 2
        assert mlapp.samples_consumed == 8
        assert len(mlapp.history) == 2 * cfg.ml.n_rep
        assert mlapp.loss_summary()["total"] > 0
