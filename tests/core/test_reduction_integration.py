"""Integration of the producer-side reduction with the coupled workflow."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ArtificialScientist, StreamingConfig
from tests.core.test_artificial_scientist import tiny_config


class TestStreamReduction:
    def test_subsampling_shrinks_streamed_bytes(self):
        base_config = tiny_config(n_rep=1)
        reduced_config = tiny_config(n_rep=1)
        reduced_config.streaming = StreamingConfig(queue_limit=4,
                                                   particle_subsample_fraction=0.25,
                                                   reduce_precision=True)

        baseline = ArtificialScientist(base_config)
        baseline_report = baseline.run(n_steps=2)

        reduced = ArtificialScientist(reduced_config)
        reduced_report = reduced.run(n_steps=2)

        # the ML samples are identical in size; the raw particle records shrink
        assert reduced_report.bytes_streamed < baseline_report.bytes_streamed
        assert reduced.producer.reduction is not None
        assert reduced.producer.reduction.total_factor() > 3.0
        assert reduced.producer.bytes_before_reduction > 0
        # training still works on the reduced stream
        assert reduced_report.training_iterations == baseline_report.training_iterations

    def test_reduced_stream_keeps_consistent_particle_records(self):
        config = tiny_config(n_rep=1)
        config.streaming = StreamingConfig(queue_limit=4,
                                           particle_subsample_fraction=0.5)
        scientist = ArtificialScientist(config)
        # intercept one streamed iteration by consuming manually
        scientist.simulation.step()
        iterations = []
        for iteration in scientist.reader_series.read_iterations():
            iterations.append(iteration)
            break
        electrons = iterations[0].get_particles("electrons")
        x = electrons["position"]["x"].load()
        ux = electrons["momentum"]["x"].load()
        w = electrons["weighting"].load_scalar()
        n_original = scientist.simulation.get_species("electrons").n_macro
        assert len(x) == len(ux) == len(w)
        assert len(x) == pytest.approx(0.5 * n_original, rel=0.05)
        # weights rescaled so the total charge is preserved in expectation
        assert w.sum() == pytest.approx(
            scientist.simulation.get_species("electrons").weights.sum(), rel=0.05)

    def test_reduction_disabled_by_default(self):
        config = tiny_config()
        assert config.streaming.build_reduction_pipeline() is None
