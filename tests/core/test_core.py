"""Tests of the workflow configuration, placement, transforms and producer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (MLConfig, PlacementMode, RegionPartition, ResourcePlan,
                        StreamingConfig, StreamingProducerPlugin, WorkflowConfig,
                        encode_point_cloud, encode_spectrum, make_training_samples)
from repro.core.transforms import Region, decode_point_cloud
from repro.models.config import ModelConfig
from repro.openpmd import Access, MemoryBackend, Series
from repro.pic.grid import GridConfig
from repro.pic.khi import KHIConfig, make_khi_simulation
from repro.radiation.detector import RadiationDetector


def small_workflow_config(**overrides):
    defaults = dict(
        khi=KHIConfig(grid_shape=(8, 16, 2), particles_per_cell=4, seed=7),
        ml=MLConfig(model=ModelConfig(n_input_points=32, encoder_channels=(16, 32),
                                      encoder_head_hidden=24, latent_dim=24,
                                      decoder_grid=(2, 2, 2), decoder_channels=(8, 6),
                                      spectrum_dim=16, inn_blocks=2, inn_hidden=(24,)),
                    n_rep=1),
        region_counts=(1, 4, 1),
        n_detector_directions=2,
        n_detector_frequencies=8,
    )
    defaults.update(overrides)
    return WorkflowConfig(**defaults)


class TestWorkflowConfig:
    def test_detector_must_match_spectrum_dim(self):
        with pytest.raises(ValueError):
            small_workflow_config(n_detector_frequencies=4)

    def test_defaults_are_consistent(self):
        cfg = WorkflowConfig()
        assert cfg.ml.model.spectrum_dim == \
            cfg.n_detector_directions * cfg.n_detector_frequencies
        assert cfg.n_regions == 4

    def test_n_points_defaults_to_model_input(self):
        cfg = small_workflow_config()
        assert cfg.n_points_per_sample == cfg.ml.model.n_input_points


class TestPlacement:
    def test_intra_node_split(self):
        plan = ResourcePlan(n_nodes=10, mode=PlacementMode.INTRA_NODE,
                            producer_gcds_per_node=4)
        assert plan.producer_nodes == 10 and plan.consumer_nodes == 10
        assert plan.total_producer_gcds == 40
        assert plan.total_consumer_gcds == 40

    def test_inter_node_split(self):
        plan = ResourcePlan(n_nodes=10, mode=PlacementMode.INTER_NODE,
                            consumer_node_fraction=0.3)
        assert plan.consumer_nodes == 3
        assert plan.producer_nodes == 7
        assert plan.total_consumer_gcds == 3 * 8

    def test_intra_node_has_higher_exchange_bandwidth(self):
        intra = ResourcePlan(n_nodes=4, mode=PlacementMode.INTRA_NODE)
        inter = ResourcePlan(n_nodes=4, mode=PlacementMode.INTER_NODE)
        assert intra.exchange_bandwidth_per_node() > inter.exchange_bandwidth_per_node()
        assert intra.exchange_time_per_step(5.86e9) < inter.exchange_time_per_step(5.86e9)

    def test_describe_keys(self):
        plan = ResourcePlan(n_nodes=2)
        assert {"mode", "producer_gcds", "consumer_gcds"} <= set(plan.describe())

    def test_validation(self):
        with pytest.raises(ValueError):
            ResourcePlan(n_nodes=0)
        with pytest.raises(ValueError):
            ResourcePlan(n_nodes=2, producer_gcds_per_node=8)
        with pytest.raises(ValueError):
            ResourcePlan(n_nodes=2, consumer_node_fraction=1.5)
        with pytest.raises(ValueError):
            ResourcePlan(n_nodes=2).exchange_time_per_step(-1.0)


class TestRegionPartition:
    def test_partition_covers_box(self):
        grid = GridConfig(shape=(8, 16, 2), cell_size=(1e-5,) * 3)
        partition = RegionPartition(grid, (2, 4, 1))
        regions = partition.regions()
        assert len(regions) == 8
        uppers = np.max([r.upper for r in regions], axis=0)
        np.testing.assert_allclose(uppers, grid.extent)

    def test_region_of_assigns_all_particles(self, rng):
        grid = GridConfig(shape=(8, 16, 2), cell_size=(1e-5,) * 3)
        partition = RegionPartition(grid, (1, 4, 1))
        positions = rng.uniform(0, 1, size=(200, 3)) * np.asarray(grid.extent)
        ids = partition.region_of(positions)
        assert ids.min() >= 0 and ids.max() < partition.n_regions

    def test_point_cloud_encoding_roundtrip(self, rng):
        region = Region(index=(0, 0, 0), lower=(0.0, 0.0, 0.0), upper=(2.0, 4.0, 2.0))
        positions = rng.uniform(0, 1, size=(10, 3)) * np.array([2.0, 4.0, 2.0])
        momenta = rng.normal(size=(10, 3)) * 0.2
        cloud = encode_point_cloud(positions, momenta, region)
        assert np.all(np.abs(cloud[:, :3]) <= 1.0 + 1e-12)
        back_pos, back_mom = decode_point_cloud(cloud, region)
        np.testing.assert_allclose(back_pos, positions)
        np.testing.assert_allclose(back_mom, momenta)

    def test_spectrum_encoding_range(self, rng):
        spectrum = 10.0 ** rng.uniform(-12, 0, size=(2, 8))
        encoded = encode_spectrum(spectrum)
        assert encoded.shape == (16,)
        assert encoded.min() >= 0.0 and encoded.max() <= 1.0

    def test_invalid_partition(self):
        grid = GridConfig(shape=(8, 8, 8), cell_size=(1e-5,) * 3)
        with pytest.raises(ValueError):
            RegionPartition(grid, (0, 1, 1))


class TestMakeTrainingSamples:
    def test_samples_per_populated_region(self, rng):
        cfg = KHIConfig(grid_shape=(8, 16, 2), particles_per_cell=4, seed=7)
        sim = make_khi_simulation(cfg)
        electrons = sim.get_species("electrons")
        detector = RadiationDetector.for_khi(density=cfg.density, n_directions=2,
                                             n_frequencies=8)
        partition = RegionPartition(cfg.grid_config, (1, 4, 1))
        samples = make_training_samples(electrons, electrons.momenta.copy(), detector,
                                        partition, n_points=32, step=0, time=0.0,
                                        dt=1e-13, rng=rng)
        assert len(samples) == 4
        for sample in samples:
            assert sample.point_cloud.shape == (32, 6)
            assert sample.spectrum.shape == (16,)
            assert sample.region in {"approaching", "receding", "vortex"}

    def test_momenta_preserved_in_encoding(self, rng):
        cfg = KHIConfig(grid_shape=(8, 16, 2), particles_per_cell=4, seed=7)
        sim = make_khi_simulation(cfg)
        electrons = sim.get_species("electrons")
        detector = RadiationDetector.for_khi(density=cfg.density, n_directions=2,
                                             n_frequencies=8)
        partition = RegionPartition(cfg.grid_config, (1, 4, 1))
        samples = make_training_samples(electrons, electrons.momenta.copy(), detector,
                                        partition, n_points=64, step=0, time=0.0,
                                        dt=1e-13, rng=rng)
        # bulk regions keep the ±0.2c drift in the encoded momentum column
        drifts = {s.region: np.mean(s.point_cloud[:, 3]) for s in samples}
        assert any(v > 0.1 for v in drifts.values())
        assert any(v < -0.1 for v in drifts.values())

    def test_validation(self, rng):
        cfg = KHIConfig(grid_shape=(8, 16, 2), particles_per_cell=2, seed=7)
        sim = make_khi_simulation(cfg)
        electrons = sim.get_species("electrons")
        detector = RadiationDetector.for_khi(density=cfg.density, n_directions=2,
                                             n_frequencies=8)
        partition = RegionPartition(cfg.grid_config, (1, 2, 1))
        with pytest.raises(ValueError):
            make_training_samples(electrons, electrons.momenta[:5], detector, partition,
                                  n_points=8, step=0, time=0.0, dt=1e-13)
        with pytest.raises(ValueError):
            make_training_samples(electrons, electrons.momenta.copy(), detector, partition,
                                  n_points=8, step=0, time=0.0, dt=0.0)


class TestProducerPlugin:
    def test_streams_iterations_with_ml_records(self, rng):
        cfg = KHIConfig(grid_shape=(8, 16, 2), particles_per_cell=4, seed=7)
        sim = make_khi_simulation(cfg)
        detector = RadiationDetector.for_khi(density=cfg.density, n_directions=2,
                                             n_frequencies=8)
        partition = RegionPartition(cfg.grid_config, (1, 4, 1))
        backend = MemoryBackend()
        series = Series("khi", Access.CREATE, backend)
        plugin = StreamingProducerPlugin(series, detector, partition, n_points=32,
                                         sample_interval=2, rng=rng)
        sim.add_plugin(plugin)
        sim.run(4)
        assert plugin.iterations_streamed == 2   # steps 2 and 4
        assert plugin.samples_streamed == 8
        assert plugin.bytes_streamed > 0

        reader = Series("khi", Access.READ_LINEAR, backend)
        iterations = list(reader.read_iterations())
        assert [it.index for it in iterations] == [2, 4]
        clouds = iterations[0].get_particles("ml_samples")["point_clouds"].load_scalar()
        assert clouds.shape == (4, 32, 6)
        assert "electrons" in iterations[0].particles

    def test_requires_create_series(self, rng):
        cfg = KHIConfig(grid_shape=(8, 16, 2), particles_per_cell=2, seed=7)
        detector = RadiationDetector.for_khi(density=cfg.density, n_directions=2,
                                             n_frequencies=8)
        partition = RegionPartition(cfg.grid_config, (1, 2, 1))
        series = Series("khi", Access.READ_LINEAR, MemoryBackend())
        with pytest.raises(ValueError):
            StreamingProducerPlugin(series, detector, partition, n_points=8)
