"""Tests of checkpointing, the threaded runner and the CLI."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.continual import InTransitTrainer, TrainingBuffer, TrainingSample
from repro.core import ArtificialScientist
from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.threaded import ThreadedWorkflowRunner
from repro.mlcore.optim import Adam
from repro.models import ArtificialScientistModel, ModelConfig
from tests.core.test_artificial_scientist import tiny_config


SMALL = ModelConfig(n_input_points=24, encoder_channels=(12, 24), encoder_head_hidden=16,
                    latent_dim=16, decoder_grid=(2, 2, 2), decoder_channels=(8, 6),
                    spectrum_dim=8, inn_blocks=2, inn_hidden=(16,))


def make_trained_trainer(rng, n_iterations=3):
    model = ArtificialScientistModel(SMALL, rng=rng)
    trainer = InTransitTrainer(model, Adam(model.parameters(), lr=1e-3),
                               TrainingBuffer(rng=rng), n_rep=1)
    samples = [TrainingSample(point_cloud=rng.normal(size=(SMALL.n_input_points, 6)),
                              spectrum=rng.random(SMALL.spectrum_dim), step=i,
                              region="approaching")
               for i in range(n_iterations)]
    for i, sample in enumerate(samples):
        trainer.train_on_stream_step([sample], step=i)
    return model, trainer


class TestCheckpoint:
    def test_roundtrip_restores_model_and_buffer(self, rng, tmp_path):
        model, trainer = make_trained_trainer(rng)
        directory = str(tmp_path / "ckpt")
        info = save_checkpoint(directory, model, trainer, step=3)
        assert info.training_iterations == 3
        assert os.path.exists(info.manifest_path)

        fresh_model = ArtificialScientistModel(SMALL, rng=np.random.default_rng(99))
        fresh_trainer = InTransitTrainer(fresh_model,
                                         Adam(fresh_model.parameters(), lr=1e-3),
                                         TrainingBuffer(rng=np.random.default_rng(98)),
                                         n_rep=1)
        manifest = load_checkpoint(directory, fresh_model, fresh_trainer)
        assert manifest["step"] == 3
        for name, value in model.state_dict().items():
            np.testing.assert_allclose(fresh_model.state_dict()[name], value)
        assert len(fresh_trainer.buffer) == len(trainer.buffer)
        assert len(fresh_trainer.history) == len(trainer.history)
        # the restored trainer can continue training immediately
        fresh_trainer.train_iteration(step=4)

    def test_load_missing_checkpoint(self, rng, tmp_path):
        model = ArtificialScientistModel(SMALL, rng=rng)
        with pytest.raises(FileNotFoundError):
            load_checkpoint(str(tmp_path / "missing"), model)

    def test_model_only_load(self, rng, tmp_path):
        model, trainer = make_trained_trainer(rng)
        directory = str(tmp_path / "ckpt2")
        save_checkpoint(directory, model, trainer, step=1)
        other = ArtificialScientistModel(SMALL, rng=np.random.default_rng(5))
        load_checkpoint(directory, other)
        np.testing.assert_allclose(other.state_dict()["vae.encoder.mu_head.net.0.weight"],
                                   model.state_dict()["vae.encoder.mu_head.net.0.weight"])


class TestThreadedRunner:
    def test_concurrent_run_matches_sequential_accounting(self):
        scientist = ArtificialScientist(tiny_config(n_rep=1))
        runner = ThreadedWorkflowRunner(scientist)
        result = runner.run(n_steps=3)
        assert result.producer_exception is None
        report = result.report
        assert report.iterations_streamed == 3
        assert report.training_iterations == 3  # n_rep=1
        assert report.samples_streamed == 12
        assert result.max_queue_depth <= scientist.broker.queue_limit

    def test_invalid_steps(self):
        runner = ThreadedWorkflowRunner(ArtificialScientist(tiny_config()))
        with pytest.raises(ValueError):
            runner.run(0)


class TestCLI:
    def test_khi_info(self, capsys):
        assert cli_main(["khi-info"]) == 0
        out = capsys.readouterr().out
        assert "192x256x12" in out
        assert "beta = 0.2" in out

    def test_fom_scan(self, capsys):
        assert cli_main(["fom-scan"]) == 0
        out = capsys.readouterr().out
        assert "65.3" in out and "Frontier" in out

    def test_streaming_study(self, capsys):
        assert cli_main(["streaming-study"]) == 0
        out = capsys.readouterr().out
        assert "libfabric" in out and "mpi" in out and "orion-filesystem" in out

    def test_ddp_scan(self, capsys):
        assert cli_main(["ddp-scan"]) == 0
        out = capsys.readouterr().out
        assert "3072" in out
        assert "deficit attribution" in out

    def test_placement(self, capsys):
        assert cli_main(["placement", "--nodes", "8"]) == 0
        out = capsys.readouterr().out
        assert "intra_node" in out and "inter_node" in out

    def test_run_small_workflow(self, capsys, tmp_path):
        checkpoint = str(tmp_path / "ckpt")
        code = cli_main(["run", "--steps", "2", "--grid", "6", "12", "2",
                         "--particles-per-cell", "3", "--n-rep", "1",
                         "--checkpoint", checkpoint])
        assert code == 0
        out = capsys.readouterr().out
        assert "iterations_streamed" in out
        assert os.path.exists(os.path.join(checkpoint, "manifest.json"))

    def test_run_threaded(self, capsys):
        code = cli_main(["run", "--steps", "2", "--grid", "6", "12", "2",
                         "--particles-per-cell", "3", "--n-rep", "1", "--threaded"])
        assert code == 0
        assert "max stream queue depth" in capsys.readouterr().out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            cli_main(["does-not-exist"])
