"""Documentation quality gates.

Two checks back the ``docs/`` tree:

* **docstring coverage** — every public class/function of the
  ``repro.campaign``, ``repro.service`` and ``repro.telemetry`` packages
  (and the public methods/properties they define) carries a docstring.
  These packages are the public scaling + control-plane + observability
  API; an undocumented symbol there is a regression.
* **intra-repo links** — every relative markdown link in ``README.md``
  and ``docs/*.md`` resolves to an existing file, so the docs tree cannot
  silently rot as files move.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
import re
from pathlib import Path

import pytest

#: The packages whose public API must be fully docstring-covered.
DOCUMENTED_PACKAGES = ("repro.campaign", "repro.service", "repro.telemetry")

REPO_ROOT = Path(__file__).resolve().parents[2]

#: ``[text](target)`` markdown links; targets with spaces/titles excluded
#: by the character class (none are used in this repo).
_MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _modules_of(package_name):
    """Every module of a package, the package itself included."""
    package = importlib.import_module(package_name)
    modules = [package]
    for info in pkgutil.iter_modules(package.__path__):
        modules.append(importlib.import_module(f"{package_name}.{info.name}"))
    return modules


def _public_symbols(package_name):
    """(qualified name, object) for every public class/function."""
    seen = {}
    for module in _modules_of(package_name):
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if not getattr(obj, "__module__", "").startswith(package_name):
                continue   # re-exported stdlib/other-package helpers
            seen[f"{obj.__module__}.{obj.__qualname__}"] = obj
    return sorted(seen.items())


def _public_members(cls):
    """(qualified name, docstring) of the public members a class defines."""
    for name, attr in vars(cls).items():
        if name.startswith("_"):
            continue
        qualified = f"{cls.__module__}.{cls.__qualname__}.{name}"
        if isinstance(attr, property):
            yield qualified, attr.__doc__
        elif isinstance(attr, (classmethod, staticmethod)):
            yield qualified, attr.__func__.__doc__
        elif inspect.isfunction(attr):
            yield qualified, attr.__doc__


class TestDocstringCoverage:
    def test_documented_packages_have_symbols(self):
        """Guard the guard: an import/path mistake must not pass vacuously."""
        campaign = [name for name, _ in _public_symbols("repro.campaign")]
        assert len(campaign) >= 20
        assert "repro.campaign.spec.CampaignSpec" in campaign
        assert "repro.campaign.sharding.ShardedExecutor" in campaign
        assert "repro.campaign.cache.ResultCache" in campaign
        service = [name for name, _ in _public_symbols("repro.service")]
        assert len(service) >= 10
        assert "repro.service.bus.RunEventBus" in service
        assert "repro.service.jobs.CampaignJobManager" in service
        assert "repro.service.client.ServiceClient" in service

    @pytest.mark.parametrize("package", DOCUMENTED_PACKAGES)
    def test_every_public_symbol_has_a_docstring(self, package):
        missing = []
        for name, obj in _public_symbols(package):
            if not (obj.__doc__ or "").strip():
                missing.append(name)
            if inspect.isclass(obj):
                for member_name, doc in _public_members(obj):
                    if not (doc or "").strip():
                        missing.append(member_name)
        assert not missing, (
            f"public {package} symbols without docstrings:\n  "
            + "\n  ".join(sorted(set(missing))))

    @pytest.mark.parametrize("package", DOCUMENTED_PACKAGES)
    def test_every_module_has_a_docstring(self, package):
        missing = [module.__name__ for module in _modules_of(package)
                   if not (module.__doc__ or "").strip()]
        assert not missing, f"undocumented {package} modules: {missing}"


def _markdown_files():
    files = [REPO_ROOT / "README.md"]
    files += sorted((REPO_ROOT / "docs").glob("*.md"))
    return files


@pytest.mark.parametrize("md_file", _markdown_files(),
                         ids=lambda path: str(path.relative_to(REPO_ROOT)))
def test_intra_repo_markdown_links_resolve(md_file):
    assert md_file.exists(), f"{md_file} disappeared"
    broken = []
    for target in _MD_LINK.findall(md_file.read_text(encoding="utf-8")):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        if not (md_file.parent / relative).exists():
            broken.append(target)
    assert not broken, (f"broken intra-repo links in "
                        f"{md_file.relative_to(REPO_ROOT)}: {broken}")


def test_docs_tree_is_present():
    """The documented entry points of the docs tree must exist."""
    for page in ("architecture.md", "campaigns.md", "extending-executors.md",
                 "observability.md", "service.md"):
        assert (REPO_ROOT / "docs" / page).exists(), f"docs/{page} is missing"
