"""Shared pytest fixtures."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


def numerical_gradient(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference numerical gradient of a scalar function of ``x``."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(x)
        flat[i] = original - eps
        minus = fn(x)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad
