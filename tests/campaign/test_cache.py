"""Tests of the content-addressed per-run result cache."""

from __future__ import annotations

import json
import os

import pytest

from repro.campaign import (CampaignStore, ResultCache, RunRecord, aggregate,
                            get_executor, run_campaign)
from repro.campaign.store import STATUS_COMPLETED, STATUS_FAILED

from tests.campaign.test_scheduler_store import fake_worker, smoke_spec


def refusing_worker(payload):
    """A worker that must never be called (proves runs were cache-served)."""
    raise AssertionError(f"run {payload['run_id']} was executed, not cached")


def completed_record(run_id="a", **kwargs) -> RunRecord:
    fields = dict(run_id=run_id, index=0, params={}, driver="serial",
                  n_steps=2, status=STATUS_COMPLETED, elapsed_s=1.5,
                  summary={"final_total_loss": 2.5})
    fields.update(kwargs)
    return RunRecord(**fields)


class TestResultCache:
    def test_get_on_empty_cache_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        assert cache.get("deadbeef") is None
        assert cache.stats() == {"hits": 0, "misses": 1}
        assert len(cache) == 0

    def test_put_get_roundtrip_marks_provenance(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        record = completed_record()
        assert cache.put(record) is True
        assert len(cache) == 1
        hit = cache.get("a")
        assert hit.cached is True
        assert hit.summary == record.summary
        assert hit.elapsed_s == record.elapsed_s
        assert cache.stats() == {"hits": 1, "misses": 0}
        # the record itself was not mutated, and the disk entry stays
        # provenance-free so every lookup stamps its own copy
        assert record.cached is False
        on_disk = json.load(open(cache.entry_path("a"), encoding="utf-8"))
        assert on_disk["cached"] is False

    def test_failed_records_are_refused(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        failed = completed_record(status=STATUS_FAILED, error="boom",
                                  summary={})
        assert cache.put(failed) is False
        assert cache.get("a") is None

    def test_cache_served_records_are_not_rewritten(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        cache.put(completed_record())
        hit = cache.get("a")
        before = os.stat(cache.entry_path("a")).st_mtime_ns
        assert cache.put(hit) is False
        assert os.stat(cache.entry_path("a")).st_mtime_ns == before

    def test_corrupt_entry_is_a_warned_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        cache.put(completed_record())
        with open(cache.entry_path("a"), "w", encoding="utf-8") as handle:
            handle.write('{"run_id": "a", "ind')
        with pytest.warns(RuntimeWarning, match="corrupt entry"):
            assert cache.get("a") is None
        assert cache.misses == 1

    def test_foreign_or_mismatched_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        path = cache.entry_path("a")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        # valid JSON, but not a completed record of run "a"
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(completed_record(run_id="zz").to_dict(), handle)
        with pytest.warns(RuntimeWarning, match="corrupt entry"):
            assert cache.get("a") is None

    def test_entries_fan_out_over_prefix_directories(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        cache.put(completed_record(run_id="abcd1234"))
        assert os.path.exists(
            os.path.join(str(tmp_path / "cache"), "ab", "abcd1234.json"))


class TestCachedCampaigns:
    def test_warm_cache_serves_every_run_without_executing(self, tmp_path):
        """The acceptance criterion: a second run against a warm cache
        reports 100% cache hits and executes zero runs."""
        spec = smoke_spec()
        cache = ResultCache(str(tmp_path / "cache"))
        first = run_campaign(spec, CampaignStore(str(tmp_path / "a.jsonl")),
                             worker=fake_worker, cache=cache)
        assert first.executed == 8 and first.cache_hits == 0
        assert len(cache) == 8

        second = run_campaign(spec, CampaignStore(str(tmp_path / "b.jsonl")),
                              worker=refusing_worker, cache=cache)
        assert second.cache_hits == 8
        assert second.executed == 0
        assert second.completed == 8 and second.done
        assert all(record.cached for record in second.records)

    def test_cached_and_direct_campaigns_aggregate_identically(self, tmp_path):
        spec = smoke_spec()
        cache = ResultCache(str(tmp_path / "cache"))
        direct = CampaignStore(str(tmp_path / "direct.jsonl"))
        run_campaign(spec, direct, worker=fake_worker, cache=cache)
        served = CampaignStore(str(tmp_path / "served.jsonl"))
        run_campaign(spec, served, worker=refusing_worker, cache=cache)
        direct_report = aggregate(direct.records(), spec.name)
        served_report = aggregate(served.records(), spec.name)
        assert served_report.deterministic_dict() == \
            direct_report.deterministic_dict()
        assert direct_report.n_cached == 0
        assert served_report.n_cached == 8

    def test_cross_campaign_reuse(self, tmp_path):
        """The cache is keyed by resolved-run content: a differently-named
        campaign resolving the same runs reuses the results."""
        cache = ResultCache(str(tmp_path / "cache"))
        original = smoke_spec(name="study-a")
        run_campaign(original, CampaignStore(str(tmp_path / "a.jsonl")),
                     worker=fake_worker, cache=cache)
        renamed = smoke_spec(name="study-b", routing={"shards": 2})
        outcome = run_campaign(renamed,
                               CampaignStore(str(tmp_path / "b.jsonl")),
                               get_executor("sharded", shards=2),
                               worker=refusing_worker, cache=cache)
        assert outcome.cache_hits == 8 and outcome.executed == 0
        assert outcome.campaign == "study-b"

    def test_corrupt_entry_falls_back_to_recompute_and_repairs(self, tmp_path):
        spec = smoke_spec(repetitions=1)   # 2 runs
        cache = ResultCache(str(tmp_path / "cache"))
        run_campaign(spec, CampaignStore(str(tmp_path / "a.jsonl")),
                     worker=fake_worker, cache=cache)
        victim = spec.resolve()[0].run_id
        with open(cache.entry_path(victim), "w", encoding="utf-8") as handle:
            handle.write("not json at all")

        executed = []

        def counting_worker(payload):
            executed.append(payload["run_id"])
            return fake_worker(payload)

        with pytest.warns(RuntimeWarning, match="corrupt entry"):
            outcome = run_campaign(
                spec, CampaignStore(str(tmp_path / "b.jsonl")),
                worker=counting_worker, cache=cache)
        assert executed == [victim]
        assert outcome.cache_hits == 1 and outcome.executed == 1
        assert outcome.completed == 2
        # the recompute repaired the entry: a third launch is all hits
        third = run_campaign(spec, CampaignStore(str(tmp_path / "c.jsonl")),
                             worker=refusing_worker, cache=cache)
        assert third.cache_hits == 2

    def test_failed_runs_are_not_cached_and_retry(self, tmp_path):
        spec = smoke_spec(repetitions=1)
        cache = ResultCache(str(tmp_path / "cache"))

        def bad(payload):
            raise RuntimeError("first launch fails")

        first = run_campaign(spec, CampaignStore(str(tmp_path / "a.jsonl")),
                             worker=bad, cache=cache)
        assert first.failed == 2 and len(cache) == 0
        second = run_campaign(spec, CampaignStore(str(tmp_path / "b.jsonl")),
                              worker=fake_worker, cache=cache)
        assert second.executed == 2 and second.completed == 2
        assert len(cache) == 2

    def test_cached_records_resume_through_the_store_too(self, tmp_path):
        """Cache-served records land in the store, so a later launch of the
        same store resumes even without the cache."""
        spec = smoke_spec()
        cache = ResultCache(str(tmp_path / "cache"))
        run_campaign(spec, CampaignStore(str(tmp_path / "a.jsonl")),
                     worker=fake_worker, cache=cache)
        store = CampaignStore(str(tmp_path / "b.jsonl"))
        run_campaign(spec, store, worker=refusing_worker, cache=cache)
        # no cache handed in this time: the store alone must skip all runs
        resumed = run_campaign(spec, store, worker=refusing_worker)
        assert resumed.skipped == 8 and resumed.executed == 0

    def test_cache_hits_rekey_to_the_requesting_campaign(self, tmp_path):
        """A hit from another campaign carries this campaign's index/params."""
        cache = ResultCache(str(tmp_path / "cache"))
        spec = smoke_spec()
        run_campaign(spec, CampaignStore(str(tmp_path / "a.jsonl")),
                     worker=fake_worker, cache=cache)
        # an explicit spec naming one of the smoke runs' configs directly
        one_run = spec.resolve()[3]
        explicit = smoke_spec(
            name="single", sampler="explicit", parameters={},
            repetitions=1,
            explicit=[dict(one_run.params,
                           **{"khi.seed": one_run.config["khi"]["seed"],
                              "seed": one_run.config["seed"]})])
        resolved = explicit.resolve()
        assert [r.run_id for r in resolved] == [one_run.run_id]
        outcome = run_campaign(explicit,
                               CampaignStore(str(tmp_path / "b.jsonl")),
                               worker=refusing_worker, cache=cache)
        assert outcome.cache_hits == 1
        record = outcome.records[0]
        assert record.index == resolved[0].index == 0
        assert record.params == resolved[0].params
