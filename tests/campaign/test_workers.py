"""Tests of the persistent worker-pool executor (``repro.campaign.workers``).

Every pool here uses ``start_method="fork"``: the test module is not an
importable package, so spawn-started workers could not unpickle the worker
functions defined below — and fork keeps the suite fast.  The production
default (``spawn``) is exercised structurally (clean-interpreter start) by
the benchmark harness and CI's worker-smoke job.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro.campaign import (CampaignSpec, CampaignStore, WorkerPool,
                            WorkerPoolExecutor, aggregate,
                            get_campaign_preset, get_executor, run_campaign,
                            shared_pool, shutdown_shared_pools)
from repro.campaign.store import STATUS_COMPLETED, STATUS_FAILED
from repro.campaign.workers import default_batch_size


def smoke_spec(**kwargs) -> CampaignSpec:
    base = get_campaign_preset("campaign-smoke").to_dict()
    base.update(kwargs)
    return CampaignSpec.from_dict(base)


def smoke_payloads(**kwargs):
    return [run.payload() for run in smoke_spec(**kwargs).resolve()]


def fake_worker(payload):
    """Deterministic stand-in for a coupled run (fast, summary from payload)."""
    lr = payload["config"]["ml"]["base_learning_rate"]
    return {"final_total_loss": 1000.0 * lr + payload["index"],
            "training_iterations": payload["n_steps"],
            "samples_streamed": 4 * payload["n_steps"],
            "wall_time_s": 0.0, "ok": True}


def exploding_worker(payload):
    raise RuntimeError("kaboom " + payload["run_id"])


def crash_once_worker(payload):
    """Kills its host worker process the FIRST time each run executes.

    Cross-process state lives in marker files under the directory named by
    the payload's ``config["marker_dir"]`` override, so the re-dispatched
    attempt (on a respawned worker) sees the marker and completes.
    """
    marker = os.path.join(payload["config"]["marker_dir"],
                          payload["run_id"])
    if payload["config"].get("crash_ids", "all") != "all" and \
            payload["run_id"] not in payload["config"]["crash_ids"]:
        return fake_worker(payload)
    try:
        handle = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return fake_worker(payload)
    os.close(handle)
    os._exit(17)


def poison_worker(payload):
    """Kills its host worker process every time the config marks the run."""
    if payload["config"].get("poison"):
        os._exit(23)
    return fake_worker(payload)


def slow_worker(payload):
    time.sleep(float(payload["config"].get("sleep_s", 0.3)))
    return fake_worker(payload)


def stall_once_worker(payload):
    """Stalls for seconds — but only the FIRST execution of the marked run,
    so the straggler duplicate (and any requeue) completes fast."""
    marker = os.path.join(payload["config"]["marker_dir"], payload["run_id"])
    if payload["config"].get("stall_id") == payload["run_id"]:
        try:
            handle = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            os.close(handle)
            time.sleep(3.0)
        except FileExistsError:
            pass
    return fake_worker(payload)


def with_config(payloads, **extra):
    """Copies of the payloads with extra keys merged into their configs."""
    return [dict(p, config=dict(p["config"], **extra)) for p in payloads]


@pytest.fixture
def pool():
    pool = WorkerPool(2, start_method="fork", heartbeat_interval=0.05,
                      liveness_timeout=5.0)
    yield pool
    pool.shutdown()


class TestWorkerPoolBasics:
    def test_records_in_submission_order_with_serialized_observer(self, pool):
        payloads = smoke_payloads()
        seen = []
        records = pool.run(payloads, fake_worker, on_record=seen.append)
        assert [r.run_id for r in records] == [p["run_id"] for p in payloads]
        assert all(r.completed and r.attempts == 1 for r in records)
        assert sorted(r.run_id for r in seen) == \
            sorted(r.run_id for r in records)

    def test_workers_stay_warm_across_runs(self, pool):
        payloads = smoke_payloads()
        pool.run(payloads, fake_worker)
        pids = pool.worker_pids()
        pool.run(payloads, fake_worker)
        assert pool.worker_pids() == pids
        assert all(pid is not None for pid in pids)

    def test_exceptions_are_captured_not_raised(self, pool):
        records = pool.run(smoke_payloads(repetitions=1), exploding_worker)
        assert all(r.status == STATUS_FAILED for r in records)
        assert all("kaboom" in r.error for r in records)

    def test_duplicate_run_ids_keep_their_own_records(self, pool):
        payload = smoke_payloads(repetitions=1)[0]
        twin = dict(payload, index=1)
        records = pool.run([payload, twin], fake_worker)
        assert len(records) == 2
        assert [r.index for r in records] == [payload["index"], 1]

    def test_empty_payloads(self, pool):
        assert pool.run([], fake_worker) == []

    def test_timeout_is_applied_inside_the_worker(self, pool):
        payloads = with_config(smoke_payloads(repetitions=1)[:1], sleep_s=0.1)
        record = pool.run(payloads, slow_worker, timeout=0.01)[0]
        assert record.completed
        assert "TimeoutWarning" in record.error

    def test_unpicklable_worker_becomes_failed_records(self, pool):
        records = pool.run(smoke_payloads(repetitions=1),
                           lambda payload: {"ok": True})
        assert all(r.status == STATUS_FAILED for r in records)
        assert all("DispatchError" in r.error for r in records)
        # the pool survives a dispatch failure and keeps serving
        assert all(r.completed for r in pool.run(smoke_payloads(repetitions=1),
                                                 fake_worker))

    def test_invalid_arguments(self, pool):
        with pytest.raises(ValueError):
            WorkerPool(0)
        with pytest.raises(ValueError):
            WorkerPool(2, heartbeat_interval=0.0)
        with pytest.raises(ValueError):
            pool.run(smoke_payloads(), fake_worker, capacity=0)
        with pytest.raises(ValueError):
            pool.run(smoke_payloads(), fake_worker, max_requeues=-1)

    def test_shutdown_pool_refuses_new_work(self):
        pool = WorkerPool(1, start_method="fork")
        pool.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            pool.run(smoke_payloads(repetitions=1), fake_worker)

    def test_default_batch_size_bounds(self):
        assert default_batch_size(0, 4) == 1
        assert default_batch_size(2, 2) == 1
        assert default_batch_size(8, 2) == 2
        assert default_batch_size(1000, 2) == 16
        assert all(default_batch_size(n, w) >= 1
                   for n in range(0, 40) for w in range(1, 5))


class TestCrashRequeue:
    def test_killed_worker_mid_campaign_matches_serial(self, pool, tmp_path):
        """The satellite acceptance test: a worker dying mid-campaign is
        respawned, its in-flight runs are requeued, and the completed
        campaign's records equal a serial launch's (modulo timing and
        attempt counts)."""
        payloads = with_config(smoke_payloads(), marker_dir=str(tmp_path),
                               crash_ids="all")
        records = pool.run(payloads, crash_once_worker, batch_size=1)
        serial = get_executor("serial").execute(payloads, crash_once_worker)
        assert [r.run_id for r in records] == [r.run_id for r in serial]
        assert all(r.completed for r in records)
        assert pool.counters["respawns"] >= 1
        assert pool.counters["requeued_runs"] >= 1
        assert aggregate(records).deterministic_dict() == \
            aggregate(serial).deterministic_dict()

    def test_poison_run_fails_after_bounded_requeues(self, pool, tmp_path):
        """A run that reliably kills its worker must not requeue forever:
        after max_requeues worker deaths it gets a failed record, and the
        rest of the campaign still completes."""
        payloads = smoke_payloads()
        poison_id = payloads[3]["run_id"]
        payloads[3] = dict(payloads[3],
                           config=dict(payloads[3]["config"], poison=True))

        records = pool.run(payloads, poison_worker, batch_size=1,
                           max_requeues=1)
        by_id = {r.run_id: r for r in records}
        assert by_id[poison_id].status == STATUS_FAILED
        assert "WorkerCrashError" in by_id[poison_id].error
        others = [r for r in records if r.run_id != poison_id]
        assert all(r.completed for r in others)

    def test_externally_killed_worker_is_detected_and_replaced(self, pool):
        """SIGKILL from outside (OOM killer, operator) while runs are in
        flight: liveness detection requeues and the campaign completes."""
        assert pool.wait_ready(timeout=30)
        # pick the victim before launching: run() holds the pool lock for
        # its whole drain, so worker_pids() would block until completion
        victim = next(pid for pid in pool.worker_pids() if pid is not None)
        payloads = with_config(smoke_payloads(), sleep_s=0.2)
        result = {}

        def launch():
            result["records"] = pool.run(payloads, slow_worker, batch_size=1)

        thread = threading.Thread(target=launch)
        thread.start()
        time.sleep(0.3)   # let both workers start computing
        os.kill(victim, signal.SIGKILL)
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert all(r.completed for r in result["records"])
        assert pool.counters["respawns"] >= 1
        assert victim not in pool.worker_pids()


class TestStragglerRedispatch:
    def test_tail_runs_are_duplicated_and_deduplicated(self, pool, tmp_path):
        """One run stalls on its first execution; an idle worker gets a
        duplicate dispatch, the first completion wins, and exactly one
        record per run id comes back."""
        payloads = with_config(smoke_payloads(), marker_dir=str(tmp_path))
        stall_id = payloads[0]["run_id"]
        payloads = with_config(payloads, stall_id=stall_id)
        seen = []
        records = pool.run(payloads, stall_once_worker, batch_size=1,
                           straggler_after=0.2, on_record=seen.append)
        assert [r.run_id for r in records] == [p["run_id"] for p in payloads]
        assert all(r.completed for r in records)
        assert pool.counters["straggler_redispatches"] >= 1
        # first completion wins, exactly once per run — the observer never
        # fires twice for the straggler
        assert sorted(r.run_id for r in seen) == \
            sorted(p["run_id"] for p in payloads)

    def test_late_duplicate_results_are_dropped_not_misattributed(self, pool):
        """The losing holder's result lands after the lease finished; the
        next interaction with the pool discards it instead of crediting it
        to an unrelated run."""
        payloads = with_config(smoke_payloads(repetitions=2), sleep_s=0.4)
        records = pool.run(payloads, slow_worker, batch_size=1,
                           straggler_after=0.05)
        assert all(r.completed for r in records)
        if pool.counters["straggler_redispatches"] == 0:
            pytest.skip("no straggler fired on this machine")
        # give the losing duplicates time to finish, then pump via a run
        time.sleep(0.6)
        again = pool.run(with_config(smoke_payloads(repetitions=1)),
                         fake_worker)
        assert all(r.completed for r in again)
        dropped = (pool.counters["duplicate_results_dropped"]
                   + pool.counters["stale_results_dropped"])
        assert dropped >= 1


class TestWorkerPoolExecutor:
    def test_registered_and_validated(self):
        executor = get_executor("workers", max_workers=3, retries=1,
                                timeout=5.0)
        assert isinstance(executor, WorkerPoolExecutor)
        assert executor.max_workers == 3
        with pytest.raises(ValueError):
            WorkerPoolExecutor(batch_size=0)
        with pytest.raises(ValueError):
            WorkerPoolExecutor(capacity=0)
        with pytest.raises(ValueError):
            WorkerPoolExecutor(straggler_after=0.0)
        with pytest.raises(ValueError):
            WorkerPoolExecutor(max_requeues=-1)

    def test_executor_reports_per_call_stats(self, pool):
        executor = WorkerPoolExecutor(max_workers=2, pool=pool, batch_size=2)
        payloads = smoke_payloads()
        executor.execute(payloads, fake_worker)
        first = dict(executor.last_stats)
        assert first["dispatched_runs"] == len(payloads)
        assert first["dispatched_batches"] == len(payloads) // 2
        assert first["results"] == len(payloads)
        # stats are per execute() call, not cumulative
        executor.execute(payloads[:2], fake_worker)
        assert executor.last_stats["dispatched_runs"] == 2

    def test_run_campaign_with_real_workflow_runs(self, pool, tmp_path):
        """End-to-end: the workers executor drives the real coupled
        workflow worker through run_campaign, store and all."""
        spec = smoke_spec(repetitions=1)
        store = CampaignStore(str(tmp_path / "workers.jsonl"))
        executor = WorkerPoolExecutor(max_workers=2, pool=pool)
        outcome = run_campaign(spec, store, executor)
        assert outcome.completed == 2, [r.error for r in outcome.records]
        assert all(r.summary["ok"] for r in store.records())

    def test_chunked_launches_reuse_the_same_workers(self, pool):
        """The service launch shape: many small execute() calls must land
        on the same warm worker processes, not respawned ones."""
        executor = WorkerPoolExecutor(max_workers=2, pool=pool)
        payloads = smoke_payloads()
        for position in range(0, len(payloads), 2):
            executor.execute(payloads[position:position + 2], fake_worker)
            if position == 0:
                pids = pool.worker_pids()
        assert pool.worker_pids() == pids
        assert pool.counters["respawns"] == 0

    def test_shared_pool_is_shared_across_executors(self, monkeypatch):
        monkeypatch.setattr("repro.campaign.workers.DEFAULT_START_METHOD",
                            "fork")
        shutdown_shared_pools()
        try:
            first = WorkerPoolExecutor(max_workers=2)
            second = WorkerPoolExecutor(max_workers=2)
            assert first.pool() is second.pool()
            assert first.pool() is shared_pool(2)
            first.execute(smoke_payloads(repetitions=1), fake_worker)
            pids = first.pool().worker_pids()
            second.execute(smoke_payloads(repetitions=1), fake_worker)
            assert second.pool().worker_pids() == pids
            # a different width is a different pool
            assert shared_pool(3) is not first.pool()
        finally:
            shutdown_shared_pools()
        # after shutdown, leasing again builds a fresh (open) pool
        fresh = shared_pool(2)
        assert not fresh._closed
        shutdown_shared_pools()

    def test_sharded_campaign_can_delegate_to_workers(self, monkeypatch,
                                                      tmp_path):
        """``routing.inner = "workers"`` sends every shard to the shared
        warm pool; the pool lock serialises the shards' leases."""
        monkeypatch.setattr("repro.campaign.workers.DEFAULT_START_METHOD",
                            "fork")
        shutdown_shared_pools()
        try:
            spec = smoke_spec(routing={"shards": 2, "route": "hash",
                                       "inner": "workers"})
            store = CampaignStore(str(tmp_path / "sharded.jsonl"))
            executor = get_executor("sharded", shards=2, route="hash",
                                    inner="workers", max_workers=2)
            outcome = run_campaign(spec, store, executor, worker=fake_worker)
            assert outcome.completed == 8 and outcome.done
        finally:
            shutdown_shared_pools()
