"""Tests of the sharded campaign executor and its workload routers."""

from __future__ import annotations

import threading

import pytest

from repro.campaign import (CampaignStore, ExplicitRouter, HashRouter,
                            RoundRobinRouter, ShardedExecutor, WorkloadRouter,
                            aggregate, available_routers, get_campaign_preset,
                            get_executor, get_router, register_router,
                            run_campaign, stable_shard_hash)
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import STATUS_COMPLETED, STATUS_FAILED

from tests.campaign.test_scheduler_store import fake_worker, smoke_spec


def smoke_payloads(**kwargs):
    return [run.payload() for run in smoke_spec(**kwargs).resolve()]


class TestRouters:
    def test_registry(self):
        assert available_routers() == ("explicit", "hash", "round-robin")
        with pytest.raises(ValueError, match="valid routes"):
            get_router("teleport")

    def test_register_router(self):
        class EvenOdd(WorkloadRouter):
            name = "even-odd"

            def shard_of(self, payload, position, n_shards):
                """Route by payload index parity."""
                return payload["index"] % min(2, n_shards)

        register_router("even-odd", lambda assignments=None: EvenOdd())
        try:
            assert "even-odd" in available_routers()
            with pytest.raises(ValueError, match="already registered"):
                register_router("even-odd", lambda assignments=None: EvenOdd())
            executor = ShardedExecutor(shards=2, route="even-odd")
            buckets = executor.partition(smoke_payloads())
            assert all(p["index"] % 2 == 0 for p in buckets["shard-0"])
            assert all(p["index"] % 2 == 1 for p in buckets["shard-1"])
        finally:
            from repro.campaign.sharding import _ROUTERS
            _ROUTERS.pop("even-odd", None)

    def test_stable_hash_is_deterministic_and_in_range(self):
        for run_id in ("a", "deadbeef", "8a1d29d3b1de51ef"):
            for n in (1, 2, 4, 7):
                shard = stable_shard_hash(run_id, n)
                assert 0 <= shard < n
                assert shard == stable_shard_hash(run_id, n)

    def test_hash_router_ignores_position(self):
        router = HashRouter()
        payload = {"run_id": "8a1d29d3b1de51ef"}
        assert router.shard_of(payload, 0, 4) == router.shard_of(payload, 7, 4)

    def test_round_robin_cycles(self):
        router = RoundRobinRouter()
        shards = [router.shard_of({"run_id": "x"}, pos, 3) for pos in range(7)]
        assert shards == [0, 1, 2, 0, 1, 2, 0]

    def test_explicit_assignments_with_hash_fallback(self):
        router = ExplicitRouter({"pinned": 2})
        assert router.shard_of({"run_id": "pinned"}, 0, 4) == 2
        unpinned = router.shard_of({"run_id": "other"}, 0, 4)
        assert unpinned == stable_shard_hash("other", 4)

    def test_explicit_rejects_bad_assignments(self):
        with pytest.raises(ValueError, match="integer shard index"):
            ExplicitRouter({"a": "zero"})
        router = ExplicitRouter({"a": 9})
        with pytest.raises(ValueError, match="outside 0..3"):
            router.shard_of({"run_id": "a"}, 0, 4)


class TestPartition:
    def test_shards_are_disjoint_and_cover_the_campaign(self):
        payloads = smoke_payloads()
        for route in ("hash", "round-robin"):
            executor = ShardedExecutor(shards=3, route=route)
            buckets = executor.partition(payloads)
            assert sorted(buckets) == ["shard-0", "shard-1", "shard-2"]
            shard_ids = [[p["run_id"] for p in bucket]
                         for bucket in buckets.values()]
            union = [run_id for bucket in shard_ids for run_id in bucket]
            assert sorted(union) == sorted(p["run_id"] for p in payloads)
            assert len(union) == len(set(union))  # disjoint

    def test_routing_is_deterministic_for_a_fixed_seed(self):
        """The same spec resolves and routes identically across launches."""
        first = ShardedExecutor(shards=4).partition(smoke_payloads())
        second = ShardedExecutor(shards=4).partition(smoke_payloads())
        assert {name: [p["run_id"] for p in bucket]
                for name, bucket in first.items()} == \
            {name: [p["run_id"] for p in bucket]
             for name, bucket in second.items()}

    def test_explicit_routing_through_the_spec_roundtrip(self, tmp_path):
        payloads = smoke_payloads()
        pinned = payloads[0]["run_id"]
        spec = smoke_spec(routing={"shards": 2, "route": "explicit",
                                   "assignments": {pinned: 1}})
        path = str(tmp_path / "spec.json")
        spec.to_file(path)
        loaded = CampaignSpec.from_file(path)
        assert loaded.routing == {"shards": 2, "route": "explicit",
                                  "assignments": {pinned: 1}}
        executor = ShardedExecutor(
            shards=loaded.routing["shards"], route=loaded.routing["route"],
            assignments=loaded.routing["assignments"])
        buckets = executor.partition(payloads)
        assert pinned in [p["run_id"] for p in buckets["shard-1"]]

    def test_routing_hints_do_not_change_run_identity(self):
        plain = smoke_spec()
        routed = smoke_spec(routing={"shards": 4}, cache_dir="some/cache")
        assert [r.run_id for r in plain.resolve()] == \
            [r.run_id for r in routed.resolve()]

    def test_spec_rejects_bad_routing(self):
        with pytest.raises(ValueError, match="unknown routing keys"):
            smoke_spec(routing={"shard_count": 4})
        with pytest.raises(ValueError, match="routing.shards"):
            smoke_spec(routing={"shards": 0})
        with pytest.raises(ValueError, match="routing.route"):
            smoke_spec(routing={"route": 3})
        with pytest.raises(ValueError, match="routing.assignments"):
            smoke_spec(routing={"route": "explicit", "assignments": ["a"]})
        # assignments under a non-explicit route would be silently ignored
        with pytest.raises(ValueError, match="route='explicit'"):
            smoke_spec(routing={"assignments": {"a": 0}})
        with pytest.raises(ValueError, match="route='explicit'"):
            smoke_spec(routing={"route": "hash", "assignments": {"a": 0}})
        with pytest.raises(ValueError, match="cache_dir"):
            smoke_spec(cache_dir=7)


class TestShardedExecutor:
    def test_invalid_options(self):
        with pytest.raises(ValueError, match="shards must be"):
            ShardedExecutor(shards=0)
        with pytest.raises(ValueError, match="cannot shard into itself"):
            ShardedExecutor(inner="sharded")
        with pytest.raises(ValueError, match="unknown inner executor"):
            ShardedExecutor(inner="quantum")
        with pytest.raises(ValueError, match="valid routes"):
            ShardedExecutor(route="teleport")
        with pytest.raises(ValueError, match="route='explicit'"):
            ShardedExecutor(route="hash", assignments={"a": 0})

    def test_non_integer_router_output_is_a_clean_error(self):
        """A buggy custom router must surface as ValueError (the CLI's
        clean-exit contract), not a KeyError/TypeError traceback."""
        class Broken(WorkloadRouter):
            name = "broken"

            def shard_of(self, payload, position, n_shards):
                """Return a non-index on purpose."""
                return 1.5

        executor = ShardedExecutor(shards=4)
        executor.router = Broken()
        with pytest.raises(ValueError, match="not an index"):
            executor.partition(smoke_payloads())
        with pytest.raises(ValueError, match="not an index"):
            executor.execute(smoke_payloads(), fake_worker)

    def test_single_shard_equals_serial_baseline(self):
        """The sharding acceptance identity: one shard is the serial run."""
        payloads = smoke_payloads()
        serial = get_executor("serial").execute(payloads, fake_worker)
        sharded = get_executor("sharded", shards=1).execute(payloads,
                                                            fake_worker)
        assert [(r.run_id, r.status, r.summary) for r in sharded] == \
            [(r.run_id, r.status, r.summary) for r in serial]

    @pytest.mark.parametrize("route", ("hash", "round-robin"))
    def test_records_come_back_in_submission_order(self, route):
        payloads = smoke_payloads()
        records = get_executor("sharded", shards=3, route=route).execute(
            payloads, fake_worker)
        assert [r.run_id for r in records] == [p["run_id"] for p in payloads]
        assert all(r.completed for r in records)

    def test_empty_payload_list(self):
        executor = ShardedExecutor(shards=4)
        assert executor.execute([], fake_worker) == []
        assert executor.shard_sizes == {f"shard-{i}": 0 for i in range(4)}

    def test_shard_sizes_reflect_the_partition(self):
        payloads = smoke_payloads()
        executor = ShardedExecutor(shards=3, route="round-robin")
        executor.execute(payloads, fake_worker)
        assert executor.shard_sizes == {"shard-0": 3, "shard-1": 3,
                                        "shard-2": 2}

    def test_exceptions_are_captured_into_records(self):
        def exploding(payload):
            raise RuntimeError("kaboom " + payload["run_id"])

        records = get_executor("sharded", shards=3).execute(
            smoke_payloads(), exploding)
        assert all(r.status == STATUS_FAILED for r in records)
        assert all("kaboom" in r.error for r in records)

    def test_on_record_callbacks_are_serialised(self):
        """Concurrent shards must not interleave the record callback (the
        store append is not reentrant)."""
        active = []
        overlap = []
        lock = threading.Lock()

        def observing(record):
            with lock:
                active.append(record.run_id)
                if len(active) > 1:
                    overlap.append(tuple(active))
            # linger so a racing shard's callback would be observed
            threading.Event().wait(0.005)
            with lock:
                active.remove(record.run_id)

        records = get_executor("sharded", shards=4).execute(
            smoke_payloads(), fake_worker, on_record=observing)
        assert len(records) == 8
        assert overlap == []

    def test_sharded_run_campaign_matches_serial_outcome(self, tmp_path):
        """The acceptance criterion: `--executor sharded --shards 4` on the
        smoke campaign produces the serial CampaignOutcome (same run ids,
        same deterministic metrics)."""
        spec = smoke_spec()
        serial_store = CampaignStore(str(tmp_path / "serial.jsonl"))
        serial = run_campaign(spec, serial_store, get_executor("serial"),
                              worker=fake_worker)
        sharded_store = CampaignStore(str(tmp_path / "sharded.jsonl"))
        sharded = run_campaign(spec, sharded_store,
                               get_executor("sharded", shards=4),
                               worker=fake_worker)
        assert sharded.summary() == serial.summary()
        assert [r.run_id for r in sharded.records] == \
            [r.run_id for r in serial.records]
        assert aggregate(sharded_store.records(), spec.name).deterministic_dict() \
            == aggregate(serial_store.records(), spec.name).deterministic_dict()

    def test_sharded_executor_with_thread_inner(self):
        records = get_executor("sharded", shards=2, inner="thread",
                               max_workers=2).execute(smoke_payloads(),
                                                      fake_worker)
        assert sorted(r.status for r in records) == [STATUS_COMPLETED] * 8

    def test_sharded_resume_skips_completed_runs(self, tmp_path):
        spec = smoke_spec()
        store = CampaignStore(str(tmp_path / "resume.jsonl"))
        first = run_campaign(spec, store, get_executor("sharded", shards=4),
                             worker=fake_worker, max_runs=3)
        assert first.executed == 3 and not first.done
        second = run_campaign(spec, store, get_executor("sharded", shards=4),
                              worker=fake_worker)
        assert second.skipped == 3 and second.executed == 5 and second.done

    def test_sharded_smoke_preset_runs_real_workflows(self, tmp_path):
        """The CI sharded smoke path: real coupled runs across 4 shards
        reproduce the serial smoke campaign's deterministic report."""
        from repro.campaign import execute_run

        sharded_spec = get_campaign_preset("campaign-smoke-sharded")
        assert sharded_spec.routing == {"shards": 4, "route": "hash",
                                        "inner": "serial"}
        serial_spec = get_campaign_preset("campaign-smoke")
        assert [r.run_id for r in sharded_spec.resolve()] == \
            [r.run_id for r in serial_spec.resolve()]

        sharded_store = CampaignStore(str(tmp_path / "sharded.jsonl"))
        outcome = run_campaign(
            sharded_spec, sharded_store,
            get_executor("sharded", **sharded_spec.routing),
            worker=execute_run)
        assert outcome.completed == 8, [r.error for r in outcome.records]

        serial_store = CampaignStore(str(tmp_path / "serial.jsonl"))
        run_campaign(serial_spec, serial_store, get_executor("serial"),
                     worker=execute_run)
        sharded_report = aggregate(sharded_store.records(), "smoke")
        serial_report = aggregate(serial_store.records(), "smoke")
        assert sharded_report.deterministic_dict() == \
            serial_report.deterministic_dict()
