"""Tests of the campaign-level aggregation report."""

from __future__ import annotations

from repro.campaign import RunRecord, aggregate, status_document
from repro.campaign.store import STATUS_COMPLETED, STATUS_FAILED


def record(run_id, loss, lr, seed=1, status=STATUS_COMPLETED, wall=0.5,
           elapsed=0.0, cached=False):
    summary = {} if status == STATUS_FAILED else {
        "final_total_loss": loss, "training_iterations": 4,
        "samples_streamed": 16, "iterations_streamed": 2,
        "streamed_megabytes": 0.1, "wall_time_s": wall}
    return RunRecord(run_id=run_id, index=0,
                     params={"ml.base_learning_rate": lr, "khi.seed": seed},
                     driver="serial", n_steps=2, status=status,
                     error="boom" if status == STATUS_FAILED else None,
                     summary=summary, elapsed_s=elapsed, cached=cached)


class TestAggregate:
    def test_overall_stats_and_best_run(self):
        records = [record("a", 3.0, 1e-3), record("b", 1.0, 1e-4),
                   record("c", 2.0, 1e-4), record("d", None, 1e-3,
                                                  status=STATUS_FAILED)]
        report = aggregate(records, campaign="study")
        assert report.campaign == "study"
        assert report.n_runs == 4
        assert report.n_completed == 3
        assert report.n_failed == 1
        assert report.loss == {"n": 3, "mean": 2.0, "min": 1.0, "max": 3.0}
        assert report.best_run["run_id"] == "b"
        assert report.best_run["final_total_loss"] == 1.0
        assert report.best_run["params"]["ml.base_learning_rate"] == 1e-4

    def test_non_finite_losses_do_not_poison_stats_or_best_run(self):
        """A diverged run (NaN loss, id sorting first) must neither win the
        best-run comparison nor turn mean/min/max into NaN."""
        records = [record("a", float("nan"), 1e-2),
                   record("b", float("inf"), 1e-2),
                   record("c", 2.0, 1e-4), record("d", 1.0, 1e-4)]
        report = aggregate(records)
        assert report.best_run["run_id"] == "d"
        assert report.loss == {"n": 2, "mean": 1.5, "min": 1.0, "max": 2.0}
        groups = report.per_parameter["ml.base_learning_rate"]
        assert "loss_mean" not in groups[str(1e-2)]  # n counted, loss absent
        assert groups[str(1e-2)]["n"] == 2.0

    def test_string_valued_parameters_keep_clean_keys(self):
        records = [RunRecord(run_id=i, index=0, params={"driver": d},
                             driver=d, n_steps=2, status=STATUS_COMPLETED,
                             summary={"final_total_loss": 1.0})
                   for i, d in (("a", "serial"), ("b", "threaded"))]
        report = aggregate(records)
        assert set(report.per_parameter["driver"]) == {"serial", "threaded"}

    def test_per_parameter_grouping(self):
        records = [record("a", 3.0, 1e-3), record("b", 1.0, 1e-4),
                   record("c", 2.0, 1e-4)]
        report = aggregate(records)
        groups = report.per_parameter["ml.base_learning_rate"]
        assert set(groups) == {str(1e-3), str(1e-4)}
        assert groups[str(1e-4)]["n"] == 2
        assert groups[str(1e-4)]["loss_mean"] == 1.5
        assert groups[str(1e-4)]["loss_min"] == 1.0
        assert groups[str(1e-3)]["loss_max"] == 3.0
        # both swept parameters are reported
        assert "khi.seed" in report.per_parameter

    def test_totals_and_timing(self):
        records = [record("a", 3.0, 1e-3, wall=1.0),
                   record("b", 1.0, 1e-4, wall=3.0)]
        report = aggregate(records)
        assert report.totals["samples_streamed"] == 32
        assert report.totals["training_iterations"] == 8
        assert report.timing["total_wall_s"] == 4.0
        assert report.timing["mean_wall_s"] == 2.0
        assert report.timing["samples_per_s"] == 8.0

    def test_timing_runs_per_sec_over_executed_runs(self):
        report = aggregate([record("a", 1.0, 1e-3, elapsed=1.0),
                            record("b", 2.0, 1e-3, elapsed=3.0)])
        assert report.timing["runs_per_sec"] == 0.5
        assert "throughput" in report.format_text()

    def test_runs_per_sec_excludes_cached_and_failed_runs(self):
        """Cache hits cost no executor time and failed runs complete
        nothing — neither may inflate the throughput figure."""
        report = aggregate([record("a", 1.0, 1e-3, elapsed=2.0),
                            record("b", 2.0, 1e-3, elapsed=99.0, cached=True),
                            record("c", None, 1e-3, status=STATUS_FAILED,
                                   elapsed=50.0)])
        assert report.timing["runs_per_sec"] == 0.5

    def test_runs_per_sec_absent_when_nothing_executed(self):
        cached_only = aggregate([record("a", 1.0, 1e-3, elapsed=5.0,
                                        cached=True)])
        assert "runs_per_sec" not in cached_only.timing
        zero_elapsed = aggregate([record("a", 1.0, 1e-3)])
        assert "runs_per_sec" not in zero_elapsed.timing

    def test_deterministic_dict_excludes_timing(self):
        fast = aggregate([record("a", 3.0, 1e-3, wall=0.1)])
        slow = aggregate([record("a", 3.0, 1e-3, wall=9.0)])
        assert fast.deterministic_dict() == slow.deterministic_dict()
        assert fast.to_dict()["timing"] != slow.to_dict()["timing"]

    def test_empty_and_all_failed(self):
        empty = aggregate([])
        assert empty.n_runs == 0 and empty.loss is None and empty.best_run is None
        failed = aggregate([record("a", None, 1e-3, status=STATUS_FAILED)])
        assert failed.n_failed == 1
        assert failed.loss is None
        assert failed.per_parameter == {}

    def test_format_text_survives_completed_runs_without_losses(self):
        """Regression: a completed run reporting no loss (e.g. nothing was
        streamed) must not crash the text report."""
        lossless = RunRecord(run_id="a", index=0, params={"khi.seed": 1},
                             driver="serial", n_steps=2,
                             status=STATUS_COMPLETED,
                             summary={"final_total_loss": None})
        report = aggregate([lossless])
        text = report.format_text()
        assert "khi.seed" in text
        assert report.loss is None

    def test_format_text_mentions_the_essentials(self):
        report = aggregate([record("a", 3.0, 1e-3), record("b", 1.0, 1e-4)],
                           campaign="fmt")
        text = report.format_text()
        assert "'fmt'" in text
        assert "best run" in text
        assert "ml.base_learning_rate" in text


class TestStatusDocument:
    def test_runs_per_sec_counts_executed_runs_only(self):
        records = [record("a", 1.0, 1e-3, elapsed=2.0),
                   record("b", 1.0, 1e-3, elapsed=7.5, cached=True)]
        document = status_document("study", 4, records)
        assert document["runs_per_sec"] == 0.5
        assert document["cached"] == 1

    def test_runs_per_sec_is_none_until_something_executed(self):
        assert status_document("study", 4, [])["runs_per_sec"] is None
        cached = [record("a", 1.0, 1e-3, elapsed=5.0, cached=True)]
        assert status_document("study", 4, cached)["runs_per_sec"] is None
