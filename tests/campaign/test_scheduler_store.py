"""Tests of the campaign executors, the JSONL store and resumability."""

from __future__ import annotations

import itertools
import threading

import pytest

from repro.campaign import (CampaignSpec, CampaignStore, RunRecord,
                            available_executors, execute_run, get_campaign_preset,
                            get_executor, run_campaign)
from repro.campaign.store import STATUS_COMPLETED, STATUS_FAILED


def fake_worker(payload):
    """Deterministic stand-in for a coupled run (fast, summary from payload)."""
    lr = payload["config"]["ml"]["base_learning_rate"]
    return {"final_total_loss": 1000.0 * lr + payload["index"],
            "training_iterations": payload["n_steps"],
            "samples_streamed": 4 * payload["n_steps"],
            "wall_time_s": 0.0, "ok": True}


def smoke_spec(**kwargs) -> CampaignSpec:
    base = get_campaign_preset("campaign-smoke").to_dict()
    base.update(kwargs)
    return CampaignSpec.from_dict(base)


def process_killing_worker(payload):
    """Kills its host process outright — no exception for the pool to relay,
    so every pending future of the pool raises BrokenProcessPool."""
    import os as os_module

    os_module._exit(13)


class TestStore:
    def test_append_and_read_back(self, tmp_path):
        store = CampaignStore(str(tmp_path / "log.jsonl"))
        assert store.records() == []
        assert store.completed_run_ids() == set()
        store.append(RunRecord(run_id="a", index=0, params={}, driver="serial",
                               n_steps=2, status=STATUS_COMPLETED,
                               summary={"final_total_loss": 1.0}))
        store.append(RunRecord(run_id="b", index=1, params={}, driver="serial",
                               n_steps=2, status=STATUS_FAILED, error="boom"))
        assert len(store) == 2
        assert store.completed_run_ids() == {"a"}
        assert store.counts() == {"completed": 1, "failed": 1}

    def test_last_record_per_run_id_wins(self, tmp_path):
        store = CampaignStore(str(tmp_path / "log.jsonl"))
        store.append(RunRecord(run_id="a", index=0, params={}, driver="serial",
                               n_steps=2, status=STATUS_FAILED, error="boom"))
        store.append(RunRecord(run_id="a", index=0, params={}, driver="serial",
                               n_steps=2, status=STATUS_COMPLETED))
        assert len(store) == 1
        assert store.completed_run_ids() == {"a"}

    def test_round_trips_record_fields(self, tmp_path):
        store = CampaignStore(str(tmp_path / "log.jsonl"))
        record = RunRecord(run_id="a", index=3, params={"khi.seed": 5},
                           driver="threaded", n_steps=4,
                           status=STATUS_COMPLETED, attempts=2, elapsed_s=1.25,
                           summary={"final_total_loss": 2.5})
        store.append(record)
        assert store.records() == [record]

    def test_truncated_final_line_is_tolerated(self, tmp_path):
        """A process killed mid-append leaves a partial last line; the store
        must still resume, losing only that in-progress run."""
        store = CampaignStore(str(tmp_path / "log.jsonl"))
        store.append(RunRecord(run_id="a", index=0, params={}, driver="serial",
                               n_steps=2, status=STATUS_COMPLETED))
        with open(store.path, "a", encoding="utf-8") as handle:
            handle.write('{"run_id": "b", "index": 1, "par')
        with pytest.warns(RuntimeWarning, match="unparseable line 2"):
            assert store.completed_run_ids() == {"a"}

    def test_append_after_truncation_starts_a_fresh_line(self, tmp_path):
        """Records appended after a kill mid-write must not be glued to the
        truncated line — the store keeps working across resumes."""
        store = CampaignStore(str(tmp_path / "log.jsonl"))
        store.append(RunRecord(run_id="a", index=0, params={}, driver="serial",
                               n_steps=2, status=STATUS_COMPLETED))
        with open(store.path, "a", encoding="utf-8") as handle:
            handle.write('{"run_id": "b", "index": 1, "par')
        store.append(RunRecord(run_id="c", index=2, params={}, driver="serial",
                               n_steps=2, status=STATUS_COMPLETED))
        with pytest.warns(RuntimeWarning, match="unparseable line 2"):
            assert store.completed_run_ids() == {"a", "c"}

    def test_nan_losses_are_stored_as_strict_json(self, tmp_path):
        store = CampaignStore(str(tmp_path / "log.jsonl"))
        store.append(RunRecord(run_id="a", index=0, params={}, driver="serial",
                               n_steps=2, status=STATUS_COMPLETED,
                               summary={"final_total_loss": float("nan")}))
        raw = open(store.path, encoding="utf-8").read()
        assert "NaN" not in raw
        assert store.records()[0].summary["final_total_loss"] is None

    def test_non_record_rows_fail_loudly(self, tmp_path):
        """Valid JSON that is not a run record means the file is not a
        campaign store — a clear ValueError, not a TypeError traceback."""
        path = tmp_path / "other.jsonl"
        path.write_text('{"foo": 1}\n')
        with pytest.raises(ValueError, match="not a campaign store"):
            CampaignStore(str(path)).records()
        path.write_text("42\n")
        with pytest.raises(ValueError, match="not a campaign store"):
            CampaignStore(str(path)).records()
        path.write_text('"just a string"\n')
        with pytest.raises(ValueError, match="not a campaign store"):
            CampaignStore(str(path)).records()


class TestExecutors:
    def test_registry_names(self):
        assert available_executors() == ("process", "serial", "sharded",
                                         "thread", "workers")
        with pytest.raises(ValueError, match="valid executors"):
            get_executor("quantum")

    def test_default_pool_workers_is_machine_derived_and_bounded(self):
        import os as os_module

        from repro.campaign import default_pool_workers
        from repro.campaign.scheduler import DEFAULT_MAX_POOL_WORKERS

        value = default_pool_workers()
        assert 2 <= value <= DEFAULT_MAX_POOL_WORKERS
        assert value <= max(2, os_module.cpu_count() or 1)
        assert default_pool_workers(maximum=3) <= 3

    def test_broken_pool_becomes_failed_records_not_an_exception(self):
        """The pool-infrastructure death path of ``_PoolExecutorBase._drain``:
        a worker process dying (BrokenProcessPool on every pending future)
        must surface as failed records in submission order — executors
        never raise for a run's failure, only for abort signals."""
        payloads = [run.payload() for run in smoke_spec().resolve()][:4]
        seen = []
        records = get_executor("process", max_workers=1).execute(
            payloads, process_killing_worker, on_record=seen.append)
        assert [r.run_id for r in records] == [p["run_id"] for p in payloads]
        assert all(r.status == STATUS_FAILED for r in records)
        assert any("BrokenProcessPool" in r.error for r in records)
        # the observer still saw every failed record exactly once
        assert sorted(r.run_id for r in seen) == \
            sorted(p["run_id"] for p in payloads)

    @pytest.mark.parametrize("name", ("serial", "thread"))
    def test_executor_runs_every_payload(self, name):
        spec = smoke_spec(repetitions=2)
        payloads = [run.payload() for run in spec.resolve()]
        seen = []
        records = get_executor(name, max_workers=2).execute(
            payloads, fake_worker, on_record=seen.append)
        assert [r.run_id for r in records] == [p["run_id"] for p in payloads]
        assert all(r.completed and r.attempts == 1 for r in records)
        assert sorted(r.run_id for r in seen) == sorted(r.run_id for r in records)

    def test_exceptions_are_captured_not_raised(self):
        def exploding(payload):
            raise RuntimeError("kaboom " + payload["run_id"])

        payloads = [run.payload() for run in smoke_spec(repetitions=2).resolve()]
        records = get_executor("serial").execute(payloads, exploding)
        assert all(r.status == STATUS_FAILED for r in records)
        assert all("kaboom" in r.error for r in records)

    def test_retries_until_success(self):
        calls = itertools.count()
        lock = threading.Lock()

        def flaky(payload):
            with lock:
                attempt = next(calls)
            if attempt < 2:
                raise RuntimeError("transient")
            return {"final_total_loss": 1.0}

        payload = smoke_spec(repetitions=1).resolve()[0].payload()
        record = get_executor("serial", retries=3).execute([payload], flaky)[0]
        assert record.completed
        assert record.attempts == 3

    def test_retries_exhausted_keeps_last_error(self):
        def always_bad(payload):
            raise ValueError("still broken")

        payload = smoke_spec(repetitions=1).resolve()[0].payload()
        record = get_executor("serial", retries=2).execute([payload], always_bad)[0]
        assert record.status == STATUS_FAILED
        assert record.attempts == 3
        assert "still broken" in record.error

    def test_cooperative_timeout_keeps_a_successful_overrun(self):
        """A run that succeeds over budget keeps its result (discarding it
        would re-execute the run on every resume, forever) with a warning."""
        import time

        def slow(payload):
            time.sleep(0.05)
            return {"final_total_loss": 1.0}

        payload = smoke_spec(repetitions=1).resolve()[0].payload()
        record = get_executor("thread", timeout=0.01).execute([payload], slow)[0]
        assert record.completed
        assert record.summary == {"final_total_loss": 1.0}
        assert "TimeoutWarning" in record.error and "budget" in record.error

    def test_timeout_budgets_the_whole_run_including_retries(self):
        """--timeout is a per-run budget: a failing run is not re-executed
        retries+1 times for (retries+1) x timeout total."""
        import time

        def slow_failing(payload):
            time.sleep(0.05)
            raise RuntimeError("still failing")

        payload = smoke_spec(repetitions=1).resolve()[0].payload()
        executor = get_executor("serial", timeout=0.01, retries=5)
        record = executor.execute([payload], slow_failing)[0]
        assert record.status == STATUS_FAILED
        assert record.attempts == 1
        assert "still failing" in record.error

    @pytest.mark.parametrize("name", ("serial", "thread"))
    def test_duplicate_run_ids_keep_their_own_records(self, name):
        """The executor contract takes arbitrary payloads: two payloads
        sharing a run id must each come back with their own record."""
        payload = smoke_spec(repetitions=1).resolve()[0].payload()
        twin = dict(payload, index=1)
        calls = itertools.count()
        lock = threading.Lock()

        def second_call_fails(p):
            with lock:
                attempt = next(calls)
            if attempt == 1:
                raise RuntimeError("twin failed")
            return {"final_total_loss": 1.0}

        records = get_executor(name, max_workers=1).execute(
            [payload, twin], second_call_fails)
        assert len(records) == 2
        assert sorted(r.status for r in records) == \
            [STATUS_COMPLETED, STATUS_FAILED]

    def test_abort_cancels_queued_runs(self):
        """Ctrl-C (or a store write failure) must not silently execute — and
        discard — every queued run before the abort surfaces."""
        payloads = [run.payload() for run in smoke_spec().resolve()]
        assert len(payloads) == 8
        calls = itertools.count()
        lock = threading.Lock()

        def interrupting(payload):
            with lock:
                attempt = next(calls)
            if attempt == 0:
                raise KeyboardInterrupt
            return {"final_total_loss": 1.0}

        with pytest.raises(KeyboardInterrupt):
            get_executor("thread", max_workers=1).execute(payloads, interrupting)
        # the one in-flight run may have started; the rest were cancelled
        with lock:
            executed = next(calls)
        assert executed <= 2

    def test_invalid_executor_options(self):
        with pytest.raises(ValueError):
            get_executor("thread", max_workers=0)
        with pytest.raises(ValueError):
            get_executor("serial", retries=-1)
        with pytest.raises(ValueError):
            get_executor("serial", timeout=0.0)

    def test_process_executor_runs_real_workflows(self, tmp_path):
        spec = smoke_spec(repetitions=1)
        store = CampaignStore(str(tmp_path / "proc.jsonl"))
        outcome = run_campaign(spec, store,
                               get_executor("process", max_workers=2))
        assert outcome.completed == 2, [r.error for r in outcome.records]
        assert all(r.summary["ok"] for r in store.records())


class TestRunCampaign:
    def test_records_are_persisted_as_they_finish(self, tmp_path):
        spec = smoke_spec()
        store = CampaignStore(str(tmp_path / "log.jsonl"))
        depths = []
        outcome = run_campaign(spec, store, worker=fake_worker,
                               on_record=lambda r: depths.append(len(store)))
        assert outcome.completed == 8 and outcome.done
        # the store grew by one row per finished run, not in one batch
        assert depths == list(range(1, 9))

    def test_failed_runs_retry_on_relaunch(self, tmp_path):
        spec = smoke_spec(repetitions=1)
        store = CampaignStore(str(tmp_path / "log.jsonl"))

        def bad(payload):
            raise RuntimeError("first launch fails")

        first = run_campaign(spec, store, worker=bad)
        assert first.failed == 2 and not first.done
        second = run_campaign(spec, store, worker=fake_worker)
        assert second.executed == 2 and second.completed == 2 and second.done
        assert store.counts() == {"completed": 2, "failed": 0}

    def test_raising_observer_is_detached_not_fatal(self, tmp_path, caplog):
        """The service guarantee: a buggy ``on_record`` observer must not
        kill the launch — it is logged and detached, and every run still
        executes and lands in the store."""
        spec = smoke_spec()
        store = CampaignStore(str(tmp_path / "log.jsonl"))
        calls = []

        def bad_observer(record):
            calls.append(record.run_id)
            raise RuntimeError("subscriber bug")

        with caplog.at_level("ERROR", logger="repro.campaign.scheduler"):
            outcome = run_campaign(spec, store, worker=fake_worker,
                                   on_record=bad_observer)
        assert outcome.completed == 8 and outcome.done
        assert store.counts() == {"completed": 8, "failed": 0}
        # the observer raised on its first record and was detached for the
        # rest of the launch — not retried per record
        assert calls == [store.records()[0].run_id]
        assert any("detaching" in message for message in caplog.messages)

    def test_max_runs_bounds_a_launch(self, tmp_path):
        spec = smoke_spec()
        store = CampaignStore(str(tmp_path / "log.jsonl"))
        outcome = run_campaign(spec, store, worker=fake_worker, max_runs=3)
        assert outcome.summary() == {
            "campaign": "campaign-smoke", "total_runs": 8, "skipped": 0,
            "cache_hits": 0, "executed": 3, "completed": 3, "failed": 0,
            "deferred": 5, "done": False}
        with pytest.raises(ValueError):
            run_campaign(spec, store, worker=fake_worker, max_runs=-1)


class TestResumability:
    """The acceptance property: an interrupted campaign, resumed, reports
    exactly what an uninterrupted one would."""

    def six_run_spec(self) -> CampaignSpec:
        return smoke_spec(name="resume-proof",
                          parameters={"ml.base_learning_rate":
                                      [1e-3, 5e-4, 1e-4]},
                          repetitions=2, n_steps=2)

    def test_interrupted_campaign_resumes_exactly(self, tmp_path):
        from repro.campaign import aggregate

        spec = self.six_run_spec()
        assert len(spec.resolve()) == 6

        # interrupt after 3 of 6 runs (real coupled workflow runs)
        interrupted = CampaignStore(str(tmp_path / "interrupted.jsonl"))
        first = run_campaign(spec, interrupted, worker=execute_run, max_runs=3)
        assert first.executed == 3 and not first.done

        # re-launch with the same spec: exactly the 3 missing runs execute
        resumed = run_campaign(spec, interrupted, worker=execute_run)
        assert resumed.skipped == 3
        assert resumed.executed == 3
        assert resumed.completed == 3 and resumed.done

        # an uninterrupted campaign over the same spec
        uninterrupted = CampaignStore(str(tmp_path / "uninterrupted.jsonl"))
        full = run_campaign(spec, uninterrupted, worker=execute_run)
        assert full.executed == 6 and full.done

        # same run-id hashes...
        assert {r.run_id for r in interrupted.records()} == \
            {r.run_id for r in uninterrupted.records()}
        # ...and an identical aggregated report (timing excluded, losses and
        # all deterministic counters included)
        report_resumed = aggregate(interrupted.records(), campaign=spec.name)
        report_full = aggregate(uninterrupted.records(), campaign=spec.name)
        assert report_resumed.deterministic_dict() == \
            report_full.deterministic_dict()
