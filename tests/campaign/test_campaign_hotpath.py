"""Tests of the campaign-throughput harness (``repro.campaign.hotpath``)."""

from __future__ import annotations

import pytest

from repro.campaign.hotpath import (CampaignThroughputResult,
                                    check_equivalence, format_result, main,
                                    persist_result, run_campaign_benchmark,
                                    service_chunk_size)
from repro.campaign.store import RunRecord, STATUS_COMPLETED, STATUS_FAILED
from repro.utils.benchjson import latest_run


def record(run_id, loss=1.0, status=STATUS_COMPLETED):
    return RunRecord(run_id=run_id, index=0, params={"p": 1},
                     driver="serial", n_steps=2, status=status,
                     summary={"final_total_loss": loss}
                     if status == STATUS_COMPLETED else {})


def stub_result(**overrides):
    kwargs = dict(runs_per_sec={"serial": 40.0, "process": 20.0,
                                "workers": 50.0},
                  chunk_sizes={"serial": 1, "process": 2, "workers": 2},
                  preset="campaign-smoke", n_runs=8, max_workers=2,
                  start_method="spawn", pool_stats={"dispatched_runs": 8},
                  equivalent=True, equivalence_detail="")
    kwargs.update(overrides)
    return CampaignThroughputResult(**kwargs)


class TestServiceChunkSize:
    def test_mirrors_the_service_launch_shape(self):
        assert service_chunk_size("serial", 4) == 1
        assert service_chunk_size("process", 4) == 4
        assert service_chunk_size("workers", 2) == 2
        assert service_chunk_size("workers", 0) == 1


class TestCheckEquivalence:
    def test_identical_records_pass(self):
        serial = [record("a"), record("b")]
        workers = [record("a"), record("b")]
        ok, detail = check_equivalence(serial, workers)
        assert ok and detail == ""

    def test_reordered_run_ids_fail(self):
        ok, detail = check_equivalence([record("a"), record("b")],
                                       [record("b"), record("a")])
        assert not ok and "order" in detail

    def test_failed_workers_runs_fail(self):
        ok, detail = check_equivalence(
            [record("a")], [record("a", status=STATUS_FAILED)])
        assert not ok and "failed" in detail

    def test_diverged_summaries_fail(self):
        ok, detail = check_equivalence([record("a", loss=1.0)],
                                       [record("a", loss=2.0)])
        assert not ok and "aggregate" in detail


class TestRunCampaignBenchmark:
    def test_measures_all_executors_and_gates(self):
        result = run_campaign_benchmark(repeats=1, max_workers=2,
                                        start_method="fork")
        assert set(result.runs_per_sec) == {"serial", "process", "workers"}
        assert all(rate > 0 for rate in result.runs_per_sec.values())
        assert result.n_runs == 8
        assert result.chunk_sizes["serial"] == 1
        assert result.equivalent, result.equivalence_detail
        # warmup chunk + measured blocks all ran on the one warm pool
        assert result.pool_stats["dispatched_runs"] >= 8
        assert result.pool_stats["respawns"] == 0
        assert result.speedup("workers", "process") > 0

    def test_repetitions_scale_the_run_count(self):
        result = run_campaign_benchmark(repeats=1, max_workers=2,
                                        start_method="fork", repetitions=1)
        assert result.n_runs == 2

    @pytest.mark.parametrize("kwargs", [{"repeats": 0}, {"repetitions": 0},
                                        {"preset": "no-such-preset"}])
    def test_rejects_bad_arguments(self, kwargs):
        with pytest.raises(ValueError):
            run_campaign_benchmark(**kwargs)


class TestPersistAndFormat:
    def test_persist_appends_bench_record(self, tmp_path):
        result = stub_result()
        path = persist_result(result, str(tmp_path))
        assert path.endswith("BENCH_campaign_throughput.json")
        saved = latest_run("campaign_throughput", str(tmp_path))
        assert saved["metrics"]["speedup_workers_vs_process"] == 2.5
        assert saved["metrics"]["equivalent"] is True
        assert saved["params"]["preset"] == "campaign-smoke"

    def test_format_mentions_every_executor_and_the_gate(self):
        text = format_result(stub_result())
        assert "serial" in text and "process" in text and "workers" in text
        assert "2.50x" in text
        assert "OK" in text
        failed = format_result(stub_result(equivalent=False,
                                           equivalence_detail="diverged"))
        assert "FAILED" in failed and "diverged" in failed


class TestMain:
    def test_main_no_persist(self, capsys):
        assert main(["--repeats", "1", "--repetitions", "1",
                     "--max-workers", "2", "--start-method", "fork",
                     "--no-persist"]) == 0
        out = capsys.readouterr().out
        assert "workers vs process" in out
        assert "recorded" not in out

    def test_main_persists_history(self, capsys, tmp_path):
        assert main(["--repeats", "1", "--repetitions", "1",
                     "--max-workers", "2", "--start-method", "fork",
                     "--output-dir", str(tmp_path)]) == 0
        assert latest_run("campaign_throughput", str(tmp_path)) is not None
        assert "recorded" in capsys.readouterr().out

    @pytest.mark.parametrize("argv", [["--repeats", "0"],
                                      ["--repetitions", "0"],
                                      ["--max-workers", "0"]])
    def test_main_rejects_bad_flags(self, argv, capsys):
        assert main(argv + ["--no-persist"]) == 2
        assert "error" in capsys.readouterr().err

    def test_equivalence_failure_exits_nonzero(self, capsys, monkeypatch):
        """The CI gate: a workers-vs-serial disagreement must fail the
        process, not just print a warning."""
        import repro.campaign.hotpath as hotpath_module

        monkeypatch.setattr(
            hotpath_module, "run_campaign_benchmark",
            lambda **kwargs: stub_result(equivalent=False,
                                         equivalence_detail="diverged"))
        assert main(["--no-persist"]) == 1
        assert "disagree" in capsys.readouterr().err
