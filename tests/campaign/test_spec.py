"""Tests of CampaignSpec sampling, overrides, seeds and serialisation."""

from __future__ import annotations

import pytest

from repro.campaign import CampaignSpec, apply_override, run_id_of
from repro.core.config import WorkflowConfig
from repro.workflow import get_preset


def smoke_spec(**kwargs) -> CampaignSpec:
    from repro.campaign import get_campaign_preset

    base = get_campaign_preset("campaign-smoke").to_dict()
    base.update(kwargs)
    return CampaignSpec.from_dict(base)


class TestApplyOverride:
    def test_nested_and_top_level_paths(self):
        config = get_preset("cli-small").to_dict()
        apply_override(config, "khi.seed", 7)
        apply_override(config, "ml.base_learning_rate", 5e-4)
        apply_override(config, "ml.model.latent_dim", 32)
        apply_override(config, "seed", 99)
        rebuilt = WorkflowConfig.from_dict(config)
        assert rebuilt.khi.seed == 7
        assert rebuilt.ml.base_learning_rate == 5e-4
        assert rebuilt.ml.model.latent_dim == 32
        assert rebuilt.seed == 99

    def test_unknown_leaf_lists_valid_keys(self):
        config = get_preset("cli-small").to_dict()
        with pytest.raises(ValueError, match="valid keys"):
            apply_override(config, "khi.sneed", 7)

    def test_non_section_path_names_sections(self):
        config = get_preset("cli-small").to_dict()
        with pytest.raises(ValueError, match="not a config section"):
            apply_override(config, "seed.deeper", 7)


class TestSampling:
    def test_grid_is_cartesian_product(self):
        spec = smoke_spec(parameters={"ml.base_learning_rate": [1e-3, 1e-4],
                                      "ml.n_rep": [1, 2, 3]},
                          repetitions=1)
        runs = spec.resolve()
        assert len(runs) == 6
        combos = {(run.params["ml.base_learning_rate"], run.params["ml.n_rep"])
                  for run in runs}
        assert combos == {(lr, n) for lr in (1e-3, 1e-4) for n in (1, 2, 3)}

    def test_repetitions_expand_each_point_with_distinct_seeds(self):
        spec = smoke_spec(repetitions=3, parameters={})
        runs = spec.resolve()
        assert len(runs) == 3
        seeds = {run.config["seed"] for run in runs}
        assert len(seeds) == 3
        # the derived seed also drives the KHI particle loading
        assert all(run.config["khi"]["seed"] == run.config["seed"]
                   for run in runs)

    def test_explicit_seed_sweep_wins_over_derivation(self):
        spec = smoke_spec(parameters={"seed": [1, 2], "khi.seed": [5]},
                          repetitions=1)
        runs = spec.resolve()
        assert sorted(run.config["seed"] for run in runs) == [1, 2]
        assert all(run.config["khi"]["seed"] == 5 for run in runs)

    def test_run_level_parameters(self):
        spec = smoke_spec(parameters={"driver": ["serial", "threaded"],
                                      "n_steps": [2, 3]}, repetitions=1)
        runs = spec.resolve()
        assert {(run.driver, run.n_steps) for run in runs} == \
            {("serial", 2), ("serial", 3), ("threaded", 2), ("threaded", 3)}

    def test_random_sampler_draws_choices_and_ranges(self):
        spec = smoke_spec(sampler="random", n_samples=12, repetitions=1,
                          parameters={"ml.n_rep": [1, 2],
                                      "ml.base_learning_rate":
                                          {"low": 1e-5, "high": 1e-3, "log": True}})
        runs = spec.resolve()
        assert 0 < len(runs) <= 12
        for run in runs:
            assert run.params["ml.n_rep"] in (1, 2)
            assert 1e-5 <= run.params["ml.base_learning_rate"] <= 1e-3

    def test_explicit_sampler(self):
        spec = smoke_spec(sampler="explicit", parameters={}, repetitions=1,
                          explicit=[{"ml.n_rep": 1}, {"ml.n_rep": 2,
                                                      "n_steps": 4}])
        runs = spec.resolve()
        assert len(runs) == 2
        assert runs[1].n_steps == 4

    def test_resolution_is_deterministic(self):
        spec = smoke_spec(sampler="random", n_samples=6,
                          parameters={"ml.base_learning_rate":
                                      {"low": 1e-5, "high": 1e-3}})
        first = [(run.run_id, run.config["seed"]) for run in spec.resolve()]
        second = [(run.run_id, run.config["seed"]) for run in spec.resolve()]
        assert first == second

    def test_run_ids_hash_the_resolved_run(self):
        spec = smoke_spec(repetitions=2, parameters={})
        run = spec.resolve()[0]
        assert run.run_id == run_id_of(run.config, run.driver, run.n_steps)
        assert len({r.run_id for r in spec.resolve()}) == 2

    def test_bad_override_fails_at_resolve_time(self):
        spec = smoke_spec(parameters={"khi.warp_factor": [9]}, repetitions=1)
        with pytest.raises(ValueError, match="warp_factor"):
            spec.resolve()

    def test_swept_n_steps_is_validated_like_the_spec_field(self):
        with pytest.raises(ValueError, match="swept n_steps.*integer"):
            smoke_spec(parameters={"n_steps": [2.5]}, repetitions=1).resolve()
        with pytest.raises(ValueError, match="swept n_steps must be >= 1"):
            smoke_spec(parameters={"n_steps": [0]}, repetitions=1).resolve()
        runs = smoke_spec(parameters={"n_steps": [1, 3]},
                          repetitions=1).resolve()
        assert {run.n_steps for run in runs} == {1, 3}

    def test_bad_driver_fails_at_resolve_time(self):
        with pytest.raises(ValueError, match="valid drivers"):
            smoke_spec(driver="threded", repetitions=1).resolve()
        spec = smoke_spec(parameters={"driver": ["serial", "threded"]},
                          repetitions=1)
        with pytest.raises(ValueError, match="valid drivers"):
            spec.resolve()


class TestValidationAndRoundTrip:
    def test_rejects_unknown_sampler_and_bad_counts(self):
        with pytest.raises(ValueError, match="valid samplers"):
            CampaignSpec(sampler="bayesian")
        with pytest.raises(ValueError, match="repetitions"):
            CampaignSpec(repetitions=0)
        with pytest.raises(ValueError, match="n_steps"):
            CampaignSpec(n_steps=0)
        with pytest.raises(ValueError, match="explicit"):
            CampaignSpec(sampler="explicit")
        with pytest.raises(ValueError, match="sampler='explicit'"):
            CampaignSpec(explicit=[{"seed": 1}])

    def test_grid_requires_value_lists(self):
        spec = smoke_spec(parameters={"ml.n_rep": 3}, repetitions=1)
        with pytest.raises(ValueError, match="value list"):
            spec.resolve()

    def test_fully_pinned_repetitions_warn_about_dropped_duplicates(self):
        spec = smoke_spec(sampler="explicit", parameters={},
                          explicit=[{"seed": 1, "khi.seed": 1}],
                          repetitions=3)
        with pytest.warns(RuntimeWarning, match="dropped 2 duplicate"):
            runs = spec.resolve()
        assert len(runs) == 1

    def test_integer_fields_coerce_or_fail_clearly(self):
        assert CampaignSpec(repetitions="2").repetitions == 2
        assert CampaignSpec(seed=3.0).seed == 3
        with pytest.raises(ValueError, match="repetitions must be an integer"):
            CampaignSpec(repetitions="lots")
        with pytest.raises(ValueError, match="n_steps must be an integer"):
            CampaignSpec(n_steps=None)
        # a non-integral float must not silently truncate (2.5 -> 2)
        with pytest.raises(ValueError, match="n_steps must be an integer"):
            CampaignSpec(n_steps=2.5)

    def test_container_fields_fail_clearly(self):
        with pytest.raises(ValueError, match="parameters must be a mapping"):
            CampaignSpec(parameters=42)
        with pytest.raises(ValueError, match="list of override mappings"):
            CampaignSpec(sampler="explicit", explicit=[5])
        with pytest.raises(ValueError, match="base_config must be"):
            CampaignSpec(base_config=[1, 2])

    def test_log_range_requires_positive_low(self):
        spec = smoke_spec(
            sampler="random", repetitions=1, n_samples=2,
            parameters={"ml.base_learning_rate":
                        {"low": 0, "high": 1e-3, "log": True}})
        with pytest.raises(ValueError, match="base_learning_rate.*low > 0"):
            spec.resolve()

    def test_dict_and_file_round_trip(self, tmp_path):
        spec = smoke_spec(parameters={"ml.n_rep": [1, 2]}, repetitions=2,
                          name="round-trip")
        assert CampaignSpec.from_dict(spec.to_dict()) == spec
        path = str(tmp_path / "campaign.json")
        spec.to_file(path)
        loaded = CampaignSpec.from_file(path)
        assert loaded == spec
        assert [r.run_id for r in loaded.resolve()] == \
            [r.run_id for r in spec.resolve()]

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown CampaignSpec keys"):
            CampaignSpec.from_dict({"executor": "thread"})

    def test_base_preset_resolution(self):
        spec = CampaignSpec(base_preset="bench-tiny", parameters={},
                            repetitions=1)
        run = spec.resolve()[0]
        assert run.config["ml"]["model"]["n_input_points"] == 48

    def test_swept_parameters(self):
        assert smoke_spec().swept_parameters() == ["ml.base_learning_rate"]
        explicit = smoke_spec(sampler="explicit", parameters={},
                              explicit=[{"seed": 1}, {"ml.n_rep": 2}])
        assert explicit.swept_parameters() == ["ml.n_rep", "seed"]
