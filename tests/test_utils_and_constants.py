"""Tests of the shared utilities and physical constants."""

from __future__ import annotations

import math
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import constants
from repro.utils.rng import derive_seed, seeded_rng, spawn_rngs
from repro.utils.serialization import jsonable
from repro.utils.timer import Timer, VirtualClock, WallClock, timed
from repro.utils.validation import (broadcast_shapes, check_array, check_in,
                                    check_positive, check_probability, check_shape)


class TestConstants:
    def test_plasma_frequency_known_value(self):
        # n = 1e18 m^-3 -> f_p ~ 9 GHz (omega_p ~ 5.64e10 rad/s)
        omega_p = constants.plasma_frequency(1e18)
        assert omega_p == pytest.approx(5.64e10, rel=0.01)

    def test_skin_depth_and_wavelength_consistent(self):
        n = 1e20
        omega_p = constants.plasma_frequency(n)
        assert constants.skin_depth(n) == pytest.approx(constants.SPEED_OF_LIGHT / omega_p)
        assert constants.plasma_wavelength(n) == pytest.approx(
            2 * math.pi * constants.skin_depth(n))

    def test_zero_density_limits(self):
        assert constants.plasma_frequency(0.0) == 0.0
        assert constants.skin_depth(0.0) == math.inf

    def test_negative_density_raises(self):
        with pytest.raises(ValueError):
            constants.plasma_frequency(-1.0)

    def test_lorentz_gamma(self):
        assert constants.lorentz_gamma(0.0) == pytest.approx(1.0)
        assert constants.lorentz_gamma(0.6) == pytest.approx(1.25)
        with pytest.raises(ValueError):
            constants.lorentz_gamma(1.0)

    def test_courant_limit_cubic(self):
        dt = constants.courant_limit(1e-5, 1e-5, 1e-5)
        assert dt == pytest.approx(1e-5 / (constants.SPEED_OF_LIGHT * math.sqrt(3)))
        with pytest.raises(ValueError):
            constants.courant_limit(0.0, 1.0, 1.0)

    def test_paper_constants_present(self):
        assert constants.PAPER_BETA == 0.2
        assert constants.PAPER_PARTICLES_PER_CELL == 9
        assert constants.PAPER_SMALLEST_GRID == (192, 256, 12)


class TestRNG:
    def test_seeded_rng_reproducible(self):
        a = seeded_rng(5).random(3)
        b = seeded_rng(5).random(3)
        np.testing.assert_allclose(a, b)

    def test_seeded_rng_passthrough(self):
        gen = np.random.default_rng(0)
        assert seeded_rng(gen) is gen

    def test_spawn_rngs_independent(self):
        children = spawn_rngs(7, 3)
        values = [c.random() for c in children]
        assert len(set(values)) == 3

    def test_spawn_rngs_from_generator(self):
        children = spawn_rngs(np.random.default_rng(1), 2)
        assert len(children) == 2

    def test_spawn_rngs_from_generator_deterministic(self):
        a = spawn_rngs(np.random.default_rng(3), 4)
        b = spawn_rngs(np.random.default_rng(3), 4)
        for left, right in zip(a, b):
            np.testing.assert_allclose(left.random(5), right.random(5))

    def test_spawn_rngs_generator_children_never_collide(self):
        """Regression: children were seeded with raw ``integers()`` draws, so
        a generator yielding equal draws handed children identical streams.
        SeedSequence-derived children stay distinct even for equal entropy."""

        class ConstantEntropyGenerator(np.random.Generator):
            def integers(self, *args, **kwargs):
                size = kwargs.get("size")
                return np.zeros(size, dtype=np.int64) if size else 0

        children = spawn_rngs(ConstantEntropyGenerator(np.random.PCG64(0)), 64)
        first_draws = {float(child.random()) for child in children}
        assert len(first_draws) == 64

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_derive_seed_deterministic(self):
        assert derive_seed(3, 1, 2) == derive_seed(3, 1, 2)
        assert derive_seed(3, 1, 2) != derive_seed(3, 2, 1)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_derive_seed_in_range(self, seed):
        derived = derive_seed(seed, 4)
        assert 0 <= derived < 2**63 - 1


class TestJsonable:
    def test_coerces_numpy_scalars_arrays_and_containers(self):
        import json

        payload = jsonable({"a": np.float64(1.5), "b": np.arange(3),
                            "c": (np.int32(2), [np.bool_(True)])})
        assert payload == {"a": 1.5, "b": [0, 1, 2], "c": [2, [True]]}
        json.dumps(payload)

    def test_non_finite_floats_become_null(self):
        import json

        payload = jsonable({"loss": float("nan"), "bound": np.inf,
                            "arr": np.array([1.0, np.nan])})
        assert payload == {"loss": None, "bound": None, "arr": [1.0, None]}
        assert "NaN" not in json.dumps(payload)

    def test_zero_dimensional_arrays_become_scalars(self):
        assert jsonable(np.array(1.5)) == 1.5
        assert jsonable({"a": np.array(2)}) == {"a": 2}

    def test_non_strict_keeps_non_finite_floats(self):
        out = jsonable({"x": np.float64("nan"), "y": np.array(np.inf)},
                       strict=False)
        assert math.isnan(out["x"]) and out["y"] == math.inf


class TestTimer:
    def test_sections_accumulate(self):
        timer = Timer()
        with timer.section("a"):
            pass
        with timer.section("a"):
            pass
        assert timer.counts()["a"] == 2
        assert timer.totals()["a"] >= 0.0
        assert timer.mean("a") >= 0.0

    def test_add_and_total(self):
        timer = Timer()
        timer.add("io", 1.5)
        timer.add("io", 0.5)
        assert timer.totals()["io"] == pytest.approx(2.0)
        assert timer.total() == pytest.approx(2.0)
        with pytest.raises(ValueError):
            timer.add("io", -1.0)

    def test_mean_unknown_section(self):
        with pytest.raises(KeyError):
            Timer().mean("missing")

    def test_reset(self):
        timer = Timer()
        timer.add("x", 1.0)
        timer.reset()
        assert timer.totals() == {}

    def test_virtual_clock(self):
        clock = VirtualClock()
        timer = Timer(clock=clock)
        with timer.section("sim"):
            clock.advance(2.0)
        assert timer.totals()["sim"] == pytest.approx(2.0)
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_timed_helper(self):
        result, times = timed(lambda x: x * 2, 21, repeat=3)
        assert result == 42
        assert len(times) == 3
        with pytest.raises(ValueError):
            timed(lambda: None, repeat=0)


class TestValidation:
    def test_check_array(self):
        arr = check_array([[1, 2], [3, 4]], "m", dtype=np.float64, ndim=2)
        assert arr.dtype == np.float64
        with pytest.raises(ValueError):
            check_array([1, 2], "m", ndim=2)
        with pytest.raises(ValueError):
            check_array([], "m", allow_empty=False)

    def test_check_shape(self):
        check_shape(np.zeros((3, 4)), (3, None), "m")
        with pytest.raises(ValueError):
            check_shape(np.zeros((3, 4)), (4, None), "m")
        with pytest.raises(ValueError):
            check_shape(np.zeros((3,)), (3, 1), "m")

    def test_check_positive(self):
        assert check_positive(2.0, "x") == 2.0
        assert check_positive(0.0, "x", strict=False) == 0.0
        with pytest.raises(ValueError):
            check_positive(0.0, "x")
        with pytest.raises(ValueError):
            check_positive(-1.0, "x", strict=False)

    def test_check_probability(self):
        assert check_probability(0.5, "p") == 0.5
        with pytest.raises(ValueError):
            check_probability(1.5, "p")

    def test_check_in(self):
        assert check_in("a", ("a", "b"), "mode") == "a"
        with pytest.raises(ValueError):
            check_in("c", ("a", "b"), "mode")

    def test_broadcast_shapes(self):
        assert broadcast_shapes((3, 1), (1, 4)) == (3, 4)
