"""Tests of the experience-replay buffer and the in-transit trainer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.continual import InTransitTrainer, TrainingBuffer, TrainingSample
from repro.continual.buffer import (PAPER_EP_BUFFER_SIZE, PAPER_N_EP, PAPER_N_NOW,
                                    PAPER_NOW_BUFFER_SIZE)
from repro.mlcore.optim import Adam, make_block_param_groups
from repro.models import ArtificialScientistModel, small_config


CFG = small_config()


def make_sample(step: int, rng, config=CFG) -> TrainingSample:
    return TrainingSample(
        point_cloud=rng.normal(size=(config.n_input_points, config.point_dim)),
        spectrum=rng.random(config.spectrum_dim),
        step=step, region="bulk")


class TestTrainingSample:
    def test_validation(self, rng):
        with pytest.raises(ValueError):
            TrainingSample(point_cloud=rng.random(5), spectrum=rng.random(4))
        with pytest.raises(ValueError):
            TrainingSample(point_cloud=rng.random((5, 6)), spectrum=rng.random((4, 2)))


class TestTrainingBuffer:
    def test_paper_defaults(self):
        buffer = TrainingBuffer()
        assert buffer.now_size == PAPER_NOW_BUFFER_SIZE == 10
        assert buffer.ep_size == PAPER_EP_BUFFER_SIZE == 20
        assert buffer.n_now == PAPER_N_NOW == 4
        assert buffer.n_ep == PAPER_N_EP == 4
        assert buffer.batch_size == 8

    def test_now_buffer_spills_to_ep(self, rng):
        buffer = TrainingBuffer(now_size=3, ep_size=5, rng=rng)
        for step in range(6):
            buffer.add(make_sample(step, rng))
        assert buffer.now_count == 3
        assert buffer.ep_count == 3
        # the newest samples are in the now-buffer
        assert sorted(buffer.now_steps()) == [3, 4, 5]
        assert sorted(buffer.ep_steps()) == [0, 1, 2]

    def test_ep_buffer_evicts_randomly_when_full(self, rng):
        buffer = TrainingBuffer(now_size=2, ep_size=4, rng=rng)
        for step in range(20):
            buffer.add(make_sample(step, rng))
        assert buffer.ep_count == 4
        assert buffer.total_evicted == 20 - 2 - 4

    def test_sample_batch_mixture(self, rng):
        buffer = TrainingBuffer(now_size=5, ep_size=10, n_now=3, n_ep=2, rng=rng)
        for step in range(20):
            buffer.add(make_sample(step, rng))
        batch = buffer.sample_batch()
        assert len(batch) == 5
        now_steps = set(buffer.now_steps())
        from_now = sum(1 for s in batch if s.step in now_steps)
        assert from_now == 3

    def test_sample_before_ep_filled_uses_now_only(self, rng):
        buffer = TrainingBuffer(now_size=10, ep_size=20, n_now=4, n_ep=4, rng=rng)
        buffer.add(make_sample(0, rng))
        batch = buffer.sample_batch()
        assert len(batch) == 8
        assert all(s.step == 0 for s in batch)

    def test_sample_empty_raises(self):
        with pytest.raises(RuntimeError):
            TrainingBuffer().sample_batch()

    def test_batch_arrays_shapes(self, rng):
        buffer = TrainingBuffer(rng=rng)
        for step in range(12):
            buffer.add(make_sample(step, rng))
        clouds, spectra = buffer.batch_arrays()
        assert clouds.shape == (8, CFG.n_input_points, CFG.point_dim)
        assert spectra.shape == (8, CFG.spectrum_dim)

    def test_replay_retains_old_steps(self, rng):
        """Old simulation steps remain sampleable long after leaving the
        now-buffer — the property that counters catastrophic forgetting."""
        buffer = TrainingBuffer(now_size=10, ep_size=20, rng=rng)
        for step in range(100):
            buffer.add(make_sample(step, rng))
        old_in_ep = [s for s in buffer.ep_steps() if s < 80]
        assert len(old_in_ep) > 0

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            TrainingBuffer(now_size=0)
        with pytest.raises(ValueError):
            TrainingBuffer(n_now=0, n_ep=0)

    @given(st.integers(1, 8), st.integers(0, 8), st.integers(1, 40))
    @settings(max_examples=20, deadline=None)
    def test_capacities_never_exceeded(self, now_size, ep_size, n_samples):
        rng = np.random.default_rng(now_size * 100 + ep_size * 10 + n_samples)
        buffer = TrainingBuffer(now_size=now_size, ep_size=ep_size, rng=rng)
        for step in range(n_samples):
            buffer.add(TrainingSample(point_cloud=np.zeros((4, 6)),
                                      spectrum=np.zeros(3), step=step))
        assert buffer.now_count <= now_size
        assert buffer.ep_count <= ep_size
        assert buffer.total_added == n_samples


class TestInTransitTrainer:
    def make_trainer(self, rng, n_rep=2):
        model = ArtificialScientistModel(CFG, rng=rng)
        groups = make_block_param_groups(model.vae_parameters(), model.inn_parameters(),
                                         base_lr=1e-3, m_vae=1.0)
        optimizer = Adam(groups, lr=1e-3)
        buffer = TrainingBuffer(rng=rng)
        return InTransitTrainer(model, optimizer, buffer, n_rep=n_rep)

    def test_train_on_stream_step_runs_n_rep_iterations(self, rng):
        trainer = self.make_trainer(rng, n_rep=3)
        samples = [make_sample(0, rng) for _ in range(2)]
        trainer.train_on_stream_step(samples, step=0)
        assert len(trainer.history) == 3
        assert trainer.samples_consumed == 2

    def test_loss_decreases_on_repeated_data(self, rng):
        """Training repeatedly on the same small stream must reduce the loss."""
        trainer = self.make_trainer(rng, n_rep=5)
        samples = [make_sample(0, rng) for _ in range(4)]
        first = trainer.train_on_stream_step(samples, step=0)
        last = first
        for step in range(1, 8):
            last = trainer.train_on_stream_step([], step=step) if False else \
                trainer.train_on_stream_step(samples, step=step)
        assert last < first

    def test_history_series(self, rng):
        trainer = self.make_trainer(rng, n_rep=2)
        trainer.train_on_stream_step([make_sample(0, rng)], step=0)
        series = trainer.history.series("chamfer")
        assert series.shape == (2,)
        assert trainer.history.latest("total") > 0

    def test_evaluate_does_not_update_weights(self, rng):
        trainer = self.make_trainer(rng)
        samples = [make_sample(0, rng) for _ in range(2)]
        trainer.buffer.add_many(samples)
        before = trainer.model.state_dict()
        terms = trainer.evaluate(samples)
        after = trainer.model.state_dict()
        assert set(terms) == {"chamfer", "kl", "mse", "mmd_latent", "mmd_normal", "total"}
        for name in before:
            np.testing.assert_allclose(before[name], after[name])

    def test_evaluate_requires_samples(self, rng):
        trainer = self.make_trainer(rng)
        with pytest.raises(ValueError):
            trainer.evaluate([])

    def test_invalid_n_rep(self, rng):
        model = ArtificialScientistModel(CFG, rng=rng)
        with pytest.raises(ValueError):
            InTransitTrainer(model, Adam(model.parameters(), lr=1e-3),
                             TrainingBuffer(), n_rep=0)

    def test_gradient_clipping_records_norms(self, rng):
        model = ArtificialScientistModel(CFG, rng=rng)
        trainer = InTransitTrainer(model, Adam(model.parameters(), lr=1e-3),
                                   TrainingBuffer(rng=rng), n_rep=2,
                                   max_grad_norm=1.0)
        trainer.train_on_stream_step([make_sample(0, rng)], step=0)
        assert len(trainer.gradient_norms) == 2
        assert all(n >= 0 for n in trainer.gradient_norms)

    def test_invalid_max_grad_norm(self, rng):
        model = ArtificialScientistModel(CFG, rng=rng)
        with pytest.raises(ValueError):
            InTransitTrainer(model, Adam(model.parameters(), lr=1e-3),
                             TrainingBuffer(), max_grad_norm=0.0)

    def test_scheduler_advances_with_training(self, rng):
        from repro.mlcore.schedulers import WarmupScheduler
        model = ArtificialScientistModel(CFG, rng=rng)
        optimizer = Adam(model.parameters(), lr=1e-3)
        scheduler = WarmupScheduler(optimizer, warmup_steps=10, start_factor=0.1)
        trainer = InTransitTrainer(model, optimizer, TrainingBuffer(rng=rng),
                                   n_rep=3, scheduler=scheduler)
        trainer.train_on_stream_step([make_sample(0, rng)], step=0)
        # after 3 iterations the LR has warmed up above its starting value
        assert optimizer.param_groups[0].lr > 0.1 * 1e-3
        assert optimizer.param_groups[0].lr < 1e-3
