"""Legacy setup shim.

The canonical build configuration lives in ``pyproject.toml``.  This file
exists so that ``pip install -e .`` also works on offline machines whose
setuptools cannot build PEP 660 editable wheels (no ``wheel`` package
available): ``pip install -e . --no-use-pep517 --no-build-isolation``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
