"""The in-transit training loop.

For every streamed simulation step the trainer runs ``n_rep`` iterations of
the training loop, each on a fresh batch drawn from the training buffer.
The paper emphasises that this replay-iteration count is the knob that lets
the optimiser explore sequentially ("a smaller number of training iterations
cannot be compensated by the large batch sizes of data-parallel training")
and that it may stall the simulation if training falls behind — which the
bounded streaming queue makes explicit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.continual.buffer import TrainingBuffer, TrainingSample
from repro.mlcore.optim import Optimizer
from repro.mlcore.tensor import Tensor
from repro.models.losses import CombinedLoss
from repro.models.model import ArtificialScientistModel
from repro.utils.timer import Timer


@dataclass
class TrainingHistory:
    """Per-iteration loss terms recorded during in-transit training."""

    steps: List[int] = field(default_factory=list)
    terms: List[Dict[str, float]] = field(default_factory=list)

    def append(self, step: int, terms: Dict[str, float]) -> None:
        self.steps.append(step)
        self.terms.append(dict(terms))

    def series(self, name: str) -> np.ndarray:
        """Time series of one loss term across all recorded iterations."""
        return np.asarray([t[name] for t in self.terms])

    def latest(self, name: str = "total") -> float:
        if not self.terms:
            raise RuntimeError("no training iterations recorded yet")
        return self.terms[-1][name]

    def mean_over_last(self, n: int, name: str = "total") -> float:
        values = self.series(name)
        return float(values[-n:].mean())

    def __len__(self) -> int:
        return len(self.terms)


class InTransitTrainer:
    """Couples the training buffer, the model and the optimiser.

    Parameters
    ----------
    model, optimizer, buffer:
        The model being trained, its optimiser and the experience-replay
        buffer.
    loss:
        The combined Eq. (1) loss (a fresh default instance if omitted).
    n_rep:
        Training iterations per streamed simulation step (paper: up to 96
        explored, learning success up to about 48).
    """

    def __init__(self, model: ArtificialScientistModel, optimizer: Optimizer,
                 buffer: TrainingBuffer, loss: Optional[CombinedLoss] = None,
                 n_rep: int = 4, max_grad_norm: Optional[float] = None,
                 scheduler=None) -> None:
        if n_rep < 1:
            raise ValueError("n_rep must be >= 1")
        if max_grad_norm is not None and max_grad_norm <= 0:
            raise ValueError("max_grad_norm must be positive")
        self.model = model
        self.optimizer = optimizer
        self.buffer = buffer
        self.loss = loss or CombinedLoss()
        self.n_rep = int(n_rep)
        self.max_grad_norm = max_grad_norm
        self.scheduler = scheduler
        self.history = TrainingHistory()
        self.timer = Timer()
        self.samples_consumed = 0
        self.gradient_norms: List[float] = []

    # -- the in-transit step --------------------------------------------------- #
    def train_on_stream_step(self, samples: Sequence[TrainingSample], step: int) -> float:
        """Ingest freshly streamed samples and run ``n_rep`` training iterations.

        Returns the mean total loss over the iterations of this stream step.
        """
        with self.timer.section("ingest"):
            self.buffer.add_many(list(samples))
            self.samples_consumed += len(samples)
        totals = []
        for _ in range(self.n_rep):
            totals.append(self.train_iteration(step))
        return float(np.mean(totals))

    def train_iteration(self, step: int) -> float:
        """One optimisation step on one batch drawn from the buffer."""
        with self.timer.section("batch"):
            clouds, spectra = self.buffer.batch_arrays()
        with self.timer.section("forward"):
            output = self.model(Tensor(clouds), Tensor(spectra))
            total = self.loss(output, Tensor(clouds), Tensor(spectra))
        with self.timer.section("backward"):
            self.optimizer.zero_grad()
            total.backward()
        with self.timer.section("optimizer"):
            if self.max_grad_norm is not None:
                from repro.mlcore.schedulers import clip_gradient_norm
                self.gradient_norms.append(
                    clip_gradient_norm(self.model.parameters(), self.max_grad_norm))
            self.optimizer.step()
            if self.scheduler is not None:
                self.scheduler.step()
        self.history.append(step, self.loss.last_terms)
        return float(total.item())

    # -- evaluation -------------------------------------------------------------- #
    def evaluate(self, samples: Sequence[TrainingSample]) -> Dict[str, float]:
        """Evaluate the loss terms on held-out samples without updating weights."""
        if not samples:
            raise ValueError("need at least one sample to evaluate")
        clouds = np.stack([s.point_cloud for s in samples], axis=0)
        spectra = np.stack([s.spectrum for s in samples], axis=0)
        was_training = self.model.training
        self.model.eval()
        try:
            output = self.model(Tensor(clouds), Tensor(spectra))
            self.loss(output, Tensor(clouds), Tensor(spectra))
            return dict(self.loss.last_terms)
        finally:
            self.model.train(was_training)
