"""The training buffer: experience replay between stream and training loop."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.utils.rng import RandomState, seeded_rng

#: Paper defaults (Section IV-C).
PAPER_NOW_BUFFER_SIZE = 10
PAPER_EP_BUFFER_SIZE = 20
PAPER_N_NOW = 4
PAPER_N_EP = 4


@dataclass
class TrainingSample:
    """One training example streamed out of the simulation.

    Attributes
    ----------
    point_cloud:
        ``(n_points, 6)`` array of normalised positions and momenta of the
        particles in one sub-volume.
    spectrum:
        ``(spectrum_dim,)`` encoded radiation spectrum of the same
        sub-volume.
    step:
        Simulation step the sample was produced at.
    region:
        Free-form region label ("approaching", "receding", "vortex", ...).
    metadata:
        Anything else worth carrying along (region bounds, rank, ...).
    """

    point_cloud: np.ndarray
    spectrum: np.ndarray
    step: int = 0
    region: str = ""
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.point_cloud = np.asarray(self.point_cloud, dtype=np.float64)
        self.spectrum = np.asarray(self.spectrum, dtype=np.float64)
        if self.point_cloud.ndim != 2:
            raise ValueError("point_cloud must be a 2D (n_points, features) array")
        if self.spectrum.ndim != 1:
            raise ValueError("spectrum must be a 1D array")


class TrainingBuffer:
    """Now-buffer + EP-buffer experience replay (Chaudhry et al. 2019 style).

    Parameters
    ----------
    now_size, ep_size:
        Capacities of the two buffers (paper: 10 and 20).
    n_now, n_ep:
        Batch composition (paper: 4 + 4 = batch size 8).
    rng:
        Random source for sampling and eviction.
    """

    def __init__(self, now_size: int = PAPER_NOW_BUFFER_SIZE,
                 ep_size: int = PAPER_EP_BUFFER_SIZE,
                 n_now: int = PAPER_N_NOW, n_ep: int = PAPER_N_EP,
                 rng: RandomState = None) -> None:
        if now_size < 1 or ep_size < 0:
            raise ValueError("now_size must be >= 1 and ep_size >= 0")
        if n_now < 0 or n_ep < 0 or n_now + n_ep < 1:
            raise ValueError("batch composition must request at least one sample")
        self.now_size = int(now_size)
        self.ep_size = int(ep_size)
        self.n_now = int(n_now)
        self.n_ep = int(n_ep)
        self.rng = seeded_rng(rng)
        self._now: List[TrainingSample] = []
        self._ep: List[TrainingSample] = []
        self.total_added = 0
        self.total_evicted = 0

    # -- ingestion --------------------------------------------------------- #
    def add(self, sample: TrainingSample) -> None:
        """Prepend a new sample to the now-buffer, spilling the overflow to EP."""
        self._now.insert(0, sample)
        self.total_added += 1
        while len(self._now) > self.now_size:
            spilled = self._now.pop()
            self._add_to_ep(spilled)

    def add_many(self, samples: Sequence[TrainingSample]) -> None:
        for sample in samples:
            self.add(sample)

    def _add_to_ep(self, sample: TrainingSample) -> None:
        if self.ep_size == 0:
            self.total_evicted += 1
            return
        if len(self._ep) >= self.ep_size:
            victim = int(self.rng.integers(0, len(self._ep)))
            self._ep.pop(victim)
            self.total_evicted += 1
        self._ep.append(sample)

    # -- sampling ------------------------------------------------------------ #
    def sample_batch(self) -> List[TrainingSample]:
        """Draw a training batch of up to ``n_now + n_ep`` samples.

        Now-samples come from the now-buffer and replay samples from the EP
        buffer; while the EP buffer is still empty (early in the stream) its
        share is drawn from the now-buffer instead, so training can start
        with the very first streamed step.
        """
        if not self._now and not self._ep:
            raise RuntimeError("cannot sample from an empty training buffer")
        batch: List[TrainingSample] = []
        n_now = self.n_now
        n_ep = self.n_ep
        if not self._ep:
            n_now, n_ep = n_now + n_ep, 0
        if not self._now:
            n_now, n_ep = 0, n_now + n_ep
        if n_now:
            idx = self.rng.integers(0, len(self._now), size=n_now)
            batch.extend(self._now[i] for i in idx)
        if n_ep:
            idx = self.rng.integers(0, len(self._ep), size=n_ep)
            batch.extend(self._ep[i] for i in idx)
        return batch

    def batch_arrays(self) -> tuple:
        """Sample a batch and stack it into ``(point_clouds, spectra)`` arrays."""
        batch = self.sample_batch()
        clouds = np.stack([s.point_cloud for s in batch], axis=0)
        spectra = np.stack([s.spectrum for s in batch], axis=0)
        return clouds, spectra

    # -- introspection ----------------------------------------------------------- #
    @property
    def batch_size(self) -> int:
        return self.n_now + self.n_ep

    @property
    def now_count(self) -> int:
        return len(self._now)

    @property
    def ep_count(self) -> int:
        return len(self._ep)

    def now_steps(self) -> List[int]:
        return [s.step for s in self._now]

    def ep_steps(self) -> List[int]:
        return [s.step for s in self._ep]

    def __len__(self) -> int:
        return len(self._now) + len(self._ep)
