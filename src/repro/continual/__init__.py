"""Continual learning from the data stream (Section IV-C).

The simulation is a non-steady-state process: each streamed time step shows
a later stage of the instability, and the data is discarded after use.
Training naively on the latest samples only leads to catastrophic forgetting
of earlier stages; the paper uses experience replay, implemented as a
*training buffer* placed between the streaming receiver and the training
loop:

* a **now-buffer** holds the ``N_now = 10`` latest samples,
* an **EP-buffer** holds up to ``N_EP = 20`` older samples; when full, a
  random element is evicted,
* each training batch mixes ``n_now = 4`` random now-samples with
  ``n_EP = 4`` random replay samples (batch size 8 per rank),
* ``n_rep`` training iterations are run per streamed simulation step
  (decoupling the replay schedule from the training loop; the paper finds
  learning succeeds up to about ``n_rep = 48``).
"""

from repro.continual.buffer import TrainingBuffer, TrainingSample
from repro.continual.trainer import InTransitTrainer, TrainingHistory

__all__ = [
    "TrainingBuffer",
    "TrainingSample",
    "InTransitTrainer",
    "TrainingHistory",
]
