"""Dependency-free telemetry: labeled metrics and cross-process span traces.

The observability layer of the repo, pure stdlib.  Two halves:

* **Metrics** (:mod:`repro.telemetry.metrics`) — a process-wide
  :data:`REGISTRY` of counters, gauges and histograms with labeled
  series, rendered in Prometheus text format by ``GET /v1/metrics`` on
  the campaign service.  The campaign scheduler, worker pool, result
  cache, event bus, SST broker and HTTP server all publish into it.
* **Spans** (:mod:`repro.telemetry.spans` /
  :mod:`repro.telemetry.export`) — structured timing trees correlated by
  trace/span ids that survive the hop into spawned worker processes, so
  one campaign run yields resolve → dispatch → execute (with PIC/train
  phase sub-spans) → settle in a single tree, appended as JSONL next to
  the campaign store and rendered by ``repro.cli trace``.

Both halves honour one switch (:mod:`repro.telemetry.state`): with
telemetry disabled — ``REPRO_TELEMETRY=0`` or :func:`disabled` — every
instrumentation site reduces to a boolean test.
"""

from repro.telemetry.state import disabled, is_enabled, set_enabled
from repro.telemetry.metrics import (Counter, Gauge, Histogram,
                                     MetricsRegistry, REGISTRY, get_registry)
from repro.telemetry.spans import (Span, SpanRecorder, add_phase_spans,
                                   context_of, current_span, new_id,
                                   recording, span)
from repro.telemetry.export import (TRACE_SUFFIX, TraceWriter, read_spans,
                                    trace_path_for)
from repro.telemetry.render import render_trace, render_traces

__all__ = [
    "disabled", "is_enabled", "set_enabled",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "REGISTRY",
    "get_registry",
    "Span", "SpanRecorder", "add_phase_spans", "context_of", "current_span",
    "new_id", "recording", "span",
    "TRACE_SUFFIX", "TraceWriter", "read_spans", "trace_path_for",
    "render_trace", "render_traces",
]
