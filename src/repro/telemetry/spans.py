"""Structured spans: correlated timing trees across threads and processes.

One campaign run crosses several boundaries — the scheduler resolves and
dispatches in the parent, :func:`repro.campaign.scheduler._attempt_run`
executes in a worker process, the record settles back in the parent — and
a span tree ties the pieces together: every :class:`Span` carries a
``trace_id`` (the whole launch), its own ``span_id`` and a ``parent_id``.

Propagation is explicit and transport-agnostic: :func:`context_of` turns
a span into a small JSON-able dict (``{"trace_id", "span_id"}``); a child
created with ``span(name, ctx=that_dict)`` joins the remote trace.  The
campaign layer rides this across the worker-pool pipe protocol by tucking
the context into the run payload and shipping finished spans back as an
undeclared attribute on the pickled ``RunRecord`` — no wire-format
change, no telemetry dependency in the protocol.

Recording is sink-based: spans are only captured while a sink (a
:class:`SpanRecorder` or a
:class:`repro.telemetry.export.TraceWriter`) is activated on the current
thread with :func:`recording`.  No sink — for example in ordinary library
use, or with telemetry disabled — means ``span(...)`` yields ``None`` and
costs one thread-local read.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional

from repro.telemetry.state import is_enabled

#: Span status values.
STATUS_OK = "ok"
STATUS_ERROR = "error"


def new_id() -> str:
    """A fresh 64-bit hex id (trace or span)."""
    return os.urandom(8).hex()


@dataclass
class Span:
    """One timed operation in a trace tree.

    ``start_s``/``end_s`` are wall-clock epoch seconds (spans cross
    process boundaries, so a monotonic clock would not compare); an open
    span has ``end_s is None``.
    """

    name: str
    trace_id: str
    span_id: str = field(default_factory=new_id)
    parent_id: Optional[str] = None
    start_s: float = field(default_factory=time.time)
    end_s: Optional[float] = None
    status: str = STATUS_OK
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration_s(self) -> Optional[float]:
        """Seconds from start to end, or ``None`` while the span is open."""
        return None if self.end_s is None else self.end_s - self.start_s

    def finish(self, end_s: Optional[float] = None,
               status: Optional[str] = None) -> "Span":
        """Close the span (idempotent: an already-set end is kept).

        Args:
            end_s: explicit end time (default: now).
            status: overriding status (default: keep the current one).

        Returns:
            The span itself, for chaining into a sink's ``emit``.
        """
        if self.end_s is None:
            self.end_s = time.time() if end_s is None else end_s
        if status is not None:
            self.status = status
        return self

    def to_dict(self) -> Dict[str, object]:
        """The span as a plain JSON-able dict (one trace-file row)."""
        return {"name": self.name, "trace_id": self.trace_id,
                "span_id": self.span_id, "parent_id": self.parent_id,
                "start_s": self.start_s, "end_s": self.end_s,
                "status": self.status, "attrs": dict(self.attrs)}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Span":
        """Rebuild a span from its :meth:`to_dict` row.

        Raises:
            TypeError: if ``data`` is not a span row.
        """
        return cls(**dict(data))


class SpanRecorder:
    """A sink collecting finished spans into a list (thread-safe).

    The worker-side half of cross-process tracing: activated around
    ``_attempt_run`` so the execute span (and any workflow phase
    sub-spans) accumulate here, then travel back to the parent attached
    to the run record.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.spans: List[Span] = []

    def emit(self, span: Span) -> None:
        """Collect one finished span."""
        with self._lock:
            self.spans.append(span)


class _ThreadState(threading.local):
    """Per-thread current sink + open-span stack."""

    def __init__(self) -> None:
        self.sink = None
        self.stack: List[Span] = []


_STATE = _ThreadState()


def current_span() -> Optional[Span]:
    """The innermost open span of the current thread, or ``None``."""
    return _STATE.stack[-1] if _STATE.stack else None


def context_of(span: Span) -> Dict[str, str]:
    """The propagation context of a span (JSON-able, payload-embeddable)."""
    return {"trace_id": span.trace_id, "span_id": span.span_id}


@contextmanager
def recording(sink) -> Iterator[None]:
    """Activate a span sink on the current thread for the block's duration.

    Args:
        sink: anything with an ``emit(span)`` method — a
            :class:`SpanRecorder` or a
            :class:`repro.telemetry.export.TraceWriter`.
    """
    previous = _STATE.sink
    _STATE.sink = sink
    try:
        yield
    finally:
        _STATE.sink = previous


@contextmanager
def span(name: str, attrs: Optional[Dict[str, object]] = None,
         ctx: Optional[Mapping[str, str]] = None) -> Iterator[Optional[Span]]:
    """Open a span under the current one (or a remote ``ctx``), then emit it.

    Yields the open :class:`Span` so the body can add attributes — or
    ``None`` when telemetry is disabled or no sink is active, in which
    case the block runs uninstrumented.  An exception inside the block
    marks the span ``error`` (recording the exception type) and
    re-raises.

    Args:
        name: the span name (e.g. ``execute``).
        attrs: initial attributes.
        ctx: a remote parent's :func:`context_of` dict; without it the
            parent is the thread's current span (a fresh trace id is
            minted at the root).
    """
    sink = _STATE.sink
    if sink is None or not is_enabled():
        yield None
        return
    parent = current_span()
    if ctx is not None:
        trace_id = str(ctx["trace_id"])
        parent_id: Optional[str] = str(ctx["span_id"])
    elif parent is not None:
        trace_id, parent_id = parent.trace_id, parent.span_id
    else:
        trace_id, parent_id = new_id(), None
    opened = Span(name=name, trace_id=trace_id, parent_id=parent_id,
                  attrs=dict(attrs or {}))
    _STATE.stack.append(opened)
    try:
        yield opened
    except BaseException as exc:
        opened.attrs.setdefault("exception", type(exc).__name__)
        opened.finish(status=STATUS_ERROR)
        raise
    else:
        opened.finish()
    finally:
        _STATE.stack.pop()
        sink.emit(opened)


def add_phase_spans(phases: Mapping[str, float],
                    attrs: Optional[Dict[str, object]] = None) -> int:
    """Attach synthetic fixed-duration children to the current span.

    The workflow layer reports *accumulated* per-phase times (PIC stepping
    vs training) rather than live begin/end pairs, so phase sub-spans are
    synthesised backwards from "now": each phase ends now and starts its
    duration ago.  A no-op (returning 0) without an active span/sink or
    with telemetry disabled — which is what makes the call site in
    :meth:`repro.workflow.builder.WorkflowSession.run` safe for every
    uninstrumented workflow run.

    Args:
        phases: phase name → duration in seconds (``None`` durations are
            skipped).
        attrs: extra attributes stamped on every phase span.

    Returns:
        The number of spans emitted.
    """
    sink = _STATE.sink
    parent = current_span()
    if sink is None or parent is None or not is_enabled():
        return 0
    now = time.time()
    emitted = 0
    for name, duration in phases.items():
        if duration is None:
            continue
        duration = max(0.0, float(duration))
        sink.emit(Span(name=name, trace_id=parent.trace_id,
                       parent_id=parent.span_id, start_s=now - duration,
                       end_s=now, attrs=dict(attrs or {})))
        emitted += 1
    return emitted
