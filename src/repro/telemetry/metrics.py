"""A dependency-free labeled metrics registry with Prometheus text export.

Three metric kinds — :class:`Counter`, :class:`Gauge` and
:class:`Histogram` — each holding one value series per label combination,
all thread-safe (instrumented code runs in executor drain threads, worker
pools, the HTTP server's request threads and campaign job threads at
once).  Call sites obtain their metric once at import time::

    _RUNS = REGISTRY.counter("repro_campaign_runs_total",
                             "Campaign run records")
    ...
    _RUNS.inc(1, campaign=spec.name, status=record.status)

so the hot path is one enabled-check plus one locked dict update — and a
plain early return when telemetry is disabled
(:func:`repro.telemetry.state.is_enabled`).

:meth:`MetricsRegistry.render_prometheus` emits the standard Prometheus
text exposition format (``# HELP``/``# TYPE`` headers plus one
``name{label="value"} value`` line per series), which is what
``GET /v1/metrics`` on the campaign service serves.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Tuple

from repro.telemetry.state import is_enabled

#: Default histogram bucket upper bounds (seconds): spans sub-millisecond
#: settles through minute-scale coupled runs.
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 2.5, 5.0,
                   10.0, 30.0, 60.0, 120.0)

#: One series key: the label items sorted by label name.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    """Canonical hashable key of one label combination."""
    return tuple(sorted((str(key), str(value))
                        for key, value in labels.items()))


def _escape_label(value: str) -> str:
    """Escape a label value for the Prometheus text format."""
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _escape_help(text: str) -> str:
    """Escape a HELP string for the Prometheus text format."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_series(name: str, key: LabelKey, value: float) -> str:
    """One exposition line: ``name{labels} value``."""
    if key:
        labels = ",".join(f'{label}="{_escape_label(text)}"'
                          for label, text in key)
        return f"{name}{{{labels}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


def _format_value(value: float) -> str:
    """A number in exposition form (integers without a trailing ``.0``)."""
    as_float = float(value)
    return repr(int(as_float)) if as_float.is_integer() else repr(as_float)


class Metric:
    """Base of all metric kinds: a named, labeled, thread-safe series map.

    Instances are created by (and registered with) a
    :class:`MetricsRegistry`; do not construct them directly.
    """

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._series: Dict[LabelKey, float] = {}

    def series(self) -> Dict[LabelKey, float]:
        """A snapshot of every label combination's current value."""
        with self._lock:
            return dict(self._series)

    def value(self, **labels) -> float:
        """The current value of one label combination (0.0 if unseen)."""
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)

    def _add(self, amount: float, labels: Dict[str, object]) -> None:
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def render(self) -> List[str]:
        """This metric's exposition lines (HELP/TYPE header + series)."""
        lines = [f"# HELP {self.name} {_escape_help(self.help)}",
                 f"# TYPE {self.name} {self.kind}"]
        snapshot = self.series()
        for key in sorted(snapshot):
            lines.append(_format_series(self.name, key, snapshot[key]))
        return lines


class Counter(Metric):
    """A monotonically increasing count (per label combination)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (default 1) to one label combination's count.

        Raises:
            ValueError: on a negative amount (counters only go up).
        """
        if not is_enabled():
            return
        if amount < 0:
            raise ValueError("a counter can only be increased")
        self._add(amount, labels)


class Gauge(Metric):
    """A value that can go up and down (per label combination)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        """Set one label combination's value."""
        if not is_enabled():
            return
        key = _label_key(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (may be negative) to one label combination."""
        if not is_enabled():
            return
        self._add(amount, labels)


class Histogram(Metric):
    """A distribution: cumulative buckets plus sum and count per series.

    The per-series value map holds ``(bucket_counts, sum, count)``; the
    exposition renders the standard ``_bucket``/``_sum``/``_count``
    triplet with cumulative ``le`` buckets ending in ``+Inf``.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Optional[Iterable[float]] = None) -> None:
        super().__init__(name, help)
        bounds = tuple(sorted(float(b) for b in
                              (DEFAULT_BUCKETS if buckets is None
                               else buckets)))
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        self.buckets = bounds
        self._data: Dict[LabelKey, Tuple[List[int], float, int]] = {}

    def observe(self, value: float, **labels) -> None:
        """Record one observation into the matching buckets."""
        if not is_enabled():
            return
        value = float(value)
        key = _label_key(labels)
        with self._lock:
            counts, total, count = self._data.get(
                key, ([0] * len(self.buckets), 0.0, 0))
            for position, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[position] += 1
            self._data[key] = (counts, total + value, count + 1)

    def series(self) -> Dict[LabelKey, float]:
        """Snapshot of per-series observation *counts* (uniform base API)."""
        with self._lock:
            return {key: float(count)
                    for key, (_, _, count) in self._data.items()}

    def value(self, **labels) -> float:
        """The observation count of one label combination (0.0 if unseen)."""
        with self._lock:
            entry = self._data.get(_label_key(labels))
            return 0.0 if entry is None else float(entry[2])

    def sum(self, **labels) -> float:
        """The summed observations of one label combination."""
        with self._lock:
            entry = self._data.get(_label_key(labels))
            return 0.0 if entry is None else float(entry[1])

    def render(self) -> List[str]:
        """Exposition lines: cumulative buckets + ``_sum`` + ``_count``."""
        lines = [f"# HELP {self.name} {_escape_help(self.help)}",
                 f"# TYPE {self.name} {self.kind}"]
        with self._lock:
            snapshot = {key: (list(counts), total, count)
                        for key, (counts, total, count) in self._data.items()}
        for key in sorted(snapshot):
            counts, total, count = snapshot[key]
            for bound, bucket_count in zip(self.buckets, counts):
                bucket_key = key + (("le", _format_value(bound)),)
                lines.append(_format_series(f"{self.name}_bucket",
                                            bucket_key, bucket_count))
            lines.append(_format_series(f"{self.name}_bucket",
                                        key + (("le", "+Inf"),), count))
            lines.append(_format_series(f"{self.name}_sum", key, total))
            lines.append(_format_series(f"{self.name}_count", key, count))
        return lines


class MetricsRegistry:
    """A named collection of metrics with get-or-create registration.

    ``counter``/``gauge``/``histogram`` are idempotent per name: asking
    twice returns the same object, asking for a different kind under a
    taken name raises — two call sites sharing a metric must agree on
    what it is.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise ValueError(
                        f"metric {name!r} is already registered as a "
                        f"{existing.kind}, not a {cls.kind}")
                return existing
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the :class:`Counter` called ``name``."""
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the :class:`Gauge` called ``name``."""
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Iterable[float]] = None) -> Histogram:
        """Get or create the :class:`Histogram` called ``name``."""
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def collect(self) -> List[Metric]:
        """Every registered metric, sorted by name."""
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """A JSON-able dump: metric name → rendered label string → value."""
        out: Dict[str, Dict[str, float]] = {}
        for metric in self.collect():
            out[metric.name] = {
                ",".join(f"{label}={value}" for label, value in key): number
                for key, number in metric.series().items()}
        return out

    def render_prometheus(self) -> str:
        """The whole registry in Prometheus text exposition format."""
        lines: List[str] = []
        for metric in self.collect():
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Drop every registered metric (test isolation only)."""
        with self._lock:
            self._metrics.clear()


#: The process-wide default registry every instrumented module uses.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return REGISTRY
