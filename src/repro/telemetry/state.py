"""The telemetry on/off switch shared by metrics and spans.

Instrumentation is **opt-out-able**: every metric update and span
creation first consults :func:`is_enabled`, so a disabled process pays
one function call and a boolean test per instrumentation site — nothing
is allocated, locked or written.  The switch starts from the
``REPRO_TELEMETRY`` environment variable (``0``/``false``/``off``/``no``
disable it; anything else — including unset — enables it), which is what
lets spawned worker processes inherit the operator's choice, and can be
flipped at runtime with :func:`set_enabled` or scoped with
:func:`disabled` (the benchmark harnesses use the latter so timed
sections never measure the instrumentation itself).
"""

from __future__ import annotations

import os
from contextlib import contextmanager

_FALSY = frozenset({"0", "false", "off", "no"})

_enabled = os.environ.get("REPRO_TELEMETRY", "").strip().lower() not in _FALSY


def is_enabled() -> bool:
    """Whether telemetry (metrics updates + span recording) is active."""
    return _enabled


def set_enabled(value: bool) -> bool:
    """Turn telemetry on or off process-wide.

    Args:
        value: the new state.

    Returns:
        The previous state, so callers can restore it
        (``previous = set_enabled(False) ... set_enabled(previous)``).
    """
    global _enabled
    previous = _enabled
    _enabled = bool(value)
    return previous


@contextmanager
def disabled():
    """Context manager: telemetry off inside the block, restored after.

    Used by the benchmark harnesses around their timed sections — the
    guard that "no measurable overhead when disabled" is actually what
    the persisted perf trajectories measure.
    """
    previous = set_enabled(False)
    try:
        yield
    finally:
        set_enabled(previous)
