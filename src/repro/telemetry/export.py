"""Append-only JSONL trace export, stored next to the campaign store.

A campaign launch writes its spans through a :class:`TraceWriter` into a
sibling of the campaign's record store — ``runs.campaign.jsonl`` gets
``runs.trace.jsonl`` (:func:`trace_path_for`) — so a store directory is
self-describing: records and their timing trees travel together, and the
``repro.cli trace`` command can find a campaign's trace from nothing but
the store path.  :func:`read_spans` is the reading half, tolerant of
torn/corrupt tail lines the same way the record store's reader is.
"""

from __future__ import annotations

import json
import os
import threading
from typing import List, Union

from repro.telemetry.spans import Span

#: Suffix of every trace file.
TRACE_SUFFIX = ".trace.jsonl"


def trace_path_for(store_path: Union[str, os.PathLike]) -> str:
    """The trace-file path paired with a campaign store path.

    ``x.campaign.jsonl`` → ``x.trace.jsonl``; any other ``*.jsonl`` swaps
    its extension; anything else gets ``.trace.jsonl`` appended.
    """
    path = os.fspath(store_path)
    if path.endswith(".campaign.jsonl"):
        return path[: -len(".campaign.jsonl")] + TRACE_SUFFIX
    if path.endswith(".jsonl"):
        return path[: -len(".jsonl")] + TRACE_SUFFIX
    return path + TRACE_SUFFIX


class TraceWriter:
    """A span sink that appends one JSON line per finished span.

    The file (and its directory) is created lazily on the first emit, so
    merely constructing a writer for a campaign that never runs leaves no
    artifact.  Writes are line-buffered and flushed per span — a reader
    (or a crashed process's post-mortem) always sees whole lines.
    Thread-safe: the scheduler's settle path and the resolve span emit
    from different call sites.
    """

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = os.fspath(path)
        self._lock = threading.Lock()
        self._file = None

    def emit(self, span: Union[Span, dict]) -> None:
        """Append one span (a :class:`Span` or an already-dict row)."""
        row = span.to_dict() if isinstance(span, Span) else dict(span)
        line = json.dumps(row, sort_keys=True)
        with self._lock:
            if self._file is None:
                directory = os.path.dirname(self.path)
                if directory:
                    os.makedirs(directory, exist_ok=True)
                self._file = open(self.path, "a", encoding="utf-8")
            self._file.write(line + "\n")
            self._file.flush()

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_spans(path: Union[str, os.PathLike]) -> List[Span]:
    """Every span in a trace file, skipping corrupt or torn lines."""
    spans: List[Span] = []
    with open(os.fspath(path), "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
                spans.append(Span.from_dict(row))
            except (ValueError, TypeError):
                continue
    return spans
