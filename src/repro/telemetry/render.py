"""Terminal rendering of span trees — the body of ``repro.cli trace``.

Spans arrive as a flat list (the order of a JSONL trace file is emit
order: children before their parents, traces interleaved); rendering
groups them by ``trace_id``, rebuilds each tree from ``parent_id`` links
and prints a box-drawing outline with per-span durations.  Spans whose
parent never made it into the file (e.g. a crashed launch) are promoted
to roots so nothing is silently dropped.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.telemetry.spans import Span

#: Attributes worth echoing inline after a span's timing.
_SHOWN_ATTRS = ("run_id", "campaign", "executor", "status", "cached",
                "attempts", "n_runs", "n_pending", "pid", "exception")


def _format_duration(duration_s: Optional[float]) -> str:
    """A compact human duration: ``12.3ms`` under a second, else ``4.56s``."""
    if duration_s is None:
        return "open"
    if duration_s < 1.0:
        return f"{duration_s * 1000.0:.1f}ms"
    return f"{duration_s:.2f}s"


def _format_attrs(span: Span) -> str:
    """The displayed subset of a span's attributes, ``key=value`` joined."""
    parts = []
    for name in _SHOWN_ATTRS:
        if name in span.attrs:
            value = span.attrs[name]
            if name == "run_id" and isinstance(value, str) and len(value) > 12:
                value = value[:12]
            parts.append(f"{name}={value}")
    return " ".join(parts)


def group_traces(spans: Iterable[Span]) -> Dict[str, List[Span]]:
    """Spans grouped by ``trace_id``, each group sorted by start time."""
    groups: Dict[str, List[Span]] = {}
    for span in spans:
        groups.setdefault(span.trace_id, []).append(span)
    for group in groups.values():
        group.sort(key=lambda span: (span.start_s, span.span_id))
    return groups


def _children_index(spans: Sequence[Span]) -> Dict[Optional[str], List[Span]]:
    """Parent span id → children, with orphans filed under ``None``."""
    known = {span.span_id for span in spans}
    children: Dict[Optional[str], List[Span]] = {}
    for span in spans:
        parent = span.parent_id if span.parent_id in known else None
        children.setdefault(parent, []).append(span)
    return children


def _render_subtree(span: Span, children: Dict[Optional[str], List[Span]],
                    prefix: str, is_last: bool, lines: List[str]) -> None:
    connector = "└─ " if is_last else "├─ "
    marker = " !" if span.status != "ok" else ""
    attrs = _format_attrs(span)
    suffix = f"  [{attrs}]" if attrs else ""
    lines.append(f"{prefix}{connector}{span.name}{marker} "
                 f"({_format_duration(span.duration_s)}){suffix}")
    child_prefix = prefix + ("   " if is_last else "│  ")
    own = children.get(span.span_id, [])
    for position, child in enumerate(own):
        _render_subtree(child, children, child_prefix,
                        position == len(own) - 1, lines)


def render_trace(spans: Sequence[Span]) -> str:
    """One trace's tree as box-drawing text (roots at column zero)."""
    children = _children_index(spans)
    lines: List[str] = []
    roots = children.get(None, [])
    for root in roots:
        marker = " !" if root.status != "ok" else ""
        attrs = _format_attrs(root)
        suffix = f"  [{attrs}]" if attrs else ""
        lines.append(f"{root.name}{marker} "
                     f"({_format_duration(root.duration_s)}){suffix}")
        own = children.get(root.span_id, [])
        for position, child in enumerate(own):
            _render_subtree(child, children, "",
                            position == len(own) - 1, lines)
    return "\n".join(lines)


def render_traces(spans: Iterable[Span],
                  run_id: Optional[str] = None) -> str:
    """Every trace in ``spans`` rendered, separated by blank lines.

    Args:
        spans: the flat span list (e.g. from
            :func:`repro.telemetry.export.read_spans`).
        run_id: when given, only traces containing a span whose
            ``run_id`` attribute starts with it are rendered (so the CLI
            accepts truncated ids).
    """
    blocks: List[str] = []
    for trace_id, group in sorted(group_traces(spans).items(),
                                  key=lambda item: item[1][0].start_s):
        if run_id is not None:
            if not any(str(span.attrs.get("run_id", "")).startswith(run_id)
                       for span in group):
                continue
        blocks.append(f"trace {trace_id}\n{render_trace(group)}")
    return "\n\n".join(blocks)
