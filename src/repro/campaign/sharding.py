"""Sharded campaign execution: partition one campaign across named shards.

The paper's weak-scaling story fans one coupled run out into fleets of
simulation/training sessions; this module is the first scaling backend on
the :class:`repro.campaign.scheduler.CampaignExecutor` seam.  A
:class:`ShardedExecutor` splits the resolved run payloads across ``shards``
named shards (``shard-0`` … ``shard-N-1``), hands each shard to a fresh
instance of any *inner* registered executor (``serial``, ``thread``,
``process``, or a user-registered backend) and merges the per-shard records
back into one result list in submission order — so ``run_campaign`` builds
exactly the same :class:`repro.campaign.scheduler.CampaignOutcome` a
serial launch would.

*Which* run lands on *which* shard is a :class:`WorkloadRouter` policy:

* ``hash``        — stable content hash of the run id; a run keeps its
  shard across launches, resumes and machines (default),
* ``round-robin`` — position in the submitted payload list modulo the
  shard count; balances unequal-cost sweeps,
* ``explicit``    — a hand-written ``run_id -> shard index`` mapping with
  hash fallback for unlisted runs; pins known-heavy runs to their own
  shard.

Routers register through :func:`register_router` exactly like executors do
through :func:`repro.campaign.scheduler.register_executor`.

Shards execute concurrently (one coordinating thread each), so even with
the ``serial`` inner executor a sharded launch overlaps the shards'
wall-clock — and with a pool inner executor the concurrency multiplies
(``shards x max_workers`` workers in flight).  In-process shards are the
local stand-in for the multi-node layout the paper implies: the routing
policy, not the transport, is the part a remote backend would reuse.
"""

from __future__ import annotations

import hashlib
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.campaign.scheduler import (CampaignExecutor, available_executors,
                                      get_executor, register_executor)
from repro.campaign.store import RunRecord


def stable_shard_hash(run_id: str, n_shards: int) -> int:
    """Map a run id onto ``[0, n_shards)`` via SHA-256 (process-stable).

    Python's builtin ``hash`` is salted per process (``PYTHONHASHSEED``),
    which would scatter a resumed campaign's runs onto different shards on
    every launch; a content hash keeps shard assignment a pure function of
    the run identity.

    Args:
        run_id: the run's identity hash (any non-empty string works).
        n_shards: number of shards to map onto (``>= 1``).

    Returns:
        The shard index in ``range(n_shards)``.
    """
    digest = hashlib.sha256(str(run_id).encode("utf-8")).hexdigest()
    return int(digest, 16) % n_shards


class WorkloadRouter:
    """Strategy interface: assign each run payload to one shard.

    Subclasses implement :meth:`shard_of` and set a class-level ``name``
    under which :func:`register_router` makes them reachable from specs
    and the CLI (``--route``).
    """

    name: str = "abstract"

    def shard_of(self, payload: Mapping[str, object], position: int,
                 n_shards: int) -> int:
        """The shard index for one payload.

        Args:
            payload: the resolved run payload (``RunSpec.payload()`` shape;
                at minimum carries ``run_id``).
            position: the payload's position in the submitted list (what
                round-robin distributes over).
            n_shards: total number of shards.

        Returns:
            An index in ``range(n_shards)``.

        Raises:
            ValueError: if the policy produces an out-of-range shard
                (e.g. a bad explicit assignment).
        """
        raise NotImplementedError


class HashRouter(WorkloadRouter):
    """Route by a stable content hash of the run id (the default policy).

    Deterministic across launches, resumes, processes and machines: the
    same run always lands on the same shard, which is what lets a future
    remote backend cache per-shard state.
    """

    name = "hash"

    def shard_of(self, payload, position, n_shards):
        """Hash the payload's ``run_id`` onto a shard index."""
        return stable_shard_hash(str(payload["run_id"]), n_shards)


class RoundRobinRouter(WorkloadRouter):
    """Route by submission position modulo the shard count.

    Gives the most even shard sizes (within one run), at the cost of a
    run's shard depending on what else is pending — a resumed campaign
    may re-shard its leftovers.
    """

    name = "round-robin"

    def shard_of(self, payload, position, n_shards):
        """Cycle through the shards in submission order."""
        return position % n_shards


class ExplicitRouter(WorkloadRouter):
    """Route by a hand-written ``run_id -> shard index`` mapping.

    Unlisted runs fall back to the hash policy, so an explicit map only
    needs to pin the runs that matter (e.g. the known-heavy corner of a
    sweep onto its own shard).

    Args:
        assignments: mapping of run id to shard index.

    Raises:
        ValueError: if ``assignments`` is not a mapping of string run ids
            to integer shard indices.
    """

    name = "explicit"

    def __init__(self, assignments: Optional[Mapping[str, object]] = None) -> None:
        assignments = dict(assignments or {})
        for run_id, shard in assignments.items():
            if not isinstance(shard, int) or isinstance(shard, bool):
                raise ValueError(
                    f"explicit route assignment for run {run_id!r} must be "
                    f"an integer shard index, got {shard!r}")
        self.assignments: Dict[str, int] = assignments

    def shard_of(self, payload, position, n_shards):
        """Look the run id up in the assignments, hash-falling-back."""
        run_id = str(payload["run_id"])
        if run_id in self.assignments:
            shard = self.assignments[run_id]
            if not 0 <= shard < n_shards:
                raise ValueError(
                    f"explicit route assignment for run {run_id!r} is shard "
                    f"{shard}, outside 0..{n_shards - 1}")
            return shard
        return stable_shard_hash(run_id, n_shards)


#: Router factories keyed by policy name (``assignments`` is forwarded to
#: the explicit router and ignored by the stateless ones).
_ROUTERS: Dict[str, Callable[..., WorkloadRouter]] = {
    HashRouter.name: lambda assignments=None: HashRouter(),
    RoundRobinRouter.name: lambda assignments=None: RoundRobinRouter(),
    ExplicitRouter.name: lambda assignments=None: ExplicitRouter(assignments),
}


def available_routers() -> tuple:
    """The registered workload-router policy names, sorted."""
    return tuple(sorted(_ROUTERS))


def register_router(name: str, factory: Callable[..., WorkloadRouter],
                    overwrite: bool = False) -> None:
    """Register a workload-router policy under ``name``.

    Args:
        name: the policy name (reachable via ``--route`` and spec routing).
        factory: callable accepting an ``assignments`` keyword and
            returning a :class:`WorkloadRouter`.
        overwrite: allow replacing an existing registration.

    Raises:
        ValueError: if ``name`` is taken and ``overwrite`` is false.
    """
    if name in _ROUTERS and not overwrite:
        raise ValueError(f"router {name!r} is already registered")
    _ROUTERS[name] = factory


def get_router(name: str,
               assignments: Optional[Mapping[str, object]] = None) -> WorkloadRouter:
    """Instantiate a workload router by policy name.

    Args:
        name: one of :func:`available_routers`.
        assignments: explicit ``run_id -> shard`` mapping (only meaningful
            for the ``explicit`` policy).

    Returns:
        A fresh :class:`WorkloadRouter`.

    Raises:
        ValueError: on an unknown policy name.
    """
    try:
        factory = _ROUTERS[name]
    except KeyError:
        raise ValueError(f"unknown route {name!r}; valid routes: "
                         f"{', '.join(available_routers())}") from None
    return factory(assignments=assignments)


class ShardedExecutor(CampaignExecutor):
    """Partition a campaign across named shards, delegating per shard.

    Each shard gets a *fresh* instance of the inner executor (built with
    this executor's ``max_workers`` / ``timeout`` / ``retries``), so a
    pool inner executor yields ``shards x max_workers`` concurrent runs.
    Records come back in submission order and the executor contract
    (exceptions captured into records, timeout cooperative) is whatever
    the inner executor guarantees — sharding adds routing, not semantics.

    Args:
        shards: number of named shards (``>= 1``).
        route: routing policy name (see :func:`available_routers`).
        inner: registered name of the executor run inside each shard
            (anything but ``sharded`` itself).
        assignments: ``run_id -> shard index`` map for ``route="explicit"``.
        max_workers: per-shard concurrency bound of a pool inner executor.
        timeout: per-run cooperative wall-clock budget (seconds).
        retries: retries per failing run.

    Raises:
        ValueError: on ``shards < 1``, an unknown/unregistered inner
            executor, a recursive ``inner="sharded"``, or an unknown route.

    Attributes:
        shard_sizes: after :meth:`execute`, the ``shard name -> payload
            count`` map of the last launch (reported by the CLI).
    """

    name = "sharded"

    def __init__(self, shards: int = 2, route: str = "hash",
                 inner: str = "serial",
                 assignments: Optional[Mapping[str, object]] = None,
                 max_workers: Optional[int] = None,
                 timeout: Optional[float] = None, retries: int = 0) -> None:
        super().__init__(max_workers=max_workers, timeout=timeout,
                         retries=retries)
        if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
            raise ValueError(f"shards must be an integer >= 1, got {shards!r}")
        if inner == self.name:
            raise ValueError("the sharded executor cannot shard into itself; "
                             "pick a leaf inner executor (serial, thread, "
                             "process, ...)")
        if inner not in available_executors():
            raise ValueError(f"unknown inner executor {inner!r}; valid "
                             f"executors: {', '.join(available_executors())}")
        if assignments and route != ExplicitRouter.name:
            raise ValueError(f"route assignments require route='explicit', "
                             f"got route={route!r}; they would be silently "
                             f"ignored")
        self.shards = shards
        self.inner = inner
        self.router = get_router(route, assignments=assignments)
        self.shard_sizes: Dict[str, int] = {}

    def shard_names(self) -> List[str]:
        """The shard names in index order (``shard-0`` … ``shard-N-1``)."""
        return [f"shard-{index}" for index in range(self.shards)]

    def _position_buckets(self, payloads: Sequence[Mapping[str, object]]
                          ) -> Dict[int, List[tuple]]:
        """Route payloads into ``shard index -> [(position, payload)]``."""
        buckets: Dict[int, List[tuple]] = {i: [] for i in range(self.shards)}
        for position, payload in enumerate(payloads):
            shard = self.router.shard_of(payload, position, self.shards)
            if (not isinstance(shard, int) or isinstance(shard, bool)
                    or not 0 <= shard < self.shards):
                raise ValueError(
                    f"router {self.router.name!r} produced shard {shard!r} "
                    f"for run {payload.get('run_id')!r}, not an index in "
                    f"0..{self.shards - 1}")
            buckets[shard].append((position, payload))
        return buckets

    def partition(self, payloads: Sequence[Mapping[str, object]]
                  ) -> Dict[str, List[Mapping[str, object]]]:
        """Split payloads into per-shard lists under the routing policy.

        Pure and deterministic for the stateless routers: the same payload
        list always partitions the same way.  Shards are disjoint and
        their union is the input (order preserved within each shard).

        Args:
            payloads: resolved run payloads (``RunSpec.payload()`` dicts).

        Returns:
            ``shard name -> payload list`` covering every shard (possibly
            with empty lists).

        Raises:
            ValueError: if the router produces an out-of-range shard.
        """
        return {f"shard-{index}": [payload for _, payload in bucket]
                for index, bucket in self._position_buckets(payloads).items()}

    def execute(self, payloads, worker, on_record=None):
        """Execute the payloads shard-by-shard, merging in submission order.

        Shards run concurrently (one coordinating thread each); the
        ``on_record`` callback is serialised under a lock so store appends
        from different shards never interleave.  An abort (e.g. Ctrl-C)
        cancels the shards that have not started.
        """
        payloads = list(payloads)
        self.shard_sizes = {name: 0 for name in self.shard_names()}
        if not payloads:
            return []
        buckets = self._position_buckets(payloads)
        self.shard_sizes = {f"shard-{index}": len(bucket)
                            for index, bucket in buckets.items()}

        callback_lock = threading.Lock()

        def locked_on_record(record: RunRecord) -> None:
            with callback_lock:
                on_record(record)

        shard_callback = locked_on_record if on_record is not None else None

        def run_shard(bucket: List[tuple]) -> List[tuple]:
            executor = get_executor(self.inner, max_workers=self.max_workers,
                                    timeout=self.timeout, retries=self.retries)
            records = executor.execute([payload for _, payload in bucket],
                                       worker, on_record=shard_callback)
            return [(position, record)
                    for (position, _), record in zip(bucket, records)]

        non_empty = [bucket for bucket in buckets.values() if bucket]
        merged: Dict[int, RunRecord] = {}
        with ThreadPoolExecutor(max_workers=len(non_empty)) as pool:
            futures = [pool.submit(run_shard, bucket) for bucket in non_empty]
            try:
                for future in futures:
                    for position, record in future.result():
                        merged[position] = record
            except BaseException:
                # abort: stop shards that have not started, like the pool
                # executors stop their queued runs
                pool.shutdown(wait=False, cancel_futures=True)
                raise
        return [merged[position] for position in range(len(payloads))]


register_executor(ShardedExecutor.name, ShardedExecutor)
