"""Campaign-level aggregation: from run records to one sweep report.

Turns the store's :class:`repro.campaign.store.RunRecord` rows into a
:class:`CampaignReport`: overall loss statistics, per-parameter summaries
(grouped by each swept value), best-run selection and throughput figures.

The report separates **deterministic** content (losses, streamed/training
counters — identical whenever the same seeded runs are re-executed) from
**timing** content (wall times, throughput — machine- and load-dependent).
``deterministic_dict()`` exposes only the former, which is what makes "a
resumed campaign reports exactly what an uninterrupted one would" a
testable property rather than a hope.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.campaign.store import RunRecord


def status_document(campaign: str, total_runs: int,
                    records: Sequence[RunRecord], store: Optional[str] = None,
                    include_records: bool = False,
                    telemetry: Optional[Dict[str, object]] = None
                    ) -> Dict[str, object]:
    """The machine-readable campaign status document.

    One serializer, two transports: ``campaign status --json`` on the CLI
    and ``GET /v1/campaigns/{id}`` on the :mod:`repro.service` control
    plane emit exactly this shape, so clients never have to reconcile two
    status schemas.

    Args:
        campaign: the campaign name.
        total_runs: resolved size of the campaign (``len(spec.resolve())``).
        records: the campaign's recorded runs (latest record per run id,
            already scoped to this campaign's run ids).
        store: optional store path to include (the CLI always has one).
        include_records: append a ``records`` list with one
            :meth:`repro.campaign.store.RunRecord.to_dict` row per recorded
            run — the service's per-run detail; the CLI summary omits it.
        telemetry: optional JSON-able telemetry summary (executor counter
            deltas, event-bus drops, cache stats) appended verbatim under
            a ``telemetry`` key — the service fills it from its job
            bookkeeping, the CLI from the launch's persisted trace.

    Returns:
        A flat JSON-able dict: counts (``total_runs`` / ``completed`` /
        ``failed`` / ``pending``), cache provenance (``cached``), executor
        throughput (``runs_per_sec`` — executed completed runs divided by
        their summed wall time, ``None`` until something was actually
        executed rather than cache-served) and the terminal flag ``done``.
    """
    completed = sum(1 for record in records if record.completed)
    executed = [record for record in records
                if record.completed and not record.cached]
    executed_elapsed = sum(record.elapsed_s for record in executed)
    document: Dict[str, object] = {
        "campaign": campaign,
        "total_runs": int(total_runs),
        "completed": completed,
        "failed": len(records) - completed,
        "pending": int(total_runs) - completed,
        "cached": sum(1 for record in records
                      if record.completed and record.cached),
        "runs_per_sec": (len(executed) / executed_elapsed
                         if executed and executed_elapsed > 0 else None),
        "done": completed == int(total_runs),
    }
    if store is not None:
        document["store"] = str(store)
    if telemetry is not None:
        document["telemetry"] = telemetry
    if include_records:
        document["records"] = [record.to_dict() for record in records]
    return document


def _stats(values: Sequence[float]) -> Dict[str, float]:
    """Mean / min / max over a non-empty value list (JSON-able floats)."""
    values = [float(v) for v in values]
    return {"n": len(values), "mean": sum(values) / len(values),
            "min": min(values), "max": max(values)}


def _loss_of(record: RunRecord) -> Optional[float]:
    loss = record.summary.get("final_total_loss")
    if loss is None:
        return None
    loss = float(loss)
    # a diverged run (NaN/inf loss) must not poison the stats or win the
    # best-run comparison ('loss < nan' is always False)
    return loss if math.isfinite(loss) else None


@dataclass
class CampaignReport:
    """Aggregated outcome of every recorded run of one campaign."""

    campaign: str
    n_runs: int
    n_completed: int
    n_failed: int
    #: loss statistics over all completed runs
    loss: Optional[Dict[str, float]]
    #: ``param -> value str -> {loss stats + mean counters}``
    per_parameter: Dict[str, Dict[str, Dict[str, float]]]
    #: the completed run with the lowest final total loss
    best_run: Optional[Dict[str, object]]
    #: deterministic volume counters summed over completed runs
    totals: Dict[str, float]
    #: wall-time / throughput figures (machine-dependent)
    timing: Dict[str, float] = field(default_factory=dict)
    #: recorded runs served from a result cache rather than executed
    #: (provenance, not content: excluded from ``deterministic_dict``)
    n_cached: int = 0

    def deterministic_dict(self) -> Dict[str, object]:
        """Everything that must be identical across re-executions.

        Cache provenance (``n_cached``) and timing are excluded: whether a
        run was served from cache, and how long it took, depend on machine
        state — the losses and counters do not.
        """
        return {"campaign": self.campaign, "n_runs": self.n_runs,
                "n_completed": self.n_completed, "n_failed": self.n_failed,
                "loss": self.loss, "per_parameter": self.per_parameter,
                "best_run": self.best_run, "totals": self.totals}

    def to_dict(self) -> Dict[str, object]:
        """The full report (deterministic content + timing + provenance)."""
        out = self.deterministic_dict()
        out["timing"] = self.timing
        out["n_cached"] = self.n_cached
        return out

    def format_text(self) -> str:
        """Human-readable multi-line report for the CLI."""
        lines = [f"campaign {self.campaign!r}: {self.n_completed} completed, "
                 f"{self.n_failed} failed of {self.n_runs} recorded runs"]
        if self.n_cached:
            lines.append(f"  served from cache: {self.n_cached} of "
                         f"{self.n_completed} completed runs")
        if self.loss is not None:
            lines.append(f"  final total loss : mean {self.loss['mean']:.4f}  "
                         f"min {self.loss['min']:.4f}  max {self.loss['max']:.4f}")
        if self.best_run is not None:
            lines.append(f"  best run         : {self.best_run['run_id']}  "
                         f"loss {self.best_run['final_total_loss']:.4f}  "
                         f"params {self.best_run['params']}")
        for key in ("training_iterations", "samples_streamed", "streamed_megabytes"):
            if key in self.totals:
                lines.append(f"  total {key:<22}: {self.totals[key]}")
        if "total_wall_s" in self.timing:
            lines.append(f"  wall time        : total {self.timing['total_wall_s']:.2f} s"
                         f"  mean/run {self.timing['mean_wall_s']:.2f} s"
                         f"  {self.timing['samples_per_s']:.1f} samples/s")
        if "runs_per_sec" in self.timing:
            lines.append(f"  throughput       : "
                         f"{self.timing['runs_per_sec']:.2f} runs/s "
                         f"over executed runs")
        for param, groups in sorted(self.per_parameter.items()):
            lines.append(f"  sweep {param}:")
            for value, stats in sorted(groups.items()):
                line = f"    {value:>16}: n={stats['n']:.0f}"
                if "loss_mean" in stats:  # absent when no run reported a loss
                    line += (f"  loss mean {stats['loss_mean']:.4f}  "
                             f"min {stats['loss_min']:.4f}")
                lines.append(line)
        return "\n".join(lines)


def aggregate(records: Sequence[RunRecord],
              campaign: str = "campaign") -> CampaignReport:
    """Build the campaign report from run records (failed runs counted only)."""
    # Store order depends on executor completion order; sort so float
    # summation (and best-run tie-breaks) are identical across executors.
    records = sorted(records, key=lambda record: record.run_id)
    completed = [record for record in records if record.completed]
    losses = [loss for loss in (_loss_of(r) for r in completed) if loss is not None]

    best: Optional[Dict[str, object]] = None
    for record in completed:
        loss = _loss_of(record)
        if loss is None:
            continue
        if best is None or loss < best["final_total_loss"]:
            best = {"run_id": record.run_id, "params": record.params,
                    "driver": record.driver, "final_total_loss": loss}

    # group completed runs by every swept parameter value
    per_parameter: Dict[str, Dict[str, Dict[str, float]]] = {}
    swept = sorted({key for record in completed for key in record.params})
    for param in swept:
        groups: Dict[str, List[RunRecord]] = {}
        for record in completed:
            if param in record.params:
                # str, not repr: swept string values (e.g. driver names) must
                # not grow embedded quotes in the report keys
                groups.setdefault(str(record.params[param]), []).append(record)
        per_parameter[param] = {}
        for value, members in groups.items():
            member_losses = [loss for loss in (_loss_of(r) for r in members)
                             if loss is not None]
            stats: Dict[str, float] = {"n": float(len(members))}
            if member_losses:
                loss_stats = _stats(member_losses)
                stats.update(loss_mean=loss_stats["mean"],
                             loss_min=loss_stats["min"],
                             loss_max=loss_stats["max"])
            iterations = [r.summary.get("training_iterations") for r in members]
            iterations = [float(v) for v in iterations if v is not None]
            if iterations:
                stats["mean_training_iterations"] = \
                    sum(iterations) / len(iterations)
            per_parameter[param][value] = stats

    totals: Dict[str, float] = {}
    for key in ("training_iterations", "samples_streamed", "iterations_streamed",
                "streamed_megabytes"):
        values = [record.summary.get(key) for record in completed]
        values = [float(v) for v in values if v is not None]
        if values:
            total = sum(values)
            totals[key] = round(total, 3) if key == "streamed_megabytes" else total

    timing: Dict[str, float] = {}
    walls = [record.summary.get("wall_time_s") for record in completed]
    walls = [float(v) for v in walls if v is not None]
    if walls:
        total_wall = sum(walls)
        timing = {"total_wall_s": total_wall,
                  "mean_wall_s": total_wall / len(walls),
                  "samples_per_s": (totals.get("samples_streamed", 0.0) / total_wall
                                    if total_wall > 0 else 0.0)}
    # executor throughput: executed (non-cache-served) completed runs over
    # their summed wall time — the figure the worker-pool backend optimises
    executed = [record for record in completed if not record.cached]
    executed_elapsed = sum(record.elapsed_s for record in executed)
    if executed and executed_elapsed > 0:
        timing["runs_per_sec"] = len(executed) / executed_elapsed

    return CampaignReport(
        campaign=campaign, n_runs=len(records), n_completed=len(completed),
        n_failed=len(records) - len(completed),
        loss=_stats(losses) if losses else None,
        per_parameter=per_parameter, best_run=best, totals=totals,
        timing=timing,
        n_cached=sum(1 for record in records if record.cached))
