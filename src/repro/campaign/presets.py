"""Named campaign presets.

Mirrors :mod:`repro.workflow.presets` one level up: where a workflow preset
names one run's configuration, a campaign preset names a whole sweep.

* ``campaign-smoke`` — the CI smoke campaign: an 8-run sweep (2 learning
  rates × 4 ensemble seeds) over a deliberately tiny coupled run, finishing
  in seconds while exercising sampling, seed derivation, execution,
  persistence and aggregation end to end.  The benchmark harness uses the
  same 8 runs to compare executors.
* ``campaign-smoke-sharded`` — the same 8 runs carrying sharded-execution
  hints (4 hash-routed shards, serial inner executor): the CI proof that a
  sharded launch reproduces the serial campaign exactly.  Because routing
  hints are not part of run identity, both presets resolve to identical
  run ids — which also makes them the cross-campaign result-cache demo.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.campaign.spec import CampaignSpec
from repro.core.config import MLConfig, StreamingConfig, WorkflowConfig
from repro.models.config import ModelConfig
from repro.pic.khi import KHIConfig


def _smoke_base_config() -> WorkflowConfig:
    # the test suite's tiny coupled run: a few hundred macro-particles, a
    # small VAE+INN — one 2-step run takes well under a second
    model = ModelConfig(n_input_points=24, encoder_channels=(12, 24),
                        encoder_head_hidden=16, latent_dim=16,
                        decoder_grid=(2, 2, 2), decoder_channels=(8, 6),
                        spectrum_dim=8, inn_blocks=2, inn_hidden=(16,))
    return WorkflowConfig(
        khi=KHIConfig(grid_shape=(6, 12, 2), particles_per_cell=3, seed=9),
        ml=MLConfig(model=model, n_rep=1, base_learning_rate=1e-3),
        streaming=StreamingConfig(queue_limit=2),
        region_counts=(1, 4, 1), n_detector_directions=1,
        n_detector_frequencies=8, seed=123)


def _campaign_smoke() -> CampaignSpec:
    return CampaignSpec(
        name="campaign-smoke",
        base_config=_smoke_base_config().to_dict(),
        sampler="grid",
        parameters={"ml.base_learning_rate": [1e-3, 3e-4]},
        repetitions=4,
        n_steps=2,
        driver="serial",
        seed=2025)


def _campaign_smoke_sharded() -> CampaignSpec:
    spec = _campaign_smoke().to_dict()
    spec.update(name="campaign-smoke-sharded",
                routing={"shards": 4, "route": "hash", "inner": "serial"})
    return CampaignSpec.from_dict(spec)


_CAMPAIGN_PRESETS: Dict[str, Callable[[], CampaignSpec]] = {
    "campaign-smoke": _campaign_smoke,
    "campaign-smoke-sharded": _campaign_smoke_sharded,
}


def available_campaign_presets() -> tuple:
    """The registered campaign preset names, sorted."""
    return tuple(sorted(_CAMPAIGN_PRESETS))


def register_campaign_preset(name: str, factory: Callable[[], CampaignSpec],
                             overwrite: bool = False) -> None:
    """Add a named campaign preset (e.g. a site- or study-specific sweep)."""
    if name in _CAMPAIGN_PRESETS and not overwrite:
        raise ValueError(f"campaign preset {name!r} is already registered")
    _CAMPAIGN_PRESETS[name] = factory


def get_campaign_preset(name: str) -> CampaignSpec:
    """Build a fresh :class:`CampaignSpec` for a named campaign preset."""
    try:
        factory = _CAMPAIGN_PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown campaign preset {name!r}; valid campaign presets: "
            f"{', '.join(available_campaign_presets())}") from None
    return factory()
