"""The campaign-throughput benchmark: serial vs process vs workers, persisted.

The campaign-layer sibling of :mod:`repro.pic.hotpath`: where that harness
tracks steps/second of the PIC kernels, this one tracks **runs/second of
the campaign executors** on a service-style *chunked* launch of the smoke
preset — the launch shape :mod:`repro.service.jobs` actually uses, where
per-``execute()`` start-up cost (fresh process pools, re-imports, per-run
pickling) multiplies by the number of chunks.  Results append to
``BENCH_campaign_throughput.json`` at the repository root via
:mod:`repro.utils.benchjson`, so the perf trajectory finally covers the
orchestration layer, not just the kernels (see ``docs/performance.md``).

The harness is also a correctness gate: the ``workers`` executor must
produce records equivalent to ``serial`` (same run ids in the same
submission order, all completed, identical deterministic aggregate
report).  Run it with ``python -m repro.campaign.hotpath`` or ``python -m
repro.cli bench-campaign``; the exit status is non-zero when the
equivalence gate fails, which lets CI use the benchmark as a gate.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaign.aggregate import aggregate
from repro.campaign.presets import get_campaign_preset
from repro.campaign.scheduler import (default_pool_workers, execute_run,
                                      get_executor)
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import RunRecord
from repro.campaign.workers import WorkerPool, WorkerPoolExecutor
from repro.telemetry import disabled as telemetry_disabled

#: The executors the benchmark compares, in measurement order.
BENCH_EXECUTORS = ("serial", "process", "workers")

#: The default campaign preset driven through the executors.
DEFAULT_PRESET = "campaign-smoke"


def service_chunk_size(executor_name: str, max_workers: int) -> int:
    """The service-style launch chunk for an executor (see ``service.jobs``).

    Mirrors ``CampaignJob._chunk_size``: the service launches campaigns in
    small chunks so cancellation stays cooperative — one run at a time on
    the serial executor, ``max_workers`` runs per chunk on the pools.
    """
    return 1 if executor_name == "serial" else max(1, int(max_workers))


@dataclass
class CampaignThroughputResult:
    """One campaign-throughput measurement plus the equivalence verdict."""

    #: best observed executor throughput, runs/second, per executor name
    runs_per_sec: Dict[str, float]
    #: launch chunk used per executor (service-style)
    chunk_sizes: Dict[str, int]
    preset: str
    n_runs: int
    max_workers: int
    start_method: str
    #: lifetime worker-pool counters over the whole benchmark (warmup and
    #: every measured block included)
    pool_stats: Dict[str, object] = field(default_factory=dict)
    #: whether workers' records match serial's (the correctness gate)
    equivalent: bool = False
    #: empty when equivalent, else a one-line description of the mismatch
    equivalence_detail: str = ""

    def speedup(self, executor: str, baseline: str) -> float:
        """The throughput ratio of one executor over a baseline executor."""
        return self.runs_per_sec[executor] / self.runs_per_sec[baseline]

    def params(self) -> Dict[str, object]:
        """The benchmark's identity knobs (the benchjson ``params`` block)."""
        return {"preset": self.preset, "n_runs": self.n_runs,
                "max_workers": self.max_workers,
                "start_method": self.start_method,
                "chunk_sizes": dict(self.chunk_sizes),
                "executors": list(BENCH_EXECUTORS)}

    def metrics(self) -> Dict[str, object]:
        """The measured figures (the benchjson ``metrics`` block)."""
        return {"runs_per_sec": dict(self.runs_per_sec),
                "speedup_workers_vs_process": self.speedup("workers",
                                                           "process"),
                "speedup_workers_vs_serial": self.speedup("workers",
                                                          "serial"),
                "pool_stats": dict(self.pool_stats),
                "equivalent": self.equivalent,
                "equivalence_detail": self.equivalence_detail}


def _resolve_payloads(spec: CampaignSpec) -> List[Dict[str, object]]:
    return [run.payload() for run in spec.resolve()]


def _time_chunked(executor, payloads: Sequence[Dict[str, object]],
                  chunk: int) -> Tuple[float, List[RunRecord]]:
    """Runs/second + records of one chunked (service-style) launch."""
    records: List[RunRecord] = []
    start = time.perf_counter()
    for position in range(0, len(payloads), chunk):
        records.extend(executor.execute(payloads[position:position + chunk],
                                        execute_run))
    wall = time.perf_counter() - start
    return len(payloads) / wall, records


def check_equivalence(serial: Sequence[RunRecord],
                      workers: Sequence[RunRecord]) -> Tuple[bool, str]:
    """Whether a workers launch reproduced the serial launch's records.

    Checks, in order: same run ids in the same submission order, every
    workers run completed, and an identical deterministic aggregate
    report (losses, counters, best run — everything that must survive a
    change of executor; timing and cache provenance excluded).

    Returns:
        ``(equivalent, detail)`` — ``detail`` is empty on success and a
        one-line mismatch description otherwise.
    """
    serial_ids = [record.run_id for record in serial]
    workers_ids = [record.run_id for record in workers]
    if serial_ids != workers_ids:
        return False, (f"run id order differs: serial {serial_ids} "
                       f"vs workers {workers_ids}")
    failed = [record.run_id for record in workers if not record.completed]
    if failed:
        return False, f"workers runs failed: {failed}"
    serial_report = aggregate(serial).deterministic_dict()
    workers_report = aggregate(workers).deterministic_dict()
    if serial_report != workers_report:
        keys = [key for key in serial_report
                if serial_report[key] != workers_report.get(key)]
        return False, f"deterministic aggregate differs in {keys}"
    return True, ""


def run_campaign_benchmark(preset: str = DEFAULT_PRESET,
                           repeats: int = 3,
                           max_workers: Optional[int] = None,
                           start_method: Optional[str] = None,
                           repetitions: Optional[int] = None
                           ) -> CampaignThroughputResult:
    """Measure executor throughput on a chunked launch of a campaign preset.

    Each executor runs the preset's resolved payloads in service-style
    chunks (:func:`service_chunk_size`), ``repeats`` times interleaved;
    the best block per executor is kept, so background load hits every
    executor alike.  The workers executor drives a dedicated
    :class:`repro.campaign.workers.WorkerPool` that is warmed once before
    timing (that one-off spawn+import cost is exactly what the pool
    amortises away in steady state) and shut down afterwards.

    Args:
        preset: campaign preset name (default ``campaign-smoke``).
        repeats: interleaved measurement blocks per executor.
        max_workers: pool width (default
            :func:`repro.campaign.scheduler.default_pool_workers`).
        start_method: worker start method (default: the workers module
            default, ``spawn``).
        repetitions: override the preset's ensemble repetitions (scales
            the run count without changing per-run work).

    Returns:
        The measured :class:`CampaignThroughputResult`.

    Raises:
        ValueError: on a bad ``repeats``/``repetitions`` or preset name.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    spec = get_campaign_preset(preset)
    if repetitions is not None:
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        document = spec.to_dict()
        document["repetitions"] = repetitions
        spec = CampaignSpec.from_dict(document)
    payloads = _resolve_payloads(spec)
    workers_n = max_workers or default_pool_workers()
    chunks = {name: service_chunk_size(name, workers_n)
              for name in BENCH_EXECUTORS}

    pool = WorkerPool(workers_n, start_method=start_method)
    rates: Dict[str, float] = {}
    last_records: Dict[str, List[RunRecord]] = {}
    executors = {"serial": get_executor("serial"),
                 "process": get_executor("process", max_workers=workers_n),
                 "workers": WorkerPoolExecutor(max_workers=workers_n,
                                               pool=pool)}
    try:
        # telemetry off for the whole measured region: the persisted perf
        # trajectory is the guard that instrumentation costs nothing when
        # disabled, so the timed sections must never include it
        with telemetry_disabled():
            pool.wait_ready()
            # one untimed warmup chunk per executor (page caches, imports)
            for name in BENCH_EXECUTORS:
                executors[name].execute(payloads[:chunks[name]], execute_run)
            for _ in range(repeats):
                for name in BENCH_EXECUTORS:
                    rate, records = _time_chunked(executors[name], payloads,
                                                  chunks[name])
                    if rate > rates.get(name, 0.0):
                        rates[name] = rate
                    last_records[name] = records
            pool_stats = {key: value for key, value in pool.stats().items()
                          if key != "pids"}
    finally:
        pool.shutdown()

    equivalent, detail = check_equivalence(last_records["serial"],
                                           last_records["workers"])
    return CampaignThroughputResult(
        runs_per_sec=rates, chunk_sizes=chunks, preset=spec.name,
        n_runs=len(payloads), max_workers=workers_n,
        start_method=pool.start_method, pool_stats=pool_stats,
        equivalent=equivalent, equivalence_detail=detail)


def persist_result(result: CampaignThroughputResult,
                   directory: str = ".") -> str:
    """Append ``result`` to ``BENCH_campaign_throughput.json``; the path."""
    from repro.utils.benchjson import append_run

    return append_run("campaign_throughput", result.params(),
                      result.metrics(), directory)


def format_result(result: CampaignThroughputResult) -> str:
    """Human-readable multi-line summary of one benchmark result."""
    lines = [
        f"campaign throughput, preset {result.preset!r}, {result.n_runs} "
        f"runs, {result.max_workers} workers ({result.start_method}), "
        f"service-style chunked launch:",
    ]
    for name in BENCH_EXECUTORS:
        lines.append(f"  {name:>8}: {result.runs_per_sec[name]:7.2f} runs/s"
                     f"  (chunk {result.chunk_sizes[name]})")
    lines.append(f"  workers vs process: "
                 f"{result.speedup('workers', 'process'):.2f}x"
                 f"   workers vs serial: "
                 f"{result.speedup('workers', 'serial'):.2f}x")
    status = "OK" if result.equivalent else "FAILED"
    lines.append(f"  workers == serial records: {status}"
                 + (f" ({result.equivalence_detail})"
                    if result.equivalence_detail else ""))
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; exit 1 on equivalence failure, 2 on bad arguments."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign.hotpath",
        description="benchmark campaign executors (serial/process/workers) "
                    "on a chunked service-style launch of the smoke preset "
                    "and append to BENCH_campaign_throughput.json")
    parser.add_argument("--preset", type=str, default=DEFAULT_PRESET,
                        help=f"campaign preset to drive "
                             f"(default {DEFAULT_PRESET})")
    parser.add_argument("--repeats", type=int, default=3,
                        help="interleaved measurement blocks per executor; "
                             "the best block is recorded (default 3)")
    parser.add_argument("--repetitions", type=int, default=None,
                        help="override the preset's ensemble repetitions "
                             "(scales the run count)")
    parser.add_argument("--max-workers", type=int, default=None,
                        help="pool width (default: machine-derived)")
    parser.add_argument("--start-method", type=str, default=None,
                        choices=("spawn", "fork", "forkserver"),
                        help="worker start method (default spawn)")
    parser.add_argument("--output-dir", type=str, default=".",
                        help="directory of BENCH_campaign_throughput.json "
                             "(default .)")
    parser.add_argument("--no-persist", action="store_true",
                        help="measure and print only; do not touch the "
                             "BENCH_*.json history")
    args = parser.parse_args(argv)
    if args.repeats < 1:
        print("error: --repeats must be >= 1", file=sys.stderr)
        return 2
    if args.repetitions is not None and args.repetitions < 1:
        print("error: --repetitions must be >= 1", file=sys.stderr)
        return 2
    if args.max_workers is not None and args.max_workers < 1:
        print("error: --max-workers must be >= 1", file=sys.stderr)
        return 2
    result = run_campaign_benchmark(preset=args.preset, repeats=args.repeats,
                                    max_workers=args.max_workers,
                                    start_method=args.start_method,
                                    repetitions=args.repetitions)
    print(format_result(result))
    if not args.no_persist:
        path = persist_result(result, args.output_dir)
        print(f"  recorded in {path}")
    if not result.equivalent:
        print("error: workers and serial executors disagree: "
              f"{result.equivalence_detail}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
