"""Campaign execution: pluggable executors over resolved workflow runs.

The scheduler owns the mechanics the spec deliberately leaves out: *how*
the resolved runs get executed.  Executors share one contract —
``execute(payloads, worker, on_record)`` returns one
:class:`repro.campaign.store.RunRecord` per payload, with per-run retry,
a cooperative wall-clock timeout and every exception captured into the
record instead of raised — so future scaling work (sharded executors,
remote workers, result caching) only has to implement this interface.

* :class:`SerialExecutor`      — one run after another, in process,
* :class:`ThreadPoolCampaignExecutor`  — bounded thread fan-out; the
  coupled runs spend much of their time in numpy kernels that release the
  GIL, so tiny sweeps already overlap usefully,
* :class:`ProcessPoolCampaignExecutor` — bounded process fan-out for real
  CPU parallelism (the worker and payloads are picklable by construction),
* :class:`repro.campaign.sharding.ShardedExecutor` — partitions the runs
  across named shards under a routing policy and delegates each shard to
  any inner registered executor.

The timeout is *cooperative*: an in-flight run is never killed (neither
threads nor in-process work can be interrupted safely).  It budgets the
whole run including retries: a failing attempt is only retried while wall
time remains, and a successful attempt is always recorded completed — over
budget it keeps its result, annotated with a ``TimeoutWarning`` (discarding
finished work would re-execute it on every resume, forever).

:func:`run_campaign` ties spec, store, executor and (optionally) a
:class:`repro.campaign.cache.ResultCache` together: resolve the spec, skip
run ids the store already completed, serve cached runs without executing
them, execute the rest, append each record as it finishes.  Because the
cache lookup happens here — before executor dispatch — *every* executor
skips cached runs without knowing the cache exists.
"""

from __future__ import annotations

import logging
import os
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, \
    ThreadPoolExecutor, wait
from dataclasses import dataclass, field, replace
from typing import Callable, Deque, Dict, List, Optional, Sequence, Type

from repro.campaign.spec import CampaignSpec
from repro.campaign.store import (CampaignStore, RunRecord, STATUS_COMPLETED,
                                  STATUS_FAILED)
from repro.telemetry import (REGISTRY, Span, SpanRecorder, is_enabled,
                             new_id, recording, span, trace_path_for,
                             TraceWriter)

logger = logging.getLogger(__name__)

_RUNS_TOTAL = REGISTRY.counter(
    "repro_campaign_runs_total",
    "Run records produced, by campaign, status and cache origin")
_RUN_SECONDS = REGISTRY.histogram(
    "repro_campaign_run_seconds",
    "Per-run wall time (worker-executed runs), by campaign")
_RUNS_PER_SEC = REGISTRY.gauge(
    "repro_campaign_runs_per_sec",
    "Executed-run throughput of the current or latest launch, by campaign")

#: Executes one resolved run payload and returns a JSON-able summary dict.
RunWorker = Callable[[Dict[str, object]], Dict[str, object]]
#: Observes each record as it is produced (progress reporting, store append).
RecordCallback = Callable[[RunRecord], None]


def execute_run(payload: Dict[str, object]) -> Dict[str, object]:
    """Default worker: one coupled workflow run from a resolved payload.

    Module-level (hence picklable) so the process-pool executor can ship it
    to workers by reference.  Returns the uniform ``RunResult.summary()``.
    """
    from repro.core.config import WorkflowConfig
    from repro.workflow import WorkflowBuilder

    config = WorkflowConfig.from_dict(payload["config"])
    session = (WorkflowBuilder().config(config)
               .driver(payload["driver"]).build())
    result = session.run(int(payload["n_steps"]))
    result.raise_if_failed()
    return result.summary()


def _attempt_run(payload: Dict[str, object], worker: RunWorker,
                 retries: int, timeout: Optional[float]) -> RunRecord:
    """Run one payload with retry + cooperative timeout, capturing failures.

    The universal per-run wrapper: serial and thread executors call it in
    process, the process pool and warm worker pool call it inside their
    children.  That makes it the single place where the *execute* span of
    a trace opens — when the payload carries a ``trace`` propagation
    context (attached by :func:`run_campaign`), the attempt runs inside an
    ``execute`` span joined to the dispatching parent, and the finished
    spans travel back on the record as a ``_spans`` instance attribute
    (surviving pickling, invisible to ``asdict``/the store).
    """
    trace_ctx = payload.get("trace")
    if trace_ctx is None or not is_enabled():
        return _attempt_run_impl(payload, worker, retries, timeout)
    recorder = SpanRecorder()
    with recording(recorder):
        with span("execute", ctx=trace_ctx,
                  attrs={"run_id": payload["run_id"],
                         "pid": os.getpid()}) as execute_span:
            record = _attempt_run_impl(payload, worker, retries, timeout)
            if execute_span is not None:
                execute_span.attrs["attempts"] = record.attempts
                if record.status != STATUS_COMPLETED:
                    execute_span.status = "error"
    record._spans = [finished.to_dict() for finished in recorder.spans]
    return record


def _attempt_run_impl(payload: Dict[str, object], worker: RunWorker,
                      retries: int, timeout: Optional[float]) -> RunRecord:
    """The untraced body of :func:`_attempt_run`.

    ``timeout`` budgets the *whole run* including retries: a failing attempt
    is only retried while wall time is left.  A successful attempt is always
    recorded completed; over budget its record carries a ``TimeoutWarning``
    but the result is kept.
    """
    attempts = 0
    error: Optional[str] = None
    summary: Dict[str, object] = {}
    status = STATUS_FAILED
    started = time.perf_counter()

    def budget_spent() -> bool:
        return (timeout is not None
                and time.perf_counter() - started > timeout)

    while attempts <= retries:
        attempts += 1
        try:
            summary = worker(payload)
        except BaseException as exc:  # noqa: BLE001 - captured in the record
            error = f"{type(exc).__name__}: {exc}"
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            if budget_spent():
                break
            continue
        status = STATUS_COMPLETED
        total = time.perf_counter() - started
        if timeout is not None and total > timeout:
            # the work is done — discarding it (and re-running forever on
            # resume) helps nobody; keep the result, annotate the overrun
            error = (f"TimeoutWarning: run exceeded the {timeout:.1f} s "
                     f"budget ({total:.1f} s across {attempts} attempt(s)); "
                     f"result kept")
        else:
            error = None
        break
    return RunRecord(run_id=payload["run_id"], index=payload["index"],
                     params=dict(payload["params"]), driver=payload["driver"],
                     n_steps=int(payload["n_steps"]), status=status,
                     attempts=attempts,
                     elapsed_s=time.perf_counter() - started,
                     error=error, summary=summary)


#: Upper bound of the machine-derived default pool size: campaign runs are
#: memory-hungry (each worker holds a full coupled simulation), so "one
#: worker per hardware thread" stops paying off well before big core counts.
DEFAULT_MAX_POOL_WORKERS = 8


def default_pool_workers(maximum: int = DEFAULT_MAX_POOL_WORKERS) -> int:
    """The machine-derived default worker count of the pool executors.

    ``os.cpu_count()`` clamped to ``[2, maximum]``: at least two workers so
    concurrency semantics are always exercised (and a single-core box still
    overlaps the GIL-released numpy sections), at most ``maximum`` so a
    large host does not fork dozens of simulation processes by default.
    Callers wanting the machine's full width pass ``max_workers``
    explicitly.

    Args:
        maximum: upper clamp (default :data:`DEFAULT_MAX_POOL_WORKERS`).

    Returns:
        The default number of pool workers for this machine.
    """
    return max(2, min(os.cpu_count() or 1, maximum))


class CampaignExecutor:
    """Strategy interface: execute resolved run payloads into records."""

    name: str = "abstract"

    def __init__(self, max_workers: Optional[int] = None,
                 timeout: Optional[float] = None, retries: int = 0) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive")
        self.max_workers = max_workers
        self.timeout = timeout
        self.retries = int(retries)

    def execute(self, payloads: Sequence[Dict[str, object]], worker: RunWorker,
                on_record: Optional[RecordCallback] = None) -> List[RunRecord]:
        """Execute every payload, returning records in submission order.

        Args:
            payloads: resolved run payloads (``RunSpec.payload()`` dicts).
            worker: callable executing one payload into a summary dict.
            on_record: observer invoked once per finished record (in
                completion order, which may differ from submission order).

        Returns:
            One :class:`repro.campaign.store.RunRecord` per payload, in
            submission order; worker exceptions are captured into failed
            records, never raised.
        """
        raise NotImplementedError


class SerialExecutor(CampaignExecutor):
    """One run after another in the calling process (deterministic order)."""

    name = "serial"

    def execute(self, payloads, worker, on_record=None):
        """Run the payloads sequentially (see the base-class contract)."""
        records = []
        for payload in payloads:
            record = _attempt_run(payload, worker, self.retries, self.timeout)
            records.append(record)
            if on_record is not None:
                on_record(record)
        return records


class _PoolExecutorBase(CampaignExecutor):
    """Shared bounded-pool scaffolding of the concurrent executors."""

    pool_cls: type = None  # type: ignore[assignment]

    def execute(self, payloads, worker, on_record=None):
        payloads = list(payloads)
        if not payloads:
            return []
        n_workers = min(self.max_workers or default_pool_workers(),
                        len(payloads))
        by_future = {}
        futures = []
        with self.pool_cls(max_workers=n_workers) as pool:
            for payload in payloads:
                future = pool.submit(_attempt_run, payload, worker,
                                     self.retries, self.timeout)
                by_future[future] = payload
                futures.append(future)
            records = {}
            pending = set(by_future)
            try:
                self._drain(pending, by_future, records, on_record)
            except BaseException:
                # abort (Ctrl-C, store write failure, ...): stop queued runs
                # instead of silently executing — and discarding — them all
                pool.shutdown(wait=False, cancel_futures=True)
                raise
        # hand records back in submission order regardless of completion order
        return [records[future] for future in futures]

    @staticmethod
    def _drain(pending, by_future, records, on_record):
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                payload = by_future[future]
                try:
                    record = future.result()
                except (KeyboardInterrupt, SystemExit):
                    # _attempt_run re-raised it in the worker so the
                    # campaign aborts — don't log it as a failed run
                    raise
                except BaseException as exc:  # noqa: BLE001 - pool infrastructure died
                    record = RunRecord(
                        run_id=payload["run_id"], index=payload["index"],
                        params=dict(payload["params"]),
                        driver=payload["driver"],
                        n_steps=int(payload["n_steps"]),
                        status=STATUS_FAILED, attempts=1,
                        error=f"{type(exc).__name__}: {exc}")
                # keyed by future, not run_id: duplicate run ids in the
                # payload list must each keep their own record
                records[future] = record
                if on_record is not None:
                    on_record(record)


class ThreadPoolCampaignExecutor(_PoolExecutorBase):
    """Bounded thread fan-out (shared memory, GIL-released numpy kernels)."""

    name = "thread"
    pool_cls = ThreadPoolExecutor


class ProcessPoolCampaignExecutor(_PoolExecutorBase):
    """Bounded process fan-out: real CPU parallelism for bigger sweeps."""

    name = "process"
    pool_cls = ProcessPoolExecutor


# --------------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------------- #
_EXECUTORS: Dict[str, Type[CampaignExecutor]] = {
    SerialExecutor.name: SerialExecutor,
    ThreadPoolCampaignExecutor.name: ThreadPoolCampaignExecutor,
    ProcessPoolCampaignExecutor.name: ProcessPoolCampaignExecutor,
}


def available_executors() -> tuple:
    """The registered campaign executor names, sorted."""
    return tuple(sorted(_EXECUTORS))


def register_executor(name: str, executor_cls: Type[CampaignExecutor],
                      overwrite: bool = False) -> None:
    """Register a campaign executor (the hook for sharded/remote backends).

    Args:
        name: the registry key (what ``--executor`` and :func:`get_executor`
            accept).
        executor_cls: a :class:`CampaignExecutor` subclass.
        overwrite: allow replacing an existing registration.

    Raises:
        ValueError: if ``name`` is taken and ``overwrite`` is false.
    """
    if name in _EXECUTORS and not overwrite:
        raise ValueError(f"executor {name!r} is already registered")
    _EXECUTORS[name] = executor_cls


def get_executor(name: str, **kwargs) -> CampaignExecutor:
    """Instantiate a registered executor by name.

    Args:
        name: one of :func:`available_executors` (``serial``, ``thread``,
            ``process``, ``sharded``, or a user-registered backend).
        **kwargs: forwarded to the executor's constructor.

    Returns:
        A fresh executor instance.

    Raises:
        ValueError: on an unknown name or constructor-rejected options.
    """
    try:
        executor_cls = _EXECUTORS[name]
    except KeyError:
        raise ValueError(f"unknown executor {name!r}; valid executors: "
                         f"{', '.join(available_executors())}") from None
    return executor_cls(**kwargs)


# --------------------------------------------------------------------------- #
# the engine: spec + store + executor
# --------------------------------------------------------------------------- #
@dataclass
class CampaignOutcome:
    """What one campaign launch did (not necessarily the whole campaign)."""

    campaign: str
    total_runs: int                 #: resolved size of the campaign
    skipped: int                    #: already complete in the store
    executed: int                   #: runs executed by a worker this launch
    completed: int                  #: completed records (cache hits included)
    failed: int
    deferred: int = 0               #: pending runs left out by ``max_runs``
    cache_hits: int = 0             #: runs served from the result cache
    records: List[RunRecord] = field(default_factory=list)

    @property
    def done(self) -> bool:
        """Whether the whole campaign is now complete."""
        return self.skipped + self.completed == self.total_runs

    def summary(self) -> Dict[str, object]:
        """The outcome as a flat JSON-able dict (the CLI ``--json`` shape)."""
        return {"campaign": self.campaign, "total_runs": self.total_runs,
                "skipped": self.skipped, "cache_hits": self.cache_hits,
                "executed": self.executed, "completed": self.completed,
                "failed": self.failed, "deferred": self.deferred,
                "done": self.done}


class _LaunchTrace:
    """Parent-side span bookkeeping of one :func:`run_campaign` launch.

    Owns the launch's root ``campaign`` span and the
    :class:`repro.telemetry.export.TraceWriter` appending next to the
    store.  Each pending payload gets a ``dispatch`` child whose context
    rides the payload into the executor; when the record settles back,
    :meth:`finish_run` emits the ``settle`` span, replays the worker-side
    ``execute`` (+ phase) spans, and closes the dispatch — yielding one
    resolve → dispatch → execute → settle tree per run, correlated by the
    launch's trace id.
    """

    def __init__(self, spec: CampaignSpec, store: CampaignStore,
                 executor: CampaignExecutor) -> None:
        self.writer = TraceWriter(trace_path_for(store.path))
        self.root = Span(name="campaign", trace_id=new_id(),
                         attrs={"campaign": spec.name,
                                "executor": getattr(executor, "name",
                                                    type(executor).__name__),
                                "pid": os.getpid()})
        self._lock = threading.Lock()
        # run_id -> open dispatch spans; a deque because a payload list may
        # legitimately contain duplicate run ids (each keeps its own span)
        self._open: Dict[str, Deque[Span]] = {}

    def resolve_done(self, n_runs: int, n_pending: int,
                     started_s: float) -> None:
        """Emit the ``resolve`` child covering spec resolution + store scan."""
        self.writer.emit(Span(name="resolve", trace_id=self.root.trace_id,
                              parent_id=self.root.span_id, start_s=started_s,
                              end_s=time.time(),
                              attrs={"n_runs": n_runs,
                                     "n_pending": n_pending}))

    def attach(self, payload: Dict[str, object]) -> None:
        """Open a ``dispatch`` span for a payload and embed its context."""
        dispatch = Span(name="dispatch", trace_id=self.root.trace_id,
                        parent_id=self.root.span_id,
                        attrs={"run_id": payload["run_id"]})
        with self._lock:
            self._open.setdefault(str(payload["run_id"]),
                                  deque()).append(dispatch)
        payload["trace"] = {"trace_id": dispatch.trace_id,
                            "span_id": dispatch.span_id}

    def finish_run(self, record: RunRecord,
                   child_spans: Optional[List[dict]],
                   settle_start: float) -> None:
        """Settle one record's tree (called under the launch record lock).

        Cache hits never had a dispatch span; their ``settle`` parents
        directly at the root.
        """
        with self._lock:
            waiting = self._open.get(record.run_id)
            dispatch = waiting.popleft() if waiting else None
        parent = dispatch if dispatch is not None else self.root
        self.writer.emit(Span(name="settle", trace_id=self.root.trace_id,
                              parent_id=parent.span_id, start_s=settle_start,
                              end_s=time.time(),
                              attrs={"run_id": record.run_id,
                                     "status": record.status,
                                     "cached": record.cached}))
        for row in child_spans or ():
            self.writer.emit(row)
        if dispatch is not None:
            dispatch.attrs["status"] = record.status
            if record.status != STATUS_COMPLETED:
                dispatch.status = "error"
            self.writer.emit(dispatch.finish())

    def finish(self, executor: CampaignExecutor,
               outcome: "CampaignOutcome") -> None:
        """Close the root span with the launch totals and executor stats."""
        stats = getattr(executor, "last_stats", None)
        if stats:
            self.root.attrs["executor_stats"] = dict(stats)
        self.root.attrs.update(
            {"executed": outcome.executed, "completed": outcome.completed,
             "failed": outcome.failed, "cache_hits": outcome.cache_hits,
             "skipped": outcome.skipped})
        self.writer.emit(self.root.finish())
        self.writer.close()

    def abort(self) -> None:
        """Close the root as errored (launch died mid-execution)."""
        self.root.attrs["aborted"] = True
        self.writer.emit(self.root.finish(status="error"))
        self.writer.close()


def run_campaign(spec: CampaignSpec, store: CampaignStore,
                 executor: Optional[CampaignExecutor] = None,
                 worker: RunWorker = execute_run,
                 max_runs: Optional[int] = None,
                 on_record: Optional[RecordCallback] = None,
                 runs=None, completed_ids=None,
                 cache=None) -> CampaignOutcome:
    """Execute (or resume) a campaign: run whatever the store has not completed.

    Every finished run is appended to the store immediately, so a campaign
    interrupted mid-launch resumes from the last completed run.  Failed runs
    are *not* skipped on re-launch — they get a fresh chance.  ``max_runs``
    bounds how many pending runs this launch attempts (useful for smoke
    tests and for deliberately staged campaigns).  ``runs`` /
    ``completed_ids`` accept the spec's already-resolved run list and the
    store's completed-id set so callers that computed them for reporting
    don't pay for resolution or a store re-read twice.

    Args:
        spec: the campaign to execute.
        store: this campaign's append-only record log.
        executor: execution backend (default: a fresh serial executor).
        worker: callable executing one resolved payload (default: the real
            coupled workflow run).
        max_runs: at most this many pending runs this launch (cache hits
            count against the bound — they consume pending slots).
        on_record: observer invoked once per produced record.  Dispatch is
            serialised with the store append under one lock (concurrent
            executors produce records from several threads), and a raising
            observer is logged and detached — a broken progress reporter or
            event subscriber must not kill the executor drain loop mid-
            campaign.  Store/cache write failures still abort the launch.
        runs: pre-resolved ``spec.resolve()`` list (skips re-resolution).
        completed_ids: pre-read ``store.completed_run_ids()`` set.
        cache: optional :class:`repro.campaign.cache.ResultCache`; pending
            runs found there are recorded (``cached=True``) without being
            executed, and newly completed runs are added to it.

    Returns:
        The launch's :class:`CampaignOutcome`; ``executed`` counts only
        worker-executed runs, cache hits are reported separately.

    Raises:
        ValueError: on a negative ``max_runs``.
        OSError: if the store (or cache) becomes unwritable mid-launch.
    """
    executor = executor or SerialExecutor()
    if max_runs is not None and max_runs < 0:
        raise ValueError("max_runs must be >= 0")
    trace = _LaunchTrace(spec, store, executor) if is_enabled() else None
    resolve_started = time.time()
    launch_started = time.perf_counter()
    runs = spec.resolve() if runs is None else runs
    done_ids = store.completed_run_ids() if completed_ids is None \
        else completed_ids
    pending = [run for run in runs if run.run_id not in done_ids]
    skipped = len(runs) - len(pending)
    deferred = 0
    if max_runs is not None:
        deferred = max(0, len(pending) - max_runs)
        pending = pending[:max_runs]
    if trace is not None:
        trace.resolve_done(len(runs), len(pending), resolve_started)

    record_lock = threading.Lock()
    observer = {"callback": on_record}
    progress = {"executed": 0}

    def record_and_store(record: RunRecord) -> None:
        # worker-side spans ride the record as an undeclared attribute;
        # strip them before the record reaches the store or any observer
        child_spans = record.__dict__.pop("_spans", None)
        # one lock around append + cache + dispatch: concurrent executors
        # call this from pool/drain threads, and observers (progress
        # printers, event buses) must see records one at a time, in the
        # order they were persisted
        with record_lock:
            settle_started = time.time()
            store.append(record)
            if cache is not None:
                cache.put(record)   # refuses failed + already-cached records
            if trace is not None:
                trace.finish_run(record, child_spans, settle_started)
            _RUNS_TOTAL.inc(1, campaign=spec.name, status=record.status,
                            cached=str(record.cached).lower())
            if not record.cached:
                _RUN_SECONDS.observe(record.elapsed_s, campaign=spec.name)
                progress["executed"] += 1
                launch_elapsed = time.perf_counter() - launch_started
                if launch_elapsed > 0:
                    _RUNS_PER_SEC.set(progress["executed"] / launch_elapsed,
                                      campaign=spec.name)
            callback = observer["callback"]
            if callback is None:
                return
            try:
                callback(record)
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException:  # noqa: BLE001 - observer bug, not ours
                # a broken observer must not kill the drain loop (and with
                # it every in-flight run); detach it and keep executing
                observer["callback"] = None
                logger.exception(
                    "campaign %r: on_record observer raised on run %s; "
                    "detaching it for the rest of this launch",
                    spec.name, record.run_id)

    # cache pass first: whatever is already computed anywhere is recorded
    # into this campaign's store without dispatching it to the executor
    by_position: Dict[int, RunRecord] = {}
    to_execute = list(enumerate(pending))
    if cache is not None:
        to_execute = []
        for position, run in enumerate(pending):
            hit = cache.get(run.run_id)
            if hit is None:
                to_execute.append((position, run))
                continue
            # the entry may come from a different campaign over the same
            # resolved run: re-key its position/params to *this* spec
            record = replace(hit, index=run.index, params=dict(run.params))
            by_position[position] = record
            record_and_store(record)

    payloads = [run.payload() for _, run in to_execute]
    if trace is not None:
        for payload in payloads:
            trace.attach(payload)
    try:
        executed = executor.execute(payloads, worker,
                                    on_record=record_and_store)
    except BaseException:
        if trace is not None:
            trace.abort()
        raise
    for (position, _), record in zip(to_execute, executed):
        by_position[position] = record
    records = [by_position[position] for position in range(len(pending))]
    completed = sum(1 for record in records if record.completed)
    outcome = CampaignOutcome(campaign=spec.name, total_runs=len(runs),
                              skipped=skipped, executed=len(to_execute),
                              completed=completed,
                              failed=len(records) - completed,
                              deferred=deferred,
                              cache_hits=len(pending) - len(to_execute),
                              records=records)
    if trace is not None:
        trace.finish(executor, outcome)
    return outcome
