"""Declarative campaign specifications: one spec, many workflow runs.

A :class:`CampaignSpec` turns a base :class:`repro.core.config.WorkflowConfig`
(named preset or inline dict) plus a parameter space into a resolved list of
:class:`RunSpec` — one fully-determined coupled run each.  Parameters address
``WorkflowConfig`` fields with dotted paths (``khi.seed``, ``ml.model.latent_dim``,
``ml.base_learning_rate``, ``seed``) plus the two run-level keys ``driver``
and ``n_steps``.

Three samplers are supported:

* ``grid``     — the cartesian product of every parameter's value list,
* ``random``   — ``n_samples`` independent draws (value lists are sampled
  uniformly; ``{"low": a, "high": b}`` draws a uniform float, add
  ``"log": true`` for log-uniform),
* ``explicit`` — a hand-written list of override mappings.

Every resolved point is expanded ``repetitions`` times into an ensemble:
each member receives its own deterministic seed derived from the campaign
seed through :func:`repro.utils.rng.spawn_rngs`, so re-resolving the same
spec always reproduces the same runs.  A run's identity is the SHA-256 hash
of its resolved config + driver + step count, which is what makes campaigns
resumable (see :mod:`repro.campaign.store`).

Like ``WorkflowConfig``, specs round-trip losslessly through dicts and JSON
files (``to_dict``/``from_dict``/``to_file``/``from_file``).  A spec may
also carry execution *hints* — ``routing`` (sharded-executor defaults) and
``cache_dir`` (result-cache directory) — which the CLI honours but which
are deliberately **not** part of run identity: resharding a campaign or
pointing it at a cache never changes its run ids.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import warnings
from dataclasses import asdict, dataclass, field, fields
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.config import WorkflowConfig
from repro.utils.rng import derive_seed, seeded_rng, spawn_rngs
from repro.workflow.drivers import available_drivers
from repro.workflow.presets import get_preset

#: Parameter keys that configure the run itself rather than the workflow config.
RUN_LEVEL_KEYS = ("driver", "n_steps")

SAMPLERS = ("grid", "random", "explicit")

#: Keys a spec's ``routing`` mapping may carry (sharded-execution hints).
ROUTING_KEYS = ("shards", "route", "inner", "assignments")


def _as_int(name: str, value: object, minimum: Optional[int] = None) -> int:
    """Coerce an integer-valued field, refusing silent float truncation."""
    if not isinstance(value, int):
        if isinstance(value, float) and not value.is_integer():
            # int() would silently truncate (2.5 -> 2), changing the run
            # (and its run-id hash) without a trace
            raise ValueError(f"{name} must be an integer, got {value!r}")
        try:
            value = int(value)
        except (TypeError, ValueError):
            raise ValueError(
                f"{name} must be an integer, got {value!r}") from None
    if minimum is not None and value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value!r}")
    return value


def apply_override(config_dict: Dict[str, object], path: str, value: object) -> None:
    """Set one dotted-path override in a ``WorkflowConfig.to_dict()`` dict.

    The full path must already exist in the dict (``to_dict`` emits every
    key), so typos fail loudly with the valid keys at the failing level.
    """
    parts = path.split(".")
    node = config_dict
    for depth, part in enumerate(parts[:-1]):
        child = node.get(part)
        if not isinstance(child, dict):
            raise ValueError(
                f"override {path!r}: {'.'.join(parts[:depth + 1])!r} is not a "
                f"config section; sections here: "
                f"{', '.join(sorted(k for k, v in node.items() if isinstance(v, dict)))}")
        node = child
    leaf = parts[-1]
    if leaf not in node:
        raise ValueError(f"override {path!r}: unknown key {leaf!r}; valid keys: "
                         f"{', '.join(sorted(node))}")
    node[leaf] = value


def run_id_of(config_dict: Mapping[str, object], driver: str, n_steps: int) -> str:
    """Stable run identity: SHA-256 of the resolved run payload."""
    payload = json.dumps({"config": config_dict, "driver": driver,
                          "n_steps": n_steps}, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class RunSpec:
    """One fully-resolved member of a campaign."""

    run_id: str                     #: hash of (config, driver, n_steps)
    index: int                      #: position in the resolved campaign
    params: Dict[str, object]       #: the swept overrides that shaped this run
    config: Dict[str, object]       #: resolved ``WorkflowConfig.to_dict()`` payload
    driver: str
    n_steps: int
    repetition: int = 0             #: ensemble member index at this point

    def build_config(self) -> WorkflowConfig:
        """Rebuild the run's :class:`WorkflowConfig` from its resolved dict."""
        return WorkflowConfig.from_dict(self.config)

    def payload(self) -> Dict[str, object]:
        """The picklable dict handed to campaign executors/workers."""
        return {"run_id": self.run_id, "index": self.index,
                "params": dict(self.params), "config": self.config,
                "driver": self.driver, "n_steps": self.n_steps,
                "repetition": self.repetition}


@dataclass
class CampaignSpec:
    """Everything needed to resolve and execute one campaign."""

    name: str = "campaign"
    #: named workflow preset providing the base config (ignored when
    #: ``base_config`` is given)
    base_preset: str = "cli-small"
    #: inline base config (``WorkflowConfig.to_dict()`` shape); overrides
    #: applied on top of a fresh copy per run
    base_config: Optional[Dict[str, object]] = None
    sampler: str = "grid"
    #: dotted path -> value list (grid / random choices) or, for ``random``
    #: only, ``{"low": a, "high": b[, "log": true]}`` range specs
    parameters: Dict[str, object] = field(default_factory=dict)
    #: hand-written override mappings (``sampler="explicit"`` only)
    explicit: List[Dict[str, object]] = field(default_factory=list)
    n_samples: int = 8              #: draws for the ``random`` sampler
    repetitions: int = 1            #: ensemble members per sampled point
    n_steps: int = 2                #: simulation steps per run
    driver: str = "serial"          #: workflow execution driver per run
    seed: int = 7                   #: campaign seed: drives sampling + per-run seeds
    #: sharded-execution defaults consumed by the CLI and
    #: :class:`repro.campaign.sharding.ShardedExecutor`: keys ``shards``
    #: (int >= 1), ``route`` (router name), ``inner`` (inner executor name)
    #: and ``assignments`` (explicit ``run_id -> shard`` map).  Never part
    #: of run identity — two specs differing only here resolve to the same
    #: run ids.
    routing: Dict[str, object] = field(default_factory=dict)
    #: default :class:`repro.campaign.cache.ResultCache` directory for this
    #: campaign (the CLI ``--cache-dir`` flag overrides it); also outside
    #: run identity
    cache_dir: Optional[str] = None

    def __post_init__(self) -> None:
        # coerce integer fields up front so a hand-written spec file with
        # e.g. "repetitions": "2" fails (or converts) with a clear message
        # instead of a TypeError deep in a comparison
        for name in ("n_samples", "repetitions", "n_steps", "seed"):
            setattr(self, name, _as_int(name, getattr(self, name)))
        if not isinstance(self.parameters, Mapping):
            raise ValueError(f"parameters must be a mapping of dotted config "
                             f"paths to value specs, got {self.parameters!r}")
        if (not isinstance(self.explicit, (list, tuple))
                or not all(isinstance(point, Mapping)
                           for point in self.explicit)):
            raise ValueError(f"explicit must be a list of override mappings, "
                             f"got {self.explicit!r}")
        if (self.base_config is not None
                and not isinstance(self.base_config, Mapping)):
            raise ValueError(f"base_config must be a WorkflowConfig dict, "
                             f"got {self.base_config!r}")
        if self.sampler not in SAMPLERS:
            raise ValueError(f"unknown sampler {self.sampler!r}; valid samplers: "
                             f"{', '.join(SAMPLERS)}")
        if self.repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        if self.n_samples < 1:
            raise ValueError("n_samples must be >= 1")
        if self.n_steps < 1:
            raise ValueError("n_steps must be >= 1")
        if self.sampler == "explicit" and not self.explicit:
            raise ValueError("sampler 'explicit' needs a non-empty explicit list")
        if self.sampler != "explicit" and self.explicit:
            raise ValueError("explicit points require sampler='explicit'")
        self._validate_routing()
        if self.cache_dir is not None and not isinstance(self.cache_dir, str):
            raise ValueError(f"cache_dir must be a directory path string, "
                             f"got {self.cache_dir!r}")

    def _validate_routing(self) -> None:
        """Type-check the routing hints (names are resolved at executor build)."""
        if not isinstance(self.routing, Mapping):
            raise ValueError(f"routing must be a mapping with keys "
                             f"{', '.join(ROUTING_KEYS)}; got {self.routing!r}")
        self.routing = dict(self.routing)
        unknown = sorted(set(self.routing) - set(ROUTING_KEYS))
        if unknown:
            raise ValueError(f"unknown routing keys {unknown}; valid keys: "
                             f"{', '.join(ROUTING_KEYS)}")
        if "shards" in self.routing:
            self.routing["shards"] = _as_int("routing.shards",
                                             self.routing["shards"], minimum=1)
        for key in ("route", "inner"):
            if key in self.routing and not isinstance(self.routing[key], str):
                raise ValueError(f"routing.{key} must be a name string, "
                                 f"got {self.routing[key]!r}")
        if "assignments" in self.routing:
            if not isinstance(self.routing["assignments"], Mapping):
                raise ValueError(
                    f"routing.assignments must map run ids to shard indices, "
                    f"got {self.routing['assignments']!r}")
            # mirror the sampler/explicit strictness: assignments under a
            # non-explicit route would be silently ignored at execution
            if self.routing.get("route") != "explicit":
                raise ValueError("routing.assignments requires "
                                 "routing.route='explicit'")

    # -- sampling ----------------------------------------------------------- #
    def _base_dict(self) -> Dict[str, object]:
        if self.base_config is not None:
            # validate + normalise through the config round-trip
            return WorkflowConfig.from_dict(self.base_config).to_dict()
        return get_preset(self.base_preset).to_dict()

    def _points(self) -> List[Dict[str, object]]:
        """The sampled override mappings, before ensemble expansion."""
        if self.sampler == "explicit":
            return [dict(point) for point in self.explicit]
        if self.sampler == "grid":
            if not self.parameters:
                return [{}]
            keys = sorted(self.parameters)
            for key in keys:
                values = self.parameters[key]
                if not isinstance(values, (list, tuple)) or not values:
                    raise ValueError(f"grid parameter {key!r} needs a non-empty "
                                     f"value list, got {values!r}")
            return [dict(zip(keys, combo))
                    for combo in itertools.product(*(self.parameters[k] for k in keys))]
        # random
        if not self.parameters:
            raise ValueError("sampler 'random' needs at least one parameter")
        rng = seeded_rng(derive_seed(self.seed, 17))
        points = []
        for _ in range(self.n_samples):
            point = {}
            for key in sorted(self.parameters):
                spec = self.parameters[key]
                if isinstance(spec, (list, tuple)) and spec:
                    point[key] = spec[int(rng.integers(0, len(spec)))]
                elif isinstance(spec, Mapping) and {"low", "high"} <= set(spec):
                    low, high = float(spec["low"]), float(spec["high"])
                    if spec.get("log"):
                        if low <= 0:
                            raise ValueError(
                                f"random parameter {key!r}: a log-uniform "
                                f"range needs low > 0, got low={low!r}")
                        import math
                        point[key] = float(math.exp(
                            rng.uniform(math.log(low), math.log(high))))
                    else:
                        point[key] = float(rng.uniform(low, high))
                else:
                    raise ValueError(
                        f"random parameter {key!r} needs a non-empty value list "
                        f"or a {{'low', 'high'}} range, got {spec!r}")
            points.append(point)
        return points

    def resolve(self) -> List[RunSpec]:
        """Expand the spec into its fully-determined runs.

        Deterministic: the same spec always resolves to the same runs with
        the same run ids.  Duplicate resolved runs (e.g. the random sampler
        drawing one point twice) are dropped, keeping the first occurrence.
        """
        base = self._base_dict()
        points = self._points()
        children = spawn_rngs(self.seed, len(points) * self.repetitions)
        runs: List[RunSpec] = []
        seen_ids = set()
        dropped = 0
        for point_index, point in enumerate(points):
            for repetition in range(self.repetitions):
                child = children[point_index * self.repetitions + repetition]
                child_seed = int(child.integers(0, 2**63 - 1))
                config = json.loads(json.dumps(base))  # deep copy, JSON types only
                driver, n_steps = self.driver, self.n_steps
                # the derived ensemble seed applies unless the sweep pins one
                if "seed" not in point:
                    apply_override(config, "seed", child_seed)
                if "khi.seed" not in point:
                    apply_override(config, "khi.seed", child_seed)
                for key, value in point.items():
                    if key == "driver":
                        driver = str(value)
                    elif key == "n_steps":
                        # swept values get the same guard as the spec field:
                        # no silent 2.5 -> 2 truncation, no 0-step runs
                        n_steps = _as_int("swept n_steps", value, minimum=1)
                    else:
                        apply_override(config, key, value)
                # fail at resolve time, not deep inside a worker process
                WorkflowConfig.from_dict(config)
                if driver not in available_drivers():
                    raise ValueError(
                        f"unknown driver {driver!r}; valid drivers: "
                        f"{', '.join(available_drivers())}")
                run_id = run_id_of(config, driver, n_steps)
                if run_id in seen_ids:
                    dropped += 1
                    continue
                seen_ids.add(run_id)
                runs.append(RunSpec(run_id=run_id, index=len(runs),
                                    params=dict(point), config=config,
                                    driver=driver, n_steps=n_steps,
                                    repetition=repetition))
        if dropped:
            # e.g. repetitions with every seed pinned by the sweep: the
            # ensemble members are byte-identical runs — surface the shrink
            # instead of silently delivering a smaller campaign
            warnings.warn(
                f"campaign {self.name!r}: dropped {dropped} duplicate "
                f"resolved run(s); repetitions with pinned seeds (or a "
                f"random sampler drawing a point twice) produce identical "
                f"configs", RuntimeWarning, stacklevel=2)
        return runs

    # -- serialisation ------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """The spec as a plain JSON-able dict (lossless round-trip)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CampaignSpec":
        """Rebuild (and re-validate) a spec from its :meth:`to_dict` form.

        Raises:
            ValueError: on unknown keys or invalid field values — a typo'd
                spec file fails loudly with the valid keys listed.
        """
        valid = {spec.name for spec in fields(cls)}
        unknown = sorted(set(data) - valid)
        if unknown:
            raise ValueError(f"unknown CampaignSpec keys {unknown}; valid keys: "
                             f"{', '.join(sorted(valid))}")
        return cls(**dict(data))

    def to_file(self, path: str) -> None:
        """Write the spec as an indented JSON file (``from_file`` reads it)."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2)

    @classmethod
    def from_file(cls, path: str) -> "CampaignSpec":
        """Load a spec from a :meth:`to_file` JSON dump.

        Raises:
            ValueError: if the file is not a valid spec.
            OSError: if the file cannot be read.
        """
        with open(path, encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    # -- introspection ------------------------------------------------------ #
    def swept_parameters(self) -> List[str]:
        """The parameter names this campaign varies (sorted)."""
        if self.sampler == "explicit":
            names = set()
            for point in self.explicit:
                names.update(point)
            return sorted(names)
        return sorted(self.parameters)
