"""Append-only campaign result store: one JSON line per finished run.

The store is the campaign's durable memory.  Every record is keyed by the
run id (the hash of the resolved run payload, see
:func:`repro.campaign.spec.run_id_of`), so a re-launched campaign can skip
runs that already completed: that is the whole resumability story — no
marker files, no partial-state serialisation, just "is this run id in the
log with status ``completed``".

Records are appended (never rewritten) and flushed per line, so a campaign
killed mid-flight loses at most the run that was in progress.  When one run
id appears more than once — e.g. a failed run retried by a later launch —
the **last** record wins.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set

from repro.utils.serialization import jsonable

#: Run record status values.
STATUS_COMPLETED = "completed"
STATUS_FAILED = "failed"


@dataclass
class RunRecord:
    """Outcome of one campaign run, as persisted to the store.

    ``summary`` is the uniform :meth:`repro.workflow.report.RunResult.summary`
    dict of the underlying workflow run (empty for failed runs), so campaign
    tooling reuses the exact schema every execution driver already returns.
    """

    run_id: str
    index: int
    params: Dict[str, object]
    driver: str
    n_steps: int
    status: str                     #: ``completed`` or ``failed``
    attempts: int = 1
    elapsed_s: float = 0.0
    error: Optional[str] = None
    summary: Dict[str, object] = field(default_factory=dict)
    #: served from a :class:`repro.campaign.cache.ResultCache` instead of
    #: being executed by this launch (``elapsed_s``/``summary`` are the
    #: original run's)
    cached: bool = False

    @property
    def completed(self) -> bool:
        """Whether this run finished with status ``completed``."""
        return self.status == STATUS_COMPLETED

    def to_dict(self) -> Dict[str, object]:
        """The record as a plain JSON-able dict (one store row)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RunRecord":
        """Rebuild a record from its :meth:`to_dict` row.

        Rows written before the ``cached`` field existed load with
        ``cached=False``.

        Raises:
            TypeError: if ``data`` is not a run-record row.
        """
        return cls(**dict(data))


class CampaignStore:
    """Append-only JSONL log of :class:`RunRecord` rows."""

    def __init__(self, path: str) -> None:
        self.path = str(path)

    # -- writing ------------------------------------------------------------ #
    def append(self, record: RunRecord) -> None:
        """Append one record and flush it to disk immediately."""
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        # a process killed mid-append leaves a partial line without its
        # newline; start a fresh line so the new record is not glued to
        # (and lost with) the truncated one
        needs_newline = False
        if os.path.exists(self.path) and os.path.getsize(self.path) > 0:
            with open(self.path, "rb") as tail:
                tail.seek(-1, os.SEEK_END)
                needs_newline = tail.read(1) != b"\n"
        # jsonable: numpy scalars to JSON types, non-finite floats to null —
        # a bare NaN token would make the line invalid strict JSON
        row = json.dumps(jsonable(record.to_dict()), sort_keys=True,
                         allow_nan=False)
        with open(self.path, "a", encoding="utf-8") as handle:
            if needs_newline:
                handle.write("\n")
            handle.write(row + "\n")
            handle.flush()

    # -- reading ------------------------------------------------------------ #
    def _rows(self) -> Iterable[Dict[str, object]]:
        if not os.path.exists(self.path):
            return
        with open(self.path, encoding="utf-8") as handle:
            for number, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    # a truncated line from a kill mid-append (later appends
                    # start a fresh line, so it may sit mid-file): at most
                    # one in-progress run is lost, the rest must stay usable
                    warnings.warn(
                        f"campaign store {self.path}: skipping unparseable "
                        f"line {number}", RuntimeWarning, stacklevel=3)

    def records(self) -> List[RunRecord]:
        """Every run's latest record, in first-seen order."""
        latest: Dict[str, RunRecord] = {}
        for position, row in enumerate(self._rows(), 1):
            try:
                record = RunRecord.from_dict(row)
            except (TypeError, ValueError):
                # valid JSON but not a run record: this is not (or no
                # longer) a campaign store — fail loudly, not per-row
                raise ValueError(
                    f"{self.path} is not a campaign store: row {position} "
                    f"is not a campaign run record") from None
            latest[record.run_id] = record
        return list(latest.values())

    def completed_run_ids(self) -> Set[str]:
        """Run ids whose latest record completed — the resume skip-list."""
        return {record.run_id for record in self.records() if record.completed}

    def counts(self) -> Dict[str, int]:
        """Latest-record counts per status (``completed`` / ``failed``)."""
        out = {STATUS_COMPLETED: 0, STATUS_FAILED: 0}
        for record in self.records():
            out[record.status] = out.get(record.status, 0) + 1
        return out

    def __len__(self) -> int:
        return len(self.records())
