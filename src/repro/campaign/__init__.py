"""repro.campaign — parameter-sweep & ensemble campaigns over workflow sessions.

The paper's Artificial Scientist pays off when the coupled simulation +
in-transit-learning loop runs at scale across many physics scenarios, not
as one hand-launched session.  This subsystem turns one declarative
:class:`CampaignSpec` into a fleet of :mod:`repro.workflow` runs:

* :mod:`repro.campaign.spec`      — grid/random/explicit sampling over
  dotted ``WorkflowConfig`` overrides with deterministic per-run seeds,
* :mod:`repro.campaign.scheduler` — pluggable executors (serial / thread /
  process pools) with bounded concurrency, per-run timeout/retry and
  captured exceptions, plus :func:`run_campaign` tying everything together,
* :mod:`repro.campaign.store`     — the append-only JSONL result log keyed
  by run-id hash that makes campaigns resumable,
* :mod:`repro.campaign.sharding`  — the sharded executor: partition a
  campaign across named shards under a routing policy (hash / round-robin
  / explicit) and delegate each shard to any registered inner executor,
* :mod:`repro.campaign.cache`     — the content-addressed per-run result
  cache: completed runs are reusable across campaigns, not just within
  one store,
* :mod:`repro.campaign.workers`   — the persistent worker-pool executor:
  long-lived warm worker processes shared across calls/chunks/campaigns,
  batched pipe dispatch, heartbeats, straggler re-dispatch and
  crash-requeue,
* :mod:`repro.campaign.hotpath`   — the campaign-throughput benchmark
  harness persisting ``BENCH_campaign_throughput.json`` records,
* :mod:`repro.campaign.aggregate` — the campaign-level report (per-parameter
  stats, best-run selection, throughput, cache provenance),
* :mod:`repro.campaign.presets`   — named campaigns (``campaign-smoke``,
  ``campaign-smoke-sharded``).

CLI access: ``python -m repro.cli campaign run|status|report``.
See ``docs/campaigns.md`` and ``docs/extending-executors.md``.
"""

from repro.campaign.aggregate import (CampaignReport, aggregate,
                                      status_document)
from repro.campaign.cache import ResultCache
from repro.campaign.presets import (available_campaign_presets,
                                    get_campaign_preset,
                                    register_campaign_preset)
from repro.campaign.scheduler import (CampaignExecutor, CampaignOutcome,
                                      ProcessPoolCampaignExecutor,
                                      SerialExecutor,
                                      ThreadPoolCampaignExecutor,
                                      available_executors,
                                      default_pool_workers, execute_run,
                                      get_executor, register_executor,
                                      run_campaign)
from repro.campaign.workers import (WorkerPool, WorkerPoolExecutor,
                                    shared_pool, shutdown_shared_pools)
from repro.campaign.sharding import (ExplicitRouter, HashRouter,
                                     RoundRobinRouter, ShardedExecutor,
                                     WorkloadRouter, available_routers,
                                     get_router, register_router,
                                     stable_shard_hash)
from repro.campaign.spec import (CampaignSpec, RunSpec, apply_override,
                                 run_id_of)
from repro.campaign.store import CampaignStore, RunRecord

__all__ = [
    "CampaignSpec",
    "RunSpec",
    "apply_override",
    "run_id_of",
    "CampaignStore",
    "RunRecord",
    "CampaignExecutor",
    "SerialExecutor",
    "ThreadPoolCampaignExecutor",
    "ProcessPoolCampaignExecutor",
    "ShardedExecutor",
    "WorkloadRouter",
    "HashRouter",
    "RoundRobinRouter",
    "ExplicitRouter",
    "available_routers",
    "get_router",
    "register_router",
    "stable_shard_hash",
    "ResultCache",
    "WorkerPool",
    "WorkerPoolExecutor",
    "shared_pool",
    "shutdown_shared_pools",
    "default_pool_workers",
    "available_executors",
    "get_executor",
    "register_executor",
    "execute_run",
    "run_campaign",
    "CampaignOutcome",
    "CampaignReport",
    "aggregate",
    "status_document",
    "available_campaign_presets",
    "get_campaign_preset",
    "register_campaign_preset",
]
