"""Persistent worker-pool campaign execution: warm workers, batched dispatch.

Every other concurrent executor in this repo pays its start-up cost per
``execute()`` call: :class:`repro.campaign.scheduler.ProcessPoolCampaignExecutor`
constructs a fresh ``ProcessPoolExecutor`` inside each call, so a
service-style chunked campaign launch (small ``run_campaign`` slices
between cooperative-cancel checks, see :mod:`repro.service.jobs`) re-pays
process spawn, interpreter start and the numpy/repro import for **every
chunk**.  This module removes that tax:

* a :class:`WorkerPool` owns **long-lived worker processes** that import
  repro once and stay warm across ``execute()`` calls, chunks, campaigns
  and (via :func:`shared_pool`) across every executor instance in the
  process — the service's job manager and the CLI lease the same pool;
* dispatch is **batched**: one pipe message carries a whole batch of run
  payloads (plus the worker callable, pickled once per batch), so IPC and
  pickling are amortised instead of paid per run;
* workers send **heartbeats** from a background thread; a worker silent
  past the liveness deadline (or whose process died) is terminated,
  respawned warm, and its in-flight runs are **requeued** — safe because
  run records are idempotent (the store keeps the last record per run id
  and :class:`repro.campaign.cache.ResultCache` writes are atomic);
* each worker has a bounded **capacity** of in-flight batches, so the next
  batch's IPC overlaps the current batch's compute without flooding a
  slow worker;
* when only a tail of runs remains, idle workers get **straggler
  re-dispatches** of the oldest in-flight runs; results are deduplicated
  per dispatch ticket — first completion wins, later duplicates are
  dropped.

The executor side, :class:`WorkerPoolExecutor`, registers as ``workers``
in the executor registry, so it is reachable from ``--executor workers``,
``CampaignSpec.routing["inner"]`` (a sharded campaign can delegate every
shard to the shared pool) and :func:`repro.campaign.scheduler.get_executor`.
Only one ``execute()`` drains a pool at a time; concurrent leases (e.g.
sharded delegation) queue on the pool lock and run back to back.

Everything here is stdlib: ``multiprocessing`` pipes and processes, no
new dependencies.  The default start method is ``spawn`` — workers pay
one clean interpreter + import start-up when the pool first spins up
(that is the cost the pool exists to amortise) and never inherit the
parent's threads or locks, which matters because the campaign service
runs executors from background threads.  Fork-based pools are available
via ``start_method="fork"`` where supported.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
import pickle
import threading
import time
from collections import deque
from multiprocessing import connection
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.campaign.scheduler import (CampaignExecutor, RecordCallback,
                                      RunWorker, _attempt_run,
                                      default_pool_workers, register_executor)
from repro.campaign.store import RunRecord, STATUS_FAILED
from repro.telemetry import REGISTRY
from repro.utils.logging import get_logger

logger = get_logger(__name__)

_POOL_EVENTS = REGISTRY.counter(
    "repro_worker_pool_events_total",
    "Worker-pool lifecycle events (dispatches, results, requeues, "
    "stragglers, respawns), by event")

#: Default start method of worker processes.  ``spawn`` gives workers a
#: clean interpreter (no inherited threads/locks — safe under the threaded
#: campaign service) at the cost of one import pass per worker, paid once
#: per pool lifetime.  Overridable per pool/executor (tests use ``fork``).
DEFAULT_START_METHOD = "spawn"

#: Default per-worker capacity: batches a worker may hold at once.  Two
#: keeps one batch computing while the next waits in the pipe.
DEFAULT_CAPACITY = 2

#: Default straggler deadline (seconds): once the queue is drained, an
#: in-flight run older than this is re-dispatched to an idle worker.
DEFAULT_STRAGGLER_AFTER_S = 30.0

#: Default crash-requeue bound: how often one run may be requeued after
#: worker deaths before it is recorded as failed (guards against a run
#: that reliably kills its worker taking the pool down forever).
DEFAULT_MAX_REQUEUES = 2

#: Default worker heartbeat interval (seconds).
DEFAULT_HEARTBEAT_INTERVAL_S = 1.0

#: Default liveness deadline (seconds): a worker silent this long is
#: declared dead even if its process object still looks alive (wedged in
#: non-Python code).  Generous by default — workers heartbeat from a
#: dedicated thread, so ordinary long runs keep beating.
DEFAULT_LIVENESS_TIMEOUT_S = 30.0

#: Upper bound on concurrent dispatches of one ticket (the original plus
#: straggler duplicates).
_MAX_HOLDERS = 2


def default_batch_size(n_payloads: int, n_workers: int) -> int:
    """The auto-chosen dispatch batch size for one ``execute()`` call.

    Splits the payloads so every worker gets about two batches (capacity
    pipelining still has work to prefetch), clamped to ``[1, 16]`` so
    batches stay small enough for straggler re-dispatch and crash-requeue
    to matter.

    Args:
        n_payloads: number of runs in this lease.
        n_workers: workers in the pool.

    Returns:
        The batch size (``>= 1``).
    """
    if n_payloads <= 0:
        return 1
    per_worker = -(-n_payloads // max(1, n_workers) // 2) or 1
    return max(1, min(per_worker, 16))


# --------------------------------------------------------------------------- #
# the worker process
# --------------------------------------------------------------------------- #
def _worker_main(conn, heartbeat_interval: float) -> None:
    """Worker process entry point: heartbeat thread + batch loop.

    Receives ``("batch", lease, [(ticket, payload), ...], worker, retries,
    timeout)`` messages and answers one ``("result", lease, ticket,
    record)`` per payload as each run finishes, so the parent can account
    runs (and re-dispatch stragglers) at run granularity even though
    dispatch is batched.  All run-level failure capture lives in
    :func:`repro.campaign.scheduler._attempt_run` — a worker only dies on
    ``KeyboardInterrupt``/``SystemExit`` (which ``_attempt_run`` re-raises
    by contract) or on losing its pipe.
    """
    send_lock = threading.Lock()
    stop = threading.Event()

    def beat() -> None:
        while not stop.wait(heartbeat_interval):
            try:
                with send_lock:
                    conn.send(("heartbeat", os.getpid()))
            except (OSError, ValueError, BrokenPipeError):
                return

    heartbeat = threading.Thread(target=beat, name="pool-heartbeat",
                                 daemon=True)
    heartbeat.start()
    try:
        with send_lock:
            conn.send(("ready", os.getpid()))
        while True:
            message = conn.recv()
            if message[0] == "stop":
                break
            _, lease, batch, worker, retries, timeout = message
            for ticket, payload in batch:
                record = _attempt_run(payload, worker, retries, timeout)
                with send_lock:
                    conn.send(("result", lease, ticket, record))
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    finally:
        stop.set()
        try:
            conn.close()
        except OSError:
            pass


class _Worker:
    """Parent-side bookkeeping of one worker process."""

    __slots__ = ("slot", "process", "conn", "last_seen", "ready", "dead",
                 "batches")

    def __init__(self, slot: int, process, conn) -> None:
        self.slot = slot
        self.process = process
        self.conn = conn
        self.last_seen = time.monotonic()
        self.ready = False
        self.dead = False
        #: outstanding ticket-id sets, one per in-flight batch
        self.batches: List[Set[int]] = []

    def outstanding(self) -> Set[int]:
        """Every ticket currently dispatched to (and unanswered by) this worker."""
        tickets: Set[int] = set()
        for batch in self.batches:
            tickets |= batch
        return tickets

    def resolve(self, ticket: int) -> None:
        """Mark one ticket answered, freeing batch capacity when drained."""
        for batch in self.batches:
            batch.discard(ticket)
        self.batches = [batch for batch in self.batches if batch]

    @property
    def idle(self) -> bool:
        """Whether the worker has no batch in flight."""
        return not self.batches


class WorkerPool:
    """A pool of long-lived worker processes shared across campaign launches.

    The pool spawns lazily on the first :meth:`run` (so building an
    executor for validation never forks), keeps its workers warm until
    :meth:`shutdown`, and recovers from worker death by requeueing the
    dead worker's in-flight runs and respawning the worker.

    Thread safety: :meth:`run` holds an internal lock for its whole drain,
    so concurrent leases (several campaign jobs, sharded delegation) are
    serialised — correctness over parallel drains; the workers themselves
    are the parallelism.

    Args:
        n_workers: number of worker processes (``>= 1``).
        start_method: multiprocessing start method (default
            :data:`DEFAULT_START_METHOD`).
        heartbeat_interval: seconds between worker heartbeats.
        liveness_timeout: seconds of silence after which a worker is
            declared dead and respawned.

    Raises:
        ValueError: on a non-positive ``n_workers`` or an unknown start
            method.
    """

    def __init__(self, n_workers: int,
                 start_method: Optional[str] = None,
                 heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL_S,
                 liveness_timeout: float = DEFAULT_LIVENESS_TIMEOUT_S) -> None:
        if not isinstance(n_workers, int) or isinstance(n_workers, bool) \
                or n_workers < 1:
            raise ValueError(f"n_workers must be an integer >= 1, "
                             f"got {n_workers!r}")
        if heartbeat_interval <= 0 or liveness_timeout <= 0:
            raise ValueError("heartbeat_interval and liveness_timeout must "
                             "be positive")
        self.n_workers = n_workers
        self.start_method = start_method or DEFAULT_START_METHOD
        self.heartbeat_interval = float(heartbeat_interval)
        self.liveness_timeout = float(liveness_timeout)
        self._context = multiprocessing.get_context(self.start_method)
        self._lock = threading.RLock()
        self._workers: List[Optional[_Worker]] = [None] * n_workers
        self._started = False
        self._closed = False
        self._ticket_ids = itertools.count()
        self._lease_ids = itertools.count()
        self.counters: Dict[str, int] = {
            "dispatched_batches": 0, "dispatched_runs": 0, "results": 0,
            "duplicate_results_dropped": 0, "stale_results_dropped": 0,
            "requeued_runs": 0, "straggler_redispatches": 0, "respawns": 0,
        }

    def _count(self, name: str, amount: int = 1) -> None:
        """Bump a lifetime counter, mirroring it into the metrics registry."""
        self.counters[name] += amount
        _POOL_EVENTS.inc(amount, event=name)

    # -- lifecycle ---------------------------------------------------------- #
    def _spawn(self, slot: int) -> _Worker:
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_worker_main, args=(child_conn, self.heartbeat_interval),
            name=f"campaign-worker-{slot}", daemon=True)
        process.start()
        child_conn.close()
        worker = _Worker(slot, process, parent_conn)
        self._workers[slot] = worker
        return worker

    def start(self) -> None:
        """Spawn any missing workers (idempotent; called by :meth:`run`).

        Raises:
            RuntimeError: if the pool was already shut down.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("worker pool is shut down")
            for slot in range(self.n_workers):
                if self._workers[slot] is None:
                    self._spawn(slot)
            self._started = True

    def wait_ready(self, timeout: float = 60.0) -> bool:
        """Start the pool and wait until every worker reported ready.

        Used to warm the pool outside a timed section (benchmarks) — a
        campaign run does not need it, batches queue in the pipes.

        Args:
            timeout: seconds to wait before giving up.

        Returns:
            ``True`` if every worker is ready, ``False`` on timeout.
        """
        deadline = time.monotonic() + timeout
        with self._lock:
            self.start()
            while time.monotonic() < deadline:
                self._pump(block=0.05)
                self._reap_dead()
                if all(worker is not None and worker.ready
                       for worker in self._workers):
                    return True
            return False

    def worker_pids(self) -> List[Optional[int]]:
        """The workers' process ids, by slot (``None`` for unspawned slots)."""
        with self._lock:
            return [None if worker is None else worker.process.pid
                    for worker in self._workers]

    def stats(self) -> Dict[str, object]:
        """A JSON-able snapshot of the pool's lifetime counters."""
        with self._lock:
            return dict(self.counters, n_workers=self.n_workers,
                        start_method=self.start_method,
                        pids=[pid for pid in self.worker_pids()
                              if pid is not None])

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop every worker (politely, then forcefully) and close the pipes.

        Args:
            timeout: seconds to wait for a worker to exit after the stop
                message before terminating it.
        """
        with self._lock:
            self._closed = True
            workers = [worker for worker in self._workers
                       if worker is not None]
            self._workers = [None] * self.n_workers
        for worker in workers:
            try:
                worker.conn.send(("stop",))
            except (OSError, ValueError):
                pass
        deadline = time.monotonic() + timeout
        for worker in workers:
            worker.process.join(max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(1.0)
            try:
                worker.conn.close()
            except OSError:
                pass

    # -- message pump ------------------------------------------------------- #
    def _pump(self, block: float = 0.0,
              lease: Optional["_Lease"] = None) -> None:
        """Drain every readable worker pipe, updating liveness + accounting."""
        workers = [worker for worker in self._workers if worker is not None]
        conns = [worker.conn for worker in workers if not worker.dead]
        if not conns:
            return
        try:
            readable = connection.wait(conns, timeout=block)
        except OSError:
            readable = []
        by_conn = {worker.conn: worker for worker in workers}
        for ready_conn in readable:
            worker = by_conn[ready_conn]
            try:
                while ready_conn.poll():
                    self._handle(worker, ready_conn.recv(), lease)
            except (EOFError, OSError):
                worker.dead = True

    def _handle(self, worker: _Worker, message, lease: Optional["_Lease"]):
        worker.last_seen = time.monotonic()
        kind = message[0]
        if kind == "ready":
            worker.ready = True
        elif kind == "heartbeat":
            pass
        elif kind == "result":
            _, _, ticket, record = message
            worker.resolve(ticket)
            self._count("results")
            if lease is None or not lease.owns(ticket):
                self._count("stale_results_dropped")
                return
            lease.holders[ticket].discard(worker)
            if lease.is_done(ticket):
                # a straggler duplicate already answered this ticket
                self._count("duplicate_results_dropped")
                return
            lease.settle(ticket, record)
        else:  # pragma: no cover - future-proofing against protocol drift
            logger.warning("worker pool: unknown message kind %r", kind)

    def _reap_dead(self, lease: Optional["_Lease"] = None) -> None:
        """Respawn dead/hung workers, requeueing their in-flight runs."""
        now = time.monotonic()
        for slot in range(self.n_workers):
            worker = self._workers[slot]
            if worker is None:
                if self._started and not self._closed:
                    self._spawn(slot)
                continue
            hung = now - worker.last_seen > self.liveness_timeout
            if not (worker.dead or hung or not worker.process.is_alive()):
                continue
            orphans = worker.outstanding()
            logger.warning(
                "worker pool: worker %d (pid %s) %s with %d run(s) in "
                "flight; respawning", slot, worker.process.pid,
                "went silent" if hung and worker.process.is_alive()
                else "died", len(orphans))
            if worker.process.is_alive():
                worker.process.terminate()
            worker.process.join(1.0)
            try:
                worker.conn.close()
            except OSError:
                pass
            self._workers[slot] = None
            if not self._closed:
                self._spawn(slot)
            self._count("respawns")
            if lease is not None:
                lease.drop_holder(worker, orphans)

    # -- the drain loop ----------------------------------------------------- #
    def run(self, payloads: Sequence[Dict[str, object]], worker: RunWorker,
            retries: int = 0, timeout: Optional[float] = None,
            on_record: Optional[RecordCallback] = None,
            batch_size: Optional[int] = None,
            capacity: int = DEFAULT_CAPACITY,
            straggler_after: Optional[float] = DEFAULT_STRAGGLER_AFTER_S,
            max_requeues: int = DEFAULT_MAX_REQUEUES) -> List[RunRecord]:
        """Execute the payloads on the warm pool; records in submission order.

        Implements the :class:`repro.campaign.scheduler.CampaignExecutor`
        contract (one record per payload, worker exceptions captured by
        :func:`repro.campaign.scheduler._attempt_run` inside the worker
        process, ``on_record`` fired once per finished record from this
        single coordinating thread) on top of batched pipe dispatch.

        Args:
            payloads: resolved run payloads (``RunSpec.payload()`` dicts).
            worker: picklable callable executing one payload.
            retries: per-run retries (applied inside the worker process).
            timeout: per-run cooperative wall-clock budget (seconds).
            on_record: observer invoked once per finished record.
            batch_size: payloads per dispatch message (default:
                :func:`default_batch_size`).
            capacity: in-flight batch limit per worker (``>= 1``).
            straggler_after: seconds after which a tail run is duplicated
                onto an idle worker (``None`` disables re-dispatch).
            max_requeues: crash-requeues per run before it is recorded
                failed.

        Returns:
            One :class:`repro.campaign.store.RunRecord` per payload, in
            submission order.

        Raises:
            RuntimeError: if the pool was shut down.
            ValueError: on invalid ``capacity``/``max_requeues``.
        """
        payloads = list(payloads)
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if max_requeues < 0:
            raise ValueError("max_requeues must be >= 0")
        if not payloads:
            return []
        with self._lock:
            self.start()
            lease = _Lease(self, payloads, worker, retries, timeout,
                           on_record,
                           batch_size or default_batch_size(len(payloads),
                                                            self.n_workers),
                           capacity, straggler_after, max_requeues)
            return lease.drain()


class _Lease:
    """One ``run()``'s worth of drain state over a :class:`WorkerPool`.

    Tickets are pool-unique integers, one per submitted payload, so a
    duplicate ``run_id`` in the payload list still gets its own record and
    results arriving late from an earlier (aborted) lease can never be
    mistaken for this lease's runs.
    """

    def __init__(self, pool: WorkerPool, payloads, worker, retries, timeout,
                 on_record, batch_size, capacity, straggler_after,
                 max_requeues) -> None:
        self.pool = pool
        self.worker_fn = worker
        self.retries = retries
        self.timeout = timeout
        self.on_record = on_record
        self.batch_size = batch_size
        self.capacity = capacity
        self.straggler_after = straggler_after
        self.max_requeues = max_requeues
        self.id = next(pool._lease_ids)
        self.position_of: Dict[int, int] = {}
        self.payload_of: Dict[int, Dict[str, object]] = {}
        self.queue: deque = deque()
        for position, payload in enumerate(payloads):
            ticket = next(pool._ticket_ids)
            self.position_of[ticket] = position
            self.payload_of[ticket] = payload
            self.queue.append(ticket)
        self.records: Dict[int, RunRecord] = {}
        self.done: Set[int] = set()
        self.holders: Dict[int, Set[_Worker]] = {
            ticket: set() for ticket in self.position_of}
        self.first_dispatch: Dict[int, float] = {}
        self.requeues: Dict[int, int] = {}
        self.n_payloads = len(payloads)

    # -- accounting --------------------------------------------------------- #
    def owns(self, ticket: int) -> bool:
        """Whether a ticket belongs to this lease."""
        return ticket in self.position_of

    def is_done(self, ticket: int) -> bool:
        """Whether a ticket already has its record."""
        return ticket in self.done

    def settle(self, ticket: int, record: RunRecord) -> None:
        """Record a ticket's result and notify the observer exactly once."""
        self.done.add(ticket)
        self.records[self.position_of[ticket]] = record
        if self.on_record is not None:
            self.on_record(record)

    def drop_holder(self, worker: _Worker, orphans: Set[int]) -> None:
        """A worker died: requeue (or fail) its unanswered lease tickets."""
        for ticket in orphans:
            if not self.owns(ticket) or self.is_done(ticket):
                continue
            self.holders[ticket].discard(worker)
            if self.holders[ticket]:
                continue   # a straggler duplicate is still computing it
            self.requeues[ticket] = self.requeues.get(ticket, 0) + 1
            if self.requeues[ticket] > self.max_requeues:
                payload = self.payload_of[ticket]
                self.settle(ticket, RunRecord(
                    run_id=payload["run_id"], index=payload["index"],
                    params=dict(payload["params"]),
                    driver=payload["driver"],
                    n_steps=int(payload["n_steps"]), status=STATUS_FAILED,
                    attempts=self.requeues[ticket],
                    error=f"WorkerCrashError: worker died executing this "
                          f"run {self.requeues[ticket]} time(s); giving up"))
            else:
                self.pool._count("requeued_runs")
                self.queue.appendleft(ticket)

    # -- dispatch ----------------------------------------------------------- #
    def _send(self, worker: _Worker, tickets: List[int]) -> bool:
        """Ship one batch to one worker; False if the worker's pipe is gone."""
        batch = [(ticket, self.payload_of[ticket]) for ticket in tickets]
        try:
            worker.conn.send(("batch", self.id, batch, self.worker_fn,
                              self.retries, self.timeout))
        except (OSError, ValueError):
            worker.dead = True
            return False
        except (pickle.PicklingError, AttributeError, TypeError) as exc:
            # the worker callable (or a payload) cannot cross the pipe —
            # an infrastructure failure, captured per record like the pool
            # executors capture BrokenProcessPool
            for ticket in tickets:
                if not self.is_done(ticket):
                    payload = self.payload_of[ticket]
                    self.settle(ticket, RunRecord(
                        run_id=payload["run_id"], index=payload["index"],
                        params=dict(payload["params"]),
                        driver=payload["driver"],
                        n_steps=int(payload["n_steps"]),
                        status=STATUS_FAILED, attempts=1,
                        error=f"DispatchError: {type(exc).__name__}: {exc}"))
            return True
        now = time.monotonic()
        worker.batches.append(set(tickets))
        for ticket in tickets:
            self.holders[ticket].add(worker)
            self.first_dispatch.setdefault(ticket, now)
        self.pool._count("dispatched_batches")
        self.pool._count("dispatched_runs", len(tickets))
        return True

    def _dispatch(self) -> None:
        """Fill idle worker capacity from the queue, batch by batch."""
        for worker in self.pool._workers:
            if worker is None or worker.dead:
                continue
            while self.queue and len(worker.batches) < self.capacity:
                tickets = []
                while self.queue and len(tickets) < self.batch_size:
                    ticket = self.queue.popleft()
                    if not self.is_done(ticket):
                        tickets.append(ticket)
                if not tickets:
                    break
                if not self._send(worker, tickets):
                    # pipe gone: put the batch back for the respawned worker
                    for ticket in reversed(tickets):
                        self.queue.appendleft(ticket)
                    break
            if not self.queue:
                break

    def _rescue_stragglers(self) -> None:
        """Duplicate the oldest tail runs onto idle workers (dedup by ticket)."""
        if self.straggler_after is None or self.queue:
            return
        idle = [worker for worker in self.pool._workers
                if worker is not None and not worker.dead and worker.idle]
        if not idle:
            return
        now = time.monotonic()
        candidates = sorted(
            (ticket for ticket in self.position_of
             if not self.is_done(ticket) and ticket in self.first_dispatch
             and now - self.first_dispatch[ticket] >= self.straggler_after
             and len(self.holders[ticket]) < _MAX_HOLDERS),
            key=lambda ticket: self.first_dispatch[ticket])
        for worker in idle:
            for ticket in candidates:
                if self.is_done(ticket) or worker in self.holders[ticket]:
                    continue
                if self._send(worker, [ticket]):
                    self.pool._count("straggler_redispatches")
                break

    def drain(self) -> List[RunRecord]:
        """Run the dispatch/pump/reap loop until every payload has a record."""
        tick = max(0.005, min(0.1, self.pool.heartbeat_interval / 2.0))
        while len(self.records) < self.n_payloads:
            self.pool._reap_dead(self)
            self._dispatch()
            self._rescue_stragglers()
            self.pool._pump(block=tick, lease=self)
        return [self.records[position] for position in range(self.n_payloads)]


# --------------------------------------------------------------------------- #
# shared pools
# --------------------------------------------------------------------------- #
_SHARED_POOLS: Dict[Tuple[int, str], WorkerPool] = {}
_SHARED_LOCK = threading.Lock()


def shared_pool(n_workers: Optional[int] = None,
                start_method: Optional[str] = None) -> WorkerPool:
    """The process-wide warm pool for a worker count (created on first use).

    Every :class:`WorkerPoolExecutor` that is not given an explicit pool
    leases from here, which is what keeps workers warm *across* executor
    instances: the service's job manager builds a fresh executor per
    campaign launch, the CLI builds one per invocation of ``campaign
    run`` — all of them reuse the same processes.

    Args:
        n_workers: pool size (default
            :func:`repro.campaign.scheduler.default_pool_workers`).
        start_method: multiprocessing start method (default
            :data:`DEFAULT_START_METHOD`).

    Returns:
        The shared :class:`WorkerPool` for ``(n_workers, start_method)``.
    """
    n_workers = n_workers or default_pool_workers()
    method = start_method or DEFAULT_START_METHOD
    with _SHARED_LOCK:
        pool = _SHARED_POOLS.get((n_workers, method))
        if pool is None or pool._closed:
            pool = WorkerPool(n_workers, start_method=method)
            _SHARED_POOLS[(n_workers, method)] = pool
        return pool


def shutdown_shared_pools(timeout: float = 5.0) -> None:
    """Shut down every shared pool (idempotent; registered via ``atexit``)."""
    with _SHARED_LOCK:
        pools = list(_SHARED_POOLS.values())
        _SHARED_POOLS.clear()
    for pool in pools:
        pool.shutdown(timeout=timeout)


atexit.register(shutdown_shared_pools)


# --------------------------------------------------------------------------- #
# the executor
# --------------------------------------------------------------------------- #
class WorkerPoolExecutor(CampaignExecutor):
    """Campaign executor backed by a persistent warm worker pool.

    Registered as ``workers``: ``get_executor("workers", max_workers=4)``,
    ``--executor workers`` on the CLI, ``routing["inner"] = "workers"``
    for sharded delegation, and the service's executor options all reach
    it.  Unless an explicit ``pool`` is passed, instances lease the
    process-wide :func:`shared_pool` of their worker count, so repeated
    ``execute()`` calls — and chunked service launches — reuse warm
    workers instead of re-spawning and re-importing per call.

    Args:
        max_workers: pool size (default
            :func:`repro.campaign.scheduler.default_pool_workers`).
        timeout: per-run cooperative wall-clock budget (seconds).
        retries: retries per failing run (inside the worker process).
        pool: explicit :class:`WorkerPool` to lease (tests, embedders);
            the caller owns its lifecycle.
        batch_size: payloads per dispatch message (default: auto).
        capacity: in-flight batch limit per worker.
        straggler_after: seconds before tail runs are duplicated onto
            idle workers (``None`` disables).
        max_requeues: crash-requeues per run before it is failed.
        start_method: start method of a lazily-leased shared pool.

    Attributes:
        last_stats: after :meth:`execute`, the pool counters this call
            added (dispatch/result/requeue/straggler/respawn counts) —
            the worker-pool analogue of ``ShardedExecutor.shard_sizes``.
    """

    name = "workers"

    def __init__(self, max_workers: Optional[int] = None,
                 timeout: Optional[float] = None, retries: int = 0,
                 pool: Optional[WorkerPool] = None,
                 batch_size: Optional[int] = None,
                 capacity: int = DEFAULT_CAPACITY,
                 straggler_after: Optional[float] = DEFAULT_STRAGGLER_AFTER_S,
                 max_requeues: int = DEFAULT_MAX_REQUEUES,
                 start_method: Optional[str] = None) -> None:
        super().__init__(max_workers=max_workers, timeout=timeout,
                         retries=retries)
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if max_requeues < 0:
            raise ValueError("max_requeues must be >= 0")
        if straggler_after is not None and straggler_after <= 0:
            raise ValueError("straggler_after must be positive (or None)")
        self._pool = pool
        self.batch_size = batch_size
        self.capacity = capacity
        self.straggler_after = straggler_after
        self.max_requeues = max_requeues
        self.start_method = start_method
        self.last_stats: Dict[str, object] = {}

    def pool(self) -> WorkerPool:
        """The pool this executor leases (shared unless one was injected)."""
        if self._pool is not None:
            return self._pool
        return shared_pool(self.max_workers, start_method=self.start_method)

    def execute(self, payloads, worker, on_record=None):
        """Execute the payloads on the warm pool (see the base contract)."""
        payloads = list(payloads)
        self.last_stats = {}
        if not payloads:
            return []
        pool = self.pool()
        before = {key: value for key, value in pool.stats().items()
                  if isinstance(value, int)}
        records = pool.run(payloads, worker, retries=self.retries,
                           timeout=self.timeout, on_record=on_record,
                           batch_size=self.batch_size, capacity=self.capacity,
                           straggler_after=self.straggler_after,
                           max_requeues=self.max_requeues)
        after = pool.stats()
        self.last_stats = {key: after[key] - before.get(key, 0)
                           for key in before}
        self.last_stats["n_workers"] = pool.n_workers
        return records


register_executor(WorkerPoolExecutor.name, WorkerPoolExecutor)
