"""Content-addressed per-run result cache: skip runs already computed.

A run's identity is the SHA-256 hash of its fully-resolved payload
(:func:`repro.campaign.spec.run_id_of`) — config, driver and step count.
That makes the completed :class:`repro.campaign.store.RunRecord` of a run
reusable *anywhere* the same resolved run appears: a re-launched campaign,
a differently-named campaign sharing sweep points, or a different store on
the same machine.  The store gives resumability *within* one campaign log;
the cache gives result reuse *across* campaigns.

Layout is one JSON file per run id, fanned out over two-hex-digit
subdirectories (``<root>/<id[:2]>/<id>.json``) so even large caches keep
directory listings cheap.  Writes are atomic (temp file + ``os.replace``),
so concurrent campaigns sharing a cache never observe a half-written
entry.  A corrupt or foreign entry is treated as a miss (with a warning)
and overwritten by the recomputed result — the cache can always be
deleted or hand-pruned without breaking anything.

Only **completed** records are cached: a failed run must stay eligible for
re-execution.  :func:`repro.campaign.scheduler.run_campaign` consults the
cache *before* dispatching to its executor, which is what lets every
executor — serial, pools, sharded, user-registered — skip cached runs
without knowing the cache exists.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from dataclasses import replace
from typing import Dict, Optional

from repro.campaign.store import RunRecord
from repro.telemetry import REGISTRY
from repro.utils.serialization import jsonable

_CACHE_HITS = REGISTRY.counter(
    "repro_cache_hits_total", "Result-cache lookups served from the cache")
_CACHE_MISSES = REGISTRY.counter(
    "repro_cache_misses_total",
    "Result-cache lookups that missed (absent or corrupt entry)")


class ResultCache:
    """Filesystem-backed map of run id to completed :class:`RunRecord`.

    Args:
        root: cache directory (created lazily on the first ``put``).

    Attributes:
        hits: lookups served from the cache since construction.
        misses: lookups that found nothing usable (absent or corrupt).
    """

    def __init__(self, root: str) -> None:
        self.root = str(root)
        self.hits = 0
        self.misses = 0

    def entry_path(self, run_id: str) -> str:
        """The on-disk path of one run's cache entry (may not exist)."""
        run_id = str(run_id)
        return os.path.join(self.root, run_id[:2], f"{run_id}.json")

    def get(self, run_id: str) -> Optional[RunRecord]:
        """Look one run up, counting the hit or miss.

        Args:
            run_id: the resolved-run hash to look up.

        Returns:
            The cached record with ``cached=True`` set, or ``None`` on a
            miss.  A corrupt, unreadable or non-completed entry is a miss
            (a ``RuntimeWarning`` is emitted) — the caller recomputes and
            the recompute's ``put`` repairs the entry.
        """
        path = self.entry_path(run_id)
        if not os.path.exists(path):
            self.misses += 1
            _CACHE_MISSES.inc()
            return None
        try:
            with open(path, encoding="utf-8") as handle:
                record = RunRecord.from_dict(json.load(handle))
            if record.run_id != str(run_id) or not record.completed:
                raise ValueError("entry does not hold a completed record "
                                 "of this run")
        except (OSError, ValueError, TypeError, KeyError) as error:
            warnings.warn(
                f"result cache {self.root}: corrupt entry for run "
                f"{run_id} ({error}); recomputing", RuntimeWarning,
                stacklevel=2)
            self.misses += 1
            _CACHE_MISSES.inc()
            return None
        self.hits += 1
        _CACHE_HITS.inc()
        return replace(record, cached=True)

    def put(self, record: RunRecord) -> bool:
        """Cache one record if it is a fresh completed result.

        Failed records are refused (they must stay re-executable) and
        records already served from a cache are not re-written.

        Args:
            record: the run record to cache.

        Returns:
            ``True`` if the entry was written, ``False`` if refused.
        """
        if not record.completed or record.cached:
            return False
        path = self.entry_path(record.run_id)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        # cached=False in the entry: every get() stamps its own copy, and
        # a record must not claim cache provenance it does not have yet
        row = json.dumps(jsonable(replace(record, cached=False).to_dict()),
                         sort_keys=True, allow_nan=False)
        handle = tempfile.NamedTemporaryFile(
            "w", encoding="utf-8", dir=os.path.dirname(path),
            prefix=f".{record.run_id}.", suffix=".tmp", delete=False)
        try:
            with handle:
                handle.write(row)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        return True

    def stats(self) -> Dict[str, int]:
        """Hit/miss counters of this cache handle (JSON-able)."""
        return {"hits": self.hits, "misses": self.misses}

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        count = 0
        if not os.path.isdir(self.root):
            return 0
        for prefix in os.listdir(self.root):
            subdir = os.path.join(self.root, prefix)
            if os.path.isdir(subdir):
                count += sum(1 for name in os.listdir(subdir)
                             if name.endswith(".json"))
        return count
