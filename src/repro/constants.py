"""Physical constants and unit helpers used across the PIC and radiation code.

All quantities are in SI units unless stated otherwise.  The particle-in-cell
core (:mod:`repro.pic`) internally works in normalised units (lengths in cell
widths, velocities in units of ``c``) and uses these constants only when
converting to and from physical setups such as the Kelvin-Helmholtz
configuration of the paper (Section IV-A).
"""

from __future__ import annotations

import math

#: Speed of light in vacuum [m/s].
SPEED_OF_LIGHT = 299_792_458.0

#: Elementary charge [C].
ELEMENTARY_CHARGE = 1.602_176_634e-19

#: Electron mass [kg].
ELECTRON_MASS = 9.109_383_7015e-31

#: Proton mass [kg].
PROTON_MASS = 1.672_621_923_69e-27

#: Vacuum permittivity [F/m].
EPSILON_0 = 8.854_187_8128e-12

#: Vacuum permeability [H/m].
MU_0 = 1.256_637_062_12e-6

#: Boltzmann constant [J/K].
BOLTZMANN = 1.380_649e-23


def plasma_frequency(density: float, charge: float = ELEMENTARY_CHARGE,
                     mass: float = ELECTRON_MASS) -> float:
    """Electron (or generic species) plasma frequency ``omega_p`` [rad/s].

    Parameters
    ----------
    density:
        Number density of the species [1/m^3].
    charge:
        Particle charge magnitude [C].
    mass:
        Particle mass [kg].
    """
    if density < 0:
        raise ValueError("density must be non-negative")
    return math.sqrt(density * charge * charge / (mass * EPSILON_0))


def plasma_wavelength(density: float, **kwargs: float) -> float:
    """Plasma wavelength ``2 pi c / omega_p`` [m] for a given density."""
    omega_p = plasma_frequency(density, **kwargs)
    if omega_p == 0.0:
        return math.inf
    return 2.0 * math.pi * SPEED_OF_LIGHT / omega_p


def skin_depth(density: float, **kwargs: float) -> float:
    """Collisionless (electron) skin depth ``c / omega_p`` [m]."""
    omega_p = plasma_frequency(density, **kwargs)
    if omega_p == 0.0:
        return math.inf
    return SPEED_OF_LIGHT / omega_p


def lorentz_gamma(beta: float) -> float:
    """Lorentz factor for a normalised velocity ``beta = v / c``."""
    if not -1.0 < beta < 1.0:
        raise ValueError("|beta| must be < 1")
    return 1.0 / math.sqrt(1.0 - beta * beta)


def courant_limit(dx: float, dy: float, dz: float) -> float:
    """CFL time-step limit of the 3D Yee scheme [s].

    ``dt_max = 1 / (c * sqrt(1/dx^2 + 1/dy^2 + 1/dz^2))``
    """
    if min(dx, dy, dz) <= 0:
        raise ValueError("cell sizes must be positive")
    inv = math.sqrt(1.0 / dx ** 2 + 1.0 / dy ** 2 + 1.0 / dz ** 2)
    return 1.0 / (SPEED_OF_LIGHT * inv)


# Paper values (Section IV-A), kept as named constants so configuration code
# and tests can reference them without magic numbers.
PAPER_CELL_SIZE = 93.5e-6             #: cubic cell edge length Delta x [m]
PAPER_TIME_STEP = 17.9e-15            #: time step Delta t [s]
PAPER_DENSITY = 1.0e25                #: electron density n0 [1/m^3]
PAPER_BETA = 0.2                      #: normalised stream velocity v/c
PAPER_PARTICLES_PER_CELL = 9          #: macro-particles per cell
PAPER_SMALLEST_GRID = (192, 256, 12)  #: smallest simulated volume [cells]
PAPER_SMALLEST_GPUS = 16              #: GPUs used for the smallest volume
