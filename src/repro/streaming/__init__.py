"""An in-memory streaming substrate modelled on ADIOS2's SST engine.

The Sustainable Staging Transport (SST) engine connects one parallel data
producer to an arbitrary number of parallel consumers without touching the
filesystem: the writer presents *steps* containing named variables, readers
inquire the available variables and read the blocks they decide to load, and
closing a step tells the writer the data may be dropped (Section IV-D of the
paper).

This subpackage reproduces that protocol in-process:

* :class:`repro.streaming.broker.SSTBroker` — the rendezvous point between
  writer and readers with a bounded step queue,
* :class:`repro.streaming.engine.SSTWriterEngine` /
  :class:`repro.streaming.engine.SSTReaderEngine` — the step-based put/get
  API,
* :mod:`repro.streaming.dataplane` — pluggable data planes: a zero-copy
  in-memory plane used by the real coupled workflow, and calibrated
  bandwidth/latency models of the ``libfabric``/CXI and ``MPI`` planes used
  to regenerate the full-scale throughput study (Fig. 6),
* :class:`repro.streaming.noop.NoOpConsumer` — the synthetic benchmark
  consumer that only measures and discards,
* :mod:`repro.streaming.throughput` — throughput accounting helpers.
"""

from repro.streaming.variable import Block, Variable
from repro.streaming.step import Step, StepStatus
from repro.streaming.broker import QueueFullPolicy, SSTBroker
from repro.streaming.dataplane import (DataPlane, InMemoryDataPlane, ModeledDataPlane,
                                       make_data_plane)
from repro.streaming.engine import (EndOfStreamError, FileWriterEngine, FileReaderEngine,
                                    SSTReaderEngine, SSTWriterEngine)
from repro.streaming.noop import NoOpConsumer
from repro.streaming.throughput import ThroughputResult, measure_stream_throughput
from repro.streaming.reduction import (IdentityReducer, ParticleSubsampleReducer,
                                       PrecisionReducer, ReductionPipeline,
                                       ReductionReport, SpectrumBinningReducer)

__all__ = [
    "IdentityReducer",
    "ParticleSubsampleReducer",
    "PrecisionReducer",
    "ReductionPipeline",
    "ReductionReport",
    "SpectrumBinningReducer",
    "Block",
    "Variable",
    "Step",
    "StepStatus",
    "QueueFullPolicy",
    "SSTBroker",
    "DataPlane",
    "InMemoryDataPlane",
    "ModeledDataPlane",
    "make_data_plane",
    "EndOfStreamError",
    "SSTWriterEngine",
    "SSTReaderEngine",
    "FileWriterEngine",
    "FileReaderEngine",
    "NoOpConsumer",
    "ThroughputResult",
    "measure_stream_throughput",
]
