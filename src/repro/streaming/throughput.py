"""Throughput accounting for streaming runs.

Follows the paper's definition: "The parallel throughput is calculated based
on this measured time and the global data size" — i.e. global bytes divided
by the per-step load time, even though that time includes communication
overhead (shown in [43] to be a close approximation of the real throughput).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class ThroughputResult:
    """Result of one streaming throughput measurement."""

    n_nodes: int
    bytes_per_node: float
    step_times: tuple
    data_plane: str = "inmemory"
    enqueue_strategy: str = "batched"

    @property
    def global_bytes(self) -> float:
        return self.bytes_per_node * self.n_nodes

    @property
    def per_step_throughput(self) -> np.ndarray:
        """Parallel (global) throughput per step [bytes/s]."""
        times = np.asarray(self.step_times, dtype=np.float64)
        return self.global_bytes / times

    @property
    def median_throughput(self) -> float:
        return float(np.median(self.per_step_throughput))

    @property
    def min_throughput(self) -> float:
        return float(self.per_step_throughput.min())

    @property
    def max_throughput(self) -> float:
        return float(self.per_step_throughput.max())

    @property
    def per_node_throughput(self) -> np.ndarray:
        """Per-node throughput per step [bytes/s]."""
        return self.per_step_throughput / self.n_nodes

    def terabytes_per_second(self) -> float:
        """Median parallel throughput in TB/s (the unit of Fig. 6)."""
        return self.median_throughput / 1e12


def measure_stream_throughput(step_times: Sequence[float], n_nodes: int,
                              bytes_per_node: float, data_plane: str = "inmemory",
                              enqueue_strategy: str = "batched") -> ThroughputResult:
    """Package raw per-step load times into a :class:`ThroughputResult`."""
    step_times = tuple(float(t) for t in step_times)
    if not step_times:
        raise ValueError("at least one step time is required")
    if any(t <= 0 for t in step_times):
        raise ValueError("step times must be positive")
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    return ThroughputResult(n_nodes=n_nodes, bytes_per_node=float(bytes_per_node),
                            step_times=step_times, data_plane=data_plane,
                            enqueue_strategy=enqueue_strategy)


def remove_outliers(values: Sequence[float], n_sigma: float = 4.0) -> List[float]:
    """Drop entries more than ``n_sigma`` standard deviations from the mean.

    The paper removes an "obvious outlier result" from the libfabric
    benchmark and removes >4σ outliers from the training-time measurements;
    this helper implements the same rule.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return []
    mean, std = arr.mean(), arr.std()
    if std == 0:
        return list(arr)
    keep = np.abs(arr - mean) <= n_sigma * std
    return list(arr[keep])
