"""The no-op consumer used by the full-scale streaming benchmark.

"Employing the no-op consumer gives us a testbed for full-system scaling
runs of a particle data stream fed by PIConGPU, helping us identify and
eliminate scaling issues before applying the full PIConGPU+MLapp pipeline"
(Section IV-B).  The consumer reads every variable of every step, measures
the time needed for loading the data, and discards it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.streaming.dataplane import DataPlane, InMemoryDataPlane
from repro.streaming.engine import SSTReaderEngine
from repro.streaming.step import StepStatus


@dataclass
class NoOpConsumer:
    """Read steps from a reader engine, measure, and discard.

    Parameters
    ----------
    reader:
        The reader engine to drain.
    data_plane:
        Optional data-plane model; its predicted transfer time is *added* to
        the measured in-process load time so that the same consumer can be
        used both for real in-memory runs and for modelled scaling studies.
    n_nodes:
        Number of nodes assumed by the data-plane model.
    """

    reader: SSTReaderEngine
    data_plane: Optional[DataPlane] = None
    n_nodes: int = 1
    enqueue_strategy: str = "batched"
    step_times: List[float] = field(default_factory=list)
    step_bytes: List[int] = field(default_factory=list)

    def run(self, max_steps: Optional[int] = None) -> int:
        """Drain the stream (or ``max_steps`` of it); returns steps consumed."""
        consumed = 0
        plane = self.data_plane or InMemoryDataPlane()
        while max_steps is None or consumed < max_steps:
            status = self.reader.begin_step()
            if status is not StepStatus.OK:
                break
            start = time.perf_counter()
            nbytes = 0
            for name in self.reader.available_variables():
                data = self.reader.get(name)
                nbytes += int(data.nbytes)
            elapsed = time.perf_counter() - start
            elapsed += plane.transfer_time(nbytes, n_nodes=self.n_nodes,
                                           enqueue_strategy=self.enqueue_strategy)
            self.reader.end_step()
            self.step_times.append(elapsed)
            self.step_bytes.append(nbytes)
            consumed += 1
        return consumed

    @property
    def total_bytes(self) -> int:
        return sum(self.step_bytes)

    @property
    def mean_step_time(self) -> float:
        if not self.step_times:
            raise RuntimeError("the consumer has not read any step yet")
        return sum(self.step_times) / len(self.step_times)
