"""Data planes: how bytes physically move between producer and consumer.

ADIOS2's SST engine supports several network transports ("data planes"):
TCP as a non-scalable fallback, libfabric on top of the CXI provider for
Slingshot, ucx, and MPI via ``MPI_Open_port``.  The paper benchmarks the
libfabric and MPI planes at full Frontier scale (Fig. 6).

Within this reproduction two kinds of plane exist:

* :class:`InMemoryDataPlane` — used by the real coupled workflow; data stays
  in process memory and transfer time is effectively zero.
* :class:`ModeledDataPlane` — used by the Fig. 6 benchmark harness: no real
  payload is moved, instead a calibrated bandwidth/latency/contention model
  predicts the per-node read time, including the behaviour of the two read
  enqueue strategies (all-at-once vs. batches of 10) whose difference the
  paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.utils.rng import RandomState, seeded_rng

#: A single HPE Slingshot NIC tops out at 25 GB/s (Section IV-B).
SLINGSHOT_NIC_BANDWIDTH = 25.0e9


class DataPlane:
    """Base class of data planes."""

    name: str = "abstract"

    def transfer_time(self, nbytes: int, n_nodes: int = 1,
                      enqueue_strategy: str = "batched") -> float:
        """Predicted wall-clock seconds for one node to read ``nbytes``."""
        raise NotImplementedError

    def supports(self, n_nodes: int, enqueue_strategy: str = "batched") -> bool:
        """Whether the plane/strategy combination works at this scale."""
        return True


class InMemoryDataPlane(DataPlane):
    """Zero-copy in-process transfers (the coupled laptop-scale workflow)."""

    name = "inmemory"

    def transfer_time(self, nbytes: int, n_nodes: int = 1,
                      enqueue_strategy: str = "batched") -> float:
        return 0.0


@dataclass
class ModeledDataPlane(DataPlane):
    """Bandwidth/latency/contention model of a network data plane.

    The per-node read time for ``nbytes`` is

    ``latency + nbytes / (bandwidth * contention(n_nodes) * strategy_gain)``

    where ``contention`` decreases smoothly with the number of nodes
    (fabric congestion, metadata pressure on rank 0) and ``strategy_gain``
    captures the paper's observation that enqueueing all reads at once is
    faster than batches of 10 — but stops working beyond a scale limit.

    Default parameters are calibrated against the per-node throughputs the
    paper reports (Section IV-B): libfabric 3.5–4.7 GB/s at 4096 nodes
    (all-at-once), 1.9–2.6 GB/s at 9126 nodes (batched); MPI 2.6–3.7 GB/s at
    4096 nodes and 2.4–3.3 GB/s at 9126 nodes.
    """

    name: str = "modeled"
    base_bandwidth: float = 4.0e9          #: bytes/s per node at small scale
    latency: float = 0.05                  #: per-step fixed overhead [s]
    contention_scale: float = 16384.0      #: nodes at which contention halves throughput
    contention_exponent: float = 1.0
    all_at_once_gain: float = 1.4          #: speed-up of the all-at-once strategy
    all_at_once_max_nodes: Optional[int] = None  #: beyond this the strategy fails
    jitter: float = 0.1                    #: relative run-to-run spread
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))

    def contention(self, n_nodes: int) -> float:
        """Throughput reduction factor in (0, 1] due to fabric contention."""
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        return 1.0 / (1.0 + (n_nodes / self.contention_scale) ** self.contention_exponent)

    def supports(self, n_nodes: int, enqueue_strategy: str = "batched") -> bool:
        if enqueue_strategy == "all_at_once" and self.all_at_once_max_nodes is not None:
            return n_nodes <= self.all_at_once_max_nodes
        return True

    def effective_bandwidth(self, n_nodes: int, enqueue_strategy: str = "batched") -> float:
        """Per-node bandwidth [bytes/s] at the given scale and strategy."""
        if not self.supports(n_nodes, enqueue_strategy):
            raise RuntimeError(
                f"the {self.name} data plane with strategy {enqueue_strategy!r} "
                f"does not scale to {n_nodes} nodes")
        gain = self.all_at_once_gain if enqueue_strategy == "all_at_once" else 1.0
        bw = self.base_bandwidth * self.contention(n_nodes) * gain
        return min(bw, SLINGSHOT_NIC_BANDWIDTH)

    def transfer_time(self, nbytes: int, n_nodes: int = 1,
                      enqueue_strategy: str = "batched") -> float:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        bw = self.effective_bandwidth(n_nodes, enqueue_strategy)
        noise = 1.0 + self.jitter * self.rng.standard_normal()
        noise = max(noise, 1.0 - 3.0 * self.jitter)
        return (self.latency + nbytes / bw) * noise


def make_data_plane(kind: str, rng: RandomState = None) -> DataPlane:
    """Factory for named data planes with paper-calibrated parameters.

    Parameters
    ----------
    kind:
        ``"inmemory"``, ``"libfabric"`` (CXI provider), ``"mpi"``
        (``MPI_Open_port`` based) or ``"tcp"`` (non-scalable fallback).
    """
    rng = seeded_rng(rng)
    if kind == "inmemory":
        return InMemoryDataPlane()
    if kind == "libfabric":
        # Lower-level control: fastest per-node rates at moderate scale with
        # the all-at-once strategy, but that strategy breaks beyond ~half of
        # Frontier; the batched fallback loses a sizeable factor.
        return ModeledDataPlane(name="libfabric", base_bandwidth=3.55e9, latency=0.04,
                                contention_scale=12000.0, all_at_once_gain=1.45,
                                all_at_once_max_nodes=5000, jitter=0.08, rng=rng)
    if kind == "mpi":
        # Default good performance: slightly slower than tuned libfabric at
        # 4096 nodes but degrades less towards full scale.
        return ModeledDataPlane(name="mpi", base_bandwidth=3.9e9, latency=0.05,
                                contention_scale=30000.0, all_at_once_gain=1.0,
                                all_at_once_max_nodes=None, jitter=0.12, rng=rng)
    if kind == "tcp":
        return ModeledDataPlane(name="tcp", base_bandwidth=1.0e9, latency=0.2,
                                contention_scale=256.0, jitter=0.05, rng=rng)
    raise ValueError(f"unknown data plane {kind!r}")
