"""Steps: the unit of synchronisation between producer and consumer."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.streaming.variable import Variable


class StepStatus(enum.Enum):
    """Result of a reader's ``begin_step`` (subset of ADIOS2's StepStatus)."""

    OK = "ok"
    END_OF_STREAM = "end_of_stream"
    NOT_READY = "not_ready"


@dataclass
class Step:
    """One step's variables and attributes as presented to readers."""

    index: int
    variables: Dict[str, Variable] = field(default_factory=dict)
    attributes: Dict[str, object] = field(default_factory=dict)

    def put(self, variable: Variable) -> None:
        self.variables[variable.name] = variable

    def get(self, name: str) -> Variable:
        if name not in self.variables:
            raise KeyError(f"variable {name!r} is not part of step {self.index}")
        return self.variables[name]

    def available_variables(self) -> tuple:
        return tuple(sorted(self.variables))

    @property
    def nbytes(self) -> int:
        return sum(v.nbytes for v in self.variables.values())
