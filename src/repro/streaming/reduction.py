"""In-stream data reduction (Fig. 3b).

"Reducing simulation data close to the producer lowers bandwidth
requirements" — the second of the three streaming aspects the paper
identifies.  The reducers below operate on the per-step variables before
they enter the stream; they are composable and each reports the compression
factor it achieved so the workflow can account for the saved bandwidth.

Reduction is *lossy* in general (that is the point: "often done by
discarding highly valuable data in practice"); the in-transit workflow makes
the loss explicit and controllable instead of dropping whole time steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import RandomState, seeded_rng


class Reducer:
    """Base class of in-stream reducers."""

    name: str = "identity"

    def reduce(self, name: str, data: np.ndarray) -> np.ndarray:
        """Return the reduced payload for variable ``name``."""
        raise NotImplementedError

    def factor(self, original: np.ndarray, reduced: np.ndarray) -> float:
        """Compression factor achieved (original bytes / reduced bytes)."""
        reduced_bytes = max(int(np.asarray(reduced).nbytes), 1)
        return float(np.asarray(original).nbytes) / reduced_bytes


class IdentityReducer(Reducer):
    """No reduction (the baseline)."""

    name = "identity"

    def reduce(self, name: str, data: np.ndarray) -> np.ndarray:
        return np.asarray(data)


class PrecisionReducer(Reducer):
    """Cast floating-point payloads to a narrower dtype (e.g. float32/float16).

    The cheapest, always-applicable reduction: PIC particle data is produced
    in float64/float32 but the ML model does not benefit from the extra
    mantissa bits.
    """

    name = "precision"

    def __init__(self, dtype=np.float32) -> None:
        self.dtype = np.dtype(dtype)
        if self.dtype.kind != "f":
            raise ValueError("PrecisionReducer requires a floating-point target dtype")

    def reduce(self, name: str, data: np.ndarray) -> np.ndarray:
        data = np.asarray(data)
        if data.dtype.kind != "f" or data.dtype.itemsize <= self.dtype.itemsize:
            return data
        return data.astype(self.dtype)


class ParticleSubsampleReducer(Reducer):
    """Keep a random fraction of the particles (rows of 2D arrays).

    Matches the paper's observation that the radiation/ML pipeline does not
    need every macro-particle: a representative sample preserves the local
    phase-space distribution while cutting bandwidth proportionally.
    Weight-like variables (1D) are scaled so integrated quantities are
    preserved in expectation.
    """

    name = "particle_subsample"

    def __init__(self, fraction: float, rng: RandomState = None,
                 particle_prefixes: Sequence[str] = ("particles/",)) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must lie in (0, 1]")
        self.fraction = float(fraction)
        self.rng = seeded_rng(rng)
        self.particle_prefixes = tuple(particle_prefixes)
        self._selection_cache: Dict[Tuple[int, int], np.ndarray] = {}

    def _selection(self, n: int, step_key: int) -> np.ndarray:
        key = (step_key, n)
        if key not in self._selection_cache:
            keep = max(1, int(round(self.fraction * n)))
            self._selection_cache[key] = np.sort(self.rng.choice(n, size=keep, replace=False))
        return self._selection_cache[key]

    def new_step(self) -> None:
        """Reset the per-step selection cache (call once per streamed step)."""
        self._selection_cache.clear()

    def reduce(self, name: str, data: np.ndarray) -> np.ndarray:
        data = np.asarray(data)
        if not any(name.startswith(p) for p in self.particle_prefixes) or data.ndim == 0:
            return data
        n = data.shape[0]
        selection = self._selection(n, step_key=0)
        reduced = data[selection]
        if "weight" in name.lower():
            # weight-like record: rescale so the total is preserved in expectation
            reduced = reduced * (n / len(selection))
        return reduced


class SpectrumBinningReducer(Reducer):
    """Rebin spectra (last axis) by an integer factor.

    Radiation spectra are smooth on the scale of a few bins; averaging
    neighbouring frequencies reduces the spectral payload without moving the
    peaks the inversion relies on.
    """

    name = "spectrum_binning"

    def __init__(self, factor: int, spectrum_prefixes: Sequence[str] = ("radiation/",
                                                                        "meshes/radiation")) -> None:
        if factor < 1:
            raise ValueError("factor must be >= 1")
        self.bin_factor = int(factor)
        self.spectrum_prefixes = tuple(spectrum_prefixes)

    def reduce(self, name: str, data: np.ndarray) -> np.ndarray:
        data = np.asarray(data)
        if self.bin_factor == 1 or data.ndim == 0 or \
                not any(name.startswith(p) for p in self.spectrum_prefixes):
            return data
        length = data.shape[-1]
        usable = (length // self.bin_factor) * self.bin_factor
        if usable == 0:
            return data
        trimmed = data[..., :usable]
        new_shape = trimmed.shape[:-1] + (usable // self.bin_factor, self.bin_factor)
        return trimmed.reshape(new_shape).mean(axis=-1)


@dataclass
class ReductionReport:
    """Bytes before/after one step's reduction."""

    original_bytes: int
    reduced_bytes: int
    per_variable: Dict[str, float]

    @property
    def factor(self) -> float:
        return self.original_bytes / max(self.reduced_bytes, 1)

    @property
    def saved_fraction(self) -> float:
        if self.original_bytes == 0:
            return 0.0
        return 1.0 - self.reduced_bytes / self.original_bytes


class ReductionPipeline(Reducer):
    """Apply several reducers in sequence and keep per-step statistics."""

    name = "pipeline"

    def __init__(self, reducers: Sequence[Reducer]) -> None:
        self.reducers = list(reducers)
        self.reports: List[ReductionReport] = []

    def reduce(self, name: str, data: np.ndarray) -> np.ndarray:
        reduced = np.asarray(data)
        for reducer in self.reducers:
            reduced = reducer.reduce(name, reduced)
        return reduced

    def reduce_step(self, variables: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Reduce a whole step's variables and record a report."""
        for reducer in self.reducers:
            if isinstance(reducer, ParticleSubsampleReducer):
                reducer.new_step()
        original_bytes = 0
        reduced_bytes = 0
        per_variable: Dict[str, float] = {}
        out: Dict[str, np.ndarray] = {}
        for name, data in variables.items():
            data = np.asarray(data)
            reduced = self.reduce(name, data)
            out[name] = reduced
            original_bytes += data.nbytes
            reduced_bytes += reduced.nbytes
            per_variable[name] = data.nbytes / max(reduced.nbytes, 1)
        self.reports.append(ReductionReport(original_bytes=original_bytes,
                                            reduced_bytes=reduced_bytes,
                                            per_variable=per_variable))
        return out

    def total_factor(self) -> float:
        """Aggregate compression factor over all reduced steps."""
        original = sum(r.original_bytes for r in self.reports)
        reduced = sum(r.reduced_bytes for r in self.reports)
        return original / max(reduced, 1)
