"""Variables and blocks: the units of data exchanged per step."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np


@dataclass
class Block:
    """One writer rank's chunk of a variable (a "block" in ADIOS2 terms).

    Attributes
    ----------
    rank:
        Producing rank (the paper's intra-node setup selects blocks so that
        readers load data produced on their own node).
    offset:
        Start of the block within the global array, one entry per dimension.
    data:
        The block's payload.
    """

    rank: int
    offset: Tuple[int, ...]
    data: np.ndarray

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(self.data.shape)

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)


@dataclass
class Variable:
    """A named, possibly multi-block variable inside a step."""

    name: str
    blocks: Dict[int, Block] = field(default_factory=dict)

    def add_block(self, block: Block) -> None:
        self.blocks[block.rank] = block

    def block(self, rank: int) -> Block:
        return self.blocks[rank]

    @property
    def ranks(self) -> Tuple[int, ...]:
        return tuple(sorted(self.blocks))

    @property
    def nbytes(self) -> int:
        return sum(b.nbytes for b in self.blocks.values())

    def gather(self) -> np.ndarray:
        """Concatenate all blocks along the first axis in rank order.

        This matches the slab decomposition used by the producer: each rank
        contributes a contiguous range of the leading dimension.
        """
        if not self.blocks:
            raise ValueError(f"variable {self.name!r} has no blocks")
        ordered = [self.blocks[r].data for r in self.ranks]
        if len(ordered) == 1:
            return ordered[0]
        return np.concatenate(ordered, axis=0)

    @property
    def dtype(self):
        first = next(iter(self.blocks.values()), None)
        return None if first is None else first.data.dtype
