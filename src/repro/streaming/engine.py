"""Writer and reader engines: the ADIOS2-style step-based put/get API.

The writer side::

    writer = SSTWriterEngine(broker, n_ranks=4)
    writer.begin_step()
    writer.put("particles/position", block_data, rank=2)
    writer.end_step()        # metadata gathered, step presented to readers
    writer.close()           # end of stream

The reader side::

    reader = SSTReaderEngine(broker)
    while reader.begin_step() is StepStatus.OK:
        names = reader.available_variables()
        data = reader.get("particles/position")          # all blocks gathered
        mine = reader.get("particles/position", rank=2)  # one block only
        reader.end_step()    # tells the writer the data can be dropped

A file-based pair (:class:`FileWriterEngine` / :class:`FileReaderEngine`)
writes each step to an ``.npz`` file, providing the classical file-based
workflow the paper compares against (and a persistence option for
checkpointing streams).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.streaming.broker import SSTBroker
from repro.streaming.dataplane import DataPlane, InMemoryDataPlane
from repro.streaming.step import Step, StepStatus
from repro.streaming.variable import Block, Variable
from repro.utils.serialization import jsonable


class EndOfStreamError(RuntimeError):
    """Raised when an operation requires an open step after the stream ended."""


class _StepWriterMixin:
    """Shared step-assembly logic of writer engines."""

    def __init__(self, n_ranks: int = 1) -> None:
        if n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        self.n_ranks = int(n_ranks)
        self._current: Optional[Step] = None
        self._step_index = 0
        self.total_bytes_put = 0

    def begin_step(self) -> int:
        if self._current is not None:
            raise RuntimeError("previous step has not been ended")
        self._current = Step(index=self._step_index)
        return self._step_index

    def put(self, name: str, data: np.ndarray, rank: int = 0,
            offset: Optional[Tuple[int, ...]] = None) -> None:
        """Add one rank's block of variable ``name`` to the open step."""
        if self._current is None:
            raise RuntimeError("put() requires an open step (call begin_step first)")
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} outside [0, {self.n_ranks})")
        data = np.asarray(data)
        variable = self._current.variables.setdefault(name, Variable(name))
        variable.add_block(Block(rank=rank, offset=offset or (0,) * data.ndim, data=data))
        self.total_bytes_put += int(data.nbytes)

    def put_attributes(self, attributes: Dict[str, object]) -> None:
        if self._current is None:
            raise RuntimeError("put_attributes() requires an open step")
        self._current.attributes.update(attributes)

    def _finish_step(self) -> Step:
        if self._current is None:
            raise RuntimeError("end_step() without begin_step()")
        step, self._current = self._current, None
        self._step_index += 1
        return step


class SSTWriterEngine(_StepWriterMixin):
    """Producer side of the SST-style stream."""

    def __init__(self, broker: SSTBroker, n_ranks: int = 1,
                 data_plane: Optional[DataPlane] = None,
                 put_timeout: Optional[float] = 30.0) -> None:
        super().__init__(n_ranks=n_ranks)
        self.broker = broker
        self.data_plane = data_plane or InMemoryDataPlane()
        self.put_timeout = put_timeout

    def end_step(self) -> Step:
        """Gather the step's metadata and present it to the readers."""
        step = self._finish_step()
        self.broker.put_step(step, timeout=self.put_timeout)
        return step

    def close(self) -> None:
        self.broker.close()


class SSTReaderEngine:
    """Consumer side of the SST-style stream.

    In openPMD/ADIOS2 "each reader application decides on its own which
    remote datasets to load" — :meth:`get` with a ``rank`` argument selects
    a single producer block (the intra-node pattern of Fig. 3c); without it
    all blocks are gathered.
    """

    def __init__(self, broker: SSTBroker, data_plane: Optional[DataPlane] = None,
                 get_timeout: Optional[float] = 30.0) -> None:
        self.broker = broker
        self.data_plane = data_plane or InMemoryDataPlane()
        self.get_timeout = get_timeout
        self._current: Optional[Step] = None
        self._ended = False
        self.total_bytes_read = 0
        self.steps_read = 0

    # -- step protocol ------------------------------------------------------ #
    def begin_step(self) -> StepStatus:
        if self._current is not None:
            raise RuntimeError("previous step has not been ended")
        if self._ended:
            return StepStatus.END_OF_STREAM
        step = self.broker.get_step(timeout=self.get_timeout)
        if step is None:
            self._ended = True
            return StepStatus.END_OF_STREAM
        self._current = step
        return StepStatus.OK

    def current_step(self) -> Step:
        if self._current is None:
            raise EndOfStreamError("no step is currently open")
        return self._current

    def available_variables(self) -> Tuple[str, ...]:
        return self.current_step().available_variables()

    def attributes(self) -> Dict[str, object]:
        return dict(self.current_step().attributes)

    def get(self, name: str, rank: Optional[int] = None) -> np.ndarray:
        """Read a variable from the open step (one block or all gathered)."""
        variable = self.current_step().get(name)
        if rank is None:
            data = variable.gather()
        else:
            data = variable.block(rank).data
        self.total_bytes_read += int(np.asarray(data).nbytes)
        return data

    def end_step(self) -> None:
        """Release the step (the writer may now drop the data)."""
        if self._current is None:
            raise RuntimeError("end_step() without begin_step()")
        self._current = None
        self.steps_read += 1

    def close(self) -> None:
        self._current = None
        self._ended = True


class FileWriterEngine(_StepWriterMixin):
    """File-based engine: one ``.npz`` + ``.json`` pair per step.

    This is the classical workflow the paper's streaming approach replaces;
    it is retained both for comparison benchmarks and because "file I/O can
    certainly be initiated when desired".
    """

    def __init__(self, directory: str, n_ranks: int = 1) -> None:
        super().__init__(n_ranks=n_ranks)
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self._written_steps: List[int] = []

    def end_step(self) -> Step:
        step = self._finish_step()
        arrays: Dict[str, np.ndarray] = {}
        layout: Dict[str, Dict[str, Dict[str, object]]] = {}
        for name, variable in step.variables.items():
            layout[name] = {}
            for rank, block in variable.blocks.items():
                key = f"{name}::{rank}"
                arrays[key] = block.data
                layout[name][str(rank)] = {"offset": list(block.offset)}
        np.savez(self._array_path(step.index), **arrays)
        with open(self._meta_path(step.index), "w", encoding="utf-8") as handle:
            # strict=False: this metadata is a Python-internal round-trip and
            # a non-finite attribute (diverged diagnostic) must stay nan
            json.dump({"index": step.index,
                       "attributes": jsonable(step.attributes, strict=False),
                       "layout": layout}, handle)
        self._written_steps.append(step.index)
        return step

    def close(self) -> None:
        with open(os.path.join(self.directory, "series.json"), "w", encoding="utf-8") as handle:
            json.dump({"steps": self._written_steps}, handle)

    def _array_path(self, index: int) -> str:
        return os.path.join(self.directory, f"step_{index:06d}.npz")

    def _meta_path(self, index: int) -> str:
        return os.path.join(self.directory, f"step_{index:06d}.json")


class FileReaderEngine:
    """Read steps previously written by :class:`FileWriterEngine`."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        series_path = os.path.join(directory, "series.json")
        if os.path.exists(series_path):
            with open(series_path, encoding="utf-8") as handle:
                self._steps = list(json.load(handle)["steps"])
        else:
            self._steps = sorted(
                int(f[len("step_"):-len(".json")]) for f in os.listdir(directory)
                if f.startswith("step_") and f.endswith(".json"))
        self._cursor = 0
        self._current: Optional[Step] = None
        self.total_bytes_read = 0
        self.steps_read = 0

    def begin_step(self) -> StepStatus:
        if self._current is not None:
            raise RuntimeError("previous step has not been ended")
        if self._cursor >= len(self._steps):
            return StepStatus.END_OF_STREAM
        index = self._steps[self._cursor]
        with open(os.path.join(self.directory, f"step_{index:06d}.json"),
                  encoding="utf-8") as handle:
            meta = json.load(handle)
        arrays = np.load(os.path.join(self.directory, f"step_{index:06d}.npz"))
        step = Step(index=index, attributes=meta["attributes"])
        for name, ranks in meta["layout"].items():
            variable = Variable(name)
            for rank_str, info in ranks.items():
                data = arrays[f"{name}::{rank_str}"]
                variable.add_block(Block(rank=int(rank_str),
                                         offset=tuple(info["offset"]), data=data))
            step.put(variable)
        self._current = step
        self._cursor += 1
        return StepStatus.OK

    def available_variables(self) -> Tuple[str, ...]:
        if self._current is None:
            raise EndOfStreamError("no step is currently open")
        return self._current.available_variables()

    def attributes(self) -> Dict[str, object]:
        if self._current is None:
            raise EndOfStreamError("no step is currently open")
        return dict(self._current.attributes)

    def get(self, name: str, rank: Optional[int] = None) -> np.ndarray:
        if self._current is None:
            raise EndOfStreamError("no step is currently open")
        variable = self._current.get(name)
        data = variable.gather() if rank is None else variable.block(rank).data
        self.total_bytes_read += int(np.asarray(data).nbytes)
        return data

    def end_step(self) -> None:
        if self._current is None:
            raise RuntimeError("end_step() without begin_step()")
        self._current = None
        self.steps_read += 1

    def close(self) -> None:
        self._current = None
