"""The in-process broker connecting one writer to its readers.

The SST engine holds produced steps in a bounded queue ("QueueLimit" in
ADIOS2 terms).  When the queue is full the writer either blocks — stalling
the simulation, which the paper explicitly allows ("as long as we have some
leeway to stall the running simulation") — or discards the oldest step.
Both policies are implemented; the in-transit trainer relies on ``BLOCK``.
"""

from __future__ import annotations

import enum
import threading
from collections import deque
from typing import Deque, Dict, Optional

from repro.streaming.step import Step
from repro.telemetry import REGISTRY

_STREAM_STEPS = REGISTRY.counter(
    "repro_stream_steps_total",
    "SST broker step events (written/read/discarded), by event")
_STREAM_BYTES = REGISTRY.counter(
    "repro_stream_bytes_total", "Bytes written through the SST brokers")


class QueueFullPolicy(enum.Enum):
    """What the writer does when the step queue is full."""

    BLOCK = "block"
    DISCARD_OLDEST = "discard_oldest"
    RAISE = "raise"


class StreamClosedError(RuntimeError):
    """Raised when interacting with a stream whose writer has closed it."""


class SSTBroker:
    """Bounded, thread-safe step queue between a writer and one reader group.

    The reproduction drives producer and consumer either from the same
    thread (strictly alternating begin/end step calls, the common case in
    tests) or from separate threads (the streaming examples); the broker
    supports both via condition variables with timeouts.
    """

    def __init__(self, stream_name: str, queue_limit: int = 2,
                 policy: QueueFullPolicy = QueueFullPolicy.BLOCK) -> None:
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self.stream_name = stream_name
        self.queue_limit = int(queue_limit)
        self.policy = policy
        self._queue: Deque[Step] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False
        self.steps_written = 0
        self.steps_read = 0
        self.steps_discarded = 0
        self.bytes_written = 0

    # -- writer side -------------------------------------------------------- #
    def put_step(self, step: Step, timeout: Optional[float] = None) -> None:
        """Enqueue a finished step according to the queue-full policy."""
        with self._lock:
            if self._closed:
                raise StreamClosedError(f"stream {self.stream_name!r} is closed")
            if len(self._queue) >= self.queue_limit:
                if self.policy is QueueFullPolicy.RAISE:
                    raise RuntimeError("step queue is full")
                if self.policy is QueueFullPolicy.DISCARD_OLDEST:
                    self._queue.popleft()
                    self.steps_discarded += 1
                    _STREAM_STEPS.inc(1, event="discarded")
                else:  # BLOCK
                    deadline_ok = self._not_full.wait_for(
                        lambda: len(self._queue) < self.queue_limit or self._closed,
                        timeout=timeout)
                    if not deadline_ok:
                        raise TimeoutError("timed out waiting for the reader to drain the queue")
                    if self._closed:
                        raise StreamClosedError(f"stream {self.stream_name!r} is closed")
            self._queue.append(step)
            self.steps_written += 1
            self.bytes_written += step.nbytes
            _STREAM_STEPS.inc(1, event="written")
            _STREAM_BYTES.inc(step.nbytes)
            self._not_empty.notify_all()

    def close(self) -> None:
        """Mark the end of the stream (readers receive END_OF_STREAM afterwards)."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    # -- reader side ----------------------------------------------------------- #
    def get_step(self, timeout: Optional[float] = None) -> Optional[Step]:
        """Dequeue the next step; ``None`` signals end of stream."""
        with self._lock:
            ready = self._not_empty.wait_for(
                lambda: self._queue or self._closed, timeout=timeout)
            if not ready:
                raise TimeoutError("timed out waiting for the writer to produce a step")
            if not self._queue:
                return None  # closed and drained
            step = self._queue.popleft()
            self.steps_read += 1
            _STREAM_STEPS.inc(1, event="read")
            self._not_full.notify_all()
            return step

    # -- introspection ------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def queued_steps(self) -> int:
        with self._lock:
            return len(self._queue)
