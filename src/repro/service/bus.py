"""In-process pub/sub for campaign run events.

The :class:`RunEventBus` is the seam between campaign execution and the
service's live streams: :mod:`repro.service.jobs` publishes one event per
:class:`repro.campaign.store.RunRecord` as ``run_campaign``'s ``on_record``
observer fires, and every open SSE response holds one subscription.

Three properties make it safe to put between a hot executor and an unknown
number of HTTP clients:

* **bounded subscriber queues** — each subscription owns a fixed-size
  queue; publishing never blocks on a consumer,
* **slow-subscriber drop policy** — when a subscriber's queue is full the
  *new* event is dropped for that subscriber only and counted on the
  subscription, so one stalled client can neither back-pressure the
  executor nor starve its peers (the SSE layer reports the loss with a
  ``dropped`` event; a client that must not miss anything re-reads the
  store, which remains the source of truth),
* **atomic history + subscribe** — the bus retains each topic's event
  history (bounded by campaign size: one event per run record plus the
  terminal event), and :meth:`RunEventBus.subscribe` returns the history
  snapshot and the registered subscription under one lock.  There is no
  gap in which a concurrently published event could be in neither the
  snapshot nor the queue — the exactly-once guarantee of snapshot+live
  streaming rests here.
"""

from __future__ import annotations

import itertools
import queue
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.telemetry import REGISTRY

#: Default per-subscriber queue capacity.
DEFAULT_QUEUE_SIZE = 256

_BUS_PUBLISHED = REGISTRY.counter(
    "repro_bus_events_total", "Events published on the run event bus, by kind")
_BUS_DROPPED = REGISTRY.counter(
    "repro_bus_dropped_total",
    "Events dropped by full subscriber queues, by kind")


@dataclass(frozen=True)
class BusEvent:
    """One published event: a per-topic sequence number, a kind, a payload."""

    seq: int                        #: monotonic per-topic sequence number
    kind: str                       #: e.g. ``run`` or ``done``
    data: Dict[str, object]         #: JSON-able payload


@dataclass
class Subscription:
    """One subscriber's bounded mailbox on a topic.

    Obtained from :meth:`RunEventBus.subscribe`; release it with
    :meth:`RunEventBus.unsubscribe` (the SSE handler does so in a
    ``finally`` so a disconnected client always detaches).
    """

    topic: str
    _queue: "queue.Queue[BusEvent]" = field(repr=False)
    #: events dropped because this subscriber's queue was full (total)
    dropped: int = 0
    _dropped_unreported: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def get(self, timeout: Optional[float] = None) -> Optional[BusEvent]:
        """Next event, or ``None`` after ``timeout`` seconds of silence."""
        try:
            return self._queue.get(timeout=timeout)
        except queue.Empty:
            return None

    def _offer(self, event: BusEvent) -> bool:
        """Enqueue without blocking; ``False`` when the event was dropped."""
        try:
            self._queue.put_nowait(event)
            return True
        except queue.Full:
            with self._lock:
                self.dropped += 1
                self._dropped_unreported += 1
            return False

    def take_dropped(self) -> int:
        """Drops since the last call (what the SSE layer reports), then 0."""
        with self._lock:
            count = self._dropped_unreported
            self._dropped_unreported = 0
        return count

    def pending(self) -> int:
        """Events currently queued and not yet consumed (approximate)."""
        return self._queue.qsize()


class RunEventBus:
    """Topic-keyed fan-out of campaign events with per-topic history.

    Args:
        max_queue_size: default capacity of each subscriber queue (a
            subscription may override it at ``subscribe`` time).
    """

    def __init__(self, max_queue_size: int = DEFAULT_QUEUE_SIZE) -> None:
        if max_queue_size < 1:
            raise ValueError("max_queue_size must be >= 1")
        self.max_queue_size = int(max_queue_size)
        self._lock = threading.Lock()
        self._history: Dict[str, List[BusEvent]] = {}
        self._subscribers: Dict[str, List[Subscription]] = {}
        self._seq: Dict[str, "itertools.count[int]"] = {}
        self._dropped: Dict[str, int] = {}

    # -- publishing --------------------------------------------------------- #
    def publish(self, topic: str, kind: str,
                data: Dict[str, object]) -> BusEvent:
        """Append an event to the topic history and offer it to subscribers.

        Never blocks: a full subscriber queue drops the event for that
        subscriber (counted on its :class:`Subscription`).

        Returns:
            The published :class:`BusEvent` with its assigned sequence
            number.
        """
        with self._lock:
            event = self._append(topic, kind, data)
            subscribers = list(self._subscribers.get(topic, ()))
        _BUS_PUBLISHED.inc(1, kind=kind)
        drops = sum(1 for subscription in subscribers
                    if not subscription._offer(event))
        if drops:
            _BUS_DROPPED.inc(drops, kind=kind)
            with self._lock:
                self._dropped[topic] = self._dropped.get(topic, 0) + drops
        return event

    def seed(self, topic: str, kind: str, data: Dict[str, object]) -> BusEvent:
        """Append to the topic history *without* fanning out to subscribers.

        Used when attaching to an existing campaign store after a service
        restart: the store's records become replayable history, but they
        are not "new" events for anyone already subscribed.
        """
        with self._lock:
            return self._append(topic, kind, data)

    def _append(self, topic: str, kind: str,
                data: Dict[str, object]) -> BusEvent:
        counter = self._seq.setdefault(topic, itertools.count(1))
        event = BusEvent(seq=next(counter), kind=kind, data=dict(data))
        self._history.setdefault(topic, []).append(event)
        return event

    # -- subscribing -------------------------------------------------------- #
    def subscribe(self, topic: str, max_queue_size: Optional[int] = None
                  ) -> Tuple[List[BusEvent], Subscription]:
        """Register a subscriber, atomically returning (history, subscription).

        The snapshot and the registration happen under one lock, so every
        event of the topic lands in exactly one of the two: the returned
        history list or the subscription's queue.
        """
        size = self.max_queue_size if max_queue_size is None \
            else int(max_queue_size)
        if size < 1:
            raise ValueError("max_queue_size must be >= 1")
        subscription = Subscription(topic=topic, _queue=queue.Queue(size))
        with self._lock:
            history = list(self._history.get(topic, ()))
            self._subscribers.setdefault(topic, []).append(subscription)
        return history, subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        """Detach a subscription; idempotent (a double detach is a no-op)."""
        with self._lock:
            subscribers = self._subscribers.get(subscription.topic, [])
            if subscription in subscribers:
                subscribers.remove(subscription)

    # -- introspection ------------------------------------------------------ #
    def subscriber_count(self, topic: str) -> int:
        """Open subscriptions on a topic (the SSE test hooks poll this)."""
        with self._lock:
            return len(self._subscribers.get(topic, ()))

    def dropped_count(self, topic: str) -> int:
        """Total events dropped on a topic across every subscriber."""
        with self._lock:
            return self._dropped.get(topic, 0)

    def topic_stats(self, topic: str) -> Dict[str, int]:
        """JSON-able per-topic accounting: events, subscribers, drops."""
        with self._lock:
            return {"events": len(self._history.get(topic, ())),
                    "subscribers": len(self._subscribers.get(topic, ())),
                    "dropped": self._dropped.get(topic, 0)}

    def history(self, topic: str) -> List[BusEvent]:
        """A snapshot of the topic's full event history."""
        with self._lock:
            return list(self._history.get(topic, ()))
