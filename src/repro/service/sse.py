"""Server-Sent Events wire format: one encoder, one incremental parser.

SSE is the service's live-streaming transport (``text/event-stream``,
`WHATWG HTML §9.2 <https://html.spec.whatwg.org/multipage/server-sent-events.html>`_):
a long-lived HTTP response carrying newline-delimited frames of the form ::

    event: run
    id: 7
    data: {"run_id": "...", "status": "completed", ...}
    <blank line>

Both directions of that protocol live here so they cannot drift apart:

* :func:`format_event` / :func:`format_comment` — what the server writes,
* :class:`SSEParser` / :func:`parse_events` — what
  :class:`repro.service.client.ServiceClient` (and the test suite's shared
  ``parse_sse_events`` helper) read back.

The parser is incremental by design: feed it whatever chunk of bytes the
socket produced and collect the events completed so far — exactly what a
streaming client needs, and what lets the tests drive snapshot-replay,
live-append and disconnect scenarios over the real wire format.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

#: SSE event types emitted by the campaign control plane.
EVENT_SNAPSHOT = "snapshot"     #: replay of an already-recorded run on connect
EVENT_RUN = "run"               #: a run record that landed while subscribed
EVENT_DONE = "done"             #: terminal frame: the campaign reached an end state
EVENT_DROPPED = "dropped"       #: this subscriber was too slow; events were lost


def format_event(event: str, data: Dict[str, object],
                 event_id: Optional[int] = None) -> str:
    """Encode one SSE frame (``event:`` / ``id:`` / ``data:`` + blank line).

    Args:
        event: the event type (``run``, ``snapshot``, ``done``, ``dropped``).
        data: JSON-able payload, serialised onto a single ``data:`` line.
        event_id: optional monotonic sequence number (the bus seq), letting
            clients detect replays.

    Returns:
        The complete frame text, terminated by the blank line that ends an
        SSE event.
    """
    lines = [f"event: {event}"]
    if event_id is not None:
        lines.append(f"id: {event_id}")
    lines.append("data: " + json.dumps(data, sort_keys=True))
    return "\n".join(lines) + "\n\n"


def format_comment(text: str = "keep-alive") -> str:
    """Encode an SSE comment frame (ignored by parsers, keeps the pipe warm).

    Comments double as liveness probes: writing one to a disconnected
    client raises, which is how the server notices a consumer went away
    between events.
    """
    return f": {text}\n\n"


@dataclass
class SSEEvent:
    """One parsed SSE frame."""

    event: str                       #: the ``event:`` field
    data: Dict[str, object]          #: the JSON-decoded ``data:`` payload
    id: Optional[int] = None         #: the ``id:`` field, when present

    def __getitem__(self, key: str) -> object:
        """Dict-style access into the payload (``event["run_id"]``)."""
        return self.data[key]


@dataclass
class SSEParser:
    """Incremental SSE line-protocol parser.

    Feed raw text chunks as they arrive; completed events are returned as
    :class:`SSEEvent` objects.  Partial frames are buffered across ``feed``
    calls, comment frames (``: ...``) are discarded, and multi-line
    ``data:`` fields are joined with newlines per the SSE specification.
    """

    _buffer: str = ""
    _event: Optional[str] = None
    _data_lines: List[str] = field(default_factory=list)
    _id: Optional[int] = None

    def feed(self, chunk: str) -> List[SSEEvent]:
        """Consume one chunk of stream text, returning the completed events."""
        self._buffer += chunk
        events: List[SSEEvent] = []
        while "\n" in self._buffer:
            line, self._buffer = self._buffer.split("\n", 1)
            event = self._feed_line(line.rstrip("\r"))
            if event is not None:
                events.append(event)
        return events

    def _feed_line(self, line: str) -> Optional[SSEEvent]:
        if line.startswith(":"):            # comment / keep-alive
            return None
        if line.startswith("event:"):
            self._event = line[len("event:"):].strip()
            return None
        if line.startswith("id:"):
            raw = line[len("id:"):].strip()
            self._id = int(raw) if raw.lstrip("-").isdigit() else None
            return None
        if line.startswith("data:"):
            self._data_lines.append(line[len("data:"):].lstrip(" "))
            return None
        if line == "" and (self._event is not None or self._data_lines):
            raw = "\n".join(self._data_lines)
            event = SSEEvent(event=self._event or "message",
                             data=json.loads(raw) if raw else {},
                             id=self._id)
            self._event, self._data_lines, self._id = None, [], None
            return event
        return None                          # unknown field or stray blank


def parse_events(raw: str) -> List[SSEEvent]:
    """Parse a complete SSE stream body into its events (test convenience)."""
    return SSEParser().feed(raw if raw.endswith("\n") else raw + "\n")


def iter_events(lines: Iterable[str]) -> Iterable[SSEEvent]:
    """Parse an iterable of stream lines into events as they complete."""
    parser = SSEParser()
    for line in lines:
        for event in parser.feed(line if line.endswith("\n") else line + "\n"):
            yield event
