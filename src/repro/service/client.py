"""A stdlib (urllib) client for the campaign control plane.

:class:`ServiceClient` wraps the whole HTTP API of
:mod:`repro.service.server` — submit, list, status, report, cancel — and
turns the SSE endpoint into a plain Python iterator of
:class:`repro.service.sse.SSEEvent` objects via the shared incremental
parser, so ``campaign watch``, the CI smoke job and the test suite all
consume the stream the same way:

>>> client = ServiceClient("http://127.0.0.1:8765")   # doctest: +SKIP
>>> submitted = client.submit(preset="campaign-smoke")  # doctest: +SKIP
>>> for event in client.watch(submitted["campaign_id"]):  # doctest: +SKIP
...     print(event.event, event.data.get("run_id"))

No third-party dependencies: everything rides on ``urllib.request``.
"""

from __future__ import annotations

import json
import socket
import time
import urllib.error
import urllib.request
from typing import Dict, Iterator, List, Optional

from repro.service.sse import EVENT_DONE, SSEEvent, SSEParser


class ServiceError(RuntimeError):
    """An HTTP-level failure, carrying the status code and error payload."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Talk to one campaign service instance.

    Args:
        base_url: e.g. ``http://127.0.0.1:8765`` (trailing slash tolerated).
        timeout: per-request socket timeout in seconds; SSE reads use it
            per chunk, so keep it above the server's keep-alive interval.
    """

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)

    # -- plumbing ----------------------------------------------------------- #
    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, object]] = None
                 ) -> Dict[str, object]:
        data = None if body is None else \
            json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": "application/json"} if data else {})
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            raise ServiceError(error.code, self._error_message(error)) \
                from None

    @staticmethod
    def _error_message(error: urllib.error.HTTPError) -> str:
        try:
            return json.loads(error.read().decode("utf-8"))["error"]
        except Exception:  # noqa: BLE001 - best-effort error body decode
            return error.reason or "request failed"

    # -- API ---------------------------------------------------------------- #
    def health(self) -> Dict[str, object]:
        """``GET /v1/health``."""
        return self._request("GET", "/v1/health")

    def wait_ready(self, timeout: float = 10.0, interval: float = 0.1
                   ) -> Dict[str, object]:
        """Poll ``/v1/health`` until the service answers (startup helper).

        Raises:
            TimeoutError: if the service does not come up in time.
        """
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.health()
            except (OSError, ServiceError):
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"service at {self.base_url} not ready after "
                        f"{timeout:.1f} s") from None
                time.sleep(interval)

    def submit(self, spec: Optional[Dict[str, object]] = None,
               preset: Optional[str] = None,
               **options: object) -> Dict[str, object]:
        """``POST /v1/campaigns``: submit a spec dict or a preset name.

        Args:
            spec: a ``CampaignSpec.to_dict()`` payload.
            preset: a named campaign preset (exactly one of the two).
            **options: executor options (``executor``, ``max_workers``,
                ``timeout``, ``retries``, ``cache_dir``).

        Returns:
            The submission document (``campaign_id``, ``state``,
            ``created``, ``started``, counts, ``events_url``).
        """
        body: Dict[str, object] = {key: value for key, value in options.items()
                                   if value is not None}
        if spec is not None:
            body["spec"] = spec
        if preset is not None:
            body["preset"] = preset
        return self._request("POST", "/v1/campaigns", body)

    def list_campaigns(self) -> List[Dict[str, object]]:
        """``GET /v1/campaigns``: summary documents of every campaign."""
        return self._request("GET", "/v1/campaigns")["campaigns"]

    def status(self, campaign_id: str) -> Dict[str, object]:
        """``GET /v1/campaigns/{id}``: full status incl. per-run records."""
        return self._request("GET", f"/v1/campaigns/{campaign_id}")

    def report(self, campaign_id: str) -> Dict[str, object]:
        """``GET /v1/campaigns/{id}/report``: the aggregate campaign report."""
        return self._request("GET", f"/v1/campaigns/{campaign_id}/report")

    def cancel(self, campaign_id: str) -> Dict[str, object]:
        """``DELETE /v1/campaigns/{id}``: request cooperative cancellation."""
        return self._request("DELETE", f"/v1/campaigns/{campaign_id}")

    # -- streaming ---------------------------------------------------------- #
    def events(self, campaign_id: str,
               timeout: Optional[float] = None) -> Iterator[SSEEvent]:
        """Open the SSE stream and yield parsed events until it closes.

        Args:
            campaign_id: which campaign to watch.
            timeout: per-read socket timeout (default: the client timeout).

        Yields:
            :class:`repro.service.sse.SSEEvent` frames — ``snapshot``
            replays, live ``run`` events, possible ``dropped`` notices and
            the terminal ``done``.

        Raises:
            ServiceError: if the subscription request itself fails (e.g.
                an unknown campaign id).
        """
        request = urllib.request.Request(
            f"{self.base_url}/v1/campaigns/{campaign_id}/events",
            headers={"Accept": "text/event-stream"})
        try:
            response = urllib.request.urlopen(
                request, timeout=self.timeout if timeout is None else timeout)
        except urllib.error.HTTPError as error:
            raise ServiceError(error.code, self._error_message(error)) \
                from None
        parser = SSEParser()
        try:
            while True:
                try:
                    line = response.readline()
                except (socket.timeout, TimeoutError):
                    return
                if not line:
                    return
                for event in parser.feed(line.decode("utf-8")):
                    yield event
        finally:
            response.close()

    def watch(self, campaign_id: str,
              timeout: Optional[float] = None) -> Iterator[SSEEvent]:
        """Like :meth:`events`, but stop after the terminal ``done`` frame."""
        for event in self.events(campaign_id, timeout=timeout):
            yield event
            if event.event == EVENT_DONE:
                return
