"""repro.service — the campaign control plane as an HTTP service.

Where :mod:`repro.campaign` turned one workflow run into a resumable fleet
of runs, this subsystem turns the fleet into something **many concurrent
clients can drive**: submit a sweep over HTTP, get a campaign id back,
poll its status, and watch every run land live over Server-Sent Events —
the first seam in the repo where execution crosses a process boundary
toward the ROADMAP's heavy-concurrent-traffic north star.

Layers (each its own module, bottom up):

* :mod:`repro.service.sse`    — the SSE wire format: encoder + incremental
  parser shared by server, client and tests,
* :mod:`repro.service.bus`    — :class:`RunEventBus`: in-process pub/sub
  with per-subscriber bounded queues, a slow-subscriber drop policy and
  atomic history+subscribe (the exactly-once snapshot/live guarantee),
* :mod:`repro.service.jobs`   — :class:`CampaignJobManager`: background
  campaign threads keyed by campaign id, chunked for cooperative cancel,
  with the append-only JSONL store as the single source of truth (service
  restarts resume exactly like CLI ``campaign run``),
* :mod:`repro.service.server` — the stdlib ``ThreadingHTTPServer`` API
  (``POST/GET/DELETE /v1/campaigns`` + ``/events`` SSE streaming),
* :mod:`repro.service.client` — :class:`ServiceClient`, a urllib-based
  client whose SSE iterator backs ``campaign watch`` and the CI smoke job.

No new dependencies: everything runs on the standard library plus the
existing numpy/scipy install requirements.

CLI access: ``python -m repro.cli serve`` starts the service;
``python -m repro.cli campaign submit|watch --url ...`` drive it.
See ``docs/service.md``.
"""

from repro.service.bus import BusEvent, RunEventBus, Subscription
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import (CampaignJob, CampaignJobManager,
                                campaign_id_of, executor_for)
from repro.service.server import (CampaignServiceHandler,
                                  CampaignServiceServer, create_server,
                                  parse_submission, serve, sse_event_stream)
from repro.service.sse import (EVENT_DONE, EVENT_DROPPED, EVENT_RUN,
                               EVENT_SNAPSHOT, SSEEvent, SSEParser,
                               format_comment, format_event, iter_events,
                               parse_events)

__all__ = [
    "BusEvent",
    "RunEventBus",
    "Subscription",
    "ServiceClient",
    "ServiceError",
    "CampaignJob",
    "CampaignJobManager",
    "campaign_id_of",
    "executor_for",
    "CampaignServiceHandler",
    "CampaignServiceServer",
    "create_server",
    "parse_submission",
    "serve",
    "sse_event_stream",
    "EVENT_DONE",
    "EVENT_DROPPED",
    "EVENT_RUN",
    "EVENT_SNAPSHOT",
    "SSEEvent",
    "SSEParser",
    "format_comment",
    "format_event",
    "iter_events",
    "parse_events",
]
