"""Campaign jobs: background ``run_campaign`` launches keyed by campaign id.

One :class:`CampaignJob` wraps one campaign: its spec, its append-only
:class:`repro.campaign.store.CampaignStore` (the single source of truth —
the service adds *no* second persistence layer), a resolved run list and a
background thread driving :func:`repro.campaign.scheduler.run_campaign` in
small chunks.  Chunked launches are what make cancellation cooperative:
in-flight runs are never killed (the scheduler's own rule), but between
chunks the job checks its cancel flag and stops scheduling more.

The :class:`CampaignJobManager` owns the id→job map, the shared
:class:`repro.service.bus.RunEventBus` and the store directory.  A
campaign's id is derived from the spec's *execution identity* (everything
except the ``routing``/``cache_dir`` hints, which never change run ids),
so resubmitting the same sweep — after a crash, a restart, or from a
second client — attaches to the same store and resumes exactly like CLI
``campaign run`` does.  Specs are persisted next to their stores
(``<id>.spec.json``), so a restarted service lists and resumes every
campaign it ever accepted.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import re
import threading
from typing import Callable, Dict, List, Optional, Tuple

from repro.campaign.aggregate import aggregate, status_document
from repro.campaign.cache import ResultCache
from repro.campaign.scheduler import (CampaignExecutor, default_pool_workers,
                                      execute_run, get_executor, run_campaign)
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import CampaignStore
from repro.service.bus import RunEventBus
from repro.service.sse import EVENT_DONE, EVENT_RUN

logger = logging.getLogger(__name__)

#: Job lifecycle states.
STATE_PENDING = "pending"            #: accepted, thread not yet scheduling
STATE_RUNNING = "running"
STATE_CANCELLING = "cancelling"      #: cancel requested, finishing in-flight runs
STATE_CANCELLED = "cancelled"
STATE_COMPLETED = "completed"        #: every resolved run completed
STATE_FAILED = "failed"              #: finished, but some runs failed (or the launch died)
STATE_INTERRUPTED = "interrupted"    #: found on disk with pending runs (resubmit resumes)

#: States in which the job's thread is finished (or never started).
TERMINAL_STATES = frozenset({STATE_CANCELLED, STATE_COMPLETED, STATE_FAILED,
                             STATE_INTERRUPTED})

#: Executor options a submission may carry.
EXECUTOR_OPTION_KEYS = ("executor", "max_workers", "timeout", "retries",
                        "cache_dir")


def campaign_id_of(spec: CampaignSpec) -> str:
    """Stable campaign identity: slugged name + hash of the execution identity.

    The hash covers everything that shapes the resolved runs and drops the
    ``routing``/``cache_dir`` hints (they are not part of run identity —
    resubmitting a resharded or cache-pointed copy of a sweep must resume
    the same campaign, not start a parallel one).
    """
    identity = spec.to_dict()
    identity.pop("routing", None)
    identity.pop("cache_dir", None)
    digest = hashlib.sha256(
        json.dumps(identity, sort_keys=True).encode("utf-8")).hexdigest()
    slug = re.sub(r"[^A-Za-z0-9._-]+", "-", spec.name).strip("-") or "campaign"
    return f"{slug}-{digest[:10]}"


def executor_for(spec: CampaignSpec,
                 options: Optional[Dict[str, object]] = None
                 ) -> CampaignExecutor:
    """Build a campaign executor from a spec's routing hints + submit options.

    Mirrors the CLI's resolution rules: explicit options win over the
    spec, and a spec carrying ``routing`` defaults to the sharded executor.

    Raises:
        ValueError: on an unknown executor name or rejected options.
    """
    options = dict(options or {})
    routing = dict(spec.routing)
    name = options.pop("executor", None) or ("sharded" if routing else "serial")
    kwargs: Dict[str, object] = {}
    for key in ("max_workers", "timeout", "retries"):
        if options.get(key) is not None:
            kwargs[key] = options[key]
    if name == "sharded":
        kwargs.update(shards=routing.get("shards", 2),
                      route=routing.get("route", "hash"),
                      inner=routing.get("inner", "serial"),
                      assignments=routing.get("assignments"))
    return get_executor(str(name), **kwargs)


class CampaignJob:
    """One campaign under service management: store + runs + runner thread."""

    def __init__(self, campaign_id: str, spec: CampaignSpec,
                 store: CampaignStore, bus: RunEventBus,
                 worker: Callable = execute_run,
                 executor_options: Optional[Dict[str, object]] = None) -> None:
        self.id = campaign_id
        self.spec = spec
        self.store = store
        self.bus = bus
        self.worker = worker
        self.executor_options = dict(executor_options or {})
        self.error: Optional[str] = None
        #: accumulated executor counter deltas of this job's launches
        #: (``WorkerPoolExecutor.last_stats`` summed over chunks)
        self.executor_stats: Dict[str, int] = {}
        self.runs = spec.resolve()
        self._lock = threading.RLock()
        self._cancel = threading.Event()
        self._thread: Optional[threading.Thread] = None
        # in-memory mirror of the store (latest record per run id), seeded
        # from disk so an attached pre-existing campaign reports instantly
        self._records = {record.run_id: record
                         for record in store.records()
                         if record.run_id in {run.run_id for run in self.runs}}
        for record in self._records.values():
            bus.seed(self.id, EVENT_RUN, self._event_payload(record))
        completed = sum(1 for r in self._records.values() if r.completed)
        if completed == len(self.runs):
            self.state = STATE_COMPLETED
            if not bus.history(self.id) or \
                    bus.history(self.id)[-1].kind != EVENT_DONE:
                bus.seed(self.id, EVENT_DONE, self._done_payload())
        elif self._records:
            self.state = STATE_INTERRUPTED
        else:
            self.state = STATE_PENDING

    # -- event payloads ----------------------------------------------------- #
    def _event_payload(self, record) -> Dict[str, object]:
        payload = record.to_dict()
        payload["campaign_id"] = self.id
        return payload

    def _done_payload(self) -> Dict[str, object]:
        payload = self.status(include_records=False)
        payload.pop("records", None)
        return payload

    # -- lifecycle ---------------------------------------------------------- #
    def start(self) -> bool:
        """Start (or restart) the runner thread; False if already running.

        A completed campaign with nothing pending is not restarted — the
        submit is idempotent and the existing results stand.
        """
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return False
            if self.state == STATE_COMPLETED and self.pending_count() == 0:
                return False
            self._cancel.clear()
            self.state = STATE_RUNNING
            self.error = None
            self._thread = threading.Thread(
                target=self._run, name=f"campaign-{self.id}", daemon=True)
            self._thread.start()
            return True

    def request_cancel(self) -> str:
        """Ask the job to stop scheduling runs (in-flight runs finish).

        Returns:
            The resulting state: ``cancelling`` while the thread drains,
            or the unchanged terminal state if it was already finished.
        """
        with self._lock:
            self._cancel.set()
            if self.state == STATE_RUNNING:
                self.state = STATE_CANCELLING
            return self.state

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for the runner thread (no-op if it never started)."""
        thread = self._thread
        if thread is not None:
            thread.join(timeout)

    # -- the runner thread -------------------------------------------------- #
    def _chunk_size(self, executor: CampaignExecutor) -> int:
        # Chunks stay small for cooperative cancel.  That makes per-chunk
        # executor start-up cost multiply — which is exactly what the
        # ``workers`` executor eliminates: it leases the process-wide warm
        # pool (repro.campaign.workers.shared_pool), so every chunk of
        # every job reuses the same live worker processes.
        if executor.name == "serial":
            return 1
        return int(executor.max_workers or default_pool_workers())

    def _run(self) -> None:
        try:
            executor = executor_for(self.spec, self.executor_options)
            cache_dir = (self.executor_options.get("cache_dir")
                         or self.spec.cache_dir)
            cache = ResultCache(str(cache_dir)) if cache_dir else None
            chunk = self._chunk_size(executor)
            done_ids = {run_id for run_id, record in self._records.items()
                        if record.completed}
            pending = [run for run in self.runs if run.run_id not in done_ids]
            position = 0
            while position < len(pending):
                if self._cancel.is_set():
                    self._finish(STATE_CANCELLED)
                    return
                batch = pending[position:position + chunk]
                # the batch is pre-filtered: hand run_campaign the slice and
                # an empty completed set so it does not re-read the store
                # (still consulted for cache hits, still appending per run)
                run_campaign(self.spec, self.store, executor,
                             worker=self.worker, on_record=self._publish,
                             runs=batch, completed_ids=frozenset(),
                             cache=cache)
                self._accumulate_stats(getattr(executor, "last_stats", None))
                position += len(batch)
            completed = sum(1 for record in self._records.values()
                            if record.completed)
            self._finish(STATE_COMPLETED if completed == len(self.runs)
                         else STATE_FAILED)
        except BaseException as exc:  # noqa: BLE001 - surfaced via job state
            logger.exception("campaign %s: launch died", self.id)
            self.error = f"{type(exc).__name__}: {exc}"
            self._finish(STATE_FAILED)

    def _accumulate_stats(self, last_stats: Optional[Dict[str, int]]) -> None:
        """Fold one chunk's executor counter deltas into the job totals."""
        if not last_stats:
            return
        with self._lock:
            for key, value in last_stats.items():
                if key == "n_workers":
                    self.executor_stats[key] = int(value)
                elif isinstance(value, int):
                    self.executor_stats[key] = \
                        self.executor_stats.get(key, 0) + value

    def _publish(self, record) -> None:
        with self._lock:
            self._records[record.run_id] = record
        self.bus.publish(self.id, EVENT_RUN, self._event_payload(record))

    def _finish(self, state: str) -> None:
        with self._lock:
            self.state = state
        self.bus.publish(self.id, EVENT_DONE, self._done_payload())

    # -- status ------------------------------------------------------------- #
    def records(self) -> List:
        """The latest in-memory record per run id (store-backed)."""
        with self._lock:
            return list(self._records.values())

    def pending_count(self) -> int:
        """Resolved runs without a completed record yet."""
        with self._lock:
            completed = sum(1 for record in self._records.values()
                            if record.completed)
        return len(self.runs) - completed

    def status(self, include_records: bool = False) -> Dict[str, object]:
        """The service status document for this campaign.

        The counts come from :func:`repro.campaign.aggregate.status_document`
        — the exact serializer behind ``campaign status --json`` — plus the
        service-level fields (``campaign_id``, ``state``, ``error``).
        """
        with self._lock:
            state = self.state
            error = self.error
            records = list(self._records.values())
            executor_stats = dict(self.executor_stats)
        telemetry = {"bus": self.bus.topic_stats(self.id)}
        if executor_stats:
            telemetry["executor"] = executor_stats
        document = status_document(self.spec.name, len(self.runs), records,
                                   store=self.store.path,
                                   include_records=include_records,
                                   telemetry=telemetry)
        document.update(campaign_id=self.id, state=state, error=error)
        return document

    def report(self) -> Dict[str, object]:
        """The aggregate campaign report (``campaign report --json`` schema)."""
        return aggregate(self.records(), campaign=self.spec.name).to_dict()

    def is_terminal(self) -> bool:
        """Whether the job is in a terminal (not running/cancelling) state."""
        with self._lock:
            return self.state in TERMINAL_STATES


class CampaignJobManager:
    """The id→job map behind the HTTP API, backed by one store directory."""

    def __init__(self, store_dir: str, worker: Callable = execute_run,
                 bus: Optional[RunEventBus] = None) -> None:
        self.store_dir = str(store_dir)
        self.worker = worker
        self.bus = bus if bus is not None else RunEventBus()
        self._lock = threading.Lock()
        self._jobs: Dict[str, CampaignJob] = {}
        os.makedirs(self.store_dir, exist_ok=True)
        self._load_existing()

    # -- persistence of specs ----------------------------------------------- #
    def _spec_path(self, campaign_id: str) -> str:
        return os.path.join(self.store_dir, f"{campaign_id}.spec.json")

    def _store_path(self, campaign_id: str) -> str:
        return os.path.join(self.store_dir, f"{campaign_id}.campaign.jsonl")

    def _load_existing(self) -> None:
        """Attach every ``<id>.spec.json`` found in the store directory.

        This is the restart story: the specs + JSONL stores on disk *are*
        the service state; loading them re-creates every job (terminal or
        resumable) without re-executing anything.
        """
        for name in sorted(os.listdir(self.store_dir)):
            if not name.endswith(".spec.json"):
                continue
            campaign_id = name[:-len(".spec.json")]
            try:
                spec = CampaignSpec.from_file(self._spec_path(campaign_id))
                self._jobs[campaign_id] = CampaignJob(
                    campaign_id, spec, CampaignStore(self._store_path(campaign_id)),
                    self.bus, worker=self.worker)
            except (ValueError, OSError) as error:
                logger.warning("skipping unloadable campaign %s: %s",
                               campaign_id, error)

    # -- API ---------------------------------------------------------------- #
    def submit(self, spec: CampaignSpec,
               options: Optional[Dict[str, object]] = None
               ) -> Tuple[CampaignJob, bool, bool]:
        """Submit (or resume, or attach to) a campaign.

        Args:
            spec: the campaign to run.
            options: executor options (see ``EXECUTOR_OPTION_KEYS``),
                validated eagerly so a bad submission fails the HTTP
                request instead of the background thread.

        Returns:
            ``(job, created, started)`` — ``created`` is False when the
            campaign id already existed (resume/attach), ``started`` is
            False when nothing needed to run (already complete or already
            running).

        Raises:
            ValueError: on invalid executor options or an unresolvable spec.
        """
        options = dict(options or {})
        unknown = sorted(set(options) - set(EXECUTOR_OPTION_KEYS))
        if unknown:
            raise ValueError(f"unknown submit options {unknown}; valid "
                             f"options: {', '.join(EXECUTOR_OPTION_KEYS)}")
        executor_for(spec, options)    # validate before accepting
        campaign_id = campaign_id_of(spec)
        with self._lock:
            job = self._jobs.get(campaign_id)
            created = job is None
            if created:
                store = CampaignStore(self._store_path(campaign_id))
                job = CampaignJob(campaign_id, spec, store, self.bus,
                                  worker=self.worker,
                                  executor_options=options)
                spec.to_file(self._spec_path(campaign_id))
                self._jobs[campaign_id] = job
            else:
                job.executor_options = options
        started = job.start()
        return job, created, started

    def get(self, campaign_id: str) -> Optional[CampaignJob]:
        """The job for a campaign id, or ``None``."""
        with self._lock:
            return self._jobs.get(campaign_id)

    def jobs(self) -> List[CampaignJob]:
        """Every managed job, in submission/discovery order."""
        with self._lock:
            return list(self._jobs.values())

    def cancel(self, campaign_id: str) -> Optional[str]:
        """Request cooperative cancellation; the resulting state, or None."""
        job = self.get(campaign_id)
        return None if job is None else job.request_cancel()

    def shutdown(self, timeout: float = 5.0) -> None:
        """Cancel every running job and wait briefly for the threads."""
        for job in self.jobs():
            job.request_cancel()
        for job in self.jobs():
            job.join(timeout)
