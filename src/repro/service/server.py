"""The HTTP control plane: stdlib ``ThreadingHTTPServer`` over campaign jobs.

No third-party web framework — the whole API is a
:class:`http.server.BaseHTTPRequestHandler` subclass on a threading
server, which is exactly enough for a control plane whose heavy lifting
happens in :mod:`repro.service.jobs` threads:

========  =================================  =====================================
method    path                               meaning
========  =================================  =====================================
GET       ``/v1/health``                     liveness + campaign count
GET       ``/v1/metrics``                    Prometheus text metrics snapshot
GET       ``/v1/campaigns``                  list campaigns (summary documents)
POST      ``/v1/campaigns``                  submit a spec/preset → campaign id
GET       ``/v1/campaigns/{id}``             full status (counts + per-run records)
GET       ``/v1/campaigns/{id}/report``      aggregate report (``report --json``)
GET       ``/v1/campaigns/{id}/events``      live SSE stream (snapshot/run/done)
DELETE    ``/v1/campaigns/{id}``             cooperative cancel
========  =================================  =====================================

The SSE endpoint streams :func:`sse_event_stream`, a plain generator over
the :class:`repro.service.bus.RunEventBus` that is also driven directly by
the wire-format tests: frames already recorded when the client connects
arrive as ``snapshot`` events, records landing while subscribed arrive as
``run`` events, a slow consumer's losses are announced with a ``dropped``
event, and the stream always ends with one terminal ``done`` event.

See ``docs/service.md`` for the full API reference with curl examples.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Iterator, Optional, Tuple
from urllib.parse import urlparse

from repro.campaign.presets import get_campaign_preset
from repro.campaign.scheduler import execute_run
from repro.campaign.spec import CampaignSpec
from repro.service.bus import RunEventBus
from repro.service.jobs import (EXECUTOR_OPTION_KEYS, CampaignJob,
                                CampaignJobManager)
from repro.service.sse import (EVENT_DONE, EVENT_DROPPED, EVENT_RUN,
                               EVENT_SNAPSHOT, format_comment, format_event)
from repro.telemetry import REGISTRY, get_registry
from repro.utils.logging import get_logger
from repro.utils.serialization import jsonable

logger = get_logger(__name__)

_REQUESTS = REGISTRY.counter(
    "repro_service_requests_total", "HTTP requests served, by method")

#: Seconds of subscriber silence between SSE keep-alive comments.
DEFAULT_KEEPALIVE_S = 15.0

_CAMPAIGN_PATH = re.compile(r"^/v1/campaigns/([A-Za-z0-9._-]+)$")
_EVENTS_PATH = re.compile(r"^/v1/campaigns/([A-Za-z0-9._-]+)/events$")
_REPORT_PATH = re.compile(r"^/v1/campaigns/([A-Za-z0-9._-]+)/report$")


def sse_event_stream(job: CampaignJob, keepalive_s: float = DEFAULT_KEEPALIVE_S,
                     max_queue_size: Optional[int] = None) -> Iterator[str]:
    """Yield the SSE frames of one subscriber watching one campaign.

    The contract (exercised directly by ``tests/service/test_sse_wire.py``):

    * every event already in the campaign's history is replayed first as a
      ``snapshot`` frame (run records) — the atomic history+subscribe of
      :meth:`repro.service.bus.RunEventBus.subscribe` guarantees each
      record appears exactly once across snapshot and live frames,
    * records landing while subscribed stream as ``run`` frames,
    * if this subscriber fell behind and the bus dropped events for it, a
      ``dropped`` frame carries the loss count (the client re-reads
      ``GET /v1/campaigns/{id}`` for the authoritative state),
    * the stream ends with exactly one ``done`` frame.  Silence longer
      than ``keepalive_s`` yields comment frames, which both keep proxies
      from timing the stream out and let the server detect a vanished
      client; if the terminal event itself was dropped, the keep-alive
      tick notices the terminal job state and synthesises the ``done``
      frame from it.

    The generator unsubscribes from the bus when closed, whether it ran to
    ``done`` or the consumer disconnected mid-stream.
    """
    history, subscription = job.bus.subscribe(job.id,
                                              max_queue_size=max_queue_size)
    try:
        for index, event in enumerate(history):
            if event.kind == EVENT_DONE:
                if index == len(history) - 1 and job.is_terminal():
                    yield format_event(EVENT_DONE, event.data,
                                       event_id=event.seq)
                    return
                # a stale terminal marker from an earlier launch (the
                # campaign was cancelled/interrupted and then resumed):
                # skip it and keep streaming the new launch live
                continue
            yield format_event(EVENT_SNAPSHOT, event.data, event_id=event.seq)
        while True:
            event = subscription.get(timeout=keepalive_s)
            dropped = subscription.take_dropped()
            if dropped:
                yield format_event(EVENT_DROPPED, {"campaign_id": job.id,
                                                   "dropped": dropped})
            if event is None:
                # done can be lost to the drop policy like any other event:
                # a terminal job with a drained queue ends the stream here
                if job.is_terminal() and subscription.pending() == 0:
                    yield format_event(EVENT_DONE, job.status())
                    return
                yield format_comment()
                continue
            if event.kind == EVENT_DONE:
                yield format_event(EVENT_DONE, event.data, event_id=event.seq)
                return
            yield format_event(EVENT_RUN, event.data, event_id=event.seq)
    finally:
        job.bus.unsubscribe(subscription)


def parse_submission(body: Dict[str, object]
                     ) -> Tuple[CampaignSpec, Dict[str, object]]:
    """Turn a ``POST /v1/campaigns`` body into (spec, executor options).

    The body names the campaign either way FastAPI-style services do:
    ``{"preset": "campaign-smoke"}`` or ``{"spec": {...CampaignSpec...}}``,
    plus any of the executor option keys (``executor``, ``max_workers``,
    ``timeout``, ``retries``, ``cache_dir``).

    Raises:
        ValueError: on a body that is not a JSON object, names both or
            neither of ``preset``/``spec``, or carries unknown keys.
    """
    if not isinstance(body, dict):
        raise ValueError("the request body must be a JSON object")
    known = {"preset", "spec", *EXECUTOR_OPTION_KEYS}
    unknown = sorted(set(body) - known)
    if unknown:
        raise ValueError(f"unknown submission keys {unknown}; valid keys: "
                         f"{', '.join(sorted(known))}")
    preset, spec_dict = body.get("preset"), body.get("spec")
    if (preset is None) == (spec_dict is None):
        raise ValueError("a submission needs exactly one of 'preset' "
                         "(a campaign preset name) or 'spec' "
                         "(a CampaignSpec JSON object)")
    spec = (get_campaign_preset(str(preset)) if preset is not None
            else CampaignSpec.from_dict(spec_dict))
    options = {key: body[key] for key in EXECUTOR_OPTION_KEYS if key in body}
    return spec, options


class CampaignServiceHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the server's :class:`CampaignJobManager`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-campaign-service/1.0"

    # -- plumbing ----------------------------------------------------------- #
    @property
    def manager(self) -> CampaignJobManager:
        """The job manager of the owning server."""
        return self.server.manager

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Route access logs to :mod:`logging` instead of stderr."""
        logger.debug("%s - %s", self.address_string(), format % args)

    def _send_json(self, code: int, payload: Dict[str, object]) -> None:
        body = json.dumps(jsonable(payload), indent=2,
                          sort_keys=True).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, message: str) -> None:
        self._send_json(code, {"error": message})

    def _read_json(self) -> Dict[str, object]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ValueError("empty request body; send a JSON object")
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ValueError(f"request body is not valid JSON: {error}") \
                from None

    def _job_or_404(self, campaign_id: str) -> Optional[CampaignJob]:
        job = self.manager.get(campaign_id)
        if job is None:
            self._error(404, f"unknown campaign {campaign_id!r}")
        return job

    def _send_metrics(self) -> None:
        """Serve the process metrics registry in Prometheus text format."""
        body = get_registry().render_prometheus().encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type",
                         "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # -- routes ------------------------------------------------------------- #
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        """Dispatch GET routes (health, metrics, status, report, SSE)."""
        _REQUESTS.inc(1, method="GET")
        path = urlparse(self.path).path
        if path == "/v1/metrics":
            self._send_metrics()
            return
        if path == "/v1/health":
            jobs = self.manager.jobs()
            self._send_json(200, {
                "status": "ok", "campaigns": len(jobs),
                "running": sum(1 for job in jobs if not job.is_terminal())})
            return
        if path == "/v1/campaigns":
            self._send_json(200, {"campaigns": [
                job.status(include_records=False)
                for job in self.manager.jobs()]})
            return
        match = _CAMPAIGN_PATH.match(path)
        if match:
            job = self._job_or_404(match.group(1))
            if job is not None:
                self._send_json(200, job.status(include_records=True))
            return
        match = _REPORT_PATH.match(path)
        if match:
            job = self._job_or_404(match.group(1))
            if job is not None:
                self._send_json(200, job.report())
            return
        match = _EVENTS_PATH.match(path)
        if match:
            job = self._job_or_404(match.group(1))
            if job is not None:
                self._stream_events(job)
            return
        self._error(404, f"no route for GET {path}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        """Dispatch POST routes (campaign submission)."""
        _REQUESTS.inc(1, method="POST")
        path = urlparse(self.path).path
        if path != "/v1/campaigns":
            self._error(404, f"no route for POST {path}")
            return
        try:
            spec, options = parse_submission(self._read_json())
            job, created, started = self.manager.submit(spec, options)
        except ValueError as error:
            self._error(400, str(error))
            return
        document = job.status(include_records=False)
        document.update(created=created, started=started,
                        events_url=f"/v1/campaigns/{job.id}/events")
        self._send_json(201 if created else 200, document)

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        """Dispatch DELETE routes (cooperative campaign cancel)."""
        _REQUESTS.inc(1, method="DELETE")
        match = _CAMPAIGN_PATH.match(urlparse(self.path).path)
        if not match:
            self._error(404, f"no route for DELETE {self.path}")
            return
        job = self._job_or_404(match.group(1))
        if job is None:
            return
        state = job.request_cancel()
        self._send_json(202, {"campaign_id": job.id, "state": state})

    # -- SSE ---------------------------------------------------------------- #
    def _stream_events(self, job: CampaignJob) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        # no Content-Length: the stream ends when the server closes it
        self.send_header("Connection", "close")
        self.end_headers()
        frames = sse_event_stream(
            job, keepalive_s=self.server.keepalive_s,
            max_queue_size=self.server.subscriber_queue_size)
        try:
            for frame in frames:
                self.wfile.write(frame.encode("utf-8"))
                self.wfile.flush()
        except (BrokenPipeError, ConnectionError, OSError):
            # the client went away mid-stream; the generator's finally
            # block (below, via close) detaches the bus subscription
            pass
        finally:
            frames.close()
            self.close_connection = True


class CampaignServiceServer(ThreadingHTTPServer):
    """A threading HTTP server owning one :class:`CampaignJobManager`.

    Every request gets its own thread, so any number of clients can poll
    status or hold SSE streams open while campaign jobs make progress on
    their own threads — nothing is globally serialised.
    """

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], manager: CampaignJobManager,
                 keepalive_s: float = DEFAULT_KEEPALIVE_S,
                 subscriber_queue_size: Optional[int] = None) -> None:
        super().__init__(address, CampaignServiceHandler)
        self.manager = manager
        self.keepalive_s = float(keepalive_s)
        self.subscriber_queue_size = subscriber_queue_size

    @property
    def url(self) -> str:
        """The server's base URL (resolved port included)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def shutdown_service(self, timeout: float = 5.0) -> None:
        """Stop accepting requests and cancel/join the campaign jobs."""
        self.shutdown()
        self.server_close()
        self.manager.shutdown(timeout)


def create_server(host: str = "127.0.0.1", port: int = 0,
                  store_dir: str = "campaign-service",
                  worker: Callable = execute_run,
                  bus: Optional[RunEventBus] = None,
                  keepalive_s: float = DEFAULT_KEEPALIVE_S,
                  subscriber_queue_size: Optional[int] = None
                  ) -> CampaignServiceServer:
    """Build a ready-to-serve campaign service (``port=0`` picks a free one).

    Args:
        host: bind address.
        port: bind port; 0 lets the OS choose (read ``server.url`` after).
        store_dir: directory of the JSONL stores + spec files — the
            service's only persistent state.
        worker: the per-run worker (tests inject fakes; the default runs
            the real coupled workflow).
        bus: optionally share a pre-built event bus.
        keepalive_s: SSE keep-alive comment interval.
        subscriber_queue_size: per-SSE-subscriber bounded queue size
            (default: the bus default).

    Returns:
        An unstarted :class:`CampaignServiceServer`; call
        ``serve_forever()`` (or drive it from a thread in tests).
    """
    manager = CampaignJobManager(store_dir, worker=worker, bus=bus)
    return CampaignServiceServer((host, port), manager,
                                 keepalive_s=keepalive_s,
                                 subscriber_queue_size=subscriber_queue_size)


def serve(host: str, port: int, store_dir: str,
          ready: Optional[Callable[[CampaignServiceServer], None]] = None
          ) -> int:
    """Run the service until interrupted (the ``repro.cli serve`` backend).

    Args:
        host: bind address.
        port: bind port (0 picks a free one; the banner shows the choice).
        store_dir: store directory (created if missing).
        ready: optional callback invoked with the bound server before
            serving — the CLI prints the banner there, tests capture the
            server handle.

    Returns:
        Process exit code (0 on a clean Ctrl-C shutdown).
    """
    server = create_server(host=host, port=port, store_dir=store_dir)
    if ready is not None:
        ready(server)
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown_service()
    return 0
