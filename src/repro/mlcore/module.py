"""Module/Parameter containers, the minimal analogue of ``torch.nn.Module``."""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.mlcore.tensor import Tensor


class Parameter(Tensor):
    """A tensor that is registered as a trainable parameter of a module."""

    __slots__ = ()

    def __init__(self, data, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for neural-network building blocks.

    Sub-modules and parameters assigned as attributes are registered
    automatically, mirroring PyTorch semantics:

    * :meth:`parameters` / :meth:`named_parameters` walk the module tree,
    * :meth:`state_dict` / :meth:`load_state_dict` snapshot parameter values,
    * :meth:`train` / :meth:`eval` toggle the ``training`` flag (used by
      dropout and the VAE's sampling behaviour).
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # -- attribute registration ----------------------------------------- #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, param: Parameter) -> None:
        """Explicitly register a parameter under ``name``."""
        self._parameters[name] = param
        object.__setattr__(self, name, param)

    def add_module(self, name: str, module: "Module") -> None:
        """Explicitly register a sub-module under ``name``."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # -- traversal ------------------------------------------------------- #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def modules(self) -> List["Module"]:
        return [m for _, m in self.named_modules()]

    # -- training state --------------------------------------------------- #
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # -- (de)serialisation ------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat ``name -> ndarray copy`` mapping of all parameters."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameter values from :meth:`state_dict` output."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, "
                           f"unexpected={sorted(unexpected)}")
        for name, param in own.items():
            if name not in state:
                continue
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(f"shape mismatch for {name}: "
                                 f"{value.shape} vs {param.data.shape}")
            param.data[...] = value

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return int(sum(p.data.size for p in self.parameters()))

    # -- forward ----------------------------------------------------------- #
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
