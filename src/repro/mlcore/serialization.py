"""Saving and loading model state.

The in-transit workflow keeps the model in memory at all times, but
checkpointing the trained model at the end of a run is how the inversion
results (Fig. 9) are evaluated offline.  State dicts are plain
``name -> ndarray`` mappings stored as ``.npz`` archives.
"""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from repro.mlcore.module import Module


def save_state_dict(state: Dict[str, np.ndarray], path: str) -> str:
    """Save a state dict to ``path`` (``.npz`` appended if missing)."""
    if not path.endswith(".npz"):
        path = path + ".npz"
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **{key: np.asarray(value) for key, value in state.items()})
    return path


def load_state_dict(path: str) -> Dict[str, np.ndarray]:
    """Load a state dict previously written by :func:`save_state_dict`."""
    if not path.endswith(".npz"):
        path = path + ".npz"
    with np.load(path) as archive:
        return {key: archive[key].copy() for key in archive.files}


def save_module(module: Module, path: str) -> str:
    """Save a module's parameters."""
    return save_state_dict(module.state_dict(), path)


def load_module(module: Module, path: str, strict: bool = True) -> Module:
    """Load parameters into ``module`` in place and return it."""
    module.load_state_dict(load_state_dict(path), strict=strict)
    return module
