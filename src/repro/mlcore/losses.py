"""Loss functions used by the paper's five-term objective (Eq. (1)).

* :func:`mse_loss` — spectrum prediction loss ``L_MSE``.
* :func:`chamfer_distance` — the VAE point-cloud reconstruction loss
  ``L_CD`` (cheap, but insensitive to point density, as the paper notes).
* :func:`kl_divergence_normal` — the VAE latent regulariser ``L_KL``.
* :func:`mmd_imq` — maximum mean discrepancy with an inverse multi-quadratic
  kernel, used for ``L_MMD(N, N')`` and ``L_MMD(z, z')`` (following
  Ardizzone et al.).
* :func:`sinkhorn_emd` — an entropy-regularised earth mover's distance.  The
  paper could not use the CUDA-only KeOps/geomloss EMD on Frontier's AMD
  GPUs; this NumPy implementation plays the role of that missing piece and
  is used in the CD-vs-EMD cost comparison benchmark.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.mlcore import functional as F
from repro.mlcore.tensor import Tensor

ArrayOrTensor = Union[Tensor, np.ndarray]


def _as_tensor(x: ArrayOrTensor) -> Tensor:
    return x if isinstance(x, Tensor) else Tensor(x)


def mse_loss(prediction: ArrayOrTensor, target: ArrayOrTensor) -> Tensor:
    """Mean squared error averaged over all elements."""
    prediction = _as_tensor(prediction)
    target = _as_tensor(target)
    diff = prediction - target
    return (diff * diff).mean()


def l1_loss(prediction: ArrayOrTensor, target: ArrayOrTensor) -> Tensor:
    """Mean absolute error."""
    prediction = _as_tensor(prediction)
    target = _as_tensor(target)
    return (prediction - target).abs().mean()


def chamfer_distance(a: ArrayOrTensor, b: ArrayOrTensor,
                     reduction: str = "mean") -> Tensor:
    """Symmetric Chamfer distance between two point clouds.

    Parameters
    ----------
    a, b:
        Point clouds of shape ``(B, N, D)`` and ``(B, M, D)`` (a leading
        batch axis is required; pass ``points[None]`` for a single cloud).
    reduction:
        ``"mean"`` (default) averages over the batch, ``"sum"`` sums,
        ``"none"`` returns the per-batch values.

    Notes
    -----
    ``CD(A, B) = mean_i min_j |a_i - b_j|^2 + mean_j min_i |a_i - b_j|^2``.
    The pairwise distance matrix is computed once and reused for both
    directions.
    """
    a = _as_tensor(a)
    b = _as_tensor(b)
    if a.ndim != 3 or b.ndim != 3:
        raise ValueError("chamfer_distance expects (B, N, D) point clouds")
    if a.shape[0] != b.shape[0]:
        raise ValueError("batch sizes must match")
    d2 = F.pairwise_squared_distances(a, b)          # (B, N, M)
    a_to_b = d2.min(axis=2).mean(axis=1)             # (B,)
    b_to_a = d2.min(axis=1).mean(axis=1)             # (B,)
    per_batch = a_to_b + b_to_a
    if reduction == "none":
        return per_batch
    if reduction == "sum":
        return per_batch.sum()
    if reduction == "mean":
        return per_batch.mean()
    raise ValueError(f"unknown reduction {reduction!r}")


def kl_divergence_normal(mu: ArrayOrTensor, log_var: ArrayOrTensor) -> Tensor:
    """KL divergence ``KL(N(mu, sigma^2) || N(0, 1))`` averaged over the batch.

    ``log_var`` is the natural logarithm of the variance, the standard VAE
    parameterisation (Kingma & Welling).
    """
    mu = _as_tensor(mu)
    log_var = _as_tensor(log_var)
    # 0.5 * sum(exp(logvar) + mu^2 - 1 - logvar) per sample, then batch mean.
    per_sample = (log_var.exp() + mu * mu - 1.0 - log_var).sum(axis=-1) * 0.5
    return per_sample.mean()


def _imq_kernel(d2: Tensor, scales: Sequence[float]) -> Tensor:
    """Inverse multi-quadratic kernel ``sum_s s / (s + d^2)`` (Ardizzone et al.)."""
    total: Optional[Tensor] = None
    for scale in scales:
        term = 1.0 / (d2 * (1.0 / scale) + 1.0)
        total = term if total is None else total + term
    assert total is not None
    return total


def mmd_imq(x: ArrayOrTensor, y: ArrayOrTensor,
            scales: Sequence[float] = (0.05, 0.2, 0.9)) -> Tensor:
    """Maximum mean discrepancy with an inverse multi-quadratic kernel.

    Parameters
    ----------
    x, y:
        Samples of shape ``(N, D)`` and ``(M, D)`` drawn from the two
        distributions to compare.
    scales:
        Bandwidth parameters of the IMQ kernel; the default follows the
        multi-scale choice common in INN training.

    Returns
    -------
    A scalar tensor ``MMD^2(x, y) >= 0`` (up to sampling noise).
    """
    x = _as_tensor(x)
    y = _as_tensor(y)
    if x.ndim != 2 or y.ndim != 2:
        raise ValueError("mmd_imq expects 2D sample matrices (N, D)")
    d_xx = F.pairwise_squared_distances(x.expand_dims(0), x.expand_dims(0)).squeeze(0)
    d_yy = F.pairwise_squared_distances(y.expand_dims(0), y.expand_dims(0)).squeeze(0)
    d_xy = F.pairwise_squared_distances(x.expand_dims(0), y.expand_dims(0)).squeeze(0)
    k_xx = _imq_kernel(d_xx, scales).mean()
    k_yy = _imq_kernel(d_yy, scales).mean()
    k_xy = _imq_kernel(d_xy, scales).mean()
    return k_xx + k_yy - k_xy * 2.0


def gaussian_nll(mu: ArrayOrTensor, log_var: ArrayOrTensor,
                 target: ArrayOrTensor) -> Tensor:
    """Negative log-likelihood of ``target`` under ``N(mu, exp(log_var))``."""
    mu = _as_tensor(mu)
    log_var = _as_tensor(log_var)
    target = _as_tensor(target)
    diff = target - mu
    per_element = (log_var + diff * diff / log_var.exp()) * 0.5
    return per_element.mean()


def sinkhorn_emd(a: ArrayOrTensor, b: ArrayOrTensor, epsilon: float = 0.05,
                 n_iterations: int = 50, reduction: str = "mean") -> Tensor:
    """Entropy-regularised earth mover's distance between point clouds.

    Uses the Sinkhorn-Knopp algorithm on the squared Euclidean cost with
    uniform marginals.  The transport plan is computed without gradient
    tracking (the standard "Sinkhorn as a constant plan" approximation) and
    the returned loss is ``<P, C>`` with gradients flowing through the cost
    matrix ``C`` — which is what makes the point positions trainable.

    Parameters
    ----------
    a, b:
        Point clouds of shape ``(B, N, D)`` and ``(B, M, D)``.
    epsilon:
        Entropic regularisation strength (smaller is closer to exact EMD but
        slower to converge).
    n_iterations:
        Number of Sinkhorn iterations.
    """
    a = _as_tensor(a)
    b = _as_tensor(b)
    if a.ndim != 3 or b.ndim != 3:
        raise ValueError("sinkhorn_emd expects (B, N, D) point clouds")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if n_iterations < 1:
        raise ValueError("n_iterations must be >= 1")
    cost = F.pairwise_squared_distances(a, b)        # (B, N, M), differentiable
    c = cost.data
    batch, n, m = c.shape
    log_mu = -np.log(n) * np.ones((batch, n))
    log_nu = -np.log(m) * np.ones((batch, m))
    f = np.zeros((batch, n))
    g = np.zeros((batch, m))
    # Sinkhorn iterations in log space for numerical stability.
    for _ in range(n_iterations):
        f = epsilon * (log_mu - _logsumexp((g[:, None, :] - c) / epsilon, axis=2))
        g = epsilon * (log_nu - _logsumexp((f[:, :, None] - c) / epsilon, axis=1))
    log_plan = (f[:, :, None] + g[:, None, :] - c) / epsilon
    plan = np.exp(log_plan)
    per_batch = (cost * Tensor(plan)).sum(axis=(1, 2))
    if reduction == "none":
        return per_batch
    if reduction == "sum":
        return per_batch.sum()
    if reduction == "mean":
        return per_batch.mean()
    raise ValueError(f"unknown reduction {reduction!r}")


def _logsumexp(x: np.ndarray, axis: int) -> np.ndarray:
    xmax = x.max(axis=axis, keepdims=True)
    out = np.log(np.exp(x - xmax).sum(axis=axis)) + np.squeeze(xmax, axis=axis)
    return out
