"""Activation modules."""

from __future__ import annotations

from repro.mlcore.module import Module
from repro.mlcore.tensor import Tensor


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class LeakyReLU(Module):
    """Leaky ReLU with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = float(negative_slope)

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)


class Tanh(Module):
    """Hyperbolic tangent."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    """Logistic sigmoid."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Softplus(Module):
    """Softplus, used to keep predicted standard deviations positive."""

    def forward(self, x: Tensor) -> Tensor:
        return x.softplus()
