"""Dropout regularisation."""

from __future__ import annotations

import numpy as np

from repro.mlcore import functional as F
from repro.mlcore.module import Module
from repro.mlcore.tensor import Tensor
from repro.utils.rng import RandomState, seeded_rng


class Dropout(Module):
    """Inverted dropout; active only while the module is in training mode."""

    def __init__(self, p: float = 0.5, rng: RandomState = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must lie in [0, 1)")
        self.p = float(p)
        self.rng: np.random.Generator = seeded_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, rng=self.rng)
