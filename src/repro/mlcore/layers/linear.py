"""Affine layers and multi-layer perceptrons."""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.mlcore import init
from repro.mlcore.module import Module, Parameter
from repro.mlcore.tensor import Tensor
from repro.utils.rng import RandomState, seeded_rng


class Linear(Module):
    """Affine transformation ``y = x @ W + b``.

    Weights are stored as ``(in_features, out_features)`` so that batched
    inputs of shape ``(..., in_features)`` can be multiplied directly without
    a transpose on the hot path.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: RandomState = None) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature dimensions must be positive")
        self.in_features = in_features
        self.out_features = out_features
        rng = seeded_rng(rng)
        self.weight = Parameter(init.kaiming_uniform((in_features, out_features), rng),
                                name="weight")
        if bias:
            bound = 1.0 / np.sqrt(in_features)
            self.bias: Optional[Parameter] = Parameter(
                rng.uniform(-bound, bound, size=(out_features,)), name="bias")
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"Linear(in_features={self.in_features}, "
                f"out_features={self.out_features}, bias={self.bias is not None})")


class MLP(Module):
    """A stack of Linear layers with a configurable hidden activation.

    The paper uses MLPs both as the encoder's µ/σ heads (608 → 544) and as
    the sub-networks of the Glow coupling blocks (→ 272 → 256 → 544).

    Parameters
    ----------
    dims:
        Sequence of layer widths ``(in, hidden..., out)``.
    activation:
        Factory producing the activation module placed between layers.
    final_activation:
        Whether to also apply the activation after the last layer.
    """

    def __init__(self, dims: Sequence[int],
                 activation: Callable[[], Module] | None = None,
                 final_activation: bool = False,
                 rng: RandomState = None) -> None:
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP needs at least an input and an output width")
        from repro.mlcore.layers.activation import ReLU
        activation = activation or ReLU
        rng = seeded_rng(rng)
        self.dims = tuple(int(d) for d in dims)
        layers = []
        for i, (a, b) in enumerate(zip(self.dims[:-1], self.dims[1:])):
            layers.append(Linear(a, b, rng=rng))
            is_last = i == len(self.dims) - 2
            if not is_last or final_activation:
                layers.append(activation())
        from repro.mlcore.layers.container import Sequential
        self.net = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)
