"""Pooling layers."""

from __future__ import annotations

from repro.mlcore.module import Module
from repro.mlcore.tensor import Tensor


class MaxPoolPoints(Module):
    """Max pooling over the point axis of a point cloud.

    Reduces ``(B, N, C)`` to ``(B, C)``; this is the operation that makes the
    PointNet-style encoder invariant to transpositions (permutations) of the
    particles in the input vector, as required by the paper (Section IV-C).
    """

    def __init__(self, axis: int = 1) -> None:
        super().__init__()
        self.axis = int(axis)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim < 2:
            raise ValueError("MaxPoolPoints expects at least a 2D input")
        return x.max(axis=self.axis)
