"""Neural-network layers used by the paper's architecture (Fig. 7)."""

from repro.mlcore.layers.linear import Linear, MLP
from repro.mlcore.layers.activation import LeakyReLU, ReLU, Sigmoid, Softplus, Tanh
from repro.mlcore.layers.container import ModuleList, Sequential
from repro.mlcore.layers.conv import ConvTranspose3d, PointwiseConv
from repro.mlcore.layers.pooling import MaxPoolPoints
from repro.mlcore.layers.dropout import Dropout

__all__ = [
    "Linear",
    "MLP",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Softplus",
    "Sequential",
    "ModuleList",
    "PointwiseConv",
    "ConvTranspose3d",
    "MaxPoolPoints",
    "Dropout",
]
