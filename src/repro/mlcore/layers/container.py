"""Module containers."""

from __future__ import annotations

from typing import Iterable, Iterator, List

from repro.mlcore.module import Module
from repro.mlcore.tensor import Tensor


class Sequential(Module):
    """Apply modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order: List[str] = []
        for index, module in enumerate(modules):
            name = str(index)
            self.add_module(name, module)
            self._order.append(name)

    def append(self, module: Module) -> "Sequential":
        name = str(len(self._order))
        self.add_module(name, module)
        self._order.append(name)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules[name] for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = self._modules[name](x)
        return x


class ModuleList(Module):
    """A list of sub-modules registered for parameter traversal."""

    def __init__(self, modules: Iterable[Module] = ()) -> None:
        super().__init__()
        self._order: List[str] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        name = str(len(self._order))
        self.add_module(name, module)
        self._order.append(name)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules[name] for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]

    def forward(self, *args, **kwargs):  # pragma: no cover - not callable
        raise RuntimeError("ModuleList is a container and cannot be called")
