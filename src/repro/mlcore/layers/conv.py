"""Convolution-style layers for point clouds and voxel grids.

The paper's encoder applies 1×1 convolutions to each particle independently
(channels 6 → 16 → 32 → 64 → 128 → 256 → 608); a 1×1 convolution over a
point set is mathematically a Linear layer applied to the channel axis, which
is how :class:`PointwiseConv` implements it (a single batched matmul).

The decoder upsamples a ``(4, 4, 4, 16)`` latent voxel grid with 3D
transposed convolutions with kernel size 2³ and stride 2³.  For that special
(but exactly the paper's) case each input voxel contributes an independent
2×2×2 output block, so the operation is a Linear map from ``C_in`` to
``8 · C_out`` followed by a reshape/interleave — again a single matmul.
:class:`ConvTranspose3d` implements the general kernel==stride case.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.mlcore import init
from repro.mlcore.module import Module, Parameter
from repro.mlcore.tensor import Tensor
from repro.utils.rng import RandomState, seeded_rng


class PointwiseConv(Module):
    """1×1 convolution over a point cloud: ``(B, N, C_in) -> (B, N, C_out)``."""

    def __init__(self, in_channels: int, out_channels: int, bias: bool = True,
                 rng: RandomState = None) -> None:
        super().__init__()
        if in_channels <= 0 or out_channels <= 0:
            raise ValueError("channel counts must be positive")
        rng = seeded_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.weight = Parameter(init.kaiming_uniform((in_channels, out_channels), rng),
                                name="weight")
        if bias:
            bound = 1.0 / np.sqrt(in_channels)
            self.bias = Parameter(rng.uniform(-bound, bound, size=(out_channels,)),
                                  name="bias")
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_channels:
            raise ValueError(f"expected last dimension {self.in_channels}, "
                             f"got {x.shape[-1]}")
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class ConvTranspose3d(Module):
    """Transposed 3D convolution with ``kernel_size == stride`` (no overlap).

    Input/output layout is channels-last: ``(B, D, H, W, C_in)`` maps to
    ``(B, D*k, H*k, W*k, C_out)``.  This exactly covers the decoder of the
    paper (kernel 2³, stride 2³) while keeping the implementation a single
    batched matrix product plus reshapes.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int = 2,
                 bias: bool = True, rng: RandomState = None) -> None:
        super().__init__()
        if kernel_size < 1:
            raise ValueError("kernel_size must be >= 1")
        rng = seeded_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = int(kernel_size)
        k3 = self.kernel_size ** 3
        self.weight = Parameter(
            init.kaiming_uniform((in_channels, out_channels * k3), rng), name="weight")
        if bias:
            bound = 1.0 / np.sqrt(in_channels)
            self.bias = Parameter(rng.uniform(-bound, bound, size=(out_channels,)),
                                  name="bias")
        else:
            self.bias = None

    def output_shape(self, input_shape: Tuple[int, int, int]) -> Tuple[int, int, int]:
        k = self.kernel_size
        return (input_shape[0] * k, input_shape[1] * k, input_shape[2] * k)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 5:
            raise ValueError("ConvTranspose3d expects (B, D, H, W, C_in) input")
        if x.shape[-1] != self.in_channels:
            raise ValueError(f"expected {self.in_channels} input channels, "
                             f"got {x.shape[-1]}")
        b, d, h, w, _ = x.shape
        k, c_out = self.kernel_size, self.out_channels
        # (B, D, H, W, C_out * k^3)
        out = x @ self.weight
        # -> (B, D, H, W, k, k, k, C_out)
        out = out.reshape(b, d, h, w, k, k, k, c_out)
        # interleave kernel offsets with the spatial axes:
        # (B, D, k, H, k, W, k, C_out)
        out = out.transpose(0, 1, 4, 2, 5, 3, 6, 7)
        out = out.reshape(b, d * k, h * k, w * k, c_out)
        if self.bias is not None:
            out = out + self.bias
        return out
