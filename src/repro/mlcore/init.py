"""Weight initialisation schemes."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.utils.rng import RandomState, seeded_rng


def xavier_uniform(shape: Tuple[int, ...], rng: RandomState = None,
                   gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for a (fan_in, fan_out) weight."""
    rng = seeded_rng(rng)
    fan_in, fan_out = _fans(shape)
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def xavier_normal(shape: Tuple[int, ...], rng: RandomState = None,
                  gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier normal initialisation."""
    rng = seeded_rng(rng)
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: Tuple[int, ...], rng: RandomState = None,
                    negative_slope: float = 0.0) -> np.ndarray:
    """He initialisation suitable for (leaky-)ReLU activations."""
    rng = seeded_rng(rng)
    fan_in, _ = _fans(shape)
    gain = np.sqrt(2.0 / (1.0 + negative_slope ** 2))
    limit = gain * np.sqrt(3.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("weight shape must have at least one dimension")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[0] * receptive
    fan_out = shape[1] * receptive
    return fan_in, fan_out
