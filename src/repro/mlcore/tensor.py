"""Reverse-mode automatic differentiation on NumPy arrays.

This is the computational core of the MLapp reproduction.  A
:class:`Tensor` wraps a ``numpy.ndarray`` and records the operations applied
to it; calling :meth:`Tensor.backward` on a scalar result propagates
gradients to every tensor created with ``requires_grad=True``.

Design
------
Each operation produces a new tensor carrying

* ``_parents`` — the input tensors, and
* ``_backward`` — a closure mapping the gradient of the output to a tuple of
  gradients with respect to the parents (``None`` entries mean "no
  gradient").

:meth:`Tensor.backward` performs an iterative topological sort and routes
gradients to parents, summing over broadcast dimensions via
:func:`_unbroadcast`.  Only leaves (tensors without ``_backward``) retain a
``.grad``.

The implementation follows the vectorisation guidance of the HPC-parallel
coding guides: gradients are computed with whole-array NumPy expressions, no
per-element Python loop appears on any hot path.
"""

from __future__ import annotations

import contextlib
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]
BackwardFn = Callable[[np.ndarray], Tuple[Optional[np.ndarray], ...]]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (like ``torch.no_grad``)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``, undoing NumPy broadcasting."""
    grad = np.asarray(grad, dtype=np.float64)
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, (g, s) in enumerate(zip(grad.shape, shape))
                 if s == 1 and g != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy array with reverse-mode autograd.

    Parameters
    ----------
    data:
        Array-like numerical data.  Integer/boolean input is promoted to
        ``float64`` so every tensor is differentiable in principle.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data: ArrayLike, requires_grad: bool = False,
                 name: Optional[str] = None) -> None:
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if arr.dtype.kind in "iub":
            arr = arr.astype(np.float64)
        self.data: np.ndarray = arr
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Optional[BackwardFn] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------ #
    # construction of graph nodes
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(data: np.ndarray, parents: Tuple["Tensor", ...],
              backward: BackwardFn) -> "Tensor":
        """Create an intermediate node if any parent requires a gradient."""
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    @staticmethod
    def _coerce(value: Union["Tensor", ArrayLike]) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        if self.data.size != 1:
            raise ValueError("item() requires a single-element tensor")
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def clone(self) -> "Tensor":
        """Return a copy participating in the graph (identity op)."""
        return self._make(self.data.copy(), (self,), lambda g: (g,))

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(grad, self.data.shape)
        self.grad = grad.copy() if self.grad is None else self.grad + grad

    # ------------------------------------------------------------------ #
    # backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Back-propagate from this tensor.

        ``grad`` defaults to one and must be provided for non-scalar
        outputs.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() on a non-scalar tensor requires a gradient")
            grad = np.ones_like(self.data, dtype=np.float64)
        grad = np.asarray(grad, dtype=np.float64)

        # Iterative topological sort of the reachable graph.
        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited and parent.requires_grad:
                    stack.append((parent, False))

        pending = {id(self): grad}
        for node in reversed(topo):
            node_grad = pending.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                node._accumulate(node_grad)
                continue
            parent_grads = node._backward(node_grad)
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None or not parent.requires_grad:
                    continue
                pgrad = _unbroadcast(pgrad, parent.data.shape)
                if parent._backward is None:
                    parent._accumulate(pgrad)
                else:
                    key = id(parent)
                    if key in pending:
                        pending[key] = pending[key] + pgrad
                    else:
                        pending[key] = pgrad

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        return self._make(self.data + other.data, (self, other),
                          lambda g: (g, g))

    __radd__ = __add__

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        return self._make(self.data - other.data, (self, other),
                          lambda g: (g, -g))

    def __rsub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        a, b = self.data, other.data
        return self._make(a * b, (self, other), lambda g: (g * b, g * a))

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        a, b = self.data, other.data
        return self._make(a / b, (self, other),
                          lambda g: (g / b, -g * a / (b * b)))

    def __rtruediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        return self._make(-self.data, (self,), lambda g: (-g,))

    def __pow__(self, exponent: float) -> "Tensor":
        exponent = float(exponent)
        x = self.data
        return self._make(x ** exponent, (self,),
                          lambda g: (g * exponent * x ** (exponent - 1.0),))

    def __matmul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        a, b = self.data, other.data

        def backward(g: np.ndarray):
            g = np.asarray(g, dtype=np.float64)
            if a.ndim == 1 and b.ndim == 1:
                return g * b, g * a
            if a.ndim == 1:
                # (k,) @ (..., k, n) -> (..., n)
                ga = (g[..., None, :] * b).sum(axis=-1)
                gb = a[..., :, None] * g[..., None, :]
                return ga, gb
            if b.ndim == 1:
                # (..., m, k) @ (k,) -> (..., m)
                ga = g[..., :, None] * b
                gb = (np.swapaxes(a, -1, -2) @ g[..., :, None])[..., 0]
                return ga, gb
            ga = g @ np.swapaxes(b, -1, -2)
            gb = np.swapaxes(a, -1, -2) @ g
            return ga, gb

        return self._make(a @ b, (self, other), backward)

    def __rmatmul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._coerce(other).__matmul__(self)

    # comparisons return plain boolean arrays (no gradient)
    def __gt__(self, other):
        return self.data > (other.data if isinstance(other, Tensor) else other)

    def __lt__(self, other):
        return self.data < (other.data if isinstance(other, Tensor) else other)

    def __ge__(self, other):
        return self.data >= (other.data if isinstance(other, Tensor) else other)

    def __le__(self, other):
        return self.data <= (other.data if isinstance(other, Tensor) else other)

    # ------------------------------------------------------------------ #
    # element-wise functions
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        value = np.exp(self.data)
        return self._make(value, (self,), lambda g: (g * value,))

    def log(self) -> "Tensor":
        x = self.data
        return self._make(np.log(x), (self,), lambda g: (g / x,))

    def sqrt(self) -> "Tensor":
        value = np.sqrt(self.data)
        return self._make(value, (self,),
                          lambda g: (g * 0.5 / np.maximum(value, 1e-300),))

    def tanh(self) -> "Tensor":
        value = np.tanh(self.data)
        return self._make(value, (self,), lambda g: (g * (1.0 - value * value),))

    def sigmoid(self) -> "Tensor":
        value = 1.0 / (1.0 + np.exp(-self.data))
        return self._make(value, (self,), lambda g: (g * value * (1.0 - value),))

    def relu(self) -> "Tensor":
        mask = (self.data > 0).astype(np.float64)
        return self._make(self.data * mask, (self,), lambda g: (g * mask,))

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        slope = np.where(self.data > 0, 1.0, negative_slope)
        return self._make(self.data * slope, (self,), lambda g: (g * slope,))

    def softplus(self) -> "Tensor":
        x = self.data
        value = np.logaddexp(0.0, x)
        return self._make(value, (self,),
                          lambda g: (g / (1.0 + np.exp(-x)),))

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        return self._make(np.abs(self.data), (self,), lambda g: (g * sign,))

    def clip(self, low: float, high: float) -> "Tensor":
        mask = ((self.data >= low) & (self.data <= high)).astype(np.float64)
        return self._make(np.clip(self.data, low, high), (self,),
                          lambda g: (g * mask,))

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
            keepdims: bool = False) -> "Tensor":
        value = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.data.shape

        def backward(g: np.ndarray):
            g = np.asarray(g, dtype=np.float64)
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                for a in sorted(ax % len(shape) for ax in axes):
                    g = np.expand_dims(g, a)
            return (np.broadcast_to(g, shape),)

        return self._make(value, (self,), backward)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
             keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / max(count, 1))

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        value = self.data.max(axis=axis, keepdims=keepdims)
        data = self.data

        def backward(g: np.ndarray):
            g = np.asarray(g, dtype=np.float64)
            if axis is None:
                mask = (data == data.max()).astype(np.float64)
                mask /= mask.sum()
                return (mask * g,)
            vkeep = data.max(axis=axis, keepdims=True)
            mask = (data == vkeep).astype(np.float64)
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            gk = g if keepdims else np.expand_dims(g, axis)
            return (mask * gk,)

        return self._make(value, (self,), backward)

    def min(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------ #
    # shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        return self._make(self.data.reshape(shape), (self,),
                          lambda g: (np.asarray(g).reshape(original),))

    def transpose(self, *axes: int) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        inverse = tuple(np.argsort(axes))
        return self._make(self.data.transpose(axes), (self,),
                          lambda g: (np.asarray(g).transpose(inverse),))

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.data.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(*axes)

    def __getitem__(self, index) -> "Tensor":
        shape = self.data.shape

        def backward(g: np.ndarray):
            full = np.zeros(shape, dtype=np.float64)
            np.add.at(full, index, np.asarray(g, dtype=np.float64))
            return (full,)

        return self._make(self.data[index], (self,), backward)

    def expand_dims(self, axis: int) -> "Tensor":
        axis = axis % (self.data.ndim + 1)
        new_shape = self.data.shape[:axis] + (1,) + self.data.shape[axis:]
        return self.reshape(new_shape)

    def squeeze(self, axis: Optional[int] = None) -> "Tensor":
        if axis is None:
            new_shape = tuple(s for s in self.data.shape if s != 1) or (1,)
        else:
            if self.data.shape[axis] != 1:
                raise ValueError("cannot squeeze a non-singleton axis")
            new_shape = self.data.shape[:axis] + self.data.shape[axis + 1:]
        return self.reshape(new_shape)


# ---------------------------------------------------------------------- #
# free functions
# ---------------------------------------------------------------------- #
def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Create a tensor (convenience alias mirroring ``torch.tensor``)."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(shape: Union[int, Tuple[int, ...]], requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(shape: Union[int, Tuple[int, ...]], requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)


def randn(shape: Union[int, Tuple[int, ...]], rng: Optional[np.random.Generator] = None,
          requires_grad: bool = False, scale: float = 1.0) -> Tensor:
    rng = rng or np.random.default_rng()
    return Tensor(rng.normal(0.0, scale, size=shape), requires_grad=requires_grad)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [Tensor._coerce(t) for t in tensors]
    value = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray):
        g = np.asarray(g, dtype=np.float64)
        outs = []
        for start, stop in zip(offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * g.ndim
            slicer[axis] = slice(int(start), int(stop))
            outs.append(g[tuple(slicer)])
        return tuple(outs)

    return Tensor._make(value, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient support."""
    tensors = [Tensor._coerce(t) for t in tensors]
    expanded = [t.reshape(t.shape[:axis] + (1,) + t.shape[axis:]) for t in tensors]
    return concatenate(expanded, axis=axis)


def split(t: Tensor, sections: Union[int, Sequence[int]], axis: int = -1) -> List[Tensor]:
    """Split a tensor along ``axis`` (gradients flow back through slicing)."""
    axis = axis % t.ndim
    length = t.shape[axis]
    if isinstance(sections, int):
        if length % sections != 0:
            raise ValueError("tensor cannot be split evenly")
        sizes = [length // sections] * sections
    else:
        sizes = list(sections)
        if sum(sizes) != length:
            raise ValueError("split sizes must sum to the axis length")
    pieces: List[Tensor] = []
    start = 0
    for size in sizes:
        slicer = [slice(None)] * t.ndim
        slicer[axis] = slice(start, start + size)
        pieces.append(t[tuple(slicer)])
        start += size
    return pieces


def where(condition: np.ndarray, a: Union[Tensor, ArrayLike],
          b: Union[Tensor, ArrayLike]) -> Tensor:
    """Element-wise selection; ``condition`` carries no gradient."""
    a = Tensor._coerce(a)
    b = Tensor._coerce(b)
    mask = Tensor(np.asarray(condition, dtype=bool).astype(np.float64))
    return a * mask + b * (1.0 - mask)
