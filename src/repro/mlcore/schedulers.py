"""Learning-rate schedules and gradient utilities for large-batch training.

Section V-A1 concludes that "comprehensive studies of the relations between
the block learning rates l_VAE and l_INN, batch sizes, and maybe even loss
weights have to be performed" for in-transit training at scale.  These
schedulers provide the standard tools such a study needs: linear warm-up
(essential with the square-root-scaled rates of large batches), cosine and
exponential decay, plus global-norm gradient clipping to keep the INN's
exponential couplings stable early in training.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.mlcore.module import Parameter
from repro.mlcore.optim import Optimizer


class LRScheduler:
    """Base class: multiplies each parameter group's base LR by a factor."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self._base_lrs = [group.lr for group in optimizer.param_groups]
        self._step_count = 0

    def factor(self, step: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def step(self) -> None:
        """Advance the schedule by one training iteration."""
        self._step_count += 1
        scale = self.factor(self._step_count)
        for group, base in zip(self.optimizer.param_groups, self._base_lrs):
            group.lr = base * scale

    @property
    def last_factor(self) -> float:
        return self.factor(self._step_count) if self._step_count else self.factor(0)

    def current_lrs(self) -> List[float]:
        return [group.lr for group in self.optimizer.param_groups]


class WarmupScheduler(LRScheduler):
    """Linear warm-up from ``start_factor`` to 1 over ``warmup_steps``."""

    def __init__(self, optimizer: Optimizer, warmup_steps: int,
                 start_factor: float = 0.1) -> None:
        super().__init__(optimizer)
        if warmup_steps < 1:
            raise ValueError("warmup_steps must be >= 1")
        if not 0.0 < start_factor <= 1.0:
            raise ValueError("start_factor must lie in (0, 1]")
        self.warmup_steps = int(warmup_steps)
        self.start_factor = float(start_factor)

    def factor(self, step: int) -> float:
        if step >= self.warmup_steps:
            return 1.0
        progress = step / self.warmup_steps
        return self.start_factor + (1.0 - self.start_factor) * progress


class CosineDecayScheduler(LRScheduler):
    """Cosine decay from 1 to ``final_factor`` over ``total_steps``."""

    def __init__(self, optimizer: Optimizer, total_steps: int,
                 final_factor: float = 0.0, warmup_steps: int = 0) -> None:
        super().__init__(optimizer)
        if total_steps < 1:
            raise ValueError("total_steps must be >= 1")
        if warmup_steps < 0 or warmup_steps >= total_steps:
            raise ValueError("warmup_steps must lie in [0, total_steps)")
        self.total_steps = int(total_steps)
        self.final_factor = float(final_factor)
        self.warmup_steps = int(warmup_steps)

    def factor(self, step: int) -> float:
        if self.warmup_steps and step < self.warmup_steps:
            return max(step, 1) / self.warmup_steps
        progress = min(1.0, (step - self.warmup_steps)
                       / max(1, self.total_steps - self.warmup_steps))
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.final_factor + (1.0 - self.final_factor) * cosine


class ExponentialDecayScheduler(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``every`` steps."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.99, every: int = 1) -> None:
        super().__init__(optimizer)
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must lie in (0, 1]")
        if every < 1:
            raise ValueError("every must be >= 1")
        self.gamma = float(gamma)
        self.every = int(every)

    def factor(self, step: int) -> float:
        return self.gamma ** (step // self.every)


def clip_gradient_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Clip gradients so their global L2 norm is at most ``max_norm``.

    Returns the norm *before* clipping (useful for monitoring).
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    params = [p for p in parameters if p.grad is not None]
    if not params:
        return 0.0
    total = math.sqrt(sum(float(np.sum(p.grad * p.grad)) for p in params))
    if total > max_norm:
        scale = max_norm / (total + 1e-12)
        for p in params:
            p.grad = p.grad * scale
    return total


def gradient_norm(parameters: Iterable[Parameter]) -> float:
    """Global L2 norm of the current gradients."""
    params = [p for p in parameters if p.grad is not None]
    if not params:
        return 0.0
    return math.sqrt(sum(float(np.sum(p.grad * p.grad)) for p in params))
