"""A small NumPy-based deep-learning substrate (PyTorch stand-in).

The paper's MLapp is built on PyTorch with Distributed Data Parallel (DDP)
training.  Since the reproduction is pure Python/NumPy, this subpackage
implements the pieces the MLapp actually relies on:

* :mod:`repro.mlcore.tensor` — a reverse-mode autograd :class:`Tensor`,
* :mod:`repro.mlcore.module` — ``Module``/``Parameter`` containers,
* :mod:`repro.mlcore.layers` — Linear, point-wise convolutions, max pooling,
  transposed 3D convolutions, activations and ``Sequential``,
* :mod:`repro.mlcore.losses` — MSE, Chamfer distance, KL divergence, MMD with
  an inverse multi-quadratic kernel and a Sinkhorn-based earth mover's
  distance,
* :mod:`repro.mlcore.optim` — SGD and Adam with the paper's hyper-parameters
  and square-root learning-rate scaling,
* :mod:`repro.mlcore.distributed` — simulated multi-rank data parallelism
  with gradient all-reduce and a ring all-reduce communication cost model.
"""

from repro.mlcore.tensor import Tensor, no_grad, tensor, zeros, ones, randn
from repro.mlcore.module import Module, Parameter
from repro.mlcore import functional
from repro.mlcore import layers
from repro.mlcore import losses
from repro.mlcore import optim
from repro.mlcore import distributed
from repro.mlcore import schedulers

__all__ = [
    "schedulers",
    "Tensor",
    "tensor",
    "no_grad",
    "zeros",
    "ones",
    "randn",
    "Module",
    "Parameter",
    "functional",
    "layers",
    "losses",
    "optim",
    "distributed",
]
