"""Simulated data-parallel training.

The paper trains the model with PyTorch Distributed Data Parallel (DDP) over
up to 384 GCDs: every rank holds a full copy of the model, receives a
different chunk of the streamed data, and after every backward pass the
gradients are averaged with an all-reduce over N/RCCL.  Two costs dominate
the weak-scaling behaviour of Fig. 8:

1. the gradient all-reduce (``~30 %`` efficiency loss), and
2. the replicated computation + ``all_gather_into_tensor`` of the two MMD
   loss terms, which synchronises the compute graph with the host.

This module reproduces the *semantics* in-process:

* :class:`LocalCommunicator` provides ``allreduce``/``allgather``/``broadcast``
  over a group of simulated ranks living in the same Python process,
* :class:`DistributedDataParallel` wraps one model replica per rank and
  averages gradients after backward,
* :class:`RingAllReduceModel` provides the analytic communication-time model
  used by :mod:`repro.perfmodel.ddp` to extrapolate to Frontier scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.mlcore.module import Module

__all__ = [
    "Communicator",
    "LocalCommunicator",
    "DistributedDataParallel",
    "RingAllReduceModel",
    "CommunicationRecord",
]


@dataclass
class CommunicationRecord:
    """Bookkeeping of collective-communication volume (bytes moved per rank)."""

    allreduce_calls: int = 0
    allreduce_bytes: int = 0
    allgather_calls: int = 0
    allgather_bytes: int = 0
    broadcast_calls: int = 0
    broadcast_bytes: int = 0

    def total_bytes(self) -> int:
        return self.allreduce_bytes + self.allgather_bytes + self.broadcast_bytes


class Communicator:
    """Abstract collective-communication interface (subset of MPI/NCCL)."""

    @property
    def world_size(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def allreduce_mean(self, arrays: Sequence[np.ndarray]) -> List[np.ndarray]:
        raise NotImplementedError

    def allgather(self, arrays: Sequence[np.ndarray]) -> np.ndarray:
        raise NotImplementedError

    def broadcast(self, array: np.ndarray, root: int = 0) -> List[np.ndarray]:
        raise NotImplementedError


class LocalCommunicator(Communicator):
    """All ranks live in the same process; collectives are NumPy reductions.

    ``arrays`` passed to the collectives are indexed by rank, i.e.
    ``arrays[r]`` is rank ``r``'s contribution.  This mirrors how the
    simulated ranks are driven sequentially by the trainer.
    """

    def __init__(self, world_size: int) -> None:
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        self._world_size = int(world_size)
        self.record = CommunicationRecord()

    @property
    def world_size(self) -> int:
        return self._world_size

    def allreduce_mean(self, arrays: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Average per-rank arrays; every rank receives the same result."""
        if len(arrays) != self._world_size:
            raise ValueError(f"expected {self._world_size} contributions, got {len(arrays)}")
        stackable = [np.asarray(a, dtype=np.float64) for a in arrays]
        mean = np.mean(np.stack(stackable, axis=0), axis=0)
        self.record.allreduce_calls += 1
        self.record.allreduce_bytes += int(mean.nbytes)
        return [mean.copy() for _ in range(self._world_size)]

    def allgather(self, arrays: Sequence[np.ndarray]) -> np.ndarray:
        """Concatenate per-rank arrays along axis 0 (``all_gather_into_tensor``)."""
        if len(arrays) != self._world_size:
            raise ValueError(f"expected {self._world_size} contributions, got {len(arrays)}")
        gathered = np.concatenate([np.asarray(a, dtype=np.float64) for a in arrays], axis=0)
        self.record.allgather_calls += 1
        self.record.allgather_bytes += int(gathered.nbytes)
        return gathered

    def broadcast(self, array: np.ndarray, root: int = 0) -> List[np.ndarray]:
        """Return one copy of ``array`` per rank."""
        if not 0 <= root < self._world_size:
            raise ValueError("root rank out of range")
        array = np.asarray(array)
        self.record.broadcast_calls += 1
        self.record.broadcast_bytes += int(array.nbytes)
        return [array.copy() for _ in range(self._world_size)]


class DistributedDataParallel:
    """Data-parallel wrapper over per-rank model replicas.

    Every simulated rank holds its own replica of the model (so that Adam
    states, dropout RNG, etc. can in principle diverge exactly as they would
    in separate processes).  :meth:`sync_gradients` performs the gradient
    averaging all-reduce; :meth:`sync_parameters` broadcasts rank 0's
    parameters, which is how DDP initialises replicas.
    """

    def __init__(self, replicas: Sequence[Module], communicator: Communicator) -> None:
        replicas = list(replicas)
        if len(replicas) != communicator.world_size:
            raise ValueError("number of replicas must equal the communicator world size")
        names = [tuple(name for name, _ in replica.named_parameters()) for replica in replicas]
        if any(n != names[0] for n in names[1:]):
            raise ValueError("all replicas must have identical parameter sets")
        self.replicas = replicas
        self.communicator = communicator
        self._param_names = names[0]

    @property
    def world_size(self) -> int:
        return self.communicator.world_size

    def module(self, rank: int = 0) -> Module:
        """Return the replica owned by ``rank``."""
        return self.replicas[rank]

    def sync_parameters(self, root: int = 0) -> None:
        """Broadcast the root replica's parameters to all other replicas."""
        root_state = self.replicas[root].state_dict()
        for rank, replica in enumerate(self.replicas):
            if rank == root:
                continue
            replica.load_state_dict(root_state)
        # account for the broadcast volume once (it is a single collective)
        flat = np.concatenate([v.ravel() for v in root_state.values()]) if root_state else np.zeros(0)
        self.communicator.record.broadcast_calls += 1
        self.communicator.record.broadcast_bytes += int(flat.nbytes)

    def sync_gradients(self) -> None:
        """Average gradients across replicas (the DDP backward-hook all-reduce)."""
        per_rank_params = [dict(replica.named_parameters()) for replica in self.replicas]
        for name in self._param_names:
            grads = []
            for params in per_rank_params:
                p = params[name]
                grads.append(p.grad if p.grad is not None else np.zeros_like(p.data))
            averaged = self.communicator.allreduce_mean(grads)
            for params, grad in zip(per_rank_params, averaged):
                params[name].grad = grad

    def gradient_bytes(self) -> int:
        """Size of one full gradient exchange per rank, in bytes."""
        return int(sum(p.data.nbytes for p in self.replicas[0].parameters()))

    def parameters_in_sync(self, atol: float = 0.0) -> bool:
        """Check that all replicas hold identical parameters (test helper)."""
        reference = self.replicas[0].state_dict()
        for replica in self.replicas[1:]:
            state = replica.state_dict()
            for name, value in reference.items():
                if not np.allclose(state[name], value, atol=atol, rtol=0.0):
                    return False
        return True


@dataclass
class RingAllReduceModel:
    """Analytic time model of a ring all-reduce.

    ``t(p, n) = 2 (p - 1) / p * n / bandwidth + 2 (p - 1) * latency``

    where ``n`` is the message size in bytes per rank, ``p`` the number of
    ranks and ``bandwidth`` the per-link bandwidth in bytes/s.  This is the
    classical bandwidth-optimal ring algorithm used by NCCL/RCCL and is the
    model behind the DDP weak-scaling extrapolation (Fig. 8).
    """

    bandwidth: float = 25.0e9      #: bytes/s per link (Slingshot NIC: 25 GB/s)
    latency: float = 5.0e-6        #: per-hop latency [s]
    intra_node_bandwidth: float = 150.0e9  #: Infinity-Fabric class link within a node
    gcds_per_node: int = 8

    def time(self, world_size: int, message_bytes: float) -> float:
        """Time of one all-reduce of ``message_bytes`` across ``world_size`` ranks."""
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        if world_size == 1:
            return 0.0
        p = world_size
        # Effective bandwidth: communication within a node uses the fast
        # intra-node links; the ring crosses node boundaries only
        # ceil(p / gcds_per_node) times, so the slowest (inter-node) hop
        # dominates once more than one node participates.
        if p <= self.gcds_per_node:
            bw = self.intra_node_bandwidth
        else:
            bw = self.bandwidth
        transfer = 2.0 * (p - 1) / p * message_bytes / bw
        latency = 2.0 * (p - 1) * self.latency
        return transfer + latency

    def allgather_time(self, world_size: int, message_bytes: float) -> float:
        """Time of an all-gather (each rank contributes ``message_bytes``)."""
        if world_size <= 1:
            return 0.0
        p = world_size
        bw = self.intra_node_bandwidth if p <= self.gcds_per_node else self.bandwidth
        return (p - 1) / p * message_bytes * p / bw + (p - 1) * self.latency
