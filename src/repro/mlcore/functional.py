"""Functional interface mirroring the small subset of ``torch.nn.functional``
used by the paper's architecture."""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.mlcore.tensor import Tensor, concatenate, split, stack, where  # noqa: F401


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return x.relu()


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    """Leaky ReLU with configurable negative slope."""
    return x.leaky_relu(negative_slope)


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def softplus(x: Tensor) -> Tensor:
    return x.softplus()


def exp(x: Tensor) -> Tensor:
    return x.exp()


def log(x: Tensor) -> Tensor:
    return x.log()


def sqrt(x: Tensor) -> Tensor:
    return x.sqrt()


def clamp(x: Tensor, low: float, high: float) -> Tensor:
    return x.clip(low, high)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    e = shifted.exp()
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def pairwise_squared_distances(a: Tensor, b: Tensor) -> Tensor:
    """Pairwise squared Euclidean distances between two point sets.

    Parameters
    ----------
    a:
        Tensor of shape ``(..., N, D)``.
    b:
        Tensor of shape ``(..., M, D)``.

    Returns
    -------
    Tensor of shape ``(..., N, M)`` with ``|a_i - b_j|^2``.

    Notes
    -----
    Uses the expansion ``|a|^2 - 2 a.b + |b|^2`` so that the dominant cost is
    a single batched matrix product (cache friendly, as recommended by the
    optimisation guide), and clips tiny negative values arising from
    round-off.
    """
    a_sq = (a * a).sum(axis=-1, keepdims=True)            # (..., N, 1)
    b_sq = (b * b).sum(axis=-1, keepdims=True)            # (..., M, 1)
    cross = a @ b.swapaxes(-1, -2)                        # (..., N, M)
    d2 = a_sq - cross * 2.0 + b_sq.swapaxes(-1, -2)
    return d2.clip(0.0, np.inf)


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode integer labels (plain ndarray; labels carry no grad)."""
    labels = np.asarray(labels, dtype=np.int64)
    out = np.zeros(labels.shape + (num_classes,), dtype=np.float64)
    np.put_along_axis(out, labels[..., None], 1.0, axis=-1)
    return out


def dropout(x: Tensor, p: float, training: bool,
            rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout; identity when not training or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError("dropout probability must lie in [0, 1)")
    rng = rng or np.random.default_rng()
    mask = (rng.random(x.shape) >= p).astype(np.float64) / (1.0 - p)
    return x * Tensor(mask)


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight + bias`` with ``weight`` of shape (in, out)."""
    out = x @ weight
    if bias is not None:
        out = out + bias
    return out


def mse(a: Tensor, b: Union[Tensor, np.ndarray]) -> Tensor:
    """Mean squared error (convenience wrapper around the losses module)."""
    b = b if isinstance(b, Tensor) else Tensor(b)
    diff = a - b
    return (diff * diff).mean()
