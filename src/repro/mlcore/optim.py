"""Optimisers and learning-rate scaling rules.

The paper trains with Adam using ``beta1 = 0.8``, ``beta2 = 0.9``,
``eps = 1e-6`` and weight decay ``2e-5`` (Section IV-C), scales learning
rates with the square-root rule when increasing the global batch size
(Krizhevsky's "one weird trick") and uses a *higher* learning rate for the
VAE block than for the INN block (``m_VAE`` in Section V-A1).  Parameter
groups make that split explicit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.mlcore.module import Parameter

#: Default Adam hyper-parameters from the paper.
PAPER_ADAM_BETAS = (0.8, 0.9)
PAPER_ADAM_EPS = 1e-6
PAPER_WEIGHT_DECAY = 2e-5
PAPER_BASE_LEARNING_RATE = 1e-6


@dataclass
class ParamGroup:
    """A set of parameters sharing hyper-parameters (like torch param groups)."""

    params: List[Parameter]
    lr: float
    weight_decay: float = 0.0
    name: str = "default"
    state: Dict[int, dict] = field(default_factory=dict)


def sqrt_lr_scaling(base_lr: float, batch_size: int, base_batch_size: int) -> float:
    """Square-root learning-rate scaling rule for large-batch training.

    ``lr = base_lr * sqrt(batch_size / base_batch_size)``
    """
    if batch_size <= 0 or base_batch_size <= 0:
        raise ValueError("batch sizes must be positive")
    return base_lr * math.sqrt(batch_size / base_batch_size)


class Optimizer:
    """Base class holding parameter groups."""

    def __init__(self, params: Union[Iterable[Parameter], Sequence[ParamGroup]],
                 lr: float, weight_decay: float = 0.0) -> None:
        if lr < 0:
            raise ValueError("learning rate must be non-negative")
        params = list(params)
        if params and isinstance(params[0], ParamGroup):
            self.param_groups: List[ParamGroup] = list(params)  # type: ignore[arg-type]
        else:
            self.param_groups = [ParamGroup(params=list(params), lr=lr,
                                            weight_decay=weight_decay)]
        self._step_count = 0

    def add_param_group(self, group: ParamGroup) -> None:
        self.param_groups.append(group)

    def zero_grad(self) -> None:
        for group in self.param_groups:
            for p in group.params:
                p.zero_grad()

    @property
    def step_count(self) -> int:
        return self._step_count

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def set_lr(self, lr: float, group_name: Optional[str] = None) -> None:
        """Set the learning rate of one (by name) or all parameter groups."""
        for group in self.param_groups:
            if group_name is None or group.name == group_name:
                group.lr = lr


class SGD(Optimizer):
    """Plain (optionally momentum) stochastic gradient descent."""

    def __init__(self, params, lr: float = 1e-3, momentum: float = 0.0,
                 weight_decay: float = 0.0) -> None:
        super().__init__(params, lr, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must lie in [0, 1)")
        self.momentum = momentum

    def step(self) -> None:
        self._step_count += 1
        for group in self.param_groups:
            for p in group.params:
                if p.grad is None:
                    continue
                grad = p.grad
                if group.weight_decay:
                    grad = grad + group.weight_decay * p.data
                if self.momentum:
                    state = group.state.setdefault(id(p), {})
                    buf = state.get("momentum")
                    buf = grad if buf is None else self.momentum * buf + grad
                    state["momentum"] = buf
                    grad = buf
                p.data -= group.lr * grad


class Adam(Optimizer):
    """Adam optimiser with the paper's default hyper-parameters."""

    def __init__(self, params, lr: float = PAPER_BASE_LEARNING_RATE,
                 betas: Sequence[float] = PAPER_ADAM_BETAS,
                 eps: float = PAPER_ADAM_EPS,
                 weight_decay: float = PAPER_WEIGHT_DECAY) -> None:
        super().__init__(params, lr, weight_decay)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must lie in [0, 1)")
        if eps <= 0:
            raise ValueError("eps must be positive")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)

    def step(self) -> None:
        self._step_count += 1
        b1, b2 = self.beta1, self.beta2
        for group in self.param_groups:
            for p in group.params:
                if p.grad is None:
                    continue
                grad = p.grad
                if group.weight_decay:
                    grad = grad + group.weight_decay * p.data
                state = group.state.setdefault(id(p), {})
                if not state:
                    state["step"] = 0
                    state["m"] = np.zeros_like(p.data)
                    state["v"] = np.zeros_like(p.data)
                state["step"] += 1
                t = state["step"]
                state["m"] = b1 * state["m"] + (1.0 - b1) * grad
                state["v"] = b2 * state["v"] + (1.0 - b2) * grad * grad
                m_hat = state["m"] / (1.0 - b1 ** t)
                v_hat = state["v"] / (1.0 - b2 ** t)
                p.data -= group.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def make_block_param_groups(vae_params: Iterable[Parameter],
                            inn_params: Iterable[Parameter],
                            base_lr: float = PAPER_BASE_LEARNING_RATE,
                            m_vae: float = 10.0,
                            weight_decay: float = PAPER_WEIGHT_DECAY,
                            batch_size: Optional[int] = None,
                            base_batch_size: int = 8) -> List[ParamGroup]:
    """Create the VAE/INN parameter groups with separate learning rates.

    The paper observes that the VAE only finds good minima at the highest
    learning rate while the INN losses converge best at lower rates, hence
    ``l_VAE = m_VAE * l_INN``.  If ``batch_size`` is given, both rates are
    additionally scaled with the square-root rule.
    """
    lr_inn = base_lr
    if batch_size is not None:
        lr_inn = sqrt_lr_scaling(base_lr, batch_size, base_batch_size)
    lr_vae = lr_inn * m_vae
    return [
        ParamGroup(params=list(vae_params), lr=lr_vae,
                   weight_decay=weight_decay, name="vae"),
        ParamGroup(params=list(inn_params), lr=lr_inn,
                   weight_decay=weight_decay, name="inn"),
    ]
