"""End-to-end evaluation of the inversion (the quantitative side of Fig. 9).

Given a trained :class:`repro.models.ArtificialScientistModel` and a set of
evaluation samples (sub-volume point clouds with their observed spectra and
region labels), the evaluation

1. inverts each spectrum back to particle point clouds (INN backward +
   decoder),
2. compares the predicted momentum distribution with the ground truth per
   region (peak/mean momentum, histogram distance, detection of the two
   vortex populations),
3. runs the surrogate direction (particles → spectrum) and reports its MSE,
4. fits the latent regime classifier and reports its accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.classifier import LatentRegimeClassifier
from repro.analysis.histograms import (detects_two_populations, histogram_distance,
                                       mean_momentum, momentum_histogram, peak_momentum)
from repro.analysis.regions import REGION_NAMES
from repro.continual.buffer import TrainingSample
from repro.models.model import ArtificialScientistModel
from repro.utils.rng import RandomState, seeded_rng

#: Region name -> integer label (inverse of REGION_NAMES).
_REGION_IDS = {name: idx for idx, name in REGION_NAMES.items()}


@dataclass
class RegionEvaluation:
    """Ground-truth vs prediction comparison for one region."""

    region: str
    n_samples: int
    true_peak: float
    predicted_peak: float
    true_mean: float
    predicted_mean: float
    histogram_l1: float
    two_populations_true: bool
    two_populations_predicted: bool

    @property
    def peak_error(self) -> float:
        return abs(self.predicted_peak - self.true_peak)

    @property
    def mean_error(self) -> float:
        return abs(self.predicted_mean - self.true_mean)


@dataclass
class InversionReport:
    """Full evaluation across regions plus global metrics."""

    regions: Dict[str, RegionEvaluation]
    surrogate_spectrum_mse: float
    latent_classifier_accuracy: float
    n_evaluation_samples: int

    def rows(self) -> List[Dict[str, object]]:
        """Tabular view (one row per region) for printing/EXPERIMENTS.md."""
        rows = []
        for name, ev in sorted(self.regions.items()):
            rows.append({
                "region": name,
                "n_samples": ev.n_samples,
                "true_peak": round(ev.true_peak, 4),
                "predicted_peak": round(ev.predicted_peak, 4),
                "peak_error": round(ev.peak_error, 4),
                "true_mean": round(ev.true_mean, 4),
                "predicted_mean": round(ev.predicted_mean, 4),
                "histogram_l1": round(ev.histogram_l1, 4),
                "two_populations_true": ev.two_populations_true,
                "two_populations_predicted": ev.two_populations_predicted,
            })
        return rows

    def summary(self) -> Dict[str, float]:
        peaks = [ev.peak_error for ev in self.regions.values()]
        return {
            "mean_peak_error": float(np.mean(peaks)) if peaks else float("nan"),
            "surrogate_spectrum_mse": self.surrogate_spectrum_mse,
            "latent_classifier_accuracy": self.latent_classifier_accuracy,
        }


def _momentum_from_cloud(cloud: np.ndarray, momentum_axis: int = 3) -> np.ndarray:
    """Extract the detector-direction momentum column from (…, 6) point clouds."""
    return np.asarray(cloud)[..., momentum_axis]


def evaluate_inversion(model: ArtificialScientistModel,
                       samples: Sequence[TrainingSample],
                       n_posterior_samples: int = 4,
                       bins: int = 48,
                       momentum_range=( -0.35, 0.35),
                       rng: RandomState = None) -> InversionReport:
    """Evaluate the trained model on held-out samples.

    Parameters
    ----------
    model:
        The trained VAE + INN.
    samples:
        Evaluation samples with ``region`` labels set (as produced by
        :func:`repro.core.transforms.make_training_samples`).
    n_posterior_samples:
        Posterior draws per spectrum for the inversion.
    """
    if not samples:
        raise ValueError("need at least one evaluation sample")
    rng = seeded_rng(rng)

    # group samples by region
    by_region: Dict[str, List[TrainingSample]] = {}
    for sample in samples:
        by_region.setdefault(sample.region or "bulk", []).append(sample)

    region_evaluations: Dict[str, RegionEvaluation] = {}
    surrogate_errors: List[float] = []
    latents: List[np.ndarray] = []
    labels: List[int] = []

    for region, region_samples in by_region.items():
        true_momenta = np.concatenate(
            [_momentum_from_cloud(s.point_cloud) for s in region_samples])
        spectra = np.stack([s.spectrum for s in region_samples], axis=0)

        predicted_clouds = model.predict_particles_from_radiation(
            spectra, n_samples=n_posterior_samples)
        predicted_momenta = _momentum_from_cloud(predicted_clouds).reshape(-1)

        # An untrained / partially trained decoder can produce momenta outside
        # the physical range; clip them onto the histogram range so the
        # comparison stays well defined without coarsening the binning.
        low, high = momentum_range
        span = high - low
        predicted_clipped = np.clip(predicted_momenta, low + 1e-6 * span,
                                    high - 1e-6 * span)

        true_centres, true_hist = momentum_histogram(true_momenta[:, None] if
                                                     true_momenta.ndim == 1 else true_momenta,
                                                     bins=bins, momentum_range=momentum_range,
                                                     axis=0)
        pred_centres, pred_hist = momentum_histogram(predicted_clipped[:, None],
                                                     bins=bins, momentum_range=momentum_range,
                                                     axis=0)

        # surrogate: particles -> spectrum
        clouds = np.stack([s.point_cloud for s in region_samples], axis=0)
        predicted_spectra = model.predict_radiation_from_particles(clouds)
        surrogate_errors.append(float(np.mean((predicted_spectra - spectra) ** 2)))

        # latent space for the regime classifier
        z = model.encode_to_latent(clouds)
        latents.append(z)
        labels.extend([_REGION_IDS.get(region, 0)] * len(region_samples))

        region_evaluations[region] = RegionEvaluation(
            region=region,
            n_samples=len(region_samples),
            true_peak=peak_momentum(true_centres, true_hist),
            predicted_peak=peak_momentum(pred_centres, pred_hist),
            true_mean=mean_momentum(true_centres, true_hist),
            predicted_mean=mean_momentum(pred_centres, pred_hist),
            histogram_l1=histogram_distance(true_hist, pred_hist),
            two_populations_true=detects_two_populations(true_centres, true_hist),
            two_populations_predicted=detects_two_populations(pred_centres, pred_hist),
        )

    # latent classifier accuracy (only meaningful with more than one class)
    latent_matrix = np.concatenate(latents, axis=0)
    label_array = np.asarray(labels)
    if len(set(labels)) > 1:
        classifier = LatentRegimeClassifier(rng=rng)
        classifier.fit(latent_matrix, label_array)
        accuracy = classifier.accuracy(latent_matrix, label_array)
    else:
        accuracy = 1.0

    return InversionReport(regions=region_evaluations,
                           surrogate_spectrum_mse=float(np.mean(surrogate_errors)),
                           latent_classifier_accuracy=accuracy,
                           n_evaluation_samples=len(samples))
