"""Measuring the KHI growth rate from field energy and radiation.

Pausch et al. (2017) — reference [24] of the paper — show that the *linear
phase* of the relativistic KHI can be identified, and its growth rate
measured, from the emitted radiation instead of from the (unobservable)
magnetic field energy.  This module provides both measurements for the
reproduction's simulations:

* :func:`fit_exponential_growth` fits ``A * exp(2 Gamma t)`` to an energy
  time series on a chosen window (energies grow with twice the field
  amplitude growth rate),
* :func:`growth_rate_from_energy_history` applies it to the
  :class:`repro.pic.diagnostics.EnergyHistory` plugin output,
* :func:`growth_rate_from_radiation_history` applies it to a per-step
  radiated-power series (the paper's observable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class GrowthRateFit:
    """Result of an exponential growth fit."""

    rate: float                 #: growth rate Gamma of the field amplitude [1/s]
    energy_rate: float          #: growth rate of the energy (= 2 Gamma) [1/s]
    amplitude: float            #: fitted prefactor
    window: Tuple[int, int]     #: index window used for the fit
    r_squared: float            #: goodness of fit of log(energy) vs t

    @property
    def e_folding_time(self) -> float:
        """Time for the field amplitude to grow by a factor e [s]."""
        return np.inf if self.rate == 0 else 1.0 / self.rate


def _linear_fit(x: np.ndarray, y: np.ndarray) -> Tuple[float, float, float]:
    """Least-squares fit y = a + b x; returns (a, b, r^2)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    b, a = np.polyfit(x, y, 1)
    prediction = a + b * x
    ss_res = float(np.sum((y - prediction) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return a, b, r2


def fit_exponential_growth(times: Sequence[float], energies: Sequence[float],
                           window: Optional[Tuple[int, int]] = None,
                           floor: float = 0.0) -> GrowthRateFit:
    """Fit exponential growth to an energy time series.

    Parameters
    ----------
    times, energies:
        Time [s] and energy [J] samples (same length).
    window:
        Index range ``(start, stop)`` of the linear-growth phase; defaults to
        the middle half of the series, skipping the initial transient and
        the saturated tail.
    floor:
        Energies at or below this value are excluded (log of zero).
    """
    times = np.asarray(times, dtype=np.float64)
    energies = np.asarray(energies, dtype=np.float64)
    if times.shape != energies.shape or times.ndim != 1:
        raise ValueError("times and energies must be 1D arrays of equal length")
    if len(times) < 4:
        raise ValueError("need at least four samples to fit a growth rate")
    if window is None:
        start = len(times) // 4
        stop = max(start + 3, (3 * len(times)) // 4)
        window = (start, min(stop, len(times)))
    start, stop = int(window[0]), int(window[1])
    if not 0 <= start < stop <= len(times) or stop - start < 3:
        raise ValueError("fit window must contain at least three samples")
    t = times[start:stop]
    e = energies[start:stop]
    valid = e > floor
    if valid.sum() < 3:
        raise ValueError("not enough positive energy samples in the fit window")
    a, b, r2 = _linear_fit(t[valid], np.log(e[valid]))
    return GrowthRateFit(rate=b / 2.0, energy_rate=b, amplitude=float(np.exp(a)),
                         window=(start, stop), r_squared=r2)


def growth_rate_from_energy_history(history, dt: float,
                                    window: Optional[Tuple[int, int]] = None
                                    ) -> GrowthRateFit:
    """Growth rate from an :class:`repro.pic.diagnostics.EnergyHistory` plugin.

    Parameters
    ----------
    history:
        The plugin instance after a run (uses its magnetic-energy series —
        the KHI's defining signal).
    dt:
        Simulation time step [s].
    """
    steps = np.asarray(history.steps, dtype=np.float64)
    magnetic = np.asarray(history.magnetic, dtype=np.float64)
    return fit_exponential_growth(steps * dt, magnetic, window=window)


def growth_rate_from_radiation_history(times: Sequence[float],
                                       radiated_power: Sequence[float],
                                       window: Optional[Tuple[int, int]] = None
                                       ) -> GrowthRateFit:
    """Growth rate measured from the radiation signal (the paper's observable).

    During the linear phase the radiated power grows with the same
    exponential rate as the field energy, which is what makes the growth
    rate remotely measurable (Pausch et al. 2017).
    """
    return fit_exponential_growth(times, radiated_power, window=window)


def identify_linear_phase(energies: Sequence[float], threshold: float = 10.0
                          ) -> Tuple[int, int]:
    """Heuristically locate the linear-growth window of an energy series.

    Returns the index range between "clearly above the initial noise floor"
    (``threshold`` times the early minimum) and the point where growth slows
    to below 10 % per sample (saturation).
    """
    energies = np.asarray(energies, dtype=np.float64)
    if len(energies) < 5:
        raise ValueError("need at least five samples")
    noise = max(energies[:max(2, len(energies) // 10)].min(), 1e-300)
    above = np.flatnonzero(energies > threshold * noise)
    start = int(above[0]) if len(above) else len(energies) // 4
    # saturation: growth per sample drops below 10 %
    stop = len(energies)
    for i in range(start + 2, len(energies)):
        if energies[i] <= energies[i - 1] * 1.1:
            stop = i
            break
    if stop - start < 3:
        start = max(0, len(energies) // 4)
        stop = max(start + 3, (3 * len(energies)) // 4)
    return start, min(stop, len(energies))
