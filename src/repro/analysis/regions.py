"""Labelling of KHI plasma regions.

Fig. 9 distinguishes three kinds of sub-volumes:

* undisturbed bulk plasma **approaching** the detector (flow towards +x,
  where the detector sits),
* undisturbed bulk plasma **receding** from the detector,
* the **KHI vortex** (shear-surface) regions, where particles from both
  streams mix and the instability grows.

Particles are labelled individually; sub-volumes get the majority label of
their particles.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

REGION_APPROACHING = 0
REGION_RECEDING = 1
REGION_VORTEX = 2

REGION_NAMES: Dict[int, str] = {
    REGION_APPROACHING: "approaching",
    REGION_RECEDING: "receding",
    REGION_VORTEX: "vortex",
}


def shear_surface_positions(extent_shear: float) -> Tuple[float, float]:
    """The two shear surfaces of the periodic counter-flow profile."""
    return 0.25 * extent_shear, 0.75 * extent_shear


def label_particles(positions: np.ndarray, momenta: np.ndarray,
                    extent: Sequence[float], shear_axis: int = 1, flow_axis: int = 0,
                    vortex_half_width: float | None = None) -> np.ndarray:
    """Label each particle as approaching / receding / vortex.

    Parameters
    ----------
    positions, momenta:
        ``(N, 3)`` arrays (metres / dimensionless ``gamma beta``).
    extent:
        Physical box size.
    shear_axis, flow_axis:
        Geometry of the KHI configuration (defaults match
        :class:`repro.pic.khi.KHIConfig`).
    vortex_half_width:
        Particles within this distance of a shear surface are labelled
        vortex; defaults to 10 % of the box size along the shear axis.

    Returns
    -------
    Integer labels of shape ``(N,)``.
    """
    positions = np.asarray(positions, dtype=np.float64)
    momenta = np.asarray(momenta, dtype=np.float64)
    if positions.shape != momenta.shape or positions.ndim != 2 or positions.shape[1] != 3:
        raise ValueError("positions and momenta must both have shape (N, 3)")
    extent_shear = float(extent[shear_axis])
    if vortex_half_width is None:
        vortex_half_width = 0.10 * extent_shear
    y = np.mod(positions[:, shear_axis], extent_shear)
    s1, s2 = shear_surface_positions(extent_shear)
    near_shear = (np.abs(y - s1) < vortex_half_width) | (np.abs(y - s2) < vortex_half_width)

    labels = np.where(momenta[:, flow_axis] > 0.0, REGION_APPROACHING, REGION_RECEDING)
    labels = np.where(near_shear, REGION_VORTEX, labels)
    return labels.astype(np.int64)


def majority_region(labels: np.ndarray) -> int:
    """Majority label of a sub-volume (vortex wins ties — it is the rarest class)."""
    labels = np.asarray(labels)
    if labels.size == 0:
        raise ValueError("cannot compute the majority of zero labels")
    counts = np.bincount(labels, minlength=3)
    # prefer the vortex label on ties so thin shear layers are not washed out
    order = np.array([REGION_VORTEX, REGION_APPROACHING, REGION_RECEDING])
    best = order[np.argmax(counts[order])]
    return int(best)


def region_fractions(labels: np.ndarray) -> Dict[str, float]:
    """Fraction of particles per region name."""
    labels = np.asarray(labels)
    counts = np.bincount(labels, minlength=3)
    total = max(labels.size, 1)
    return {REGION_NAMES[i]: counts[i] / total for i in range(3)}
