"""A simple latent-space regime classifier.

Section V-B argues that the model "clearly learned to partition the latent
space into regions for different flow directions and vortex regions", such
that "a simple, almost linear classifier" can predict the physical regime
from the latent vector — and that evaluating such a classifier quantifies
how well the unsupervised training extracted the underlying physics.  This
module provides that classifier: multinomial logistic regression trained
with full-batch gradient descent on NumPy.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.rng import RandomState, seeded_rng


class LatentRegimeClassifier:
    """Multinomial logistic regression ``labels = argmax softmax(z W + b)``."""

    def __init__(self, n_classes: int = 3, learning_rate: float = 0.1,
                 n_epochs: int = 300, l2: float = 1e-4, rng: RandomState = None) -> None:
        if n_classes < 2:
            raise ValueError("need at least two classes")
        self.n_classes = int(n_classes)
        self.learning_rate = float(learning_rate)
        self.n_epochs = int(n_epochs)
        self.l2 = float(l2)
        self.rng = seeded_rng(rng)
        self.weights: Optional[np.ndarray] = None
        self.bias: Optional[np.ndarray] = None
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    def _standardise(self, features: np.ndarray, fit: bool) -> np.ndarray:
        if fit:
            self._mean = features.mean(axis=0)
            self._std = features.std(axis=0) + 1e-12
        assert self._mean is not None and self._std is not None
        return (features - self._mean) / self._std

    @staticmethod
    def _softmax(logits: np.ndarray) -> np.ndarray:
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    # ------------------------------------------------------------------ #
    def fit(self, latents: np.ndarray, labels: np.ndarray) -> "LatentRegimeClassifier":
        """Train on latent vectors ``(N, D)`` and integer labels ``(N,)``."""
        latents = np.asarray(latents, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if latents.ndim != 2 or labels.ndim != 1 or len(latents) != len(labels):
            raise ValueError("latents must be (N, D) and labels (N,)")
        if labels.min() < 0 or labels.max() >= self.n_classes:
            raise ValueError("labels out of range")
        x = self._standardise(latents, fit=True)
        n, d = x.shape
        one_hot = np.zeros((n, self.n_classes))
        one_hot[np.arange(n), labels] = 1.0
        self.weights = 0.01 * self.rng.standard_normal((d, self.n_classes))
        self.bias = np.zeros(self.n_classes)
        for _ in range(self.n_epochs):
            probabilities = self._softmax(x @ self.weights + self.bias)
            grad_logits = (probabilities - one_hot) / n
            grad_w = x.T @ grad_logits + self.l2 * self.weights
            grad_b = grad_logits.sum(axis=0)
            self.weights -= self.learning_rate * grad_w
            self.bias -= self.learning_rate * grad_b
        return self

    def predict_proba(self, latents: np.ndarray) -> np.ndarray:
        if self.weights is None or self.bias is None:
            raise RuntimeError("the classifier has not been fitted")
        x = self._standardise(np.asarray(latents, dtype=np.float64), fit=False)
        return self._softmax(x @ self.weights + self.bias)

    def predict(self, latents: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_proba(latents), axis=1)

    def accuracy(self, latents: np.ndarray, labels: np.ndarray) -> float:
        """Fraction of correctly classified samples."""
        labels = np.asarray(labels, dtype=np.int64)
        return float(np.mean(self.predict(latents) == labels))
