"""Momentum histograms and comparison metrics (the panels of Fig. 9 b/c)."""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.regions import REGION_NAMES


def momentum_histogram(momenta: np.ndarray, weights: Optional[np.ndarray] = None,
                       bins: int = 64, momentum_range: Tuple[float, float] = (-0.35, 0.35),
                       axis: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """Charge-weighted histogram of one momentum component.

    Parameters
    ----------
    momenta:
        ``(N, 3)`` (or ``(N,)``) array of ``gamma beta``.
    weights:
        Macro-particle weights (uniform if omitted).
    axis:
        Momentum component — 0 is the component "in the direction of the
        detector" plotted in Fig. 9.

    Returns
    -------
    ``(bin_centres, counts)``.
    """
    momenta = np.asarray(momenta, dtype=np.float64)
    values = momenta[:, axis] if momenta.ndim == 2 else momenta
    if weights is None:
        weights = np.ones_like(values)
    hist, edges = np.histogram(values, bins=bins, range=momentum_range, weights=weights)
    centres = 0.5 * (edges[:-1] + edges[1:])
    return centres, hist


def region_momentum_histograms(momenta: np.ndarray, labels: np.ndarray,
                               weights: Optional[np.ndarray] = None, bins: int = 64,
                               momentum_range: Tuple[float, float] = (-0.35, 0.35),
                               axis: int = 0) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
    """Per-region momentum histograms keyed by region name."""
    momenta = np.asarray(momenta, dtype=np.float64)
    labels = np.asarray(labels)
    out: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    for region, name in REGION_NAMES.items():
        mask = labels == region
        if not np.any(mask):
            continue
        w = None if weights is None else np.asarray(weights)[mask]
        out[name] = momentum_histogram(momenta[mask], weights=w, bins=bins,
                                       momentum_range=momentum_range, axis=axis)
    return out


def peak_momentum(centres: np.ndarray, counts: np.ndarray) -> float:
    """Momentum at the histogram maximum."""
    counts = np.asarray(counts, dtype=np.float64)
    if counts.size == 0 or counts.sum() == 0:
        raise ValueError("histogram is empty")
    return float(np.asarray(centres)[np.argmax(counts)])


def mean_momentum(centres: np.ndarray, counts: np.ndarray) -> float:
    """Weighted mean momentum of a histogram."""
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum()
    if total == 0:
        raise ValueError("histogram is empty")
    return float(np.sum(np.asarray(centres) * counts) / total)


def histogram_distance(counts_a: np.ndarray, counts_b: np.ndarray) -> float:
    """Normalised L1 distance between two histograms (0 identical, 2 disjoint)."""
    a = np.asarray(counts_a, dtype=np.float64)
    b = np.asarray(counts_b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError("histograms must have the same binning")
    a_sum, b_sum = a.sum(), b.sum()
    if a_sum == 0 or b_sum == 0:
        raise ValueError("histograms must be non-empty")
    return float(np.abs(a / a_sum - b / b_sum).sum())


def detects_two_populations(centres: np.ndarray, counts: np.ndarray,
                            minimum_separation: float = 0.1,
                            prominence: float = 0.2) -> bool:
    """Heuristic check whether a histogram shows two distinct peaks.

    Used to verify the paper's qualitative claim that the ML reconstruction
    of the vortex region "consistently predicts these two distinct particle
    populations".
    """
    counts = np.asarray(counts, dtype=np.float64)
    centres = np.asarray(centres, dtype=np.float64)
    if counts.sum() == 0:
        return False
    normalised = counts / counts.max()
    positive = centres > 0
    negative = centres < 0
    if not np.any(positive) or not np.any(negative):
        return False
    peak_pos = normalised[positive].max()
    peak_neg = normalised[negative].max()
    centre_pos = centres[positive][np.argmax(normalised[positive])]
    centre_neg = centres[negative][np.argmax(normalised[negative])]
    return (peak_pos >= prominence and peak_neg >= prominence
            and (centre_pos - centre_neg) >= minimum_separation)
