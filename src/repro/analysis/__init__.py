"""Scientific evaluation of the trained model (Section V-B / Fig. 9).

* :mod:`repro.analysis.regions` — labelling of plasma regions (bulk
  approaching the detector, bulk receding, KHI vortex / shear region),
* :mod:`repro.analysis.histograms` — charge-weighted momentum histograms
  and their comparison metrics,
* :mod:`repro.analysis.classifier` — a simple (multinomial logistic)
  classifier on the latent space, quantifying that the latent partitions
  into physical regimes,
* :mod:`repro.analysis.evaluation` — the end-to-end inversion report
  comparing ground truth and ML prediction per region.
"""

from repro.analysis.regions import (REGION_APPROACHING, REGION_NAMES, REGION_RECEDING,
                                    REGION_VORTEX, label_particles, majority_region)
from repro.analysis.histograms import (histogram_distance, momentum_histogram,
                                       peak_momentum, region_momentum_histograms)
from repro.analysis.classifier import LatentRegimeClassifier
from repro.analysis.evaluation import InversionReport, RegionEvaluation, evaluate_inversion
from repro.analysis.growth import (GrowthRateFit, fit_exponential_growth,
                                   growth_rate_from_energy_history,
                                   growth_rate_from_radiation_history,
                                   identify_linear_phase)

__all__ = [
    "GrowthRateFit",
    "fit_exponential_growth",
    "growth_rate_from_energy_history",
    "growth_rate_from_radiation_history",
    "identify_linear_phase",
    "REGION_APPROACHING",
    "REGION_RECEDING",
    "REGION_VORTEX",
    "REGION_NAMES",
    "label_particles",
    "majority_region",
    "momentum_histogram",
    "region_momentum_histograms",
    "histogram_distance",
    "peak_momentum",
    "LatentRegimeClassifier",
    "InversionReport",
    "RegionEvaluation",
    "evaluate_inversion",
]
