"""Machine descriptions used by the performance models."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MachineSpec:
    """Coarse description of an HPC system.

    Attributes
    ----------
    name:
        System name.
    n_nodes:
        Number of compute nodes.
    gpus_per_node:
        Physical GPU packages per node (an MI250X counts as one GPU with
        two GCDs, matching how the paper counts "36 864 AMD MI250X GPUs").
    gcds_per_gpu:
        Independently schedulable compute dies per GPU package.
    nic_bandwidth:
        Injection bandwidth of one NIC [bytes/s].
    nics_per_node:
        Network interfaces per node.
    filesystem_bandwidth:
        Aggregate parallel-filesystem bandwidth [bytes/s].
    node_local_ssd_bandwidth:
        Aggregate node-local SSD write bandwidth [bytes/s].
    """

    name: str
    n_nodes: int
    gpus_per_node: int
    gcds_per_gpu: int
    nic_bandwidth: float
    nics_per_node: int
    filesystem_bandwidth: float
    node_local_ssd_bandwidth: float

    @property
    def gcds_per_node(self) -> int:
        return self.gpus_per_node * self.gcds_per_gpu

    @property
    def total_gpus(self) -> int:
        return self.n_nodes * self.gpus_per_node

    @property
    def total_gcds(self) -> int:
        return self.n_nodes * self.gcds_per_node

    @property
    def node_injection_bandwidth(self) -> float:
        """Total network injection bandwidth of one node [bytes/s]."""
        return self.nic_bandwidth * self.nics_per_node

    def filesystem_bandwidth_per_node(self, n_nodes: int | None = None) -> float:
        """Parallel-filesystem share of one node when ``n_nodes`` write at once.

        This is the "breaking down the throughput of massively parallel
        filesystems to the single node" argument of the introduction: at
        full scale it drops to tens of MB/s … GB/s, far below the NIC.
        """
        n = self.n_nodes if n_nodes is None else n_nodes
        if n < 1:
            raise ValueError("n_nodes must be >= 1")
        return self.filesystem_bandwidth / n


#: Frontier (OLCF), as described in Section IV and public specifications:
#: 9408 nodes with 4 MI250X (8 GCDs) each, 4×25 GB/s Slingshot NICs,
#: the 10 TB/s Orion Lustre filesystem and ~35 TB/s aggregate node-local SSDs.
FRONTIER = MachineSpec(
    name="Frontier",
    n_nodes=9408,
    gpus_per_node=4,
    gcds_per_gpu=2,
    nic_bandwidth=25.0e9,
    nics_per_node=4,
    filesystem_bandwidth=10.0e12,
    node_local_ssd_bandwidth=35.0e12,
)

#: Summit (OLCF): 4608 nodes with 6 V100 GPUs, dual EDR InfiniBand (25 GB/s
#: aggregate), 2.5 TB/s Alpine filesystem.
SUMMIT = MachineSpec(
    name="Summit",
    n_nodes=4608,
    gpus_per_node=6,
    gcds_per_gpu=1,
    nic_bandwidth=12.5e9,
    nics_per_node=2,
    filesystem_bandwidth=2.5e12,
    node_local_ssd_bandwidth=7.0e12,
)
