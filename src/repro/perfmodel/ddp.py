"""In-transit training weak scaling (Fig. 8).

The paper measures single-batch training times from 32 to 384 GCDs (8 to 96
nodes) and finds the efficiency — runtime at the smallest size divided by
runtime at size N — drops to about 35 % at 96 nodes.  Two effects dominate:

1. the unavoidable all-to-all (all-reduce) gradient averaging of PyTorch
   DDP, partly hidden by overlapping communication with the backward pass
   (≈ 30 % deficit), and
2. the two MMD loss terms, whose naive implementation replicates work across
   ranks and synchronises the compute graph via
   ``all_gather_into_tensor`` — a cost that grows with the global batch.

:class:`DDPWeakScalingModel` combines a fixed per-batch compute time, a ring
all-reduce term (:class:`repro.mlcore.distributed.RingAllReduceModel`) and a
replicated-MMD term growing linearly with the number of ranks, and returns
the same efficiency curve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.mlcore.distributed import RingAllReduceModel
from repro.perfmodel.machines import FRONTIER, MachineSpec


@dataclass(frozen=True)
class DDPScalingPoint:
    """One point of the training weak-scaling curve."""

    n_nodes: int
    n_gcds: int
    global_batch_size: int
    step_time: float
    efficiency: float
    compute_fraction: float
    allreduce_fraction: float
    mmd_fraction: float


@dataclass
class DDPWeakScalingModel:
    """Weak-scaling efficiency of the data-parallel in-transit training.

    Parameters
    ----------
    compute_time:
        Per-batch forward+backward+optimiser time of one GCD [s].
    gradient_bytes:
        Bytes exchanged per all-reduce (model gradients).
    allreduce:
        Ring all-reduce time model.
    overlap_fraction:
        Fraction of the all-reduce hidden behind the backward pass
        (PyTorch DDP overlaps communication with computation).
    mmd_time_per_rank:
        Extra per-batch seconds added per participating GCD by the
        replicated MMD computation and its blocking all-gather.
    batch_per_gcd:
        Per-GCD batch size (paper: n_now + n_EP = 8).
    gcds_per_node:
        GCDs per node given to the MLapp (intra-node setup: 4).
    """

    compute_time: float = 0.060
    gradient_bytes: float = 26.0e6
    allreduce: RingAllReduceModel = field(default_factory=lambda: RingAllReduceModel(
        bandwidth=2.0e9, latency=1.0e-4, intra_node_bandwidth=50.0e9, gcds_per_node=4))
    overlap_fraction: float = 0.35
    mmd_time_per_rank: float = 0.00025
    batch_per_gcd: int = 8
    gcds_per_node: int = 4
    machine: MachineSpec = FRONTIER

    # -- components -------------------------------------------------------- #
    def n_gcds(self, n_nodes: int) -> int:
        return n_nodes * self.gcds_per_node

    def allreduce_time(self, n_nodes: int) -> float:
        visible = (1.0 - self.overlap_fraction)
        return visible * self.allreduce.time(self.n_gcds(n_nodes), self.gradient_bytes)

    def mmd_time(self, n_nodes: int) -> float:
        """Replicated MMD work + blocking all-gather, growing with rank count."""
        n = self.n_gcds(n_nodes)
        gather = self.allreduce.allgather_time(n, self.batch_per_gcd * 544 * 4)
        return self.mmd_time_per_rank * n + gather

    def step_time(self, n_nodes: int) -> float:
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        return self.compute_time + self.allreduce_time(n_nodes) + self.mmd_time(n_nodes)

    # -- the Fig. 8 curve ----------------------------------------------------- #
    def efficiency(self, n_nodes: int, base_nodes: int = 8) -> float:
        return self.step_time(base_nodes) / self.step_time(n_nodes)

    def scan(self, node_counts: Sequence[int] = (8, 24, 48, 96),
             base_nodes: int = 8) -> List[DDPScalingPoint]:
        base_time = self.step_time(base_nodes)
        points = []
        for n_nodes in node_counts:
            t = self.step_time(n_nodes)
            points.append(DDPScalingPoint(
                n_nodes=int(n_nodes),
                n_gcds=self.n_gcds(int(n_nodes)),
                global_batch_size=self.batch_per_gcd * self.n_gcds(int(n_nodes)),
                step_time=t,
                efficiency=base_time / t,
                compute_fraction=self.compute_time / t,
                allreduce_fraction=self.allreduce_time(int(n_nodes)) / t,
                mmd_fraction=self.mmd_time(int(n_nodes)) / t,
            ))
        return points

    def deficit_attribution(self, n_nodes: int = 96, base_nodes: int = 8) -> Dict[str, float]:
        """How much of the lost efficiency each component accounts for."""
        base = self.step_time(base_nodes)
        total_extra = self.step_time(n_nodes) - base
        if total_extra <= 0:
            return {"allreduce": 0.0, "mmd": 0.0}
        extra_ar = self.allreduce_time(n_nodes) - self.allreduce_time(base_nodes)
        extra_mmd = self.mmd_time(n_nodes) - self.mmd_time(base_nodes)
        return {"allreduce": extra_ar / total_extra, "mmd": extra_mmd / total_extra}

    # -- calibration --------------------------------------------------------------- #
    @classmethod
    def paper_calibrated(cls) -> "DDPWeakScalingModel":
        """Parameters tuned so the curve lands near the measured ~35 % at 96 nodes."""
        return cls(compute_time=0.060, gradient_bytes=26.0e6,
                   overlap_fraction=0.35, mmd_time_per_rank=0.00025,
                   batch_per_gcd=8, gcds_per_node=4)

    @classmethod
    def from_measurement(cls, compute_time: float, gradient_bytes: float,
                         **kwargs) -> "DDPWeakScalingModel":
        """Build the model from quantities measured on the real (small) run."""
        return cls(compute_time=float(compute_time), gradient_bytes=float(gradient_bytes),
                   **kwargs)
