"""Analytic performance models of the Frontier-scale experiments.

The paper's scaling figures were measured on up to 9216 Frontier nodes.
This reproduction cannot run at that scale, so — per the substitution rules
documented in ``DESIGN.md`` — each figure is regenerated from a calibrated
machine model whose inputs (per-GCD compute rates, NIC bandwidth,
all-reduce algorithm, data-plane throughput) come from the paper and public
Frontier specifications, while the *structure* of each model (what is
communicated when, what is replicated, what overlaps) mirrors the real code
paths in this repository.

* :mod:`repro.perfmodel.machines` — Frontier and Summit machine specs,
* :mod:`repro.perfmodel.fom` — PIConGPU FOM weak scaling (Fig. 4),
* :mod:`repro.perfmodel.streaming` — full-scale streaming throughput
  (Fig. 6),
* :mod:`repro.perfmodel.ddp` — in-transit training weak scaling (Fig. 8).
"""

from repro.perfmodel.machines import FRONTIER, SUMMIT, MachineSpec
from repro.perfmodel.fom import FOMScalingModel, FOMScalingPoint
from repro.perfmodel.streaming import StreamingScalingStudy, StreamingScalingPoint
from repro.perfmodel.ddp import DDPWeakScalingModel, DDPScalingPoint

__all__ = [
    "MachineSpec",
    "FRONTIER",
    "SUMMIT",
    "FOMScalingModel",
    "FOMScalingPoint",
    "StreamingScalingStudy",
    "StreamingScalingPoint",
    "DDPWeakScalingModel",
    "DDPScalingPoint",
]
