"""PIConGPU figure-of-merit weak scaling (Fig. 4).

The FOM is the weighted sum of particle updates per second (90 %) and cell
updates per second (10 %).  PIConGPU communicates only with next neighbours
(guard-cell exchange) and overlaps that communication with computation, so
the weak-scaling efficiency stays high; the model captures the residual
degradation with a logarithmic term (collective start-up, load imbalance).

Calibration targets (from the paper): the largest Frontier run (36 864
MI250X GPUs) reaches an average FOM of 65.3 TeraUpdates/s; the Summit
baseline reaches 14.7 TeraUpdates/s.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.pic.fom import CELL_WEIGHT, PARTICLE_WEIGHT
from repro.perfmodel.machines import FRONTIER, SUMMIT, MachineSpec


@dataclass(frozen=True)
class FOMScalingPoint:
    """One point of the weak-scaling curve."""

    n_gpus: int
    fom_updates_per_second: float
    efficiency: float

    @property
    def tera_updates_per_second(self) -> float:
        return self.fom_updates_per_second / 1e12


@dataclass
class FOMScalingModel:
    """Weak-scaling model of the PIConGPU FOM.

    Parameters
    ----------
    machine:
        Machine description (used for documentation and GPU counts).
    per_gpu_particle_rate:
        Macro-particle updates per second of one GPU package.
    per_gpu_cell_rate:
        Cell updates per second of one GPU package.
    scaling_loss_per_decade:
        Relative efficiency lost per factor-10 increase in GPU count
        (communication jitter, load imbalance); PIConGPU's measured weak
        scaling is close to ideal, so this is a small number.
    base_gpus:
        Reference size at which efficiency is defined as 1.
    """

    machine: MachineSpec = FRONTIER
    per_gpu_particle_rate: float = 1.85e9
    per_gpu_cell_rate: float = 2.4e8
    scaling_loss_per_decade: float = 0.015
    base_gpus: int = 24

    # -- model ----------------------------------------------------------- #
    def efficiency(self, n_gpus: int) -> float:
        if n_gpus < 1:
            raise ValueError("n_gpus must be >= 1")
        decades = max(0.0, np.log10(n_gpus / self.base_gpus))
        return float(max(0.5, 1.0 - self.scaling_loss_per_decade * decades))

    def per_gpu_fom(self) -> float:
        return (PARTICLE_WEIGHT * self.per_gpu_particle_rate
                + CELL_WEIGHT * self.per_gpu_cell_rate)

    def fom(self, n_gpus: int) -> float:
        """Aggregate FOM [updates/s] of a weak-scaled run on ``n_gpus`` GPUs."""
        return n_gpus * self.per_gpu_fom() * self.efficiency(n_gpus)

    def scan(self, gpu_counts: Sequence[int]) -> List[FOMScalingPoint]:
        return [FOMScalingPoint(n_gpus=int(n), fom_updates_per_second=self.fom(int(n)),
                                efficiency=self.efficiency(int(n)))
                for n in gpu_counts]

    # -- paper presets ------------------------------------------------------ #
    @classmethod
    def frontier_calibrated(cls) -> "FOMScalingModel":
        """Calibrated so the full-Frontier run lands at ~65.3 TeraUpdates/s."""
        model = cls(machine=FRONTIER)
        target = 65.3e12
        full_gpus = 36_864
        scale = target / model.fom(full_gpus)
        return cls(machine=FRONTIER,
                   per_gpu_particle_rate=model.per_gpu_particle_rate * scale,
                   per_gpu_cell_rate=model.per_gpu_cell_rate * scale,
                   scaling_loss_per_decade=model.scaling_loss_per_decade,
                   base_gpus=model.base_gpus)

    @classmethod
    def summit_calibrated(cls) -> "FOMScalingModel":
        """Calibrated so the full-Summit baseline lands at ~14.7 TeraUpdates/s."""
        model = cls(machine=SUMMIT, base_gpus=24)
        target = 14.7e12
        full_gpus = 27_648
        scale = target / model.fom(full_gpus)
        return cls(machine=SUMMIT,
                   per_gpu_particle_rate=model.per_gpu_particle_rate * scale,
                   per_gpu_cell_rate=model.per_gpu_cell_rate * scale,
                   scaling_loss_per_decade=model.scaling_loss_per_decade,
                   base_gpus=24)

    @staticmethod
    def paper_gpu_counts() -> List[int]:
        """The GPU counts of the Fig. 4 weak-scaling series (24 … 36 864)."""
        counts = [24]
        while counts[-1] * 2 <= 36_864:
            counts.append(counts[-1] * 2)
        if counts[-1] != 36_864:
            counts.append(36_864)
        return counts

    # -- paper-scale run-time estimate (Section IV-A) -------------------------- #
    def time_per_step(self, particles_per_gpu: float, cells_per_gpu: float,
                      n_gpus: int) -> float:
        """Seconds per PIC step for a given per-GPU workload."""
        rate_particles = self.per_gpu_particle_rate * self.efficiency(n_gpus)
        rate_cells = self.per_gpu_cell_rate * self.efficiency(n_gpus)
        return particles_per_gpu / rate_particles + cells_per_gpu / rate_cells
