"""Full-scale streaming throughput study (Fig. 6).

The paper streams the PIConGPU KHI particle output (5.86 GB per compute
node and time step) into the no-op consumer on 4096 to 9126 Frontier nodes
and reports the parallel throughput for the libfabric and MPI data planes.
This module regenerates that study from the calibrated data-plane models of
:mod:`repro.streaming.dataplane`, including

* the weak-scaling series over node counts,
* the libfabric "all-at-once" read-enqueue strategy that is fastest at 4096
  nodes but does not scale to the full system (the ``4096*`` entry), and
* the comparison against the Orion filesystem (10 TB/s) and the node-local
  SSDs (35 TB/s aggregate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.perfmodel.machines import FRONTIER, MachineSpec
from repro.streaming.dataplane import ModeledDataPlane, make_data_plane
from repro.streaming.throughput import ThroughputResult, measure_stream_throughput
from repro.utils.rng import RandomState, seeded_rng

#: Particle data produced per compute node and time step (Section IV-B).
PAPER_BYTES_PER_NODE = 5.86e9
#: Node counts of the Fig. 6 study (half to full scale).
PAPER_NODE_COUNTS = (4096, 6144, 8192, 9126)
#: Steps sent per scaling run.
PAPER_STEPS_PER_RUN = 5


@dataclass(frozen=True)
class StreamingScalingPoint:
    """One (data plane, strategy, node count) measurement."""

    data_plane: str
    enqueue_strategy: str
    n_nodes: int
    result: Optional[ThroughputResult]   #: ``None`` when the combination does not scale

    @property
    def supported(self) -> bool:
        return self.result is not None

    @property
    def terabytes_per_second(self) -> Optional[float]:
        return None if self.result is None else self.result.terabytes_per_second()


@dataclass
class StreamingScalingStudy:
    """Regenerate the Fig. 6 weak-scaling throughput study."""

    machine: MachineSpec = FRONTIER
    bytes_per_node: float = PAPER_BYTES_PER_NODE
    n_steps: int = PAPER_STEPS_PER_RUN
    node_counts: Sequence[int] = PAPER_NODE_COUNTS
    rng: RandomState = None

    def run_case(self, plane_name: str, n_nodes: int,
                 enqueue_strategy: str = "batched") -> StreamingScalingPoint:
        """Model one scaling run: ``n_steps`` steps of ``bytes_per_node`` each."""
        rng = seeded_rng(self.rng if self.rng is not None else 1234)
        plane = make_data_plane(plane_name, rng=rng)
        if not plane.supports(n_nodes, enqueue_strategy):
            return StreamingScalingPoint(plane_name, enqueue_strategy, n_nodes, None)
        step_times = [plane.transfer_time(int(self.bytes_per_node), n_nodes=n_nodes,
                                          enqueue_strategy=enqueue_strategy)
                      for _ in range(self.n_steps)]
        result = measure_stream_throughput(step_times, n_nodes=n_nodes,
                                           bytes_per_node=self.bytes_per_node,
                                           data_plane=plane_name,
                                           enqueue_strategy=enqueue_strategy)
        return StreamingScalingPoint(plane_name, enqueue_strategy, n_nodes, result)

    def run(self, planes: Sequence[str] = ("libfabric", "mpi"),
            include_all_at_once: bool = True) -> List[StreamingScalingPoint]:
        """Full study: every plane and node count (plus the 4096* strategy)."""
        points: List[StreamingScalingPoint] = []
        for plane in planes:
            for n_nodes in self.node_counts:
                points.append(self.run_case(plane, n_nodes, "batched"))
            if include_all_at_once and plane == "libfabric":
                for n_nodes in self.node_counts:
                    points.append(self.run_case(plane, n_nodes, "all_at_once"))
        return points

    # -- comparisons quoted in the text -------------------------------------- #
    def filesystem_throughput(self) -> float:
        """The Orion parallel-filesystem bandwidth the streaming approach beats."""
        return self.machine.filesystem_bandwidth

    def node_local_ssd_throughput(self) -> float:
        return self.machine.node_local_ssd_bandwidth

    def rows(self, points: Optional[Sequence[StreamingScalingPoint]] = None
             ) -> List[Dict[str, object]]:
        """Fig. 6 as a table: one row per (plane, strategy, nodes)."""
        points = list(points) if points is not None else self.run()
        rows: List[Dict[str, object]] = []
        for point in points:
            row: Dict[str, object] = {
                "data_plane": point.data_plane,
                "strategy": point.enqueue_strategy,
                "nodes": point.n_nodes,
            }
            if point.result is None:
                row.update({"parallel_tb_per_s": None, "per_node_gb_per_s": None,
                            "step_time_s": None, "scales": False})
            else:
                row.update({
                    "parallel_tb_per_s": round(point.result.terabytes_per_second(), 2),
                    "per_node_gb_per_s": round(
                        float(np.median(point.result.per_node_throughput)) / 1e9, 2),
                    "step_time_s": round(float(np.median(point.result.step_times)), 2),
                    "scales": True,
                })
            rows.append(row)
        rows.append({"data_plane": "orion-filesystem", "strategy": "-",
                     "nodes": self.machine.n_nodes,
                     "parallel_tb_per_s": self.filesystem_throughput() / 1e12,
                     "per_node_gb_per_s": round(
                         self.machine.filesystem_bandwidth_per_node() / 1e9, 3),
                     "step_time_s": None, "scales": True})
        rows.append({"data_plane": "node-local-ssd", "strategy": "-",
                     "nodes": self.machine.n_nodes,
                     "parallel_tb_per_s": self.node_local_ssd_throughput() / 1e12,
                     "per_node_gb_per_s": round(
                         self.machine.node_local_ssd_bandwidth / self.machine.n_nodes / 1e9, 2),
                     "step_time_s": None, "scales": True})
        return rows
