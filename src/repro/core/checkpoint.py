"""Checkpointing of the in-transit training state.

The streamed simulation data is gone once consumed, but the *learning state*
— model weights, optimiser moments, the experience-replay buffers and the
loss history — can and should be persisted: it is the only product of the
run (the paper's trained model is what gets evaluated in Fig. 9), and a
restartable MLapp lets a long campaign survive the failure of either side of
the loosely coupled pair without losing the accumulated knowledge.

Checkpoints are plain ``.npz`` archives plus a JSON manifest, written
atomically (write to a temporary name, then rename).
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.continual.buffer import TrainingBuffer, TrainingSample
from repro.continual.trainer import InTransitTrainer
from repro.mlcore.serialization import load_state_dict, save_state_dict
from repro.models.model import ArtificialScientistModel


@dataclass(frozen=True)
class CheckpointInfo:
    """Metadata of a written checkpoint."""

    directory: str
    step: int
    training_iterations: int
    n_buffer_samples: int

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, "manifest.json")


def _buffer_to_arrays(buffer: TrainingBuffer) -> Dict[str, np.ndarray]:
    """Serialise the now/EP buffers into stackable arrays."""
    arrays: Dict[str, np.ndarray] = {}
    for prefix, samples in (("now", buffer._now), ("ep", buffer._ep)):
        if not samples:
            continue
        arrays[f"{prefix}_point_clouds"] = np.stack([s.point_cloud for s in samples])
        arrays[f"{prefix}_spectra"] = np.stack([s.spectrum for s in samples])
        arrays[f"{prefix}_steps"] = np.asarray([s.step for s in samples], dtype=np.int64)
        arrays[f"{prefix}_regions"] = np.asarray(
            [s.region for s in samples], dtype="U16")
    return arrays


def _arrays_to_samples(arrays: Dict[str, np.ndarray], prefix: str) -> List[TrainingSample]:
    key = f"{prefix}_point_clouds"
    if key not in arrays:
        return []
    clouds = arrays[key]
    spectra = arrays[f"{prefix}_spectra"]
    steps = arrays[f"{prefix}_steps"]
    regions = arrays[f"{prefix}_regions"]
    return [TrainingSample(point_cloud=clouds[i], spectrum=spectra[i],
                           step=int(steps[i]), region=str(regions[i]))
            for i in range(len(clouds))]


def save_checkpoint(directory: str, model: ArtificialScientistModel,
                    trainer: InTransitTrainer, step: int) -> CheckpointInfo:
    """Write model weights, buffers and training history to ``directory``."""
    os.makedirs(directory, exist_ok=True)

    save_state_dict(model.state_dict(), os.path.join(directory, "model"))

    buffer_arrays = _buffer_to_arrays(trainer.buffer)
    np.savez(os.path.join(directory, "buffer.npz"), **buffer_arrays)

    history = trainer.history
    history_arrays = {"steps": np.asarray(history.steps, dtype=np.int64)}
    if history.terms:
        for name in history.terms[0]:
            history_arrays[f"loss_{name}"] = history.series(name)
    np.savez(os.path.join(directory, "history.npz"), **history_arrays)

    manifest = {
        "step": int(step),
        "training_iterations": len(history),
        "samples_consumed": trainer.samples_consumed,
        "buffer": {"now": trainer.buffer.now_count, "ep": trainer.buffer.ep_count,
                   "now_size": trainer.buffer.now_size, "ep_size": trainer.buffer.ep_size},
        "n_rep": trainer.n_rep,
    }
    manifest_path = os.path.join(directory, "manifest.json")
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".json")
    with os.fdopen(fd, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
    os.replace(tmp_path, manifest_path)

    return CheckpointInfo(directory=directory, step=int(step),
                          training_iterations=len(history),
                          n_buffer_samples=len(trainer.buffer))


def load_checkpoint(directory: str, model: ArtificialScientistModel,
                    trainer: Optional[InTransitTrainer] = None) -> Dict[str, object]:
    """Restore model weights (and, if given, the trainer's buffers) in place.

    Returns the checkpoint manifest.
    """
    manifest_path = os.path.join(directory, "manifest.json")
    if not os.path.exists(manifest_path):
        raise FileNotFoundError(f"no checkpoint manifest found in {directory!r}")
    with open(manifest_path, encoding="utf-8") as handle:
        manifest = json.load(handle)

    model.load_state_dict(load_state_dict(os.path.join(directory, "model")))

    if trainer is not None:
        buffer_path = os.path.join(directory, "buffer.npz")
        if os.path.exists(buffer_path):
            with np.load(buffer_path) as archive:
                arrays = {key: archive[key] for key in archive.files}
            trainer.buffer._now = _arrays_to_samples(arrays, "now")
            trainer.buffer._ep = _arrays_to_samples(arrays, "ep")
        history_path = os.path.join(directory, "history.npz")
        if os.path.exists(history_path):
            with np.load(history_path) as archive:
                steps = archive["steps"]
                term_names = [k[len("loss_"):] for k in archive.files if k.startswith("loss_")]
                trainer.history.steps = [int(s) for s in steps]
                trainer.history.terms = [
                    {name: float(archive[f"loss_{name}"][i]) for name in term_names}
                    for i in range(len(steps))]
    return manifest
