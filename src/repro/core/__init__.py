"""The Artificial Scientist: the loosely coupled, in-transit workflow.

This subpackage is the paper's primary contribution assembled from the
substrates:

* the KHI PIC simulation (:mod:`repro.pic`) with the radiation plugin
  (:mod:`repro.radiation`) acts as the **producer**; a streaming output
  plugin converts each time step's local phase-space and radiation data
  into training samples and writes them as an openPMD iteration through an
  SST-style stream,
* the **MLapp** (:mod:`repro.core.mlapp`) reads iterations from the stream,
  feeds the experience-replay buffer and trains the VAE+INN in transit,
* :class:`repro.core.artificial_scientist.ArtificialScientist` wires both
  applications together (intra-node loose coupling), drives the run and
  collects the workflow report — since the ``repro.workflow`` redesign it
  is a thin deprecated facade over
  :class:`repro.workflow.WorkflowSession`; prefer the builder API for new
  code (multiple consumers, pluggable drivers, presets),
* :mod:`repro.core.placement` models the resource assignment choices of
  Fig. 3(c) (intra- vs inter-node placement, GCD split).
"""

from repro.core.config import MLConfig, StreamingConfig, WorkflowConfig
from repro.core.placement import PlacementMode, ResourcePlan
from repro.core.transforms import (RegionPartition, encode_point_cloud, encode_spectrum,
                                   make_training_samples)
from repro.core.producer import StreamingProducerPlugin
from repro.core.mlapp import MLApp
from repro.core.artificial_scientist import ArtificialScientist, WorkflowReport
from repro.core.checkpoint import CheckpointInfo, load_checkpoint, save_checkpoint
from repro.core.threaded import ThreadedRunResult, ThreadedWorkflowRunner

__all__ = [
    "CheckpointInfo",
    "save_checkpoint",
    "load_checkpoint",
    "ThreadedWorkflowRunner",
    "ThreadedRunResult",
    "WorkflowConfig",
    "MLConfig",
    "StreamingConfig",
    "PlacementMode",
    "ResourcePlan",
    "RegionPartition",
    "encode_point_cloud",
    "encode_spectrum",
    "make_training_samples",
    "StreamingProducerPlugin",
    "MLApp",
    "ArtificialScientist",
    "WorkflowReport",
]
