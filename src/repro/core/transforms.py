"""Transforms from simulation data to ML training samples.

Section III-A: the collected phase-space and spectral data must be prepared
"for an ML model by finding suitable encodings for spectral and phase space
data".  In this reproduction:

* the simulation box is partitioned into sub-volumes
  (:class:`RegionPartition`); each sub-volume yields one training sample
  per streamed step — the "local phase-space dynamics" the inversion
  targets,
* the particle encoding is a fixed-size point cloud: positions normalised
  to ``[-1, 1]`` within the sub-volume plus raw momenta
  (:func:`encode_point_cloud`),
* the spectral encoding is the log-scaled, normalised far-field spectrum of
  the sub-volume's particles as seen by the detector
  (:func:`encode_spectrum`), computed with the same Liénard-Wiechert
  kernel as the in-situ radiation plugin,
* :func:`make_training_samples` does all of it for one time step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.regions import REGION_NAMES, label_particles, majority_region
from repro.continual.buffer import TrainingSample
from repro.pic.grid import GridConfig
from repro.pic.particles import ParticleSpecies
from repro.radiation.detector import RadiationDetector
from repro.radiation.lienard_wiechert import radiation_amplitude_step
from repro.radiation.spectrum import normalize_log_spectrum, spectrum_from_amplitude
from repro.utils.rng import RandomState, seeded_rng


@dataclass(frozen=True)
class Region:
    """One sub-volume of the simulation box."""

    index: Tuple[int, int, int]
    lower: Tuple[float, float, float]
    upper: Tuple[float, float, float]

    @property
    def centre(self) -> np.ndarray:
        return 0.5 * (np.asarray(self.lower) + np.asarray(self.upper))

    @property
    def size(self) -> np.ndarray:
        return np.asarray(self.upper) - np.asarray(self.lower)


class RegionPartition:
    """Partition the box into a regular grid of sub-volumes."""

    def __init__(self, grid_config: GridConfig,
                 region_counts: Tuple[int, int, int] = (1, 4, 1)) -> None:
        if any(int(c) < 1 for c in region_counts):
            raise ValueError("region_counts entries must be >= 1")
        self.grid_config = grid_config
        self.region_counts = tuple(int(c) for c in region_counts)
        extent = np.asarray(grid_config.extent)
        self._sizes = extent / np.asarray(self.region_counts)

    @property
    def n_regions(self) -> int:
        return int(np.prod(self.region_counts))

    def regions(self) -> List[Region]:
        regions = []
        cx, cy, cz = self.region_counts
        for ix in range(cx):
            for iy in range(cy):
                for iz in range(cz):
                    lower = self._sizes * np.array([ix, iy, iz])
                    upper = self._sizes * np.array([ix + 1, iy + 1, iz + 1])
                    regions.append(Region(index=(ix, iy, iz), lower=tuple(lower),
                                          upper=tuple(upper)))
        return regions

    def region_of(self, positions: np.ndarray) -> np.ndarray:
        """Flat region id of each particle position, shape ``(N,)``."""
        positions = np.asarray(positions, dtype=np.float64)
        extent = np.asarray(self.grid_config.extent)
        counts = np.asarray(self.region_counts)
        idx = np.floor(np.mod(positions, extent) / self._sizes).astype(np.int64)
        idx = np.minimum(idx, counts - 1)
        return (idx[:, 0] * counts[1] + idx[:, 1]) * counts[2] + idx[:, 2]


def encode_point_cloud(positions: np.ndarray, momenta: np.ndarray,
                       region: Region) -> np.ndarray:
    """Fixed-size per-particle features: normalised positions + momenta."""
    positions = np.asarray(positions, dtype=np.float64)
    momenta = np.asarray(momenta, dtype=np.float64)
    centre = region.centre
    half = 0.5 * region.size
    normalised = (positions - centre) / np.maximum(half, 1e-300)
    return np.concatenate([normalised, momenta], axis=1)


def decode_point_cloud(point_cloud: np.ndarray, region: Region
                       ) -> Tuple[np.ndarray, np.ndarray]:
    """Invert :func:`encode_point_cloud` (positions in metres, momenta raw)."""
    point_cloud = np.asarray(point_cloud, dtype=np.float64)
    centre = region.centre
    half = 0.5 * region.size
    positions = point_cloud[:, :3] * half + centre
    momenta = point_cloud[:, 3:]
    return positions, momenta


def encode_spectrum(spectrum: np.ndarray) -> np.ndarray:
    """Flattened, log-scaled, [0, 1]-normalised spectrum encoding."""
    return normalize_log_spectrum(np.asarray(spectrum)).reshape(-1)


def region_spectrum(detector: RadiationDetector, positions: np.ndarray,
                    beta: np.ndarray, beta_dot: np.ndarray, weights: np.ndarray,
                    charge: float, time: float, dt: float) -> np.ndarray:
    """Far-field spectrum of one sub-volume's particles for one time step."""
    amplitude = radiation_amplitude_step(detector, positions, beta, beta_dot, weights,
                                         time=time, dt=dt)
    return spectrum_from_amplitude(amplitude, charge)


def make_training_samples(species: ParticleSpecies, previous_momenta: np.ndarray,
                          detector: RadiationDetector, partition: RegionPartition,
                          n_points: int, step: int, time: float, dt: float,
                          rng: RandomState = None,
                          min_particles_per_region: int = 8) -> List[TrainingSample]:
    """Build one training sample per populated sub-volume for the current step.

    Parameters
    ----------
    species:
        The radiating species (electrons) *after* the momentum update.
    previous_momenta:
        The species' momenta before the update (used for the acceleration
        entering the Liénard-Wiechert kernel).
    detector, partition, n_points:
        Detector geometry, sub-volume partition and point-cloud size.
    min_particles_per_region:
        Regions with fewer particles are skipped (they cannot represent the
        local dynamics).
    """
    rng = seeded_rng(rng)
    previous_momenta = np.asarray(previous_momenta, dtype=np.float64)
    if previous_momenta.shape != species.momenta.shape:
        raise ValueError("previous_momenta must match the species' momenta shape")
    if dt <= 0:
        raise ValueError("dt must be positive")

    gamma_now = species.gamma()
    beta_now = species.momenta / gamma_now[:, None]
    gamma_prev = np.sqrt(1.0 + np.einsum("ij,ij->i", previous_momenta, previous_momenta))
    beta_prev = previous_momenta / gamma_prev[:, None]
    beta_dot = (beta_now - beta_prev) / dt

    extent = partition.grid_config.extent
    labels = label_particles(species.positions, species.momenta, extent)
    region_ids = partition.region_of(species.positions)
    regions = partition.regions()

    samples: List[TrainingSample] = []
    for flat_id, region in enumerate(regions):
        mask = region_ids == flat_id
        count = int(mask.sum())
        if count < min_particles_per_region:
            continue
        indices = np.flatnonzero(mask)
        chosen = rng.choice(indices, size=n_points, replace=count < n_points)

        cloud = encode_point_cloud(species.positions[chosen], species.momenta[chosen],
                                   region)
        spectrum = region_spectrum(detector, species.positions[chosen],
                                   beta_now[chosen], beta_dot[chosen],
                                   species.weights[chosen], species.charge,
                                   time=time, dt=dt)
        region_label = REGION_NAMES[majority_region(labels[indices])]
        samples.append(TrainingSample(
            point_cloud=cloud,
            spectrum=encode_spectrum(spectrum),
            step=step,
            region=region_label,
            metadata={"region_index": region.index, "n_particles": count},
        ))
    return samples
