"""Configuration of the end-to-end workflow.

``WorkflowConfig`` round-trips losslessly through plain dictionaries and
JSON files (``to_dict``/``from_dict``/``to_file``/``from_file``) so that
presets, the CLI ``--config`` flag and experiment manifests all share one
serialisation.  Tuple-typed fields are stored as lists (JSON has no tuples)
and coerced back on load; unknown keys raise with the valid choices listed.
"""

from __future__ import annotations

import json
import typing
from dataclasses import dataclass, field, fields
from typing import Dict, Mapping, Optional, Tuple

from repro.models.config import ModelConfig
from repro.pic.khi import KHIConfig


def _dataclass_to_dict(obj) -> Dict[str, object]:
    """One dataclass level to a JSON-able dict (tuples become lists)."""
    out: Dict[str, object] = {}
    for spec in fields(obj):
        value = getattr(obj, spec.name)
        out[spec.name] = list(value) if isinstance(value, tuple) else value
    return out


def _dataclass_from_dict(cls, data: Mapping[str, object]):
    """Rebuild one dataclass level, coercing lists back to tuples."""
    hints = typing.get_type_hints(cls)
    valid = {spec.name for spec in fields(cls) if spec.init}
    unknown = sorted(set(data) - valid)
    if unknown:
        raise ValueError(f"unknown {cls.__name__} keys {unknown}; valid keys: "
                         f"{', '.join(sorted(valid))}")
    kwargs = {}
    for key, value in data.items():
        if typing.get_origin(hints.get(key)) is tuple and value is not None:
            value = tuple(value)
        kwargs[key] = value
    return cls(**kwargs)


@dataclass
class StreamingConfig:
    """Streaming-layer knobs of the coupled run."""

    queue_limit: int = 2                 #: SST step-queue depth (writer stalls beyond it)
    data_plane: str = "inmemory"         #: data plane used for the real coupled run
    sample_interval: int = 1             #: stream every N-th simulation step
    stream_name: str = "khi-particles"
    #: keep this fraction of the raw particle records in the stream
    #: (Fig. 3b producer-side reduction; 1.0 disables subsampling)
    particle_subsample_fraction: float = 1.0
    #: cast streamed floating-point payloads to float32 before sending
    reduce_precision: bool = False

    def build_reduction_pipeline(self, rng=None):
        """Create the producer-side reduction pipeline (or ``None`` if disabled)."""
        import numpy as np

        from repro.streaming.reduction import (ParticleSubsampleReducer,
                                               PrecisionReducer, ReductionPipeline)
        reducers = []
        if self.particle_subsample_fraction < 1.0:
            reducers.append(ParticleSubsampleReducer(self.particle_subsample_fraction,
                                                     rng=rng))
        if self.reduce_precision:
            reducers.append(PrecisionReducer(np.float32))
        return ReductionPipeline(reducers) if reducers else None


@dataclass
class MLConfig:
    """MLapp knobs: model size, replay and optimisation settings."""

    model: ModelConfig = field(default_factory=ModelConfig)
    n_rep: int = 4                       #: training iterations per streamed step
    now_buffer_size: int = 10
    ep_buffer_size: int = 20
    n_now: int = 4
    n_ep: int = 4
    base_learning_rate: float = 1.0e-3   #: laptop-scale default (paper: 1e-6 at scale)
    m_vae: float = 1.0                   #: l_VAE / l_INN ratio
    n_points_per_sample: Optional[int] = None  #: defaults to model.n_input_points
    max_grad_norm: Optional[float] = None      #: global-norm gradient clipping
    warmup_steps: int = 0                      #: linear LR warm-up iterations


@dataclass
class WorkflowConfig:
    """Everything needed to build one Artificial-Scientist run.

    The defaults produce a laptop-scale run (a few thousand macro-particles,
    a small VAE+INN) that finishes in well under a minute while exercising
    every component of the full-scale workflow.
    """

    khi: KHIConfig = field(default_factory=lambda: KHIConfig(grid_shape=(8, 16, 2),
                                                             particles_per_cell=4))
    ml: MLConfig = field(default_factory=MLConfig)
    streaming: StreamingConfig = field(default_factory=StreamingConfig)
    #: sub-volume grid (regions along x, y, z) used to cut local point clouds
    region_counts: Tuple[int, int, int] = (1, 4, 1)
    #: radiation detector resolution; directions * frequencies must equal
    #: the model's spectrum_dim
    n_detector_directions: int = 2
    n_detector_frequencies: int = 8
    seed: int = 2024

    def __post_init__(self) -> None:
        spectrum_dim = self.n_detector_directions * self.n_detector_frequencies
        if spectrum_dim != self.ml.model.spectrum_dim:
            raise ValueError(
                f"detector resolution ({self.n_detector_directions} directions × "
                f"{self.n_detector_frequencies} frequencies = {spectrum_dim}) must match "
                f"the model's spectrum_dim ({self.ml.model.spectrum_dim})")
        if any(c < 1 for c in self.region_counts):
            raise ValueError("region_counts entries must be >= 1")

    @property
    def n_points_per_sample(self) -> int:
        return self.ml.n_points_per_sample or self.ml.model.n_input_points

    @property
    def n_regions(self) -> int:
        rx, ry, rz = self.region_counts
        return rx * ry * rz

    # -- serialisation ------------------------------------------------------- #
    def to_dict(self) -> Dict[str, object]:
        """A plain, JSON-able dictionary; inverse of :meth:`from_dict`."""
        ml = _dataclass_to_dict(self.ml)
        ml["model"] = _dataclass_to_dict(self.ml.model)
        return {
            "khi": _dataclass_to_dict(self.khi),
            "ml": ml,
            "streaming": _dataclass_to_dict(self.streaming),
            "region_counts": list(self.region_counts),
            "n_detector_directions": self.n_detector_directions,
            "n_detector_frequencies": self.n_detector_frequencies,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "WorkflowConfig":
        """Rebuild a config from :meth:`to_dict` output (or hand-written JSON).

        Sections and keys are all optional — missing ones keep their
        defaults — but unknown keys raise a ``ValueError`` naming the valid
        choices, so typos fail loudly instead of silently running defaults.
        """
        valid = {"khi", "ml", "streaming", "region_counts",
                 "n_detector_directions", "n_detector_frequencies", "seed"}
        unknown = sorted(set(data) - valid)
        if unknown:
            raise ValueError(f"unknown WorkflowConfig keys {unknown}; "
                             f"valid keys: {', '.join(sorted(valid))}")
        kwargs: Dict[str, object] = {}
        if "khi" in data:
            kwargs["khi"] = _dataclass_from_dict(KHIConfig, data["khi"])
        if "ml" in data:
            ml_data = dict(data["ml"])
            model_data = ml_data.pop("model", None)
            kwargs["ml"] = _dataclass_from_dict(MLConfig, ml_data)
            if model_data is not None:
                kwargs["ml"].model = _dataclass_from_dict(ModelConfig, model_data)
        if "streaming" in data:
            kwargs["streaming"] = _dataclass_from_dict(StreamingConfig,
                                                       data["streaming"])
        if "region_counts" in data:
            kwargs["region_counts"] = tuple(data["region_counts"])
        for key in ("n_detector_directions", "n_detector_frequencies", "seed"):
            if key in data:
                kwargs[key] = data[key]
        return cls(**kwargs)

    def to_file(self, path: str) -> None:
        """Write the config as JSON (readable by :meth:`from_file`)."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2)

    @classmethod
    def from_file(cls, path: str) -> "WorkflowConfig":
        """Load a config previously written by :meth:`to_file`."""
        with open(path, encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))
