"""Configuration of the end-to-end workflow."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.models.config import ModelConfig
from repro.pic.khi import KHIConfig


@dataclass
class StreamingConfig:
    """Streaming-layer knobs of the coupled run."""

    queue_limit: int = 2                 #: SST step-queue depth (writer stalls beyond it)
    data_plane: str = "inmemory"         #: data plane used for the real coupled run
    sample_interval: int = 1             #: stream every N-th simulation step
    stream_name: str = "khi-particles"
    #: keep this fraction of the raw particle records in the stream
    #: (Fig. 3b producer-side reduction; 1.0 disables subsampling)
    particle_subsample_fraction: float = 1.0
    #: cast streamed floating-point payloads to float32 before sending
    reduce_precision: bool = False

    def build_reduction_pipeline(self, rng=None):
        """Create the producer-side reduction pipeline (or ``None`` if disabled)."""
        import numpy as np

        from repro.streaming.reduction import (ParticleSubsampleReducer,
                                               PrecisionReducer, ReductionPipeline)
        reducers = []
        if self.particle_subsample_fraction < 1.0:
            reducers.append(ParticleSubsampleReducer(self.particle_subsample_fraction,
                                                     rng=rng))
        if self.reduce_precision:
            reducers.append(PrecisionReducer(np.float32))
        return ReductionPipeline(reducers) if reducers else None


@dataclass
class MLConfig:
    """MLapp knobs: model size, replay and optimisation settings."""

    model: ModelConfig = field(default_factory=ModelConfig)
    n_rep: int = 4                       #: training iterations per streamed step
    now_buffer_size: int = 10
    ep_buffer_size: int = 20
    n_now: int = 4
    n_ep: int = 4
    base_learning_rate: float = 1.0e-3   #: laptop-scale default (paper: 1e-6 at scale)
    m_vae: float = 1.0                   #: l_VAE / l_INN ratio
    n_points_per_sample: Optional[int] = None  #: defaults to model.n_input_points
    max_grad_norm: Optional[float] = None      #: global-norm gradient clipping
    warmup_steps: int = 0                      #: linear LR warm-up iterations


@dataclass
class WorkflowConfig:
    """Everything needed to build one Artificial-Scientist run.

    The defaults produce a laptop-scale run (a few thousand macro-particles,
    a small VAE+INN) that finishes in well under a minute while exercising
    every component of the full-scale workflow.
    """

    khi: KHIConfig = field(default_factory=lambda: KHIConfig(grid_shape=(8, 16, 2),
                                                             particles_per_cell=4))
    ml: MLConfig = field(default_factory=MLConfig)
    streaming: StreamingConfig = field(default_factory=StreamingConfig)
    #: sub-volume grid (regions along x, y, z) used to cut local point clouds
    region_counts: Tuple[int, int, int] = (1, 4, 1)
    #: radiation detector resolution; directions * frequencies must equal
    #: the model's spectrum_dim
    n_detector_directions: int = 2
    n_detector_frequencies: int = 8
    seed: int = 2024

    def __post_init__(self) -> None:
        spectrum_dim = self.n_detector_directions * self.n_detector_frequencies
        if spectrum_dim != self.ml.model.spectrum_dim:
            raise ValueError(
                f"detector resolution ({self.n_detector_directions} directions × "
                f"{self.n_detector_frequencies} frequencies = {spectrum_dim}) must match "
                f"the model's spectrum_dim ({self.ml.model.spectrum_dim})")
        if any(c < 1 for c in self.region_counts):
            raise ValueError("region_counts entries must be >= 1")

    @property
    def n_points_per_sample(self) -> int:
        return self.ml.n_points_per_sample or self.ml.model.n_input_points

    @property
    def n_regions(self) -> int:
        rx, ry, rz = self.region_counts
        return rx * ry * rz
