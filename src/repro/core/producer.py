"""The producer side: a PIConGPU-style output plugin streaming openPMD data.

Due to the plugin-based structure of PIConGPU, the particle and radiation
input required by the MLapp are provided by distinct output plugins; here a
single plugin prepares *both* records (the per-sub-volume point clouds and
their spectra) and writes them as one openPMD iteration per streamed step.
Data never touches the filesystem unless a file-based backend is configured
explicitly.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.continual.buffer import TrainingSample
from repro.core.config import WorkflowConfig
from repro.core.transforms import RegionPartition, make_training_samples
from repro.openpmd.series import Access, Series
from repro.pic.simulation import PICSimulation, Plugin
from repro.radiation.detector import RadiationDetector
from repro.utils.rng import RandomState, seeded_rng


class StreamingProducerPlugin(Plugin):
    """Attachable plugin that streams training samples as openPMD iterations."""

    order = 60  # after the radiation plugin (if any), before diagnostics

    def __init__(self, series: Series, detector: RadiationDetector,
                 partition: RegionPartition, n_points: int,
                 species_name: str = "electrons", sample_interval: int = 1,
                 reduction=None, rng: RandomState = None) -> None:
        if series.access is not Access.CREATE:
            raise ValueError("the producer needs a series opened with CREATE access")
        if sample_interval < 1:
            raise ValueError("sample_interval must be >= 1")
        self.series = series
        self.detector = detector
        self.partition = partition
        self.n_points = int(n_points)
        self.species_name = species_name
        self.sample_interval = int(sample_interval)
        #: optional :class:`repro.streaming.reduction.ReductionPipeline`
        #: applied to the raw species records before they enter the stream
        #: (the Fig. 3b "reduce close to the producer" option).
        self.reduction = reduction
        self.rng = seeded_rng(rng)
        self._previous_momenta: Optional[np.ndarray] = None
        self.samples_streamed = 0
        self.iterations_streamed = 0
        self.bytes_streamed = 0
        self.bytes_before_reduction = 0

    # -- plugin hooks -------------------------------------------------------- #
    def on_start(self, simulation: PICSimulation) -> None:
        species = simulation.get_species(self.species_name)
        self._previous_momenta = species.momenta.copy()

    def on_step(self, simulation: PICSimulation) -> None:
        species = simulation.get_species(self.species_name)
        if self._previous_momenta is None or \
                self._previous_momenta.shape != species.momenta.shape:
            self._previous_momenta = species.momenta.copy()
            return
        if simulation.step_index % self.sample_interval != 0:
            self._previous_momenta = species.momenta.copy()
            return

        samples = make_training_samples(
            species, self._previous_momenta, self.detector, self.partition,
            n_points=self.n_points, step=simulation.step_index,
            time=simulation.time, dt=simulation.config.dt, rng=self.rng)
        self._previous_momenta = species.momenta.copy()
        if not samples:
            return
        self._write_iteration(simulation, samples)

    def on_finish(self, simulation: PICSimulation) -> None:
        self.series.close()

    # -- openPMD output --------------------------------------------------------- #
    def _write_iteration(self, simulation: PICSimulation,
                         samples: List[TrainingSample]) -> None:
        iteration = self.series.write_iteration(simulation.step_index)
        iteration.set_time(simulation.time, simulation.config.dt)

        clouds = np.stack([s.point_cloud for s in samples], axis=0)
        spectra = np.stack([s.spectrum for s in samples], axis=0)
        regions = np.array([_region_to_int(s.region) for s in samples], dtype=np.float64)

        ml_records = iteration.get_particles("ml_samples")
        ml_records["point_clouds"].store_scalar(clouds)
        ml_records["spectra"].store_scalar(spectra)
        ml_records["regions"].store_scalar(regions)

        # Also expose the raw species data the paper streams (positions,
        # momenta, weighting) so that other consumers can attach to the same
        # stream without knowing about the ML sample encoding.  An optional
        # reduction pipeline shrinks these records close to the producer.
        species = simulation.get_species(self.species_name)
        raw_records: Dict[str, np.ndarray] = {}
        for axis, name in enumerate(("x", "y", "z")):
            raw_records[f"particles/{self.species_name}/position/{name}"] = \
                species.positions[:, axis]
            raw_records[f"particles/{self.species_name}/momentum/{name}"] = \
                species.momenta[:, axis]
        raw_records[f"particles/{self.species_name}/weighting"] = species.weights
        self.bytes_before_reduction += int(sum(a.nbytes for a in raw_records.values()))
        if self.reduction is not None:
            raw_records = self.reduction.reduce_step(raw_records)

        raw = iteration.get_particles(self.species_name)
        for axis, name in enumerate(("x", "y", "z")):
            raw["position"][name].store(
                raw_records[f"particles/{self.species_name}/position/{name}"])
            raw["momentum"][name].store(
                raw_records[f"particles/{self.species_name}/momentum/{name}"])
        raw["weighting"].store_scalar(
            raw_records[f"particles/{self.species_name}/weighting"])

        self.bytes_streamed += iteration.nbytes
        self.series.close_iteration(simulation.step_index)
        self.samples_streamed += len(samples)
        self.iterations_streamed += 1


_REGION_TO_INT: Dict[str, int] = {"approaching": 0, "receding": 1, "vortex": 2, "": 0,
                                  "bulk": 0}


def _region_to_int(region: str) -> int:
    return _REGION_TO_INT.get(region, 0)


def int_to_region(value: int) -> str:
    for name, idx in _REGION_TO_INT.items():
        if idx == int(value) and name:
            return name
    return "approaching"
