"""The Artificial Scientist: the coupled producer + consumer workflow.

The orchestration follows Section III-B:

* start the KHI PIC simulation,
* schedule the MLapp alongside it (intra-node placement by default),
* at each simulation time step stream particle/spectral data to the MLapp,
  transform it into the model's input encoding and train concurrently,
* repeat for enough steps to cover the relevant stages of the instability.

Both applications live in one process here; the loose coupling survives
intact because they only communicate through the openPMD-over-SST stream —
the producer never calls into the MLapp and vice versa.  ``run`` alternates
one simulation step with draining the stream, which is exactly the
steady-state behaviour of the co-scheduled real system when training keeps
up with data production (and the bounded queue stalls the simulation when
it does not).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.evaluation import InversionReport, evaluate_inversion
from repro.core.config import WorkflowConfig
from repro.core.mlapp import MLApp
from repro.core.placement import PlacementMode, ResourcePlan
from repro.core.producer import StreamingProducerPlugin
from repro.core.transforms import RegionPartition
from repro.openpmd.backends import StreamingBackend
from repro.openpmd.series import Access, Series
from repro.pic.khi import make_khi_simulation
from repro.pic.simulation import PICSimulation
from repro.radiation.detector import RadiationDetector
from repro.streaming.broker import QueueFullPolicy, SSTBroker
from repro.streaming.dataplane import make_data_plane
from repro.streaming.engine import SSTReaderEngine, SSTWriterEngine
from repro.utils.rng import derive_seed, seeded_rng


@dataclass
class WorkflowReport:
    """Outcome of one coupled run."""

    n_steps: int
    iterations_streamed: int
    samples_streamed: int
    training_iterations: int
    bytes_streamed: int
    wall_time: float
    simulation_time: float
    training_time: float
    final_losses: Dict[str, float]
    loss_history_total: List[float] = field(default_factory=list)

    @property
    def streamed_megabytes(self) -> float:
        return self.bytes_streamed / 1e6

    def summary(self) -> Dict[str, object]:
        return {
            "steps": self.n_steps,
            "iterations_streamed": self.iterations_streamed,
            "samples_streamed": self.samples_streamed,
            "training_iterations": self.training_iterations,
            "streamed_megabytes": round(self.streamed_megabytes, 2),
            "wall_time_s": round(self.wall_time, 3),
            "simulation_time_s": round(self.simulation_time, 3),
            "training_time_s": round(self.training_time, 3),
            "final_total_loss": self.final_losses.get("total"),
        }


class ArtificialScientist:
    """Build and drive the coupled in-transit learning workflow."""

    def __init__(self, config: Optional[WorkflowConfig] = None,
                 placement: Optional[ResourcePlan] = None) -> None:
        self.config = config or WorkflowConfig()
        self.placement = placement or ResourcePlan(n_nodes=1,
                                                   mode=PlacementMode.INTRA_NODE)
        cfg = self.config
        rng = seeded_rng(cfg.seed)

        # --- producer: PIC simulation + streaming output plugin ------------- #
        self.simulation: PICSimulation = make_khi_simulation(
            cfg.khi, rng=seeded_rng(derive_seed(cfg.seed, 1)))
        self.detector = RadiationDetector.for_khi(
            density=cfg.khi.density,
            n_directions=cfg.n_detector_directions,
            n_frequencies=cfg.n_detector_frequencies)
        self.partition = RegionPartition(cfg.khi.grid_config, cfg.region_counts)

        self.broker = SSTBroker(cfg.streaming.stream_name,
                                queue_limit=cfg.streaming.queue_limit,
                                policy=QueueFullPolicy.BLOCK)
        data_plane = make_data_plane(cfg.streaming.data_plane,
                                     rng=seeded_rng(derive_seed(cfg.seed, 2)))
        writer_engine = SSTWriterEngine(self.broker, data_plane=data_plane)
        self.writer_series = Series(cfg.streaming.stream_name, Access.CREATE,
                                    StreamingBackend(writer=writer_engine))
        reduction = cfg.streaming.build_reduction_pipeline(
            rng=seeded_rng(derive_seed(cfg.seed, 6)))
        self.producer = StreamingProducerPlugin(
            self.writer_series, self.detector, self.partition,
            n_points=cfg.n_points_per_sample,
            sample_interval=cfg.streaming.sample_interval,
            reduction=reduction,
            rng=seeded_rng(derive_seed(cfg.seed, 3)))
        self.simulation.add_plugin(self.producer)

        # --- consumer: the MLapp -------------------------------------------- #
        reader_engine = SSTReaderEngine(self.broker, data_plane=data_plane)
        self.reader_series = Series(cfg.streaming.stream_name, Access.READ_LINEAR,
                                    StreamingBackend(reader=reader_engine))
        self.mlapp = MLApp(self.reader_series, cfg.ml,
                           rng=seeded_rng(derive_seed(cfg.seed, 4)))

    # ------------------------------------------------------------------ #
    def run(self, n_steps: int, keep_for_evaluation: int = 1) -> WorkflowReport:
        """Run ``n_steps`` of the coupled workflow and return its report."""
        if n_steps < 1:
            raise ValueError("n_steps must be >= 1")
        start = time.perf_counter()
        simulation_time = 0.0
        training_time = 0.0
        for _ in range(n_steps):
            t0 = time.perf_counter()
            self.simulation.step()
            simulation_time += time.perf_counter() - t0

            queued = self.broker.queued_steps
            if queued:
                t0 = time.perf_counter()
                self.mlapp.consume(max_iterations=queued,
                                   keep_for_evaluation=keep_for_evaluation)
                training_time += time.perf_counter() - t0
        # flush: close the stream and drain what is left
        self.writer_series.close()
        t0 = time.perf_counter()
        self.mlapp.consume(keep_for_evaluation=keep_for_evaluation)
        training_time += time.perf_counter() - t0
        wall = time.perf_counter() - start

        return WorkflowReport(
            n_steps=n_steps,
            iterations_streamed=self.producer.iterations_streamed,
            samples_streamed=self.producer.samples_streamed,
            training_iterations=len(self.mlapp.history),
            bytes_streamed=self.producer.bytes_streamed,
            wall_time=wall,
            simulation_time=simulation_time,
            training_time=training_time,
            final_losses=self.mlapp.loss_summary(),
            loss_history_total=list(self.mlapp.history.series("total"))
            if len(self.mlapp.history) else [],
        )

    # ------------------------------------------------------------------ #
    def evaluate(self, n_posterior_samples: int = 4) -> InversionReport:
        """Evaluate the trained model on the held-out streamed samples (Fig. 9)."""
        if not self.mlapp.evaluation_samples:
            raise RuntimeError("no evaluation samples were kept; run() with "
                               "keep_for_evaluation >= 1 first")
        return evaluate_inversion(self.mlapp.model, self.mlapp.evaluation_samples,
                                  n_posterior_samples=n_posterior_samples,
                                  rng=seeded_rng(derive_seed(self.config.seed, 5)))

    @property
    def model(self):
        return self.mlapp.model
