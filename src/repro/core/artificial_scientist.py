"""The Artificial Scientist: the coupled producer + consumer workflow.

.. deprecated::
    ``ArtificialScientist`` is now a thin facade over the composable
    :class:`repro.workflow.WorkflowSession` API and is kept for backwards
    compatibility.  New code should build sessions explicitly::

        from repro.workflow import WorkflowBuilder

        session = WorkflowBuilder().preset("laptop").driver("serial").build()
        result = session.run(5)        # a RunResult; result.report is the
                                       # WorkflowReport this class returns

    The facade wires exactly what the seed class wired — one KHI PIC
    producer, one in-memory SST stream, one MLapp consumer, the serial
    driver — with identical RNG derivations, so existing scripts reproduce
    seed results bit-for-bit.

The orchestration still follows Section III-B: start the KHI PIC
simulation, schedule the MLapp alongside it, stream particle/spectral data
each step and train concurrently.  Producer and consumer only communicate
through the openPMD-over-SST stream, so the loose coupling survives intact.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.evaluation import InversionReport
from repro.core.config import WorkflowConfig
from repro.core.placement import ResourcePlan
from repro.workflow.report import WorkflowReport  # noqa: F401  (re-export)


class ArtificialScientist:
    """Build and drive the coupled in-transit learning workflow.

    Deprecated facade over :class:`repro.workflow.WorkflowSession`; see the
    module docstring for the migration path.
    """

    def __init__(self, config: Optional[WorkflowConfig] = None,
                 placement: Optional[ResourcePlan] = None) -> None:
        from repro.workflow.builder import WorkflowSession
        from repro.workflow.drivers import SerialDriver

        self.session = WorkflowSession(config=config, placement=placement,
                                       driver=SerialDriver())
        self.config = self.session.config
        self.placement = self.session.placement
        # seed-compatible attribute surface (scripts poke at all of these)
        self.simulation = self.session.simulation
        self.detector = self.session.detector
        self.partition = self.session.partition
        self.broker = self.session.broker
        self.writer_series = self.session.writer_series
        self.reader_series = self.session.reader_series
        self.producer = self.session.producer
        self.mlapp = self.session.mlapp

    # ------------------------------------------------------------------ #
    def run(self, n_steps: int, keep_for_evaluation: int = 1) -> WorkflowReport:
        """Run ``n_steps`` of the coupled workflow and return its report.

        Raises ``RuntimeError("session already consumed")`` on a second
        call: the stream cannot be rewound, so a fresh instance is needed.
        """
        result = self.session.run(n_steps, keep_for_evaluation=keep_for_evaluation)
        result.raise_if_failed()
        return result.report

    # ------------------------------------------------------------------ #
    def evaluate(self, n_posterior_samples: int = 4) -> InversionReport:
        """Evaluate the trained model on the held-out streamed samples (Fig. 9)."""
        return self.session.evaluate(n_posterior_samples=n_posterior_samples)

    @property
    def model(self):
        return self.session.model
