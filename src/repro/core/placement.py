"""Resource placement: how producer and consumer share the machine (Fig. 3c).

Two placements are modelled:

* **intra-node** (the paper's choice): every node runs both applications;
  on Frontier 4 GCDs go to PIConGPU and 4 GCDs to the MLapp, and the data
  exchange mostly stays inside the node (host memory / XGMI), at the cost
  of a heterogeneous per-node resource assignment;
* **inter-node**: nodes are dedicated to either the simulation or the
  MLapp (easier to express in Slurm), but every byte crosses the network.

The plan exposes the effective per-node exchange bandwidth of either
choice, which is what the placement benchmark compares.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.perfmodel.machines import FRONTIER, MachineSpec


class PlacementMode(enum.Enum):
    INTRA_NODE = "intra_node"
    INTER_NODE = "inter_node"


@dataclass(frozen=True)
class ResourcePlan:
    """Assignment of nodes and GCDs to the two applications.

    Parameters
    ----------
    n_nodes:
        Total nodes of the allocation.
    mode:
        Intra- or inter-node placement.
    producer_gcds_per_node:
        GCDs per node given to the simulation in intra-node mode (paper: 4).
    consumer_node_fraction:
        Fraction of nodes given to the MLapp in inter-node mode.
    intra_node_bandwidth:
        Effective per-node bandwidth of in-node data exchange [bytes/s]
        (host-memory staging; far above the NIC).
    """

    n_nodes: int
    mode: PlacementMode = PlacementMode.INTRA_NODE
    producer_gcds_per_node: int = 4
    consumer_node_fraction: float = 0.5
    intra_node_bandwidth: float = 150.0e9
    machine: MachineSpec = FRONTIER

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if not 0 < self.consumer_node_fraction < 1:
            raise ValueError("consumer_node_fraction must lie in (0, 1)")
        if not 0 < self.producer_gcds_per_node < self.machine.gcds_per_node:
            raise ValueError("producer_gcds_per_node must leave GCDs for the consumer")

    # -- resources ----------------------------------------------------------- #
    @property
    def consumer_gcds_per_node(self) -> int:
        if self.mode is PlacementMode.INTRA_NODE:
            return self.machine.gcds_per_node - self.producer_gcds_per_node
        return self.machine.gcds_per_node

    @property
    def producer_nodes(self) -> int:
        if self.mode is PlacementMode.INTRA_NODE:
            return self.n_nodes
        return self.n_nodes - self.consumer_nodes

    @property
    def consumer_nodes(self) -> int:
        if self.mode is PlacementMode.INTRA_NODE:
            return self.n_nodes
        return max(1, int(round(self.consumer_node_fraction * self.n_nodes)))

    @property
    def total_producer_gcds(self) -> int:
        if self.mode is PlacementMode.INTRA_NODE:
            return self.producer_nodes * self.producer_gcds_per_node
        return self.producer_nodes * self.machine.gcds_per_node

    @property
    def total_consumer_gcds(self) -> int:
        return self.consumer_nodes * self.consumer_gcds_per_node \
            if self.mode is PlacementMode.INTRA_NODE \
            else self.consumer_nodes * self.machine.gcds_per_node

    # -- data path ------------------------------------------------------------- #
    def exchange_bandwidth_per_node(self) -> float:
        """Bandwidth available per producing node for the sim → ML exchange."""
        if self.mode is PlacementMode.INTRA_NODE:
            return self.intra_node_bandwidth
        return self.machine.node_injection_bandwidth

    def exchange_time_per_step(self, bytes_per_node: float) -> float:
        """Seconds to move one step's per-node payload to the consumer."""
        if bytes_per_node < 0:
            raise ValueError("bytes_per_node must be non-negative")
        return bytes_per_node / self.exchange_bandwidth_per_node()

    def describe(self) -> dict:
        return {
            "mode": self.mode.value,
            "producer_nodes": self.producer_nodes,
            "consumer_nodes": self.consumer_nodes,
            "producer_gcds": self.total_producer_gcds,
            "consumer_gcds": self.total_consumer_gcds,
            "exchange_bandwidth_per_node_gb_s": self.exchange_bandwidth_per_node() / 1e9,
        }
