"""The MLapp: the consumer application training the model in transit."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.continual.buffer import TrainingBuffer, TrainingSample
from repro.continual.trainer import InTransitTrainer
from repro.core.config import MLConfig
from repro.core.producer import int_to_region
from repro.mlcore.optim import Adam, make_block_param_groups
from repro.models.losses import CombinedLoss
from repro.models.model import ArtificialScientistModel
from repro.openpmd.series import Access, Iteration, Series
from repro.utils.rng import RandomState, seeded_rng
from repro.utils.timer import Timer


class MLApp:
    """Reads openPMD iterations from a stream and trains the model on them.

    The MLapp is an application of its own in the paper (PyTorch + DDP); it
    shares no code with the simulation apart from the openPMD data
    interface, which is exactly the boundary this class respects: its only
    input is a :class:`repro.openpmd.Series` opened for reading.
    """

    def __init__(self, series: Series, config: MLConfig, rng: RandomState = None) -> None:
        if series.access is not Access.READ_LINEAR:
            raise ValueError("the MLapp needs a series opened with READ_LINEAR access")
        rng = seeded_rng(rng)
        self.series = series
        self.config = config
        self.model = ArtificialScientistModel(config.model, rng=rng)
        groups = make_block_param_groups(self.model.vae_parameters(),
                                         self.model.inn_parameters(),
                                         base_lr=config.base_learning_rate,
                                         m_vae=config.m_vae)
        self.optimizer = Adam(groups, lr=config.base_learning_rate)
        self.buffer = TrainingBuffer(now_size=config.now_buffer_size,
                                     ep_size=config.ep_buffer_size,
                                     n_now=config.n_now, n_ep=config.n_ep, rng=rng)
        scheduler = None
        if config.warmup_steps > 0:
            from repro.mlcore.schedulers import WarmupScheduler
            scheduler = WarmupScheduler(self.optimizer, warmup_steps=config.warmup_steps)
        self.trainer = InTransitTrainer(self.model, self.optimizer, self.buffer,
                                        loss=CombinedLoss(), n_rep=config.n_rep,
                                        max_grad_norm=config.max_grad_norm,
                                        scheduler=scheduler)
        self.timer = Timer()
        self.iterations_consumed = 0
        self.samples_consumed = 0
        self.evaluation_samples: List[TrainingSample] = []

    # -- stream consumption ----------------------------------------------------- #
    @staticmethod
    def samples_from_iteration(iteration: Iteration) -> List[TrainingSample]:
        """Decode the ML sample records written by the producer plugin."""
        records = iteration.get_particles("ml_samples")
        clouds = records["point_clouds"].load_scalar()
        spectra = records["spectra"].load_scalar()
        regions = records["regions"].load_scalar()
        samples = []
        for cloud, spectrum, region in zip(clouds, spectra, regions):
            samples.append(TrainingSample(point_cloud=cloud, spectrum=spectrum,
                                          step=iteration.index,
                                          region=int_to_region(int(region))))
        return samples

    def consume(self, max_iterations: Optional[int] = None,
                keep_for_evaluation: int = 0,
                on_iteration: Optional[Callable[[int, int], None]] = None) -> int:
        """Read up to ``max_iterations`` from the stream and train on them.

        Parameters
        ----------
        keep_for_evaluation:
            Number of samples per iteration to additionally copy into
            :attr:`evaluation_samples` (held out for the Fig. 9 analysis;
            they are still trained on, as the paper evaluates on streamed
            data too).
        on_iteration:
            Called as ``on_iteration(iteration_index, n_samples)`` after
            each streamed iteration has been trained on — the lifecycle
            hook the workflow drivers use for back-pressure accounting.
        """
        consumed = 0
        for iteration in self.series.read_iterations():
            with self.timer.section("decode"):
                samples = self.samples_from_iteration(iteration)
            if keep_for_evaluation:
                self.evaluation_samples.extend(samples[:keep_for_evaluation])
            with self.timer.section("train"):
                self.trainer.train_on_stream_step(samples, step=iteration.index)
            self.iterations_consumed += 1
            self.samples_consumed += len(samples)
            consumed += 1
            if on_iteration is not None:
                on_iteration(iteration.index, len(samples))
            if max_iterations is not None and consumed >= max_iterations:
                break
        return consumed

    # -- reporting ---------------------------------------------------------------- #
    @property
    def history(self):
        return self.trainer.history

    def loss_summary(self) -> Dict[str, float]:
        if len(self.history) == 0:
            return {}
        window = min(len(self.history), 10)
        return {name: self.history.mean_over_last(window, name)
                for name in ("total", "chamfer", "kl", "mse", "mmd_latent", "mmd_normal")}
