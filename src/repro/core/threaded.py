"""Truly concurrent coupling: producer and consumer in separate threads.

:class:`repro.core.ArtificialScientist.run` alternates one simulation step
with draining the stream — convenient and deterministic, but serialised.
The real system runs both applications concurrently; back-pressure through
the bounded SST queue is what keeps them in lock-step when training is
slower than the simulation.  :class:`ThreadedWorkflowRunner` reproduces that
concurrency: the simulation loop runs in a worker thread while the MLapp
consumes the stream in the calling thread, and the queue limit (not explicit
synchronisation) couples their progress.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Optional

from repro.core.artificial_scientist import ArtificialScientist, WorkflowReport


@dataclass
class ThreadedRunResult:
    """Outcome of a concurrent run."""

    report: WorkflowReport
    producer_exception: Optional[BaseException]
    max_queue_depth: int


class ThreadedWorkflowRunner:
    """Drive an :class:`ArtificialScientist` with a concurrent producer thread."""

    def __init__(self, scientist: ArtificialScientist) -> None:
        self.scientist = scientist
        self._producer_error: Optional[BaseException] = None
        self._max_queue_depth = 0

    def _produce(self, n_steps: int) -> None:
        try:
            for _ in range(n_steps):
                self.scientist.simulation.step()
                depth = self.scientist.broker.queued_steps
                if depth > self._max_queue_depth:
                    self._max_queue_depth = depth
            self.scientist.writer_series.close()
        except BaseException as error:  # noqa: BLE001 - reported to the caller
            self._producer_error = error
            # make sure the consumer does not wait forever
            self.scientist.broker.close()

    def run(self, n_steps: int, keep_for_evaluation: int = 1,
            join_timeout: float = 300.0) -> ThreadedRunResult:
        """Run ``n_steps`` with the simulation in a background thread."""
        if n_steps < 1:
            raise ValueError("n_steps must be >= 1")
        scientist = self.scientist
        start = time.perf_counter()

        producer = threading.Thread(target=self._produce, args=(n_steps,),
                                    name="pic-producer", daemon=True)
        producer.start()
        # the consumer (MLapp) drains the stream until end-of-stream
        training_start = time.perf_counter()
        scientist.mlapp.consume(keep_for_evaluation=keep_for_evaluation)
        training_time = time.perf_counter() - training_start
        producer.join(timeout=join_timeout)
        if producer.is_alive():
            raise TimeoutError("the producer thread did not finish in time")
        wall = time.perf_counter() - start

        report = WorkflowReport(
            n_steps=n_steps,
            iterations_streamed=scientist.producer.iterations_streamed,
            samples_streamed=scientist.producer.samples_streamed,
            training_iterations=len(scientist.mlapp.history),
            bytes_streamed=scientist.producer.bytes_streamed,
            wall_time=wall,
            simulation_time=wall - training_time if wall > training_time else 0.0,
            training_time=training_time,
            final_losses=scientist.mlapp.loss_summary(),
            loss_history_total=list(scientist.mlapp.history.series("total"))
            if len(scientist.mlapp.history) else [],
        )
        return ThreadedRunResult(report=report,
                                 producer_exception=self._producer_error,
                                 max_queue_depth=self._max_queue_depth)
