"""Truly concurrent coupling: producer and consumer in separate threads.

.. deprecated::
    Prefer ``WorkflowBuilder().driver("threaded")`` (see
    :mod:`repro.workflow.drivers`), which generalises this runner to many
    consumers and returns the uniform ``RunResult``.  This class is kept as
    a seed-compatible adapter: it drives the facade's session with a
    :class:`repro.workflow.drivers.ThreadedDriver` and maps the result into
    the historical :class:`ThreadedRunResult` shape.

:class:`repro.core.ArtificialScientist.run` alternates one simulation step
with draining the stream — convenient and deterministic, but serialised.
The real system runs both applications concurrently; back-pressure through
the bounded SST queue is what keeps them in lock-step when training is
slower than the simulation.  :class:`ThreadedWorkflowRunner` reproduces
that concurrency: simulation and MLapp run in separate threads and the
queue limit (not explicit synchronisation) couples their progress.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.artificial_scientist import ArtificialScientist, WorkflowReport


@dataclass
class ThreadedRunResult:
    """Outcome of a concurrent run.

    Producer *and* consumer exceptions are surfaced side by side; earlier
    versions let a consumer exception propagate and thereby dropped the
    producer's when both sides failed.
    """

    report: WorkflowReport
    producer_exception: Optional[BaseException]
    max_queue_depth: int
    consumer_exception: Optional[BaseException] = None

    @property
    def ok(self) -> bool:
        return self.producer_exception is None and self.consumer_exception is None


class ThreadedWorkflowRunner:
    """Drive an :class:`ArtificialScientist` with a concurrent producer thread."""

    def __init__(self, scientist: ArtificialScientist) -> None:
        self.scientist = scientist

    def run(self, n_steps: int, keep_for_evaluation: int = 1,
            join_timeout: float = 300.0) -> ThreadedRunResult:
        """Run ``n_steps`` with simulation and MLapp in separate threads.

        Like :meth:`ArtificialScientist.run`, the underlying session is
        single-use: a second call raises ``RuntimeError("session already
        consumed")``.  Thread-join timeouts are reported as the producer
        exception rather than raised.
        """
        from repro.workflow.drivers import ThreadedDriver

        session = self.scientist.session
        session.driver = ThreadedDriver(join_timeout=join_timeout)
        result = session.run(n_steps, keep_for_evaluation=keep_for_evaluation)
        return ThreadedRunResult(
            report=result.report,
            producer_exception=result.producer_exception,
            max_queue_depth=result.max_queue_depth,
            consumer_exception=result.consumer_exceptions.get(session.primary_name))
