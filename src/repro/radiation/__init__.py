"""Far-field radiation diagnostics (the PIConGPU radiation plugin).

The paper computes spectrally and angularly resolved far-field radiation
in-situ with the Liénard-Wiechert potential approach (Section IV-A),
because storing per-particle trajectories for offline analysis is
impossible.  The emitted radiation is the *observable* from which the ML
model must reconstruct the particle dynamics.

* :mod:`repro.radiation.detector` — the angular/spectral detector grid.
* :mod:`repro.radiation.lienard_wiechert` — per-time-step far-field
  amplitude accumulation.
* :mod:`repro.radiation.form_factor` — macro-particle form factors for
  quantitatively consistent coherent and incoherent radiation
  (Pausch et al. 2018).
* :mod:`repro.radiation.plugin` — the in-situ plugin hooked into
  :class:`repro.pic.PICSimulation`.
"""

from repro.radiation.detector import RadiationDetector, direction_grid, frequency_grid
from repro.radiation.lienard_wiechert import (accumulate_amplitude,
                                              radiation_amplitude_step)
from repro.radiation.form_factor import macro_particle_form_factor, combine_coherent_incoherent
from repro.radiation.plugin import RadiationPlugin, RadiationResult
from repro.radiation.spectrum import spectrum_from_amplitude, total_radiated_energy

__all__ = [
    "RadiationDetector",
    "direction_grid",
    "frequency_grid",
    "accumulate_amplitude",
    "radiation_amplitude_step",
    "macro_particle_form_factor",
    "combine_coherent_incoherent",
    "RadiationPlugin",
    "RadiationResult",
    "spectrum_from_amplitude",
    "total_radiated_energy",
]
