"""The in-situ radiation plugin.

Mirrors PIConGPU's far-field radiation plugin: after every PIC step the
plugin evaluates the Liénard-Wiechert amplitude contribution of the tracked
species and adds it to a running (direction × frequency) amplitude.  The
plugin also keeps the *last step's* contribution separately, because the
in-transit ML workflow streams a per-time-step radiation record (together
with the particle data) rather than only the final integrated spectrum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro import constants
from repro.pic.simulation import PICSimulation, Plugin
from repro.radiation.detector import RadiationDetector
from repro.radiation.form_factor import (combine_coherent_incoherent,
                                         macro_particle_form_factor)
from repro.radiation.lienard_wiechert import radiation_amplitude_step
from repro.radiation.spectrum import spectrum_from_amplitude


@dataclass
class RadiationResult:
    """Snapshot of the radiation diagnostics after a step."""

    step: int
    amplitude: np.ndarray          #: integrated complex amplitude (D, F, 3)
    step_amplitude: np.ndarray     #: this step's contribution (D, F, 3)
    spectrum: np.ndarray           #: integrated spectrum (D, F)


class RadiationPlugin(Plugin):
    """Accumulate far-field radiation of one species during a simulation.

    Parameters
    ----------
    detector:
        Observation directions and frequencies.
    species_name:
        Which species radiates (default ``"electrons"`` — ion radiation is
        suppressed by the mass ratio squared).
    sample_fraction:
        Fraction of macro-particles used each step (the radiation plugin is
        the costliest diagnostic; the paper notes its cost can exceed the
        PIC step itself).  Sampling keeps the scaling proportional while
        preserving the spectral shape; weights are rescaled accordingly.
    form_factor_shape:
        ``None`` disables the coherent/incoherent split (fully coherent
        macro-particles), otherwise ``"gaussian"`` or ``"cic"``.
    """

    order = 50  # run before output plugins so they can read the fresh spectrum

    def __init__(self, detector: RadiationDetector, species_name: str = "electrons",
                 sample_fraction: float = 1.0,
                 form_factor_shape: Optional[str] = None,
                 chunk_size: int = 512,
                 rng: Optional[np.random.Generator] = None) -> None:
        if not 0.0 < sample_fraction <= 1.0:
            raise ValueError("sample_fraction must lie in (0, 1]")
        self.detector = detector
        self.species_name = species_name
        self.sample_fraction = float(sample_fraction)
        self.form_factor_shape = form_factor_shape
        self.chunk_size = int(chunk_size)
        self.rng = rng or np.random.default_rng(0)
        self.amplitude: Optional[np.ndarray] = None
        self.last_step_amplitude: Optional[np.ndarray] = None
        self._previous_beta: Optional[np.ndarray] = None
        self._charge: float = -constants.ELEMENTARY_CHARGE
        self._macro_extent: float = 0.0
        self.history: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    def on_start(self, simulation: PICSimulation) -> None:
        species = simulation.get_species(self.species_name)
        self._charge = species.charge
        self._previous_beta = species.beta().copy()
        self._macro_extent = float(np.mean(simulation.config.grid.cell_size))
        self.amplitude = np.zeros((self.detector.n_directions,
                                   self.detector.n_frequencies, 3), dtype=np.complex128)

    def on_step(self, simulation: PICSimulation) -> None:
        species = simulation.get_species(self.species_name)
        beta_now = species.beta()
        if self._previous_beta is None or self._previous_beta.shape != beta_now.shape:
            self._previous_beta = beta_now.copy()
            return
        dt = simulation.config.dt
        beta_dot = (beta_now - self._previous_beta) / dt

        positions = species.positions
        weights = species.weights
        if self.sample_fraction < 1.0:
            n_sample = max(1, int(round(self.sample_fraction * species.n_macro)))
            idx = self.rng.choice(species.n_macro, size=n_sample, replace=False)
            positions = positions[idx]
            beta_sel = beta_now[idx]
            beta_dot = beta_dot[idx]
            weights = weights[idx] * (species.n_macro / n_sample)
        else:
            beta_sel = beta_now

        step_amp = radiation_amplitude_step(
            self.detector, positions, beta_sel, beta_dot, weights,
            time=simulation.time, dt=dt, chunk_size=self.chunk_size)
        self.last_step_amplitude = step_amp
        assert self.amplitude is not None
        self.amplitude += step_amp
        self._previous_beta = beta_now.copy()

    # ------------------------------------------------------------------ #
    def spectrum(self) -> np.ndarray:
        """Integrated spectrum ``(n_directions, n_frequencies)`` so far."""
        if self.amplitude is None:
            raise RuntimeError("the plugin has not been attached to a running simulation")
        raw = spectrum_from_amplitude(self.amplitude, self._charge)
        if self.form_factor_shape is None:
            return raw
        form = macro_particle_form_factor(self.detector.frequencies,
                                          self._macro_extent, self.form_factor_shape)
        # Incoherent estimate: treat each direction/frequency's power as if the
        # weights added in power rather than amplitude (w vs w^2 scaling).
        mean_weight = 1.0
        incoherent = raw / max(mean_weight, 1.0)
        return combine_coherent_incoherent(raw, incoherent, form[None, :])

    def result(self, step: int) -> RadiationResult:
        if self.amplitude is None or self.last_step_amplitude is None:
            raise RuntimeError("no radiation has been accumulated yet")
        return RadiationResult(step=step, amplitude=self.amplitude.copy(),
                               step_amplitude=self.last_step_amplitude.copy(),
                               spectrum=self.spectrum())
