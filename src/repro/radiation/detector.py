"""The synthetic radiation detector: observation directions and frequencies.

The paper's detector is spectrally and angularly resolved: intensity per
direction and frequency (Fig. 1, right).  Directions are unit vectors;
frequencies are angular frequencies, conveniently expressed in units of the
plasma frequency (the x-axis of Fig. 9(a)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro import constants
from repro.utils.validation import check_array, check_positive


def direction_grid(n_theta: int, n_phi: int = 1, axis: Sequence[float] = (1.0, 0.0, 0.0),
                   opening_angle: float = np.pi / 2) -> np.ndarray:
    """Unit observation directions on a cone/fan around ``axis``.

    Parameters
    ----------
    n_theta:
        Number of polar angles in ``[0, opening_angle]``.
    n_phi:
        Number of azimuthal angles (1 keeps all directions in one plane).
    axis:
        Central observation direction.
    opening_angle:
        Maximum polar angle away from ``axis`` [rad].

    Returns
    -------
    Array of shape ``(n_theta * n_phi, 3)`` of unit vectors.
    """
    if n_theta < 1 or n_phi < 1:
        raise ValueError("n_theta and n_phi must be >= 1")
    axis = np.asarray(axis, dtype=np.float64)
    axis = axis / np.linalg.norm(axis)
    # build an orthonormal frame around the axis
    helper = np.array([0.0, 0.0, 1.0]) if abs(axis[2]) < 0.9 else np.array([0.0, 1.0, 0.0])
    e1 = np.cross(axis, helper)
    e1 /= np.linalg.norm(e1)
    e2 = np.cross(axis, e1)
    thetas = np.linspace(0.0, opening_angle, n_theta)
    phis = np.linspace(0.0, 2.0 * np.pi, n_phi, endpoint=False)
    directions = []
    for theta in thetas:
        for phi in phis:
            d = (np.cos(theta) * axis
                 + np.sin(theta) * (np.cos(phi) * e1 + np.sin(phi) * e2))
            directions.append(d / np.linalg.norm(d))
    return np.asarray(directions)


def frequency_grid(n_frequencies: int, omega_max: float, omega_min: Optional[float] = None,
                   spacing: str = "log") -> np.ndarray:
    """Angular-frequency grid.

    Parameters
    ----------
    n_frequencies:
        Number of frequency bins.
    omega_max:
        Largest angular frequency [rad/s].
    omega_min:
        Smallest angular frequency; defaults to ``omega_max / 1000`` for log
        spacing and ``0`` for linear spacing.
    spacing:
        ``"log"`` (default, matching the log-frequency axis of Fig. 9a) or
        ``"linear"``.
    """
    if n_frequencies < 1:
        raise ValueError("n_frequencies must be >= 1")
    check_positive(omega_max, "omega_max")
    if spacing == "log":
        omega_min = omega_max / 1000.0 if omega_min is None else omega_min
        check_positive(omega_min, "omega_min")
        return np.logspace(np.log10(omega_min), np.log10(omega_max), n_frequencies)
    if spacing == "linear":
        omega_min = 0.0 if omega_min is None else omega_min
        return np.linspace(omega_min, omega_max, n_frequencies)
    raise ValueError("spacing must be 'log' or 'linear'")


@dataclass
class RadiationDetector:
    """Bundle of observation directions and angular frequencies.

    Attributes
    ----------
    directions:
        ``(n_directions, 3)`` unit vectors pointing from the plasma towards
        the detector.
    frequencies:
        ``(n_frequencies,)`` angular frequencies [rad/s].
    """

    directions: np.ndarray
    frequencies: np.ndarray

    def __post_init__(self) -> None:
        self.directions = check_array(self.directions, "directions", dtype=np.float64, ndim=2)
        self.frequencies = check_array(self.frequencies, "frequencies",
                                       dtype=np.float64, ndim=1)
        if self.directions.shape[1] != 3:
            raise ValueError("directions must have shape (n, 3)")
        norms = np.linalg.norm(self.directions, axis=1)
        if not np.allclose(norms, 1.0, atol=1e-8):
            raise ValueError("directions must be unit vectors")
        if np.any(self.frequencies < 0):
            raise ValueError("frequencies must be non-negative")

    @property
    def n_directions(self) -> int:
        return int(self.directions.shape[0])

    @property
    def n_frequencies(self) -> int:
        return int(self.frequencies.shape[0])

    @property
    def shape(self) -> Tuple[int, int]:
        """Shape of the spectrum array ``(n_directions, n_frequencies)``."""
        return (self.n_directions, self.n_frequencies)

    def frequencies_in_plasma_units(self, density: float) -> np.ndarray:
        """Frequencies in units of the plasma frequency of ``density``."""
        return self.frequencies / constants.plasma_frequency(density)

    @classmethod
    def for_khi(cls, density: float, n_directions: int = 8, n_frequencies: int = 64,
                max_omega_in_plasma_units: float = 100.0,
                axis: Sequence[float] = (1.0, 0.0, 0.0)) -> "RadiationDetector":
        """Detector matching the paper's KHI study.

        Frequencies span 0.1 … ``max_omega_in_plasma_units`` plasma
        frequencies on a log axis (the range of Fig. 9a); directions fan out
        around the flow axis so that approaching and receding streams are
        Doppler-distinguishable.
        """
        omega_p = constants.plasma_frequency(density)
        freqs = frequency_grid(n_frequencies, omega_max=max_omega_in_plasma_units * omega_p,
                               omega_min=0.1 * omega_p, spacing="log")
        dirs = direction_grid(n_directions, n_phi=1, axis=axis, opening_angle=np.pi / 3)
        return cls(directions=dirs, frequencies=freqs)
