"""Liénard-Wiechert far-field amplitudes.

The classical result (Jackson, Ch. 14): the energy radiated per unit solid
angle and unit angular frequency by a charge is

.. math::

    \\frac{d^2 I}{d\\Omega\\, d\\omega} = \\frac{q^2}{16 \\pi^3 \\varepsilon_0 c}
    \\left| \\int_{-\\infty}^{\\infty}
    \\frac{\\vec n \\times [(\\vec n - \\vec\\beta) \\times \\dot{\\vec\\beta}]}
         {(1 - \\vec n \\cdot \\vec\\beta)^2}
    \\, e^{i \\omega (t - \\vec n \\cdot \\vec r(t) / c)}\\, dt \\right|^2

The PIC radiation plugin evaluates the time integral as a sum over
simulation time steps (Pausch et al. 2014).  :func:`radiation_amplitude_step`
returns one step's contribution to the (vector-valued, complex) amplitude on
the full ``(direction, frequency)`` detector grid; :func:`accumulate_amplitude`
adds it to a running total.  Particles are processed in chunks so the
``(particles × directions × frequencies)`` intermediate never exceeds a few
tens of megabytes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import constants
from repro.radiation.detector import RadiationDetector

#: Prefactor of the spectral energy density, q^2 / (16 pi^3 eps0 c).
def spectral_prefactor(charge: float) -> float:
    return charge ** 2 / (16.0 * np.pi ** 3 * constants.EPSILON_0
                          * constants.SPEED_OF_LIGHT)


def radiation_amplitude_step(detector: RadiationDetector,
                             positions: np.ndarray,
                             beta: np.ndarray,
                             beta_dot: np.ndarray,
                             weights: np.ndarray,
                             time: float,
                             dt: float,
                             chunk_size: int = 512) -> np.ndarray:
    """One time step's contribution to the complex far-field amplitude.

    Parameters
    ----------
    detector:
        Observation directions and angular frequencies.
    positions:
        Particle positions ``(N, 3)`` [m] at the current step.
    beta:
        Normalised velocities ``(N, 3)`` at the current step.
    beta_dot:
        Time derivative of ``beta`` ``(N, 3)`` [1/s] (finite difference of
        the momenta across the step).
    weights:
        Macro-particle weights ``(N,)``.  Weights multiply the *amplitude*
        (fully coherent macro-particles); see
        :mod:`repro.radiation.form_factor` for the coherent/incoherent
        split.
    time:
        Current simulation time [s].
    dt:
        Time-step length [s] (the integration measure).
    chunk_size:
        Number of particles per vectorised chunk.

    Returns
    -------
    Complex array of shape ``(n_directions, n_frequencies, 3)``.
    """
    positions = np.asarray(positions, dtype=np.float64)
    beta = np.asarray(beta, dtype=np.float64)
    beta_dot = np.asarray(beta_dot, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    n = positions.shape[0]
    directions = detector.directions                      # (D, 3)
    omegas = detector.frequencies                         # (F,)
    out = np.zeros((detector.n_directions, detector.n_frequencies, 3),
                   dtype=np.complex128)
    if n == 0:
        return out
    inv_c = 1.0 / constants.SPEED_OF_LIGHT
    for start in range(0, n, chunk_size):
        stop = min(start + chunk_size, n)
        pos = positions[start:stop]                       # (P, 3)
        b = beta[start:stop]
        bdot = beta_dot[start:stop]
        w = weights[start:stop]

        # geometry terms, shape (P, D, ...)
        n_dot_beta = b @ directions.T                     # (P, D)
        one_minus = 1.0 - n_dot_beta
        np.clip(one_minus, 1e-12, None, out=one_minus)
        # n x ((n - beta) x beta_dot) for every particle/direction
        diff = directions[None, :, :] - b[:, None, :]     # (P, D, 3)
        inner = np.cross(diff, bdot[:, None, :])          # (P, D, 3)
        vector = np.cross(directions[None, :, :], inner)  # (P, D, 3)
        vector /= (one_minus ** 2)[:, :, None]
        vector *= w[:, None, None]

        # retarded phase: omega * (t - n.r/c), shape (P, D, F)
        n_dot_r = pos @ directions.T                      # (P, D)
        phase = np.exp(1j * omegas[None, None, :]
                       * (time - n_dot_r[:, :, None] * inv_c))

        # sum over particles in the chunk
        out += np.einsum("pdf,pdc->dfc", phase, vector) * dt
    return out


def accumulate_amplitude(total: Optional[np.ndarray], detector: RadiationDetector,
                         positions: np.ndarray, beta: np.ndarray, beta_dot: np.ndarray,
                         weights: np.ndarray, time: float, dt: float,
                         chunk_size: int = 512) -> np.ndarray:
    """Add one step's contribution to ``total`` (allocating it if ``None``)."""
    step = radiation_amplitude_step(detector, positions, beta, beta_dot, weights,
                                    time, dt, chunk_size=chunk_size)
    if total is None:
        return step
    total += step
    return total
