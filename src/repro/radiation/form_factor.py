"""Macro-particle form factors for coherent and incoherent radiation.

A macro-particle representing ``w`` real electrons radiates coherently
(∝ w²) at wavelengths long compared to the macro-particle extent and
incoherently (∝ w) at short wavelengths.  Pausch et al. (2018) introduce a
form-factor formalism that makes PIC radiation spectra quantitatively
consistent across both regimes; this module implements that combination for
the CIC/Gaussian macro-particle shapes used here.
"""

from __future__ import annotations

import numpy as np

from repro import constants


def macro_particle_form_factor(omega: np.ndarray, macro_extent: float,
                               shape: str = "gaussian") -> np.ndarray:
    """Spectral form factor ``F(omega)`` in [0, 1] of one macro-particle.

    Parameters
    ----------
    omega:
        Angular frequencies [rad/s].
    macro_extent:
        Characteristic size of the macro-particle (of order the cell size)
        in metres.
    shape:
        ``"gaussian"`` — Fourier transform of a Gaussian cloud;
        ``"cic"`` — squared-sinc transform of the linear (CIC) shape.
    """
    omega = np.asarray(omega, dtype=np.float64)
    if macro_extent < 0:
        raise ValueError("macro_extent must be non-negative")
    k = omega / constants.SPEED_OF_LIGHT
    x = k * macro_extent
    if shape == "gaussian":
        return np.exp(-0.5 * x ** 2)
    if shape == "cic":
        # triangle (CIC) shape -> sinc^2 form factor
        small = x < 1e-12
        s = np.where(small, 1.0, np.sin(x / 2.0) / np.where(small, 1.0, x / 2.0))
        return s ** 2
    raise ValueError("shape must be 'gaussian' or 'cic'")


def combine_coherent_incoherent(coherent_amplitude: np.ndarray,
                                incoherent_power: np.ndarray,
                                form_factor: np.ndarray) -> np.ndarray:
    """Combine coherent and incoherent contributions into one spectrum.

    Parameters
    ----------
    coherent_amplitude:
        ``|sum_p w_p a_p|^2`` evaluated per (direction, frequency) — the
        fully coherent limit.
    incoherent_power:
        ``sum_p w_p |a_p|^2`` per (direction, frequency) — the fully
        incoherent limit.
    form_factor:
        ``F(omega)`` per frequency (broadcast over directions).

    Returns
    -------
    ``F^2 * coherent + (1 - F^2) * incoherent`` — the Pausch et al. (2018)
    interpolation between the two limits.
    """
    coherent_amplitude = np.asarray(coherent_amplitude, dtype=np.float64)
    incoherent_power = np.asarray(incoherent_power, dtype=np.float64)
    form_factor = np.asarray(form_factor, dtype=np.float64)
    if np.any(form_factor < 0) or np.any(form_factor > 1):
        raise ValueError("form factors must lie in [0, 1]")
    f2 = form_factor ** 2
    return f2 * coherent_amplitude + (1.0 - f2) * incoherent_power
