"""Turning accumulated far-field amplitudes into spectra."""

from __future__ import annotations

import numpy as np

from repro.radiation.detector import RadiationDetector
from repro.radiation.lienard_wiechert import spectral_prefactor


def spectrum_from_amplitude(amplitude: np.ndarray, charge: float) -> np.ndarray:
    """Spectral energy density ``d^2 I / dOmega domega`` from the amplitude.

    Parameters
    ----------
    amplitude:
        Complex array ``(n_directions, n_frequencies, 3)`` as accumulated by
        :func:`repro.radiation.lienard_wiechert.accumulate_amplitude`.
    charge:
        Charge of one real particle [C] (the macro-particle weights are
        already folded into the amplitude).

    Returns
    -------
    Real array ``(n_directions, n_frequencies)`` in J·s/sr.
    """
    amplitude = np.asarray(amplitude)
    if amplitude.ndim != 3 or amplitude.shape[-1] != 3:
        raise ValueError("amplitude must have shape (directions, frequencies, 3)")
    power = np.sum(np.abs(amplitude) ** 2, axis=-1)
    return spectral_prefactor(charge) * power


def total_radiated_energy(spectrum: np.ndarray, detector: RadiationDetector,
                          solid_angle_per_direction: float = 4.0 * np.pi) -> float:
    """Integrate a spectrum over frequency and solid angle.

    The default assigns the full sphere split uniformly over the detector's
    directions, which is adequate for relative comparisons; pass the actual
    per-direction solid angle for absolute numbers.
    """
    spectrum = np.asarray(spectrum, dtype=np.float64)
    if spectrum.shape != detector.shape:
        raise ValueError("spectrum shape does not match the detector")
    omega = detector.frequencies
    if len(omega) < 2:
        return float(spectrum.sum() * solid_angle_per_direction / detector.n_directions)
    per_direction = np.trapezoid(spectrum, omega, axis=1)
    return float(per_direction.sum() * solid_angle_per_direction / detector.n_directions)


def normalize_log_spectrum(spectrum: np.ndarray, floor: float = 1e-30) -> np.ndarray:
    """Log-scale and normalise a spectrum for use as an ML input.

    The observed intensities span many orders of magnitude (Fig. 9a); the
    MLapp feeds ``log10`` intensities normalised to zero mean and unit range
    per sample to the INN.
    """
    spectrum = np.asarray(spectrum, dtype=np.float64)
    logged = np.log10(np.maximum(spectrum, floor))
    lo, hi = logged.min(), logged.max()
    if hi - lo < 1e-12:
        return np.zeros_like(logged)
    return (logged - lo) / (hi - lo)
