"""Fan-out: one writer stream feeding an arbitrary number of reader groups.

ADIOS2's SST engine connects one parallel writer to *N* independent reader
applications; each reader cohort gets every step and acknowledges it
separately.  The seed reproduction only ever wired one reader to the
:class:`repro.streaming.broker.SSTBroker`, whose queue is consuming (a step
popped by one reader is gone).  :class:`FanOutBroker` restores the SST
semantics for multiple consumers: it exposes the broker *writer* interface
(``put_step`` / ``close`` plus the introspection attributes the drivers
sample) and tees every step into one downstream :class:`SSTBroker` per
consumer, each with its own bounded queue and back-pressure.

A downstream broker that has been closed (e.g. because its consumer died)
is skipped instead of poisoning the whole stream — the surviving consumers
keep receiving data, which is exactly the loose-coupling property the paper
argues for.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.streaming.broker import SSTBroker, StreamClosedError
from repro.streaming.step import Step
from repro.streaming.variable import Block, Variable


def _copy_step(step: Step) -> Step:
    """Deep-copy a step so one consumer cannot mutate another's buffers."""
    clone = Step(index=step.index, attributes=dict(step.attributes))
    for name, variable in step.variables.items():
        copied = Variable(name)
        for block in variable.blocks.values():
            copied.add_block(Block(rank=block.rank, offset=block.offset,
                                   data=block.data.copy()))
        clone.put(copied)
    return clone


class FanOutBroker:
    """Writer-side tee over one bounded :class:`SSTBroker` per consumer.

    The first live consumer receives the producer's buffers zero-copy (the
    in-transit fast path); every further consumer gets its own copy, as
    independent SST reader cohorts would — so no consumer can corrupt the
    data another one trains on.
    """

    def __init__(self, stream_name: str, downstreams: Sequence[SSTBroker]) -> None:
        if not downstreams:
            raise ValueError("a FanOutBroker needs at least one downstream broker")
        self.stream_name = stream_name
        self.downstreams: List[SSTBroker] = list(downstreams)
        self.steps_written = 0
        self.bytes_written = 0

    # -- writer interface (what SSTWriterEngine calls) ---------------------- #
    def put_step(self, step: Step, timeout: Optional[float] = None) -> None:
        """Present one step to every live downstream queue."""
        delivered = 0
        for broker in self.downstreams:
            if broker.closed:
                continue
            try:
                broker.put_step(step if delivered == 0 else _copy_step(step),
                                timeout=timeout)
            except StreamClosedError:
                continue  # the consumer went away between the check and the put
            delivered += 1
        if delivered == 0:
            raise StreamClosedError(
                f"stream {self.stream_name!r} has no live consumers left")
        self.steps_written += 1
        self.bytes_written += step.nbytes

    def close(self) -> None:
        for broker in self.downstreams:
            broker.close()

    # -- introspection ------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        return all(broker.closed for broker in self.downstreams)

    @property
    def queue_limit(self) -> int:
        return max(broker.queue_limit for broker in self.downstreams)

    @property
    def queued_steps(self) -> int:
        """Depth of the fullest downstream queue (the back-pressure driver)."""
        return max(broker.queued_steps for broker in self.downstreams)
